#!/usr/bin/env python3
"""Enforced warm-path perf gate (DESIGN.md §10).

Compares freshly measured bench JSON against the committed baselines
(BENCH_serve.json, BENCH_blas.json) and FAILS — nonzero exit — when any
warm-path record regressed by more than --max-regress after machine-speed
normalization. Run the bench with the SAME flags the committed baseline
was generated with, so record keys intersect:

    ./build/serve_throughput --threads 8 --json /tmp/serve.json
    ./build/micro_blas --json /tmp/blas.json
    python3 tools/perf_gate.py BENCH_serve.json:/tmp/serve.json \
                               BENCH_blas.json:/tmp/blas.json

Noise. Small-request serving rates (f64 batched updates especially)
swing 30-40% run to run, so a single sample on either side of the
comparison would flake a 20% gate. Two defenses:

  * A pair may list several CURRENT files (BASELINE:CUR1:CUR2:...);
    the gate takes the BEST rate per key across them. Run the bench
    twice in CI — a path is only flagged when it can't hit the
    baseline in any attempt.
  * Baselines should be the per-key MEDIAN of several runs, not one
    lucky sample. `--merge-median OUT RUN1.json RUN2.json ...`
    regenerates a baseline that way (identity fields must match
    across runs; every numeric metric field is medianed). The merge
    also stamps each record with its observed replication noise,
    noise_floor = min(rate)/median(rate) across the baseline runs.
  * A key whose own baseline replication varies more than the gate
    threshold cannot be gated at that threshold: when noise_floor <
    --noise-cutoff (default 0.9) the key is EXCLUDED and reported as
    skipped — never silently. Stable keys keep the strict floor.

Method. Every record is keyed by its identity fields (phase, dtype, shape,
batch, clients, ...) and measured by its rate metric ('gflops' when
present, else 'req_per_sec' — higher is better). For each key present in
both baseline and current, the gate computes ratio = current / baseline.
The MEDIAN ratio over all keys is taken as the machine-speed factor (CI
runners are not the machine the baseline was recorded on), and each key's
normalized ratio = ratio / median is compared against 1 - max_regress.

This catches the regression class a code change causes: one path (a
kernel, the batched stream, the serving warm loop) getting slower
RELATIVE to the rest of the suite. A perfectly uniform slowdown of every
record is indistinguishable from a slower machine and is absorbed by the
normalization — that is the price of running on heterogeneous CI
hardware, and it is why the baselines are regenerated (and eyeballed)
whenever a PR intentionally shifts the perf envelope.

Cold and overload phases are excluded: cold pays one-off plan builds, and
the overload phase's completed/sec depends on the admission mix, not on
warm-path speed. Records without a rate metric (counter records) are
skipped.
"""

import argparse
import json
import statistics
import sys

# Fields that carry measurements or run-dependent counters; everything
# else identifies the record.
METRIC_FIELDS = frozenset({
    "req_per_sec", "mean_ms", "mean_us", "gflops", "seconds",
    "cache_hits", "cache_misses", "schedule_builds", "workspace_grows",
    "thread_pack_allocs", "plan_misses",
    "offered", "completed", "rejected", "shed", "deadline_expired",
    "completed_per_sec", "admission_wait_p99_us", "queue_wait_p99_us",
    "compute_p99_us", "speedup", "noise_floor",
})

# Phases whose rates are not warm-path statements (see module docstring).
SKIP_PHASES = frozenset({"cold", "overload", "batched_warm_counters"})


def rate_metric(rec):
    if "gflops" in rec:
        return "gflops"
    if "req_per_sec" in rec:
        return "req_per_sec"
    return None


def load_rates(path):
    """{identity key: (rate, noise_floor)} for every gated record in a
    bench JSON file. noise_floor is 1.0 unless the file is a merged
    baseline that recorded one."""
    with open(path) as f:
        records = json.load(f)
    rates = {}
    for rec in records:
        if rec.get("phase") in SKIP_PHASES:
            continue
        metric = rate_metric(rec)
        if metric is None:
            continue
        key = tuple(sorted((k, v) for k, v in rec.items()
                           if k not in METRIC_FIELDS))
        rates[key] = (float(rec[metric]), float(rec.get("noise_floor", 1.0)))
    return rates


def describe(key):
    return " ".join(f"{k}={v}" for k, v in key)


def merge_median(out_path, run_paths):
    """Write per-key medians of every metric field across bench runs.

    Record order and identity fields come from the first run; a key
    missing from any later run is a hard error (the runs were not
    generated with the same flags).
    """
    runs = []
    for path in run_paths:
        with open(path) as f:
            records = json.load(f)
        by_key = {}
        for rec in records:
            key = tuple(sorted((k, v) for k, v in rec.items()
                               if k not in METRIC_FIELDS))
            by_key[key] = rec
        runs.append((path, records, by_key))

    first_path, first_records, _ = runs[0]
    merged = []
    for rec in first_records:
        key = tuple(sorted((k, v) for k, v in rec.items()
                           if k not in METRIC_FIELDS))
        samples = []
        for path, _, by_key in runs:
            if key not in by_key:
                print(f"perf gate: FAIL — record {describe(key)} from "
                      f"{first_path} missing in {path}; rerun with "
                      f"matching flags", file=sys.stderr)
                return 1
            samples.append(by_key[key])
        out = dict(rec)
        for field in rec:
            if field in METRIC_FIELDS:
                out[field] = statistics.median(float(s[field])
                                               for s in samples)
        metric = rate_metric(rec)
        if metric is not None and len(samples) > 1:
            vals = [float(s[metric]) for s in samples]
            med = statistics.median(vals)
            out["noise_floor"] = round(min(vals) / med, 4) if med > 0 else 1.0
        merged.append(out)
    with open(out_path, "w") as f:
        json.dump(merged, f, indent=1)
        f.write("\n")
    print(f"perf gate: wrote {len(merged)} median-of-{len(runs)} records "
          f"to {out_path}")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("pairs", nargs="+", metavar="BASELINE:CURRENT[:CURRENT...]",
                    help="committed baseline JSON and one or more freshly "
                         "measured JSON files (best rate per key is gated)")
    ap.add_argument("--merge-median", metavar="OUT",
                    help="instead of gating, merge the positional args "
                         "(plain JSON paths, no colons) into OUT taking the "
                         "per-key median of every metric field")
    ap.add_argument("--max-regress", type=float, default=0.20,
                    help="fail when a normalized rate drops more than this "
                         "fraction below baseline (default 0.20)")
    ap.add_argument("--min-keys", type=int, default=3,
                    help="fail unless at least this many record keys "
                         "intersect across all pairs (default 3)")
    ap.add_argument("--noise-cutoff", type=float, default=0.9,
                    help="exclude keys whose baseline noise_floor is below "
                         "this — their own replication noise exceeds the "
                         "gate threshold (default 0.9)")
    args = ap.parse_args()

    if args.merge_median:
        return merge_median(args.merge_median, args.pairs)

    ratios = {}  # identity key (with file tag) -> current/baseline
    skipped_noisy = []
    for pair in args.pairs:
        parts = pair.split(":")
        if len(parts) < 2:
            ap.error(f"expected BASELINE:CURRENT[:CURRENT...], got '{pair}'")
        base_path, cur_paths = parts[0], parts[1:]
        base = load_rates(base_path)
        cur = {}  # best (highest) observed rate per key across current runs
        for cur_path in cur_paths:
            for key, (rate, _) in load_rates(cur_path).items():
                cur[key] = max(rate, cur.get(key, 0.0))
        shared = base.keys() & cur.keys()
        if not shared:
            print(f"perf gate: FAIL — no intersecting records between "
                  f"{base_path} and {':'.join(cur_paths)}; run the bench "
                  f"with the baseline's flags", file=sys.stderr)
            return 1
        for key in shared:
            rate, noise = base[key]
            if rate <= 0:
                continue
            if noise < args.noise_cutoff:
                skipped_noisy.append(((base_path,) + key, noise))
                continue
            ratios[(base_path,) + key] = cur[key] / rate

    if len(ratios) < args.min_keys:
        print(f"perf gate: FAIL — only {len(ratios)} intersecting records "
              f"(need {args.min_keys}); baselines are stale", file=sys.stderr)
        return 1

    machine = statistics.median(ratios.values())
    floor = 1.0 - args.max_regress
    failures = []
    for key, ratio in sorted(ratios.items(), key=lambda kv: kv[1]):
        normalized = ratio / machine
        if normalized < floor:
            failures.append((key, ratio, normalized))

    print(f"perf gate: {len(ratios)} records compared, machine-speed "
          f"factor {machine:.3f}, floor {floor:.2f} (normalized)")
    if skipped_noisy:
        print(f"perf gate: {len(skipped_noisy)} key(s) excluded — baseline "
              f"replication noise below cutoff {args.noise_cutoff:.2f}:")
        for key, noise in sorted(skipped_noisy, key=lambda kv: kv[1]):
            print(f"  skipped (noise_floor {noise:.3f}): "
                  f"{describe(key[1:])} [{key[0]}]")
    worst = sorted(ratios.items(), key=lambda kv: kv[1])[:5]
    for key, ratio in worst:
        print(f"  slowest: {ratio / machine:6.3f}x normalized "
              f"({ratio:6.3f}x raw)  {describe(key[1:])} [{key[0]}]")

    if failures:
        print(f"perf gate: FAIL — {len(failures)} warm-path record(s) "
              f"regressed more than {args.max_regress:.0%}:", file=sys.stderr)
        for key, ratio, normalized in failures:
            print(f"  {normalized:6.3f}x normalized ({ratio:6.3f}x raw)  "
                  f"{describe(key[1:])} [{key[0]}]", file=sys.stderr)
        return 1
    print("perf gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
