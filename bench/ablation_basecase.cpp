// Ablation — Algorithm 1's base-case condition ("if m x n <= cache size").
//
// Sweeps the recursion cut-off threshold and shows the U-shape the paper's
// choice sits in: tiny thresholds drown in recursion overhead and BLAS-1
// block sums; huge thresholds degenerate AtA into one syrk call and forfeit
// the Strassen savings. The cache-probed default should sit near the
// bottom of the U.

#include <cstdio>

#include "ata/ata.hpp"
#include "bench_common.hpp"
#include "common/cacheinfo.hpp"
#include "metrics/flops.hpp"

int main(int argc, char** argv) {
  using namespace atalib;

  CliFlags flags;
  bench::add_common_flags(flags);
  flags.add_int("n", 1024, "square matrix size");
  if (!flags.parse(argc, argv)) return 1;
  const double scale = flags.get_double("scale");
  const int reps = static_cast<int>(flags.get_int("reps"));
  const index_t n = bench::scaled(flags.get_int("n"), scale);

  bench::print_banner("AtA base-case threshold sweep", "§3.1 / Algorithm 1 line 2");

  const auto a = random_uniform<double>(n, n, 1000);
  auto c = Matrix<double>::zeros(n, n);
  const index_t probed = static_cast<index_t>(default_base_case_elements(sizeof(double)));

  Table table("Base-case threshold vs AtA runtime (n = " + std::to_string(n) + ")");
  table.set_header({"threshold (elems)", "vs cache-probed", "time (s)", "EG (r=1)"});

  for (index_t threshold : {index_t(1) << 8, index_t(1) << 10, index_t(1) << 12,
                            index_t(1) << 14, probed, index_t(1) << 18, index_t(1) << 20,
                            index_t(1) << 24}) {
    RecurseOptions recurse;
    recurse.base_case_elements = threshold;
    const double t = min_time_of(
        [&] {
          fill_view(c.view(), 0.0);
          ata(1.0, a.const_view(), c.view(), recurse);
        },
        reps);
    table.add_row({std::to_string(threshold),
                   threshold == probed ? "probed default" : Table::num(
                       static_cast<double>(threshold) / static_cast<double>(probed), 3),
                   Table::num(t), Table::num(metrics::effective_gflops(1.0, n, n, n, t), 2)});
  }
  table.print();
  std::printf("shape check: runtime is U-shaped in the threshold; the probed default\n"
              "(%ld elements) should be at or near the minimum.\n", probed);
  return 0;
}
