// Ablation — Algorithm 1's base-case condition ("if m x n <= cache size").
//
// Sweeps the recursion cut-off threshold and shows the U-shape the paper's
// choice sits in: tiny thresholds drown in recursion overhead and BLAS-1
// block sums; huge thresholds degenerate AtA into one syrk call and forfeit
// the Strassen savings. The cache-probed default and the measured tuner's
// pick (strassen::Tuner, DESIGN.md §6) should both sit near the bottom of
// the U — the tuned row is what base_case_elements = 0 actually runs with.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "ata/ata.hpp"
#include "bench_common.hpp"
#include "common/cacheinfo.hpp"
#include "metrics/flops.hpp"

int main(int argc, char** argv) {
  using namespace atalib;

  CliFlags flags;
  bench::add_common_flags(flags);
  flags.add_int("n", 1024, "square matrix size");
  if (!flags.parse(argc, argv)) return 1;
  const double scale = flags.get_double("scale");
  const int reps = static_cast<int>(flags.get_int("reps"));
  const index_t n = bench::scaled(flags.get_int("n"), scale);
  bench::JsonWriter json(flags.get_string("json"));

  bench::print_banner("AtA base-case threshold sweep", "§3.1 / Algorithm 1 line 2");

  const auto a = random_uniform<double>(n, n, 1000);
  auto c = Matrix<double>::zeros(n, n);
  const index_t probed = static_cast<index_t>(default_base_case_elements(sizeof(double)));
  const index_t tuned = tuned_base_case_elements(sizeof(double));

  Table table("Base-case threshold vs AtA runtime (n = " + std::to_string(n) + ")");
  table.set_header({"threshold (elems)", "vs cache-probed", "time (s)", "EG (r=1)"});

  std::vector<index_t> thresholds{index_t(1) << 8,  index_t(1) << 10, index_t(1) << 12,
                                  index_t(1) << 14, probed,           index_t(1) << 18,
                                  index_t(1) << 20, index_t(1) << 24};
  if (std::find(thresholds.begin(), thresholds.end(), tuned) == thresholds.end()) {
    thresholds.push_back(tuned);
    std::sort(thresholds.begin(), thresholds.end());
  }

  for (index_t threshold : thresholds) {
    RecurseOptions recurse;
    recurse.base_case_elements = threshold;
    const double t = min_time_of(
        [&] {
          fill_view(c.view(), 0.0);
          ata(1.0, a.const_view(), c.view(), recurse);
        },
        reps);
    std::string label = threshold == probed   ? "probed default"
                        : threshold == tuned  ? "tuner pick"
                                              : Table::num(static_cast<double>(threshold) /
                                                               static_cast<double>(probed),
                                                           3);
    const double eg = metrics::effective_gflops(1.0, n, n, n, t);
    table.add_row({std::to_string(threshold), label, Table::num(t), Table::num(eg, 2)});

    bench::JsonWriter::Record rec;
    rec.str("bench", "ablation_basecase")
        .str("dtype", "f64")
        .num("n", static_cast<std::uint64_t>(n))
        .num("threshold", static_cast<std::uint64_t>(threshold))
        .str("label", threshold == probed  ? "probed"
                      : threshold == tuned ? "tuned"
                                           : "swept")
        .num("seconds", t)
        .num("eff_gflops", eg);
    json.add(rec);
  }
  table.print();
  std::printf("shape check: runtime is U-shaped in the threshold; the probed default\n"
              "(%ld elements) and the tuner's pick (%ld) should be at or near the minimum.\n",
              static_cast<long>(probed), static_cast<long>(tuned));
  return json.flush() ? 0 : 1;
}
