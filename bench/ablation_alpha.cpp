// Ablation — §4.1.2's load-balance parameter alpha: the fraction of
// processes assigned to the off-diagonal A^T B sub-tree.
//
// The paper derives alpha = 1/2 from equating per-process multiplication
// counts (gemm work is ~2x syrk work, and the tree gives the gemm side
// half the processes). This bench sweeps alpha and reports the max
// per-process flops (the balance objective) plus wall time.

#include <cstdio>

#include "bench_common.hpp"
#include "dist/ata_dist.hpp"
#include "sched/dist_tree.hpp"

int main(int argc, char** argv) {
  using namespace atalib;

  CliFlags flags;
  bench::add_common_flags(flags);
  flags.add_int("n", 768, "square matrix size");
  flags.add_int("procs", 16, "process count");
  if (!flags.parse(argc, argv)) return 1;
  const double scale = flags.get_double("scale");
  const index_t n = bench::scaled(flags.get_int("n"), scale);
  const int procs = static_cast<int>(flags.get_int("procs"));
  const RecurseOptions recurse = bench::recurse_from_flags(flags);
  bench::JsonWriter json(flags.get_string("json"));

  bench::print_banner("AtA-D load-balance parameter sweep", "§4.1.2 (alpha = 1/2 claim)");

  const auto a = random_uniform<double>(n, n, 1100);

  Table table("alpha sweep, n = " + std::to_string(n) + ", P = " + std::to_string(procs));
  table.set_header({"alpha", "max leaf Mflop", "balance (max/avg)", "time (s)", "words"});

  for (double alpha : {0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875}) {
    const auto tree = sched::build_dist_tree(n, n, procs, alpha);
    double max_leaf = 0, total = 0;
    int leaves = 0;
    for (const auto& node : tree.nodes) {
      if (node.kind != sched::DistNode::Kind::kLeaf) continue;
      double w = 0;
      for (const auto& op : node.ops) w += op.flops();
      max_leaf = std::max(max_leaf, w);
      total += w;
      ++leaves;
    }
    dist::DistOptions opts;
    opts.procs = procs;
    opts.alpha = alpha;
    opts.recurse = recurse;
    const auto res = dist::ata_dist(1.0, a, opts);
    const double balance = max_leaf / (total / leaves);
    table.add_row({Table::num(alpha, 3), Table::num(max_leaf / 1e6, 2), Table::num(balance, 3),
                   Table::num(res.seconds), std::to_string(res.traffic.total_words())});

    bench::JsonWriter::Record rec;
    rec.str("bench", "ablation_alpha")
        .str("dtype", "f64")
        .num("n", static_cast<std::uint64_t>(n))
        .num("procs", procs)
        .num("alpha", alpha)
        .num("max_leaf_mflop", max_leaf / 1e6)
        .num("balance", balance)
        .num("seconds", res.seconds)
        .num("words", static_cast<std::uint64_t>(res.traffic.total_words()));
    json.add(rec);
  }
  table.print();
  std::printf("shape check: the balance column (max/avg per-process work, 1.0 = perfect)\n"
              "should be best near alpha = 0.5, the paper's choice.\n");
  return json.flush() ? 0 : 1;
}
