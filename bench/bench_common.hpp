#pragma once
// Shared helpers for the benchmark harness.
//
// Every bench binary regenerates one table or figure of the paper (see
// DESIGN.md §4). Sizes are scaled down from the paper's cluster runs via
// --scale so a laptop-class machine finishes in seconds; pass --scale 4 or
// more to push toward the asymptotic regime on bigger hardware.

#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "matrix/generate.hpp"
#include "strassen/options.hpp"

namespace atalib::bench {

/// Standard flags shared by every bench binary.
inline void add_common_flags(CliFlags& flags) {
  flags.add_double("scale", 1.0, "size multiplier vs the built-in laptop defaults");
  flags.add_int("reps", 2, "timing repetitions (min is reported)");
  flags.add_int("base-elements", 0, "AtA/Strassen base-case threshold (0 = probe cache)");
}

inline RecurseOptions recurse_from_flags(const CliFlags& flags) {
  RecurseOptions opts;
  opts.base_case_elements = flags.get_int("base-elements");
  return opts;
}

/// Scale a base size, keeping it even-ish for prettier splits.
inline index_t scaled(index_t base, double scale) {
  auto v = static_cast<index_t>(static_cast<double>(base) * scale);
  return std::max<index_t>(v, 16);
}

/// A labeled experiment header, mirrored in EXPERIMENTS.md.
inline void print_banner(const std::string& what, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", what.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

}  // namespace atalib::bench
