#pragma once
// Shared helpers for the benchmark harness.
//
// Every bench binary regenerates one table or figure of the paper (see
// DESIGN.md §4). Sizes are scaled down from the paper's cluster runs via
// --scale so a laptop-class machine finishes in seconds; pass --scale 4 or
// more to push toward the asymptotic regime on bigger hardware.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "matrix/generate.hpp"
#include "strassen/options.hpp"

namespace atalib::bench {

/// Standard flags shared by every bench binary.
inline void add_common_flags(CliFlags& flags) {
  flags.add_double("scale", 1.0, "size multiplier vs the built-in laptop defaults");
  flags.add_int("reps", 2, "timing repetitions (min is reported)");
  flags.add_int("base-elements", 0, "AtA/Strassen base-case threshold (0 = probe cache)");
  flags.add_string("json", "", "also write results as a JSON array to this path (\"\" = off)");
}

/// Machine-readable bench output: a JSON array of flat objects, one per
/// measured configuration, written next to the human table so the
/// BENCH_*.json perf trajectory can diff runs across commits. Values are
/// either numbers (num; non-finite doubles become null) or strings (str,
/// escaped); keys must be plain identifiers.
class JsonWriter {
 public:
  /// Empty path disables the writer; add()/flush() become no-ops.
  explicit JsonWriter(std::string path) : path_(std::move(path)) {}

  bool enabled() const { return !path_.empty(); }

  class Record {
   public:
    Record& num(const char* key, double v) {
      if (!std::isfinite(v)) return raw(key, "null");  // JSON has no nan/inf
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      return raw(key, buf);
    }
    Record& num(const char* key, std::uint64_t v) { return raw(key, std::to_string(v)); }
    Record& num(const char* key, int v) { return raw(key, std::to_string(v)); }
    Record& str(const char* key, const std::string& v) {
      std::string quoted = "\"";
      for (char c : v) {
        if (c == '"' || c == '\\') {
          quoted += '\\';
          quoted += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          quoted += buf;
        } else {
          quoted += c;
        }
      }
      quoted += '"';
      return raw(key, quoted);
    }

   private:
    friend class JsonWriter;
    Record& raw(const char* key, const std::string& rendered) {
      if (!first_) os_ << ", ";
      first_ = false;
      os_ << "\"" << key << "\": " << rendered;
      return *this;
    }
    std::ostringstream os_;
    bool first_ = true;
  };

  /// Append one object. No-op when disabled.
  void add(const Record& r) {
    if (!enabled()) return;
    if (count_++ > 0) rows_ << ",\n";
    rows_ << "  {" << r.os_.str() << "}";
  }

  /// Write the array and report the path on stdout. Returns false (with a
  /// stderr message) if the file could not be written, so callers can
  /// propagate a nonzero exit; no-op true when disabled.
  bool flush() const {
    if (!enabled()) return true;
    std::ofstream out(path_);
    out << "[\n" << rows_.str() << "\n]\n";
    out.flush();
    if (!out) {
      std::fprintf(stderr, "error: could not write JSON output to %s\n", path_.c_str());
      return false;
    }
    std::printf("wrote %d JSON records to %s\n", count_, path_.c_str());
    return true;
  }

 private:
  std::string path_;
  std::ostringstream rows_;
  int count_ = 0;
};

inline RecurseOptions recurse_from_flags(const CliFlags& flags) {
  RecurseOptions opts;
  opts.base_case_elements = flags.get_int("base-elements");
  return opts;
}

/// Scale a base size, keeping it even-ish for prettier splits.
inline index_t scaled(index_t base, double scale) {
  auto v = static_cast<index_t>(static_cast<double>(base) * scale);
  return std::max<index_t>(v, 16);
}

/// A labeled experiment header, mirrored in EXPERIMENTS.md.
inline void print_banner(const std::string& what, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", what.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

}  // namespace atalib::bench
