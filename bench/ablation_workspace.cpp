// Ablation — §3.3's pre-allocation claim: "Strassen's algorithm benefits
// from the described strategy for memory allocation."
//
// Compares FastStrassen (one arena, zero allocations inside the recursion)
// against the per-level-allocating variant, and reports the arena's actual
// high-water mark against the analytic workspace bound and the paper's
// 3/2 n^2 space model.

#include <cstdio>

#include "bench_common.hpp"
#include "common/arena.hpp"
#include "metrics/models.hpp"
#include "strassen/naive_strassen.hpp"
#include "strassen/strassen.hpp"
#include "strassen/workspace.hpp"

int main(int argc, char** argv) {
  using namespace atalib;

  CliFlags flags;
  bench::add_common_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  const double scale = flags.get_double("scale");
  const int reps = static_cast<int>(flags.get_int("reps"));
  RecurseOptions recurse = bench::recurse_from_flags(flags);
  // Force deep recursion so allocation traffic is visible even at scaled
  // sizes (with cache-sized base cases only 2-3 levels recurse).
  if (recurse.base_case_elements == 0) recurse.base_case_elements = 64 * 64;

  bench::print_banner("Strassen workspace strategy: arena vs per-level allocation", "§3.3");

  Table table("Arena pre-allocation ablation (C += A^T B, double)");
  table.set_header({"n", "arena (s)", "malloc (s)", "malloc/arena", "ws high-water", "ws bound",
                    "bound/n^2"});

  for (index_t base : {256, 384, 512, 768, 1024}) {
    const index_t n = bench::scaled(base, scale);
    const auto a = random_uniform<double>(n, n, 800 + n);
    const auto b = random_uniform<double>(n, n, 900 + n);
    auto c = Matrix<double>::zeros(n, n);

    const index_t bound = strassen_workspace_bound(n, n, n, recurse, sizeof(double));
    Arena<double> arena(static_cast<std::size_t>(bound));
    const double t_arena = min_time_of(
        [&] {
          fill_view(c.view(), 0.0);
          strassen_tn(1.0, a.const_view(), b.const_view(), c.view(), arena, recurse);
        },
        reps);
    const std::size_t high_water = arena.high_water();

    const double t_malloc = min_time_of(
        [&] {
          fill_view(c.view(), 0.0);
          naive_strassen_tn(1.0, a.const_view(), b.const_view(), c.view(), recurse);
        },
        reps);

    table.add_row({std::to_string(n), Table::num(t_arena), Table::num(t_malloc),
                   Table::num(t_malloc / t_arena, 3), std::to_string(high_water),
                   std::to_string(bound),
                   Table::num(static_cast<double>(bound) / (static_cast<double>(n) * n), 3)});
  }
  table.print();
  std::printf("shape check: malloc/arena >= 1 (pre-allocation never loses), and the\n"
              "workspace bound stays near n^2 (paper model: 3 buffers of n^2/2 = 3/2 n^2\n"
              "counting all three of M, P, Q at their top-level size).\n");
  return 0;
}
