// Microbenchmarks for the leaf BLAS kernels (bench_common harness).
//
// Everything in the reproduction — AtA, Strassen, both parallel algorithms
// and all baselines — bottoms out in gemm/syrk, so their GFLOP/s set the
// absolute height of every figure. This bench times each kernel under every
// dispatch path the machine offers (the cpuid-selected SIMD tier and the
// portable scalar tile), reports the SIMD-vs-scalar speedup, and writes the
// per-path records to --json (BENCH_blas.json), the repo's leaf-kernel perf
// baseline.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "blas/gemm.hpp"
#include "blas/kernels/registry.hpp"
#include "blas/syrk.hpp"
#include "matrix/matrix.hpp"

namespace {

using namespace atalib;
using blas::kernels::Isa;

struct Measurement {
  std::string bench;
  std::string dtype;
  index_t n = 0;
  double seconds = 0;
  double gflops = 0;
  std::string dispatch;
};

template <typename T>
Measurement time_gemm_tn(const char* name, index_t n, int reps, const std::string& dispatch) {
  const auto a = random_uniform<T>(n, n, 1);
  const auto b = random_uniform<T>(n, n, 2);
  auto c = Matrix<T>::zeros(n, n);
  const double secs =
      min_time_of([&] { blas::gemm_tn(T(1), a.const_view(), b.const_view(), c.view()); }, reps);
  const double flops = 2.0 * static_cast<double>(n) * n * n;
  return {name, sizeof(T) == 4 ? "f32" : "f64", n, secs, flops / secs / 1e9, dispatch};
}

template <typename T>
Measurement time_gemm_nn(const char* name, index_t n, int reps, const std::string& dispatch) {
  const auto a = random_uniform<T>(n, n, 3);
  const auto b = random_uniform<T>(n, n, 4);
  auto c = Matrix<T>::zeros(n, n);
  const double secs =
      min_time_of([&] { blas::gemm_nn(T(1), a.const_view(), b.const_view(), c.view()); }, reps);
  const double flops = 2.0 * static_cast<double>(n) * n * n;
  return {name, sizeof(T) == 4 ? "f32" : "f64", n, secs, flops / secs / 1e9, dispatch};
}

template <typename T>
Measurement time_syrk(const char* name, index_t n, int reps, const std::string& dispatch) {
  const auto a = random_uniform<T>(n, n, 5);
  auto c = Matrix<T>::zeros(n, n);
  const double secs =
      min_time_of([&] { blas::syrk_ln(T(1), a.const_view(), c.view()); }, reps);
  // n^2 * m useful flops on the lower triangle (the paper's syrk count).
  const double flops = static_cast<double>(n) * n * n;
  return {name, sizeof(T) == 4 ? "f32" : "f64", n, secs, flops / secs / 1e9, dispatch};
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  atalib::bench::add_common_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  const double scale = flags.get_double("scale");
  const int reps = std::max(1, static_cast<int>(flags.get_int("reps")));
  atalib::bench::JsonWriter json(flags.get_string("json"));

  atalib::bench::print_banner(
      "Leaf BLAS microkernels: GFLOP/s per dispatch path",
      "kernel calibration for Figs. 3-6 (absolute heights, not a paper figure)");

  // The automatic (cpuid-best) path first, then the forced-scalar path so
  // the JSON carries the SIMD speedup on every machine.
  std::vector<Isa> paths{blas::kernels::active_config<double>().isa};
  if (paths.front() != Isa::kScalar) paths.push_back(Isa::kScalar);

  const std::vector<index_t> sizes{atalib::bench::scaled(128, scale),
                                   atalib::bench::scaled(256, scale),
                                   atalib::bench::scaled(512, scale)};

  Table table("leaf kernels, min of " + std::to_string(reps) + " reps");
  table.set_header({"bench", "dtype", "n", "ms", "GFLOP/s", "dispatch"});
  std::map<std::string, double> gemm_tn_gflops;  // dispatch -> largest-size GFLOP/s

  std::vector<Measurement> results;
  for (const Isa isa : paths) {
    blas::kernels::set_forced_isa(isa);
    const std::string dispatch = blas::kernels::isa_name(isa);
    for (const index_t n : sizes) {
      const Measurement tn = time_gemm_tn<double>("gemm_tn", n, reps, dispatch);
      if (n == sizes.back()) gemm_tn_gflops[dispatch] = tn.gflops;
      results.push_back(tn);
      results.push_back(time_syrk<double>("syrk_ln", n, reps, dispatch));
    }
    results.push_back(time_gemm_nn<double>("gemm_nn", sizes[1], reps, dispatch));
    results.push_back(time_gemm_tn<float>("gemm_tn", sizes[1], reps, dispatch));
    results.push_back(time_syrk<float>("syrk_ln", sizes[1], reps, dispatch));
  }
  blas::kernels::set_forced_isa(std::nullopt);

  for (const Measurement& r : results) {
    table.add_row({r.bench, r.dtype, std::to_string(r.n), Table::num(r.seconds * 1e3),
                   Table::num(r.gflops, 2), r.dispatch});
    atalib::bench::JsonWriter::Record rec;
    rec.str("bench", r.bench)
        .str("dtype", r.dtype)
        .num("n", static_cast<std::uint64_t>(r.n))
        .num("seconds", r.seconds)
        .num("gflops", r.gflops)
        .str("dispatch", r.dispatch);
    json.add(rec);
  }
  table.print();

  const std::string active = blas::kernels::isa_name(paths.front());
  if (paths.size() > 1) {
    std::printf("\ngemm_tn f64 n=%ld speedup (%s vs scalar): %.2fx\n",
                static_cast<long>(sizes.back()), active.c_str(),
                gemm_tn_gflops[active] / gemm_tn_gflops["scalar"]);
  } else {
    std::printf("\nonly the scalar path is available on this machine\n");
  }

  return json.flush() ? 0 : 1;
}
