// Microbenchmarks for the leaf BLAS kernels (google-benchmark).
//
// Everything in the reproduction — AtA, Strassen, both parallel algorithms
// and all baselines — bottoms out in these kernels, so their quality sets
// the absolute GFLOPs of every figure. Run this to calibrate expectations
// before reading the figure benches.

#include <benchmark/benchmark.h>

#include "blas/gemm.hpp"
#include "blas/level1.hpp"
#include "blas/syrk.hpp"
#include "matrix/generate.hpp"

namespace {

using namespace atalib;

void BM_GemmTn(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto a = random_uniform<double>(n, n, 1);
  const auto b = random_uniform<double>(n, n, 2);
  auto c = Matrix<double>::zeros(n, n);
  for (auto _ : state) {
    blas::gemm_tn(1.0, a.const_view(), b.const_view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmTn)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmNn(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto a = random_uniform<double>(n, n, 3);
  const auto b = random_uniform<double>(n, n, 4);
  auto c = Matrix<double>::zeros(n, n);
  for (auto _ : state) {
    blas::gemm_nn(1.0, a.const_view(), b.const_view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNn)->Arg(256);

void BM_SyrkLn(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto a = random_uniform<double>(n, n, 5);
  auto c = Matrix<double>::zeros(n, n);
  for (auto _ : state) {
    blas::syrk_ln(1.0, a.const_view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_SyrkLn)->Arg(128)->Arg(256)->Arg(512);

void BM_SyrkFloat(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto a = random_uniform<float>(n, n, 6);
  auto c = Matrix<float>::zeros(n, n);
  for (auto _ : state) {
    blas::syrk_ln(1.0f, a.const_view(), c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_SyrkFloat)->Arg(256);

void BM_BlockAdd(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto a = random_uniform<double>(n, n, 7);
  const auto b = random_uniform<double>(n - 1, n - 1, 8);  // virtual padding path
  auto dst = Matrix<double>::zeros(n, n);
  for (auto _ : state) {
    blas::block_add(a.const_view(), b.const_view(), dst.view());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_BlockAdd)->Arg(512)->Arg(1024);

void BM_Axpy(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto x = random_uniform<double>(1, n, 9);
  auto y = Matrix<double>::zeros(1, n);
  for (auto _ : state) {
    blas::axpy(n, 1.0001, x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Axpy)->Arg(1 << 16);

}  // namespace
