// Runtime A/B: warm persistent pool vs per-call fork-join on repeated
// AtA-S calls.
//
// The serving workload the ROADMAP targets is "the same Gram matrix shape,
// over and over": per-call thread creation and per-task workspace mallocs
// are pure overhead there. This bench runs the identical AtA-S schedule
// through both Executor engines and reports per-call latency plus the
// pool's workspace-growth counters — after the warm-up call the pool must
// perform zero slab allocations (the "no malloc on the steady-state hot
// path" acceptance check prints at the bottom).

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "matrix/matrix.hpp"
#include "parallel/ata_shared.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace atalib;

std::size_t pool_grows(runtime::ThreadPool& pool) {
  std::size_t total = 0;
  for (int s = 0; s < pool.concurrency(); ++s) total += pool.workspace(s).grow_count();
  return total;
}

struct Result {
  double mean_ms = 0;
  double min_ms = 0;
};

template <typename Fn>
Result time_calls(Fn&& call, int calls) {
  Result r;
  double total = 0, best = 1e300;
  for (int i = 0; i < calls; ++i) {
    Timer t;
    call();
    const double s = t.seconds();
    total += s;
    best = std::min(best, s);
  }
  r.mean_ms = total / calls * 1e3;
  r.min_ms = best * 1e3;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  bench::add_common_flags(flags);
  flags.add_int("threads", 4, "AtA-S P (task-tree width)");
  flags.add_int("oversub", 4, "task over-decomposition factor (P' = oversub * P)");
  flags.add_int("calls", 20, "repeated AtA-S calls per engine");
  flags.add_bool("strict-latency", false,
                 "also fail (exit 1) when the warm pool loses the latency A/B; off by "
                 "default because wall-clock comparisons flake on shared/1-core hosts");
  if (!flags.parse(argc, argv)) return 1;
  const double scale = flags.get_double("scale");
  const int threads = static_cast<int>(flags.get_int("threads"));
  const int oversub = static_cast<int>(flags.get_int("oversub"));
  const int calls = std::max(1, static_cast<int>(flags.get_int("calls")));

  bench::print_banner("Persistent work-stealing pool vs fork-join on repeated AtA-S",
                      "runtime A/B (post-paper engineering; not a paper figure)");

  const index_t m = bench::scaled(640, scale);
  const index_t n = bench::scaled(512, scale);
  const auto a = random_uniform<double>(m, n, 321);
  auto c = Matrix<double>::zeros(n, n);

  SharedOptions opts;
  opts.threads = threads;
  opts.oversub = oversub;
  opts.recurse = bench::recurse_from_flags(flags);

  runtime::ThreadPool pool(threads);
  runtime::ForkJoinExecutor forkjoin(threads);

  auto call_with = [&](runtime::Executor& exec) {
    opts.executor = &exec;
    fill_view(c.view(), 0.0);
    ata_shared(1.0, a.const_view(), c.view(), opts);
  };

  // Warm both engines once (first pool call grows the worker arenas).
  call_with(pool);
  call_with(forkjoin);
  const std::size_t grows_warm = pool_grows(pool);

  const Result rp = time_calls([&] { call_with(pool); }, calls);
  const std::size_t grows_steady = pool_grows(pool) - grows_warm;
  const Result rf = time_calls([&] { call_with(forkjoin); }, calls);

  const metrics::NumaPoolStats numa = pool.numa_stats();

  Table table("Repeated AtA-S, " + std::to_string(m) + "x" + std::to_string(n) + ", P=" +
              std::to_string(threads) + ", P'=" + std::to_string(threads * oversub) + ", " +
              std::to_string(calls) + " calls");
  table.set_header({"engine", "mean ms/call", "min ms/call", "steals (local/remote)",
                    "arena grows (steady)"});
  table.add_row({pool.name(), Table::num(rp.mean_ms, 3), Table::num(rp.min_ms, 3),
                 std::to_string(numa.local_steals) + "/" + std::to_string(numa.remote_steals),
                 std::to_string(grows_steady)});
  table.add_row({forkjoin.name(), Table::num(rf.mean_ms, 3), Table::num(rf.min_ms, 3), "-",
                 "-"});
  table.print();
  std::printf("pool topology: %s\n", numa.to_string().c_str());

  bench::JsonWriter json(flags.get_string("json"));
  for (const auto& [engine, res] : {std::pair<const char*, const Result*>{"pool", &rp},
                                    {"forkjoin", &rf}}) {
    bench::JsonWriter::Record rec;
    rec.str("engine", engine)
        .num("m", static_cast<std::uint64_t>(m))
        .num("n", static_cast<std::uint64_t>(n))
        .num("threads", threads)
        .num("oversub", oversub)
        .num("calls", calls)
        .num("mean_ms", res->mean_ms)
        .num("min_ms", res->min_ms)
        .num("calls_per_s", res->mean_ms > 0 ? 1e3 / res->mean_ms : 0.0);
    if (std::string(engine) == "pool") {
      rec.num("numa_nodes", numa.nodes)
          .num("fake_topology", numa.fake_topology ? 1 : 0)
          .num("local_steals", numa.local_steals)
          .num("remote_steals", numa.remote_steals)
          .num("steal_locality", numa.steal_locality())
          .num("scheduled_imbalance", numa.scheduled_imbalance())
          .num("grows_steady", static_cast<std::uint64_t>(grows_steady));
    }
    json.add(rec);
  }

  const bool latency_ok = rp.min_ms <= rf.min_ms * 1.05;  // 5% noise floor
  std::printf("check: steady-state arena grows = %zu (want 0: no workspace malloc when warm)\n",
              grows_steady);
  std::printf("check: warm-pool min latency %s fork-join (%.3f ms vs %.3f ms)\n",
              latency_ok ? "<=" : "EXCEEDS", rp.min_ms, rf.min_ms);
  if (grows_steady != 0) return 1;
  if (flags.get_bool("strict-latency") && !latency_ok) return 1;
  return json.flush() ? 0 : 1;
}
