// Figure 6 — distributed comparison: AtA-D vs pdsyrk-like vs CAPS-like vs
// COSMA-like over process count P on three shapes (two square, one tall):
// elapsed time (left column), effective GFLOPs (center), % of peak (right).
//
// Paper setup: 10K^2, 20K^2, 60Kx5K on up to 64 single-core MPI ranks.
// Here ranks are threads of the mpisim runtime sharing one core, so the
// headline column per method is the critical path: the busiest rank's
// measured compute time, which is what a real cluster's wall clock tracks
// once communication is overlapped/absorbed (the paper's own observation
// for growing n). Traffic columns carry the communication story exactly;
// %-of-peak uses the measured single-core gemm peak.
// CAPS, like the original, runs only on the square shapes.

#include <cstdio>

#include "bench_common.hpp"
#include "dist/ata_dist.hpp"
#include "dist/caps_like.hpp"
#include "dist/cosma_like.hpp"
#include "dist/summa_syrk.hpp"
#include "metrics/flops.hpp"

namespace {

using namespace atalib;

void run_shape(const char* label, index_t m, index_t n, bool square, double peak,
               const RecurseOptions& recurse, bench::JsonWriter& json) {
  const auto a = random_uniform<double>(m, n, 600);

  Table table(std::string("Fig. 6 ") + label +
              ": time (s) / effective GFLOPs / %peak per method");
  table.set_header({"P", "AtA-D", "pdsyrk~", "COSMA~(AtB)", square ? "CAPS~(AB)" : "CAPS~(n/a)",
                    "AtA-D EG", "AtA-D %pk", "AtA-D words"});

  auto record = [&](const char* method, int p, const dist::DistResult<double>& r) {
    bench::JsonWriter::Record rec;
    rec.str("bench", "fig6_distributed")
        .str("shape", label)
        .str("method", method)
        .num("m", static_cast<std::uint64_t>(m))
        .num("n", static_cast<std::uint64_t>(n))
        .num("procs", p)
        .num("crit_seconds", r.critical_path_seconds())
        .num("wall_seconds", r.seconds)
        .num("messages", r.traffic.total_messages())
        .num("words", r.traffic.total_words())
        .num("root_messages", r.traffic.root_messages())
        .num("root_words", r.traffic.root_words());
    json.add(rec);
  };

  for (int p : {1, 2, 4, 8, 16, 32, 64}) {
    dist::DistOptions opts;
    opts.procs = p;
    opts.recurse = recurse;
    const auto r_ata = dist::ata_dist(1.0, a, opts);
    const auto r_summa = dist::summa_syrk(1.0, a, p);
    const auto r_cosma = dist::cosma_like_gemm(1.0, a, a, p);
    record("ata_dist", p, r_ata);
    record("summa_syrk", p, r_summa);
    record("cosma_like", p, r_cosma);

    std::string caps_cell = "-";
    if (square) {
      const auto r_caps = dist::caps_like_mm(a, a, p);
      record("caps_like", p, r_caps);
      caps_cell = Table::num(r_caps.critical_path_seconds(), 4);
    }

    const double crit = r_ata.critical_path_seconds();
    const double eg = metrics::effective_gflops(1.0, m, n, n, crit);
    table.add_row({std::to_string(p), Table::num(crit, 4),
                   Table::num(r_summa.critical_path_seconds(), 4),
                   Table::num(r_cosma.critical_path_seconds(), 4), caps_cell, Table::num(eg, 2),
                   Table::num(metrics::percent_of_peak(eg, peak, p), 1),
                   std::to_string(r_ata.traffic.total_words())});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  bench::add_common_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  const double scale = flags.get_double("scale");
  const RecurseOptions recurse = bench::recurse_from_flags(flags);

  bench::print_banner("Distributed AtA-D vs pdsyrk-like, COSMA-like, CAPS-like",
                      "Figure 6 (a)-(i)");
  const double peak = metrics::measure_peak_gflops();
  std::printf("measured single-core gemm peak: %.2f GFLOPs (TPP denominator)\n", peak);

  bench::JsonWriter json(flags.get_string("json"));

  // Paper shapes 10K^2, 20K^2, 60Kx5K scaled ~1/16 by default.
  run_shape("(a-c) square", bench::scaled(640, scale), bench::scaled(640, scale), true, peak,
            recurse, json);
  run_shape("(d-f) square larger", bench::scaled(896, scale), bench::scaled(896, scale), true,
            peak, recurse, json);
  run_shape("(g-i) tall", bench::scaled(1920, scale), bench::scaled(160, scale), false, peak,
            recurse, json);
  const bool json_ok = json.flush();

  std::printf("shape check: AtA-D should track or beat the baselines on square shapes with a\n"
              "stepwise (non-linear) improvement in P (eq. (5) plateaus), and lose ground on\n"
              "the tall shape (paper §5.5: short rows hurt vectorization and BLAS-1 sums).\n");
  return json_ok ? 0 : 1;
}
