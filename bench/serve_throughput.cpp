// Serving throughput through the cached-plan front-end (api::Server).
//
// The ROADMAP's serving workload is "the same Gram matrix shapes, over and
// over, from many clients". This bench measures what the plan/execute
// split buys there: cold requests pay schedule building + workspace growth
// once per shape; warm requests are a plan-cache hit plus a queued pool
// batch — zero replanning, zero slab allocation. Three phases:
//   cold   — first request per shape on a fresh Server (plan build in path)
//   warm   — single client, closed loop over cached shapes
//   scale  — C client threads, closed loop each, C in {1, 2, 4, ...}
// Each phase reports requests/sec and per-request latency; --json appends
// BENCH_serve.json records for the perf trajectory.
//
// Two further phases exercise PR 8's batched small-Gram serving
// (DESIGN.md §8):
//   batched     — submit_batch over a sweep of small shapes (m = 8n),
//                 f32 and f64, batch sizes 1/16/256; the warm batched
//                 stream must show ZERO schedule builds, ZERO workspace
//                 slab allocations, ZERO thread-local pack allocations and
//                 ZERO plan-cache misses (hard-checked; nonzero exit).
//   tall_skinny — one m >> n shape served by the forced panel-SYRK plan
//                 vs the forced recursive plan, plus what the auto planner
//                 picked for it.
//
// A final phase exercises PR 10's overload control (DESIGN.md §10):
//   overload — clients = 4x the pool slots against a bounded-admission
//              server (kReject and kShedOldest), mixed priorities, every
//              third request under a tight deadline; reports reject/shed/
//              deadline counts and the p99 of each latency phase from
//              Server::stats(). The warm stream under saturation must
//              still be setup-free (hard-checked; nonzero exit).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/batch.hpp"
#include "api/server.hpp"
#include "ata/ata.hpp"
#include "bench_common.hpp"
#include "blas/kernels/pack.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "matrix/matrix.hpp"
#include "sched/dist_tree.hpp"
#include "sched/shared_schedule.hpp"

namespace {

using namespace atalib;

struct Shape {
  index_t m, n;
};

std::uint64_t total_schedule_builds() {
  return sched::shared_schedule_builds() + sched::dist_tree_builds();
}

std::size_t pool_slab_grows(runtime::ThreadPool& pool) {
  std::size_t total = 0;
  for (int s = 0; s < pool.concurrency(); ++s) total += pool.workspace(s).grow_count();
  return total;
}

/// One batched-serving configuration: stream `nreq` requests of one shape
/// through submit_batch in slices of `bsize`. Inputs AND outputs cycle
/// over the whole stream (not per batch), so every batch size pays the
/// same output-matrix traffic pattern — a serving stream writes distinct
/// client outputs whether or not requests were fused. Returns seconds.
template <typename T>
double run_batched_stream(api::Server& server, const std::vector<Matrix<T>>& inputs,
                          std::vector<Matrix<T>>& outputs, int nreq, int bsize) {
  std::vector<api::AtaRequest<T>> batch;
  batch.reserve(static_cast<std::size_t>(bsize));
  Timer t;
  int done = 0;
  while (done < nreq) {
    const int take = std::min(bsize, nreq - done);
    batch.clear();
    for (int i = 0; i < take; ++i) {
      batch.push_back({T(1),
                       inputs[static_cast<std::size_t>((done + i) % inputs.size())].const_view(),
                       outputs[static_cast<std::size_t>((done + i) % outputs.size())].view()});
    }
    for (auto& f : server.submit_batch<T>(batch)) f.get();
    done += take;
  }
  return t.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  bench::add_common_flags(flags);
  flags.add_int("threads", 4, "server pool slots");
  flags.add_int("requests", 32, "warm requests per client per shape sweep");
  flags.add_int("max-clients", 4, "concurrent-client scaling sweeps 1,2,..,max");
  flags.add_int("batch-requests", 4096, "requests per batched small-Gram configuration");
  if (!flags.parse(argc, argv)) return 1;
  const double scale = flags.get_double("scale");
  const int threads = std::max(1, static_cast<int>(flags.get_int("threads")));
  const int requests = std::max(1, static_cast<int>(flags.get_int("requests")));
  const int max_clients = std::max(1, static_cast<int>(flags.get_int("max-clients")));
  const int batch_requests = std::max(1, static_cast<int>(flags.get_int("batch-requests")));
  bench::JsonWriter json(flags.get_string("json"));

  bench::print_banner("Cached-plan serving throughput (api::Server)",
                      "serving front-end (post-paper engineering; not a paper figure)");

  const Shape shapes[] = {{bench::scaled(512, scale), bench::scaled(384, scale)},
                          {bench::scaled(384, scale), bench::scaled(320, scale)}};
  constexpr int kShapes = static_cast<int>(sizeof(shapes) / sizeof(shapes[0]));

  SharedOptions sopts;
  sopts.threads = threads;
  sopts.oversub = 2;
  sopts.recurse = bench::recurse_from_flags(flags);

  api::Server server(api::Server::Options{threads, 16});

  // Correctness spot check once, against the serial recursion. Integer
  // inputs: they make every summation order produce identical floats, so
  // the bitwise comparison checks data placement, not FP association —
  // the served schedule decomposes the product differently than the
  // serial recursion, which reassociates sums (harmlessly) on real data.
  {
    const auto a = random_integer<double>(shapes[0].m, shapes[0].n, 4, 11);
    auto c_ref = Matrix<double>::zeros(shapes[0].n, shapes[0].n);
    ata(1.0, a.const_view(), c_ref.view(), sopts.recurse);
    auto c = Matrix<double>::zeros(shapes[0].n, shapes[0].n);
    api::Server check_server(api::Server::Options{threads, 16});
    check_server.submit(1.0, a.const_view(), c.view(), sopts).get();
    const double diff = max_abs_diff_lower<double>(c.const_view(), c_ref.const_view());
    if (diff != 0.0) {
      std::fprintf(stderr, "error: served result differs from serial execution (%.3e)\n",
                   diff);
      return 1;
    }
  }

  std::vector<Matrix<double>> inputs;
  for (const auto& shape : shapes) {
    inputs.push_back(random_uniform<double>(shape.m, shape.n, 21));
  }

  Table table("Serving throughput, pool=" + std::to_string(threads) + " slots, " +
              std::to_string(kShapes) + " shapes, " + std::to_string(requests) +
              " reqs/client");
  table.set_header({"phase", "clients", "requests", "req/s", "mean ms/req", "cache hits",
                    "cache misses"});

  auto add_row = [&](const std::string& phase, int clients, int nreq, double seconds) {
    const auto stats = server.plan_stats();
    const double rps = static_cast<double>(nreq) / seconds;
    const double mean_ms = seconds / nreq * 1e3;
    table.add_row({phase, std::to_string(clients), std::to_string(nreq),
                   Table::num(rps, 1), Table::num(mean_ms, 3),
                   std::to_string(stats.hits), std::to_string(stats.misses)});
    bench::JsonWriter::Record rec;
    rec.str("phase", phase)
        .num("clients", clients)
        .num("requests", nreq)
        .num("req_per_sec", rps)
        .num("mean_ms", mean_ms)
        .num("cache_hits", stats.hits)
        .num("cache_misses", stats.misses)
        .num("pool_threads", threads);
    json.add(rec);
  };

  // --- Phase 1: cold — the first request per shape builds its plan.
  {
    Timer t;
    for (int s = 0; s < kShapes; ++s) {
      auto c = Matrix<double>::zeros(shapes[s].n, shapes[s].n);
      server.submit(1.0, inputs[static_cast<std::size_t>(s)].const_view(), c.view(), sopts)
          .get();
    }
    add_row("cold", 1, kShapes, t.seconds());
  }

  // Every gated phase re-measures its timed stream kTimedReps times and
  // reports the best pass. Single samples of these streams swing 30-40%
  // with machine scheduling state, which would make the 20% perf gate
  // (tools/perf_gate.py) a coin flip; the best of three passes is a far
  // tighter estimate of what the code can do on this machine.
  constexpr int kTimedReps = 3;

  // --- Phase 2: warm single client — every request is a plan-cache hit.
  {
    auto c0 = Matrix<double>::zeros(shapes[0].n, shapes[0].n);
    auto c1 = Matrix<double>::zeros(shapes[1].n, shapes[1].n);
    MatrixView<double> outs[] = {c0.view(), c1.view()};
    double best = 0.0;
    for (int rep = 0; rep < kTimedReps; ++rep) {
      Timer t;
      for (int r = 0; r < requests; ++r) {
        const int s = r % kShapes;
        server
            .submit(1.0, inputs[static_cast<std::size_t>(s)].const_view(),
                    outs[static_cast<std::size_t>(s)], sopts)
            .get();
      }
      const double secs = t.seconds();
      if (rep == 0 || secs < best) best = secs;
    }
    add_row("warm", 1, requests, best);
  }

  // --- Phase 3: concurrent-client scaling, closed loop per client.
  for (int clients = 1; clients <= max_clients; clients *= 2) {
    double best = 0.0;
    for (int rep = 0; rep < kTimedReps; ++rep) {
      std::vector<std::thread> workers;
      workers.reserve(static_cast<std::size_t>(clients));
      Timer t;
      for (int cl = 0; cl < clients; ++cl) {
        workers.emplace_back([&, cl] {
          // Per-client outputs: in-flight requests must not share C.
          std::vector<Matrix<double>> outs;
          for (const auto& shape : shapes) {
            outs.push_back(Matrix<double>::zeros(shape.n, shape.n));
          }
          for (int r = 0; r < requests; ++r) {
            const std::size_t s = static_cast<std::size_t>((r + cl) % kShapes);
            server.submit(1.0, inputs[s].const_view(), outs[s].view(), sopts).get();
          }
        });
      }
      for (auto& w : workers) w.join();
      const double secs = t.seconds();
      if (rep == 0 || secs < best) best = secs;
    }
    add_row("scale", clients, clients * requests, best);
  }

  table.print();

  // --- Phase 4: batched small-Gram serving (fresh server: its cache and
  // counters are accounted separately from the per-request phases).
  int batched_failures = 0;
  {
    api::Server bserver(api::Server::Options{threads, 64});
    const index_t ns[] = {bench::scaled(32, scale), bench::scaled(64, scale),
                          bench::scaled(128, scale), bench::scaled(256, scale)};
    const int batch_sizes[] = {1, 16, 256};
    constexpr int kInputs = 16;
    constexpr int kMaxBatch = 256;

    // Two request regimes per n, the two ends of small-Gram traffic:
    //   update — m = 4 rows (a streaming low-rank Gram/covariance update,
    //            the BFGS-style accumulation shape): the request is cheap
    //            enough that per-request round-trip overhead dominates,
    //            which is exactly what batching amortizes.
    //   gram   — m = 8n (a full small Gram product): compute-bound, where
    //            batching's win is pool utilization and the f32 rows show
    //            the SIMD-width speedup over f64.
    Table btable("Batched small-Gram serving (submit_batch), pool=" +
                 std::to_string(threads) + " slots");
    btable.set_header(
        {"regime", "dtype", "m", "n", "batch", "requests", "req/s", "mean us/req"});

    auto run_config = [&](auto tag, const char* dtype_name, const char* regime, index_t m,
                          index_t n) {
      using T = decltype(tag);
      {
        // Requests per configuration, scaled down for the bigger shapes so
        // the sweep's wall-clock stays balanced (work per request grows
        // with m * n^2); the JSON records the actual count.
        const index_t n0 = ns[0];
        const index_t shrink =
            std::max<index_t>((m / 4) * (n / n0) * (n / n0) / 64, index_t{1});
        const int nreq = std::max(
            kMaxBatch, static_cast<int>(static_cast<index_t>(batch_requests) / shrink));
        std::vector<Matrix<T>> inputs;
        for (int i = 0; i < kInputs; ++i) {
          inputs.push_back(random_uniform<T>(m, n, 100 + i));
        }
        std::vector<Matrix<T>> outputs;
        for (int i = 0; i < kMaxBatch; ++i) {
          outputs.push_back(Matrix<T>::zeros(n, n));
        }
        // Cold pass per shape: plan build + pool warm-up out of the timed
        // stream (also touches every output page).
        run_batched_stream<T>(bserver, inputs, outputs, kMaxBatch, kMaxBatch);

        // Warm batched streams: everything below must be setup-free.
        const std::uint64_t builds0 = total_schedule_builds();
        const std::size_t grows0 = pool_slab_grows(bserver.executor());
        const std::uint64_t packs0 = blas::kernels::thread_pack_allocs().load();
        const std::uint64_t misses0 = bserver.plan_stats().misses;
        for (const int bsize : batch_sizes) {
          double secs = 0.0;
          for (int rep = 0; rep < kTimedReps; ++rep) {
            const double s = run_batched_stream<T>(bserver, inputs, outputs, nreq, bsize);
            if (rep == 0 || s < secs) secs = s;
          }
          const double rps = nreq / secs;
          btable.add_row({regime, dtype_name, std::to_string(m), std::to_string(n),
                          std::to_string(bsize), std::to_string(nreq), Table::num(rps, 1),
                          Table::num(secs / nreq * 1e6, 2)});
          bench::JsonWriter::Record rec;
          rec.str("phase", "batched")
              .str("regime", regime)
              .str("dtype", dtype_name)
              .num("m", static_cast<std::uint64_t>(m))
              .num("n", static_cast<std::uint64_t>(n))
              .num("batch", bsize)
              .num("requests", nreq)
              .num("req_per_sec", rps)
              .num("mean_us", secs / nreq * 1e6)
              .num("pool_threads", threads);
          json.add(rec);
        }
        const std::uint64_t d_builds = total_schedule_builds() - builds0;
        const std::uint64_t d_grows = pool_slab_grows(bserver.executor()) - grows0;
        const std::uint64_t d_packs = blas::kernels::thread_pack_allocs().load() - packs0;
        const std::uint64_t d_misses = bserver.plan_stats().misses - misses0;
        bench::JsonWriter::Record rec;
        rec.str("phase", "batched_warm_counters")
            .str("regime", regime)
            .str("dtype", dtype_name)
            .num("n", static_cast<std::uint64_t>(n))
            .num("schedule_builds", d_builds)
            .num("workspace_grows", d_grows)
            .num("thread_pack_allocs", d_packs)
            .num("plan_misses", d_misses);
        json.add(rec);
        if (d_builds != 0 || d_grows != 0 || d_packs != 0 || d_misses != 0) {
          std::fprintf(stderr,
                       "error: warm batched stream (%s %s n=%lld) was not setup-free: "
                       "builds=%llu grows=%llu pack_allocs=%llu misses=%llu\n",
                       regime, dtype_name, static_cast<long long>(n),
                       static_cast<unsigned long long>(d_builds),
                       static_cast<unsigned long long>(d_grows),
                       static_cast<unsigned long long>(d_packs),
                       static_cast<unsigned long long>(d_misses));
          ++batched_failures;
        }
      }
    };
    for (const index_t n : ns) {
      run_config(double{}, "f64", "update", 4, n);
      run_config(float{}, "f32", "update", 4, n);
      run_config(double{}, "f64", "gram", 8 * n, n);
      run_config(float{}, "f32", "gram", 8 * n, n);
    }
    btable.print();
  }

  // --- Phase 5: tall-skinny planner — forced panel-SYRK vs forced
  // recursive on one m >> n shape, plus the auto planner's own choice.
  {
    const Shape ts{bench::scaled(16384, scale), bench::scaled(64, scale)};
    const auto a = random_uniform<double>(ts.m, ts.n, 7);
    auto c = Matrix<double>::zeros(ts.n, ts.n);
    const int reps = std::max(3, requests / 4);

    Table ttable("Tall-skinny planner, m=" + std::to_string(ts.m) + " n=" +
                 std::to_string(ts.n) + " f64");
    ttable.set_header({"plan", "engine", "reps", "req/s", "mean ms/req"});

    auto time_plan = [&](const char* label, index_t ratio) {
      api::Server tserver(api::Server::Options{threads, 16});
      SharedOptions topts = sopts;
      topts.tall_skinny_ratio = ratio;
      const auto key = api::shared_plan_key(api::dtype_of<double>(), ts.m, ts.n, topts);
      const char* engine = key.engine == LeafEngine::kPanelSyrk ? "panel_syrk" : "strassen";
      tserver.submit(1.0, a.const_view(), c.view(), topts).get();  // cold
      double secs = 0.0;
      for (int rep = 0; rep < kTimedReps; ++rep) {
        Timer t;
        for (int r = 0; r < reps; ++r) {
          tserver.submit(1.0, a.const_view(), c.view(), topts).get();
        }
        const double s = t.seconds();
        if (rep == 0 || s < secs) secs = s;
      }
      ttable.add_row({label, engine, std::to_string(reps), Table::num(reps / secs, 1),
                      Table::num(secs / reps * 1e3, 3)});
      bench::JsonWriter::Record rec;
      rec.str("phase", "tall_skinny")
          .str("plan", label)
          .str("engine", engine)
          .num("m", static_cast<std::uint64_t>(ts.m))
          .num("n", static_cast<std::uint64_t>(ts.n))
          .num("reps", reps)
          .num("req_per_sec", reps / secs)
          .num("mean_ms", secs / reps * 1e3)
          .num("pool_threads", threads);
      json.add(rec);
    };
    time_plan("forced_panel", 2);
    time_plan("forced_recursive", -1);
    time_plan("auto", 0);
    ttable.print();
  }

  // --- Phase 6: overload — bounded admission under 4x-oversubscribed
  // clients, mixed priorities, tight deadlines. One row per policy.
  int overload_failures = 0;
  {
    Table otable("Overload control, clients = 4x pool slots, bounds = 2x slots");
    otable.set_header({"policy", "clients", "offered", "completed", "rejected", "shed",
                       "deadline", "req/s", "q-wait p99 us", "compute p99 us"});
    const auto run_policy = [&](const char* name, api::AdmissionPolicy policy) {
      api::Server::Options oopts;
      oopts.threads = threads;
      oopts.plan_capacity = 16;
      oopts.max_inflight_requests = static_cast<std::size_t>(threads) * 2;
      oopts.max_queued_batches = static_cast<std::size_t>(threads) * 2;
      oopts.admission = policy;
      api::Server oserver(oopts);
      const std::size_t si = 1;  // the smaller shape: fast request turnover
      {
        // Cold pass: plan build + workspace warm out of the measured loop.
        auto c = Matrix<double>::zeros(shapes[si].n, shapes[si].n);
        oserver.submit(1.0, inputs[si].const_view(), c.view(), sopts).get();
      }
      const std::uint64_t builds0 = total_schedule_builds();
      const std::size_t grows0 = pool_slab_grows(oserver.executor());
      // The cold request above is counted by the server too; measure the
      // saturated stream as deltas from here.
      const auto base = oserver.stats();

      const int oclients = 4 * threads;
      std::atomic<std::uint64_t> ok{0}, rejected{0}, expired{0};
      std::vector<std::thread> workers;
      workers.reserve(static_cast<std::size_t>(oclients));
      Timer t;
      for (int cl = 0; cl < oclients; ++cl) {
        workers.emplace_back([&, cl] {
          auto c = Matrix<double>::zeros(shapes[si].n, shapes[si].n);
          for (int r = 0; r < requests; ++r) {
            SharedOptions o = sopts;
            o.priority = cl % 3;  // mixed QoS classes compete at the pool
            if (r % 3 == 0) {
              o.deadline =
                  std::chrono::steady_clock::now() + std::chrono::milliseconds(2);
            }
            std::future<void> fut;
            try {
              fut = oserver.submit(1.0, inputs[si].const_view(), c.view(), o);
            } catch (const api::OverloadError&) {
              rejected.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            try {
              fut.get();
              ok.fetch_add(1, std::memory_order_relaxed);
            } catch (const api::DeadlineExceeded&) {
              expired.fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
      }
      for (auto& w : workers) w.join();
      const double secs = t.seconds();

      // Batch retirement is the last task-side touch and may lag the
      // future settle by a moment; the gauge check below wants quiescence.
      while (oserver.stats().queued_batches != 0) std::this_thread::yield();
      const auto os = oserver.stats();
      const std::uint64_t admitted = os.admitted - base.admitted;
      const std::uint64_t completed = os.completed - base.completed;
      const std::uint64_t d_rejected = os.rejected - base.rejected;
      const std::uint64_t d_shed = os.shed - base.shed;
      const std::uint64_t d_expired = os.deadline_expired - base.deadline_expired;
      const std::uint64_t offered =
          static_cast<std::uint64_t>(oclients) * static_cast<std::uint64_t>(requests);
      otable.add_row({name, std::to_string(oclients), std::to_string(offered),
                      std::to_string(completed), std::to_string(d_rejected),
                      std::to_string(d_shed), std::to_string(d_expired),
                      Table::num(static_cast<double>(completed) / secs, 1),
                      Table::num(static_cast<double>(os.queue_wait.p99_ns) / 1e3, 1),
                      Table::num(static_cast<double>(os.compute.p99_ns) / 1e3, 1)});
      bench::JsonWriter::Record rec;
      rec.str("phase", "overload")
          .str("policy", name)
          .num("clients", oclients)
          .num("offered", offered)
          .num("completed", completed)
          .num("rejected", d_rejected)
          .num("shed", d_shed)
          .num("deadline_expired", d_expired)
          .num("completed_per_sec", static_cast<double>(completed) / secs)
          .num("admission_wait_p99_us", static_cast<double>(os.admission_wait.p99_ns) / 1e3)
          .num("queue_wait_p99_us", static_cast<double>(os.queue_wait.p99_ns) / 1e3)
          .num("compute_p99_us", static_cast<double>(os.compute.p99_ns) / 1e3)
          .num("pool_threads", threads);
      json.add(rec);

      // The saturated stream is warm: overload control must not have cost
      // it the zero-build/zero-slab amortization. The books must balance
      // and the gauges must read empty once every client returned.
      const std::uint64_t d_builds = total_schedule_builds() - builds0;
      const std::uint64_t d_grows = pool_slab_grows(oserver.executor()) - grows0;
      const bool books_ok = admitted + d_rejected == offered &&
                            completed + d_expired == admitted &&
                            os.inflight_requests == 0 && os.queued_batches == 0 &&
                            completed == ok.load() && d_rejected == rejected.load() &&
                            d_expired == expired.load();
      if (d_builds != 0 || d_grows != 0 || !books_ok) {
        std::fprintf(stderr,
                     "error: overload phase (%s) broke an invariant: builds=%llu "
                     "grows=%llu admitted=%llu rejected=%llu completed=%llu "
                     "deadline=%llu offered=%llu\n",
                     name, static_cast<unsigned long long>(d_builds),
                     static_cast<unsigned long long>(d_grows),
                     static_cast<unsigned long long>(admitted),
                     static_cast<unsigned long long>(d_rejected),
                     static_cast<unsigned long long>(completed),
                     static_cast<unsigned long long>(d_expired),
                     static_cast<unsigned long long>(offered));
        ++overload_failures;
      }
    };
    run_policy("reject", api::AdmissionPolicy::kReject);
    run_policy("shed_oldest", api::AdmissionPolicy::kShedOldest);
    otable.print();
  }

  const auto stats = server.plan_stats();
  std::printf("check: plan-cache misses = %llu (want %d: one per shape; every other "
              "request replans nothing)\n",
              static_cast<unsigned long long>(stats.misses), kShapes);
  if (!json.flush()) return 1;
  if (batched_failures != 0 || overload_failures != 0) return 1;
  return stats.misses == static_cast<std::uint64_t>(kShapes) ? 0 : 1;
}
