// Serving throughput through the cached-plan front-end (api::Server).
//
// The ROADMAP's serving workload is "the same Gram matrix shapes, over and
// over, from many clients". This bench measures what the plan/execute
// split buys there: cold requests pay schedule building + workspace growth
// once per shape; warm requests are a plan-cache hit plus a queued pool
// batch — zero replanning, zero slab allocation. Three phases:
//   cold   — first request per shape on a fresh Server (plan build in path)
//   warm   — single client, closed loop over cached shapes
//   scale  — C client threads, closed loop each, C in {1, 2, 4, ...}
// Each phase reports requests/sec and per-request latency; --json appends
// BENCH_serve.json records for the perf trajectory.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/server.hpp"
#include "ata/ata.hpp"
#include "bench_common.hpp"
#include "matrix/compare.hpp"
#include "matrix/matrix.hpp"

namespace {

using namespace atalib;

struct Shape {
  index_t m, n;
};

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  bench::add_common_flags(flags);
  flags.add_int("threads", 4, "server pool slots");
  flags.add_int("requests", 32, "warm requests per client per shape sweep");
  flags.add_int("max-clients", 4, "concurrent-client scaling sweeps 1,2,..,max");
  if (!flags.parse(argc, argv)) return 1;
  const double scale = flags.get_double("scale");
  const int threads = std::max(1, static_cast<int>(flags.get_int("threads")));
  const int requests = std::max(1, static_cast<int>(flags.get_int("requests")));
  const int max_clients = std::max(1, static_cast<int>(flags.get_int("max-clients")));
  bench::JsonWriter json(flags.get_string("json"));

  bench::print_banner("Cached-plan serving throughput (api::Server)",
                      "serving front-end (post-paper engineering; not a paper figure)");

  const Shape shapes[] = {{bench::scaled(512, scale), bench::scaled(384, scale)},
                          {bench::scaled(384, scale), bench::scaled(320, scale)}};
  constexpr int kShapes = static_cast<int>(sizeof(shapes) / sizeof(shapes[0]));

  SharedOptions sopts;
  sopts.threads = threads;
  sopts.oversub = 2;
  sopts.recurse = bench::recurse_from_flags(flags);

  api::Server server(api::Server::Options{threads, 16});

  // Correctness spot check once, against the serial recursion.
  {
    const auto a = random_uniform<double>(shapes[0].m, shapes[0].n, 11);
    auto c_ref = Matrix<double>::zeros(shapes[0].n, shapes[0].n);
    ata(1.0, a.const_view(), c_ref.view(), sopts.recurse);
    auto c = Matrix<double>::zeros(shapes[0].n, shapes[0].n);
    api::Server check_server(api::Server::Options{threads, 16});
    check_server.submit(1.0, a.const_view(), c.view(), sopts).get();
    if (max_abs_diff_lower<double>(c.const_view(), c_ref.const_view()) != 0.0) {
      std::fprintf(stderr, "error: served result differs from serial execution\n");
      return 1;
    }
  }

  std::vector<Matrix<double>> inputs;
  for (const auto& shape : shapes) {
    inputs.push_back(random_uniform<double>(shape.m, shape.n, 21));
  }

  Table table("Serving throughput, pool=" + std::to_string(threads) + " slots, " +
              std::to_string(kShapes) + " shapes, " + std::to_string(requests) +
              " reqs/client");
  table.set_header({"phase", "clients", "requests", "req/s", "mean ms/req", "cache hits",
                    "cache misses"});

  auto add_row = [&](const std::string& phase, int clients, int nreq, double seconds) {
    const auto stats = server.plan_stats();
    const double rps = static_cast<double>(nreq) / seconds;
    const double mean_ms = seconds / nreq * 1e3;
    table.add_row({phase, std::to_string(clients), std::to_string(nreq),
                   Table::num(rps, 1), Table::num(mean_ms, 3),
                   std::to_string(stats.hits), std::to_string(stats.misses)});
    bench::JsonWriter::Record rec;
    rec.str("phase", phase)
        .num("clients", clients)
        .num("requests", nreq)
        .num("req_per_sec", rps)
        .num("mean_ms", mean_ms)
        .num("cache_hits", stats.hits)
        .num("cache_misses", stats.misses)
        .num("pool_threads", threads);
    json.add(rec);
  };

  // --- Phase 1: cold — the first request per shape builds its plan.
  {
    Timer t;
    for (int s = 0; s < kShapes; ++s) {
      auto c = Matrix<double>::zeros(shapes[s].n, shapes[s].n);
      server.submit(1.0, inputs[static_cast<std::size_t>(s)].const_view(), c.view(), sopts)
          .get();
    }
    add_row("cold", 1, kShapes, t.seconds());
  }

  // --- Phase 2: warm single client — every request is a plan-cache hit.
  {
    auto c0 = Matrix<double>::zeros(shapes[0].n, shapes[0].n);
    auto c1 = Matrix<double>::zeros(shapes[1].n, shapes[1].n);
    MatrixView<double> outs[] = {c0.view(), c1.view()};
    Timer t;
    for (int r = 0; r < requests; ++r) {
      const int s = r % kShapes;
      server
          .submit(1.0, inputs[static_cast<std::size_t>(s)].const_view(),
                  outs[static_cast<std::size_t>(s)], sopts)
          .get();
    }
    add_row("warm", 1, requests, t.seconds());
  }

  // --- Phase 3: concurrent-client scaling, closed loop per client.
  for (int clients = 1; clients <= max_clients; clients *= 2) {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(clients));
    Timer t;
    for (int cl = 0; cl < clients; ++cl) {
      workers.emplace_back([&, cl] {
        // Per-client outputs: in-flight requests must not share C.
        std::vector<Matrix<double>> outs;
        for (const auto& shape : shapes) {
          outs.push_back(Matrix<double>::zeros(shape.n, shape.n));
        }
        for (int r = 0; r < requests; ++r) {
          const std::size_t s = static_cast<std::size_t>((r + cl) % kShapes);
          server.submit(1.0, inputs[s].const_view(), outs[s].view(), sopts).get();
        }
      });
    }
    for (auto& w : workers) w.join();
    add_row("scale", clients, clients * requests, t.seconds());
  }

  table.print();
  const auto stats = server.plan_stats();
  std::printf("check: plan-cache misses = %llu (want %d: one per shape; every other "
              "request replans nothing)\n",
              static_cast<unsigned long long>(stats.misses), kShapes);
  if (!json.flush()) return 1;
  return stats.misses == static_cast<std::uint64_t>(kShapes) ? 0 : 1;
}
