// Figure 3 — sequential AtA vs ?syrk: elapsed time (a) and effective
// GFLOPs (b) over growing square matrix size, double precision, one core.
//
// Paper setup: n = 2.5K..25K against Intel MKL dsyrk. Here: scaled sizes
// against the self-built blocked syrk (same leaf kernel under both
// algorithms), so the curves compare *algorithms*, not BLAS vendors.
// Expected shape: AtA's advantage grows with n (lower asymptotic cost).

#include <cstdio>

#include "ata/ata.hpp"
#include "bench_common.hpp"
#include "blas/syrk.hpp"
#include "metrics/flops.hpp"

int main(int argc, char** argv) {
  using namespace atalib;

  CliFlags flags;
  bench::add_common_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  const double scale = flags.get_double("scale");
  const int reps = static_cast<int>(flags.get_int("reps"));
  const RecurseOptions recurse = bench::recurse_from_flags(flags);

  bench::print_banner("Sequential AtA vs blocked syrk (double)", "Figure 3 (a) + (b)");

  Table table("Fig. 3: time and effective GFLOPs vs matrix size (r = 1)");
  table.set_header({"n", "AtA (s)", "syrk (s)", "AtA EG", "syrk EG", "syrk/AtA"});

  for (index_t base : {256, 384, 512, 768, 1024, 1280, 1536, 1792, 2048}) {
    const index_t n = bench::scaled(base, scale);
    const auto a = random_uniform<double>(n, n, 100 + n);

    auto c = Matrix<double>::zeros(n, n);
    const double t_ata = min_time_of(
        [&] {
          fill_view(c.view(), 0.0);
          ata(1.0, a.const_view(), c.view(), recurse);
        },
        reps);
    const double t_syrk = min_time_of(
        [&] {
          fill_view(c.view(), 0.0);
          blas::syrk_ln(1.0, a.const_view(), c.view());
        },
        reps);

    table.add_row({std::to_string(n), Table::num(t_ata), Table::num(t_syrk),
                   Table::num(metrics::effective_gflops(1.0, n, n, n, t_ata), 2),
                   Table::num(metrics::effective_gflops(1.0, n, n, n, t_syrk), 2),
                   Table::num(t_syrk / t_ata, 3)});
  }
  table.print();
  std::printf("shape check: the syrk/AtA ratio should grow with n "
              "(AtA pays Strassen overhead on small n, wins on large n).\n");
  return 0;
}
