// Figure 5 — shared-memory AtA-S vs multi-threaded ssyrk (single
// precision): elapsed time and effective GFLOPs vs core count P on three
// fixed shapes (two square, one tall).
//
// Paper setup: 30K^2, 40K^2 and 60Kx5K on a 16-core node vs MKL ssyrk.
// Here: scaled shapes, both methods on the same blocked kernels. This host
// may have fewer cores than P, so the headline column is the *critical
// path*: each task of the (synchronization-free) schedule is run serially
// and timed, and the max task time is what a >= P-core node would observe.
// The ssyrk baseline's critical path is its serial time / P (its stripes
// are equal-area by construction). The staircase of the AtA-S column vs
// the smooth 1/P of the baseline is the paper's Fig. 5 signature.

#include <cstdio>

#include "bench_common.hpp"
#include "blas/syrk.hpp"
#include "metrics/flops.hpp"
#include "parallel/ata_shared.hpp"
#include "sched/levels.hpp"

namespace {

using namespace atalib;

void run_shape(const char* label, index_t m, index_t n, int reps,
               const RecurseOptions& recurse) {
  const auto a = random_uniform<float>(m, n, 500);
  auto c = Matrix<float>::zeros(n, n);

  // Serial baseline time once per shape.
  const double t_syrk_serial = min_time_of(
      [&] {
        fill_view(c.view(), 0.0f);
        blas::syrk_ln(1.0f, a.const_view(), c.view());
      },
      reps);

  Table table(std::string("Fig. 5 ") + label + ": AtA-S vs parallel ssyrk (r = 1)");
  table.set_header({"P", "AtA-S crit (s)", "ssyrk crit (s)", "AtA-S EG", "ssyrk EG",
                    "l(P) eq.(6)", "work 1/4^l"});

  for (int p : {1, 2, 4, 6, 8, 10, 12, 14, 16}) {
    SharedOptions opts;
    opts.threads = p;
    opts.recurse = recurse;
    double crit = 1e300;
    for (int r = 0; r < reps; ++r) {
      fill_view(c.view(), 0.0f);
      const auto profile = ata_shared_profile(1.0f, a.const_view(), c.view(), opts);
      crit = std::min(crit, profile.critical_path_seconds);
    }
    const double t_syrk = t_syrk_serial / p;

    table.add_row({std::to_string(p), Table::num(crit, 4), Table::num(t_syrk, 4),
                   Table::num(metrics::effective_gflops(1.0, m, n, n, crit), 2),
                   Table::num(metrics::effective_gflops(1.0, m, n, n, t_syrk), 2),
                   std::to_string(sched::paper_levels_shared(p)),
                   Table::num(sched::shared_work_fraction(p), 4)});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  bench::add_common_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  const double scale = flags.get_double("scale");
  const int reps = static_cast<int>(flags.get_int("reps"));
  const RecurseOptions recurse = bench::recurse_from_flags(flags);

  bench::print_banner("Shared-memory AtA-S vs parallel ssyrk (single precision)",
                      "Figure 5 (a)-(f)");

  // Paper shapes 30Kx30K, 40Kx40K, 60Kx5K, scaled ~1/32 by default.
  run_shape("(a,b) square", bench::scaled(960, scale), bench::scaled(960, scale), reps, recurse);
  run_shape("(c,d) square larger", bench::scaled(1280, scale), bench::scaled(1280, scale), reps,
            recurse);
  run_shape("(e,f) tall", bench::scaled(1920, scale), bench::scaled(160, scale), reps, recurse);

  std::printf("shape check: AtA-S critical path drops ~4x at each complete parallel level\n"
              "and plateaus inside one (eq. (8) staircase); ssyrk falls smoothly as 1/P.\n"
              "AtA-S should win clearly at small-to-mid P, as in the paper's P <= 10 regime.\n");
  return 0;
}
