// Figure 4 — sequential FastStrassen vs ?gemm: elapsed time (a) and
// effective GFLOPs (b) over growing square size, double precision.
//
// Paper setup: Intel MKL dgemm as the cubic baseline. Here the baseline is
// the same blocked gemm kernel Strassen bottoms out in. Expected shape:
// crossover after which Strassen wins, margin growing with n. The
// pre-allocation claim of §3.3 is quantified separately in
// ablation_workspace.

#include <cstdio>

#include "bench_common.hpp"
#include "blas/gemm.hpp"
#include "metrics/flops.hpp"
#include "strassen/strassen.hpp"

int main(int argc, char** argv) {
  using namespace atalib;

  CliFlags flags;
  bench::add_common_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  const double scale = flags.get_double("scale");
  const int reps = static_cast<int>(flags.get_int("reps"));
  const RecurseOptions recurse = bench::recurse_from_flags(flags);

  bench::print_banner("Sequential FastStrassen vs blocked gemm (double, C += A^T B)",
                      "Figure 4 (a) + (b)");

  Table table("Fig. 4: time and effective GFLOPs vs matrix size (r = 2)");
  table.set_header({"n", "Strassen (s)", "gemm (s)", "Strassen EG", "gemm EG", "gemm/Strassen"});

  for (index_t base : {256, 384, 512, 768, 1024, 1280, 1536, 1792, 2048}) {
    const index_t n = bench::scaled(base, scale);
    const auto a = random_uniform<double>(n, n, 200 + n);
    const auto b = random_uniform<double>(n, n, 300 + n);

    auto c = Matrix<double>::zeros(n, n);
    const double t_str = min_time_of(
        [&] {
          fill_view(c.view(), 0.0);
          fast_strassen(1.0, a.const_view(), b.const_view(), c.view(), recurse);
        },
        reps);
    const double t_gemm = min_time_of(
        [&] {
          fill_view(c.view(), 0.0);
          blas::gemm_tn(1.0, a.const_view(), b.const_view(), c.view());
        },
        reps);

    table.add_row({std::to_string(n), Table::num(t_str), Table::num(t_gemm),
                   Table::num(metrics::effective_gflops(2.0, n, n, n, t_str), 2),
                   Table::num(metrics::effective_gflops(2.0, n, n, n, t_gemm), 2),
                   Table::num(t_gemm / t_str, 3)});
  }
  table.print();
  std::printf("shape check: gemm/Strassen ratio should cross 1 and keep growing with n.\n");
  return 0;
}
