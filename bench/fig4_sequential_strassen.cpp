// Figure 4 — sequential FastStrassen vs ?gemm: elapsed time (a) and
// effective GFLOPs (b) over growing square size, double precision.
//
// Paper setup: Intel MKL dgemm as the cubic baseline. Here the baseline is
// the same blocked gemm kernel Strassen bottoms out in. Expected shape:
// crossover after which Strassen wins, margin growing with n. The
// pre-allocation claim of §3.3 is quantified separately in
// ablation_workspace.
//
// Besides the automatic (cpuid-best) dispatch, every size is also timed
// with the Strassen engine pinned to the scalar microkernel tier, so the
// --json output (BENCH_strassen.json) carries the registry-vs-scalar-leaf
// speedup of the whole engine — the number the PR 6 refit is accepted on.

#include <cstdio>

#include "bench_common.hpp"
#include "blas/gemm.hpp"
#include "blas/kernels/registry.hpp"
#include "metrics/flops.hpp"
#include "strassen/strassen.hpp"

int main(int argc, char** argv) {
  using namespace atalib;

  CliFlags flags;
  bench::add_common_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  const double scale = flags.get_double("scale");
  const int reps = static_cast<int>(flags.get_int("reps"));
  const RecurseOptions recurse = bench::recurse_from_flags(flags);
  bench::JsonWriter json(flags.get_string("json"));

  bench::print_banner("Sequential FastStrassen vs blocked gemm (double, C += A^T B)",
                      "Figure 4 (a) + (b)");

  const blas::kernels::Isa active = blas::kernels::active_config<double>().isa;
  const std::string dispatch = blas::kernels::isa_name(active);
  const bool have_simd = active != blas::kernels::Isa::kScalar;

  Table table("Fig. 4: time and effective GFLOPs vs matrix size (r = 2)");
  table.set_header({"n", "Strassen (s)", "gemm (s)", "Strassen EG", "gemm EG", "gemm/Strassen",
                    "vs scalar-leaf"});

  double last_speedup = 0.0;
  for (index_t base : {256, 384, 512, 768, 1024, 1280, 1536, 1792, 2048}) {
    const index_t n = bench::scaled(base, scale);
    const auto a = random_uniform<double>(n, n, 200 + n);
    const auto b = random_uniform<double>(n, n, 300 + n);

    auto c = Matrix<double>::zeros(n, n);
    const double t_str = min_time_of(
        [&] {
          fill_view(c.view(), 0.0);
          fast_strassen(1.0, a.const_view(), b.const_view(), c.view(), recurse);
        },
        reps);
    const double t_gemm = min_time_of(
        [&] {
          fill_view(c.view(), 0.0);
          blas::gemm_tn(1.0, a.const_view(), b.const_view(), c.view());
        },
        reps);
    // The pre-refit engine: identical recursion, every leaf and block sum
    // pinned to the scalar tier.
    double t_scalar = t_str;
    if (have_simd) {
      blas::kernels::set_forced_isa(blas::kernels::Isa::kScalar);
      t_scalar = min_time_of(
          [&] {
            fill_view(c.view(), 0.0);
            fast_strassen(1.0, a.const_view(), b.const_view(), c.view(), recurse);
          },
          reps);
      blas::kernels::set_forced_isa(std::nullopt);
    }
    last_speedup = t_scalar / t_str;

    const double eg_str = metrics::effective_gflops(2.0, n, n, n, t_str);
    const double eg_gemm = metrics::effective_gflops(2.0, n, n, n, t_gemm);
    table.add_row({std::to_string(n), Table::num(t_str), Table::num(t_gemm),
                   Table::num(eg_str, 2), Table::num(eg_gemm, 2),
                   Table::num(t_gemm / t_str, 3),
                   have_simd ? Table::num(t_scalar / t_str, 2) : std::string("n/a")});

    bench::JsonWriter::Record strassen_rec;
    strassen_rec.str("bench", "strassen_tn")
        .str("dtype", "f64")
        .num("n", static_cast<std::uint64_t>(n))
        .num("seconds", t_str)
        .num("eff_gflops", eg_str)
        .str("dispatch", dispatch);
    json.add(strassen_rec);
    bench::JsonWriter::Record gemm_rec;
    gemm_rec.str("bench", "gemm_tn")
        .str("dtype", "f64")
        .num("n", static_cast<std::uint64_t>(n))
        .num("seconds", t_gemm)
        .num("eff_gflops", eg_gemm)
        .str("dispatch", dispatch);
    json.add(gemm_rec);
    if (have_simd) {
      bench::JsonWriter::Record scalar_rec;
      scalar_rec.str("bench", "strassen_tn")
          .str("dtype", "f64")
          .num("n", static_cast<std::uint64_t>(n))
          .num("seconds", t_scalar)
          .num("eff_gflops", metrics::effective_gflops(2.0, n, n, n, t_scalar))
          .str("dispatch", "scalar");
      json.add(scalar_rec);
    }
  }
  table.print();
  std::printf("shape check: gemm/Strassen ratio should cross 1 and keep growing with n.\n");
  if (have_simd) {
    std::printf("registry-backed Strassen vs scalar-leaf Strassen at the largest size: "
                "%.2fx\n", last_speedup);
  }
  return json.flush() ? 0 : 1;
}
