// Proposition 4.2 — measured AtA-D communication vs the closed-form
// latency (message count) and bandwidth (word count) bounds.
//
// The mpisim runtime counts every message and word exactly, so this is a
// direct check the paper could only support indirectly through timings:
// root-process traffic should track L(n, P) = O(2[7(l-1)+5]) messages and
// BW(n, P) <= 6(n/2)^2 + n(n+2)/2 + 7/6 n^2 (1 - 1/4^(l-2)) words.

#include <cstdio>

#include "bench_common.hpp"
#include "dist/ata_dist.hpp"
#include "metrics/models.hpp"
#include "sched/levels.hpp"

int main(int argc, char** argv) {
  using namespace atalib;

  CliFlags flags;
  bench::add_common_flags(flags);
  flags.add_int("n", 512, "square matrix size");
  if (!flags.parse(argc, argv)) return 1;
  const double scale = flags.get_double("scale");
  const index_t n = bench::scaled(flags.get_int("n"), scale);
  const RecurseOptions recurse = bench::recurse_from_flags(flags);

  bench::print_banner("AtA-D traffic vs Prop. 4.2 closed forms", "Proposition 4.2");

  const auto a = random_uniform<double>(n, n, 1200);

  Table table("Root-process traffic, n = " + std::to_string(n));
  table.set_header({"P", "l(P)", "root msgs", "L model", "msgs/model", "root words", "BW model",
                    "words/model"});

  for (int p : {2, 4, 8, 16, 24, 32, 48, 64}) {
    dist::DistOptions opts;
    opts.procs = p;
    opts.recurse = recurse;
    const auto res = dist::ata_dist(1.0, a, opts);
    const double l_model = metrics::dist_latency_model(p);
    const double bw_model = metrics::dist_bandwidth_model(static_cast<double>(n), p);
    const double msgs = static_cast<double>(res.traffic.root_messages());
    const double words = static_cast<double>(res.traffic.root_words());
    table.add_row({std::to_string(p), std::to_string(sched::paper_levels_dist(p)),
                   Table::num(msgs, 0), Table::num(l_model, 0), Table::num(msgs / l_model, 2),
                   Table::num(words, 0), Table::num(bw_model, 0),
                   Table::num(words / bw_model, 2)});
  }
  table.print();
  std::printf("shape check: both ratio columns should stay O(1) across P — the measured\n"
              "traffic tracks the closed forms up to per-block vs per-level message\n"
              "granularity. Words do not shrink with P: bandwidth is dominated by the\n"
              "first-level matrix halves regardless of process count, as in Prop. 4.2.\n");
  return 0;
}
