// Table 1 — shared memory (16 cores) vs distributed memory (96 cores) on
// large square matrices, with the speed-up T_SM / T_DM.
//
// Paper setup: AtA-S on one 16-core node vs AtA-D over 6 nodes x 16 cores,
// n = 30K..60K; DM times include communication. Here both sides report
// their measured *critical path* (busiest thread / rank compute time), so
// the speed-up column is directly comparable to the paper's T_SM / T_DM;
// the work-model columns give the same trend analytically.

#include <cstdio>

#include "bench_common.hpp"
#include "dist/ata_dist.hpp"
#include "metrics/flops.hpp"
#include "parallel/ata_shared.hpp"
#include "sched/shared_schedule.hpp"

int main(int argc, char** argv) {
  using namespace atalib;

  CliFlags flags;
  bench::add_common_flags(flags);
  flags.add_int("sm-threads", 16, "shared-memory thread count (paper: 16)");
  flags.add_int("dm-procs", 96, "distributed process count (paper: 96)");
  if (!flags.parse(argc, argv)) return 1;
  const double scale = flags.get_double("scale");
  const RecurseOptions recurse = bench::recurse_from_flags(flags);
  const int sm_threads = static_cast<int>(flags.get_int("sm-threads"));
  const int dm_procs = static_cast<int>(flags.get_int("dm-procs"));

  bench::print_banner("Shared (AtA-S) vs distributed (AtA-D) on large square matrices",
                      "Table 1");

  Table table("Table 1: SM vs DM (wall seconds here are 1-core totals; see header comment)");
  table.set_header({"n", "SM crit (s)", "DM crit (s)", "speed-up", "SM maxwork", "DM maxwork",
                    "work speed-up", "DM words"});

  for (index_t base : {480, 640, 800, 960}) {
    const index_t n = bench::scaled(base, scale);
    const auto a = random_uniform<double>(n, n, 700 + n);

    auto c = Matrix<double>::zeros(n, n);
    SharedOptions sopts;
    sopts.threads = sm_threads;
    sopts.recurse = recurse;
    const auto sm_profile = ata_shared_profile(1.0, a.const_view(), c.view(), sopts);
    const double sm_seconds = sm_profile.critical_path_seconds;

    dist::DistOptions dopts;
    dopts.procs = dm_procs;
    dopts.recurse = recurse;
    const auto dm = dist::ata_dist(1.0, a, dopts);

    const auto sm_sched = sched::build_shared_schedule(n, n, sm_threads);
    double sm_maxwork = 0;
    for (const auto& task : sm_sched.tasks) {
      double w = 0;
      for (const auto& op : task.ops) w += op.flops();
      sm_maxwork = std::max(sm_maxwork, w);
    }

    const double dm_seconds = dm.critical_path_seconds();
    table.add_row({std::to_string(n), Table::num(sm_seconds, 4), Table::num(dm_seconds, 4),
                   Table::num(sm_seconds / dm_seconds, 2), Table::num(sm_maxwork / 1e6, 1) + "M",
                   Table::num(dm.max_leaf_flops / 1e6, 1) + "M",
                   Table::num(sm_maxwork / dm.max_leaf_flops, 2),
                   std::to_string(dm.traffic.total_words())});
  }
  table.print();
  std::printf(
      "shape check: paper Table 1 shows T_SM/T_DM growing with n (2.13 -> 6.69) because\n"
      "DM's O(n^2) communication is amortized by O(n^2.8/P) compute as n grows. The\n"
      "work speed-up column (SM maxwork / DM maxwork = 4^(l_D - l_S)) is the pure-compute\n"
      "ceiling of that ratio; the measured speed-up climbs toward it as n grows. At the\n"
      "default laptop scale the DM root's quadratic pack/sum work still dominates, so\n"
      "expect speed-up < 1 here and the upward trend to emerge at --scale >= 4.\n");
  return 0;
}
