// Distributed AtA-D walkthrough: runs the same product with growing process
// counts and prints the task-tree structure, per-process work, and measured
// communication — the quantities behind the paper's Fig. 6 and Prop. 4.2.
//
//   ./distributed_ata [--m 1024] [--n 768] [--max-procs 32]

#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "dist/ata_dist.hpp"
#include "matrix/generate.hpp"
#include "metrics/models.hpp"
#include "sched/dist_tree.hpp"
#include "sched/levels.hpp"

int main(int argc, char** argv) {
  using namespace atalib;

  CliFlags flags;
  flags.add_int("m", 1024, "rows of A");
  flags.add_int("n", 768, "columns of A");
  flags.add_int("max-procs", 32, "largest simulated process count");
  if (!flags.parse(argc, argv)) return 1;

  const index_t m = flags.get_int("m");
  const index_t n = flags.get_int("n");
  const int max_procs = static_cast<int>(flags.get_int("max-procs"));

  const auto a = random_gaussian<double>(m, n, 7);

  // Show one tree in detail first.
  {
    const auto tree = sched::build_dist_tree(m, n, 8);
    std::printf("Task tree for P = 8 on a %ld x %ld input (%zu nodes, depth %d):\n", m, n,
                tree.nodes.size(), tree.depth);
    for (int id : tree.preorder()) {
      const auto& node = tree.node(id);
      std::printf("  %*s", node.level * 2, "");
      if (node.kind == sched::DistNode::Kind::kLeaf) {
        for (const auto& op : node.ops) {
          std::printf("p%-2d %s  ", node.proc, op.to_string().c_str());
        }
        std::printf("\n");
      } else {
        std::printf("p%-2d %s C[%ld:%ld,%ld:%ld)\n", node.proc,
                    node.kind == sched::DistNode::Kind::kSyrkInner ? "syrk-node" : "gemm-node",
                    node.c.r0, node.c.r0 + node.c.rows, node.c.c0, node.c.c0 + node.c.cols);
      }
    }
  }

  Table table("AtA-D scaling (distribute + compute + retrieve)");
  table.set_header({"P", "levels l(P)", "eq.(5) l(P)", "time (s)", "max leaf flops", "messages",
                    "words", "BW model"});
  for (int p = 1; p <= max_procs; p *= 2) {
    dist::DistOptions opts;
    opts.procs = p;
    const auto res = dist::ata_dist(1.0, a, opts);
    table.add_row({std::to_string(p), std::to_string(res.levels),
                   std::to_string(sched::paper_levels_dist(p)), Table::num(res.seconds, 3),
                   Table::num(res.max_leaf_flops / 1e6, 1) + "M",
                   std::to_string(res.traffic.total_messages()),
                   std::to_string(res.traffic.total_words()),
                   Table::num(metrics::dist_bandwidth_model(static_cast<double>(n), p) / 1e6,
                              2) +
                       "M"});
  }
  table.print();
  std::printf("Note: wall time on this host is not a scaling signal (ranks share one core);\n"
              "the hardware-independent columns are max-leaf-flops and traffic.\n");
  return 0;
}
