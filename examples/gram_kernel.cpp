// Discrete heat-kernel construction — the paper's geometry-processing
// motivation (§1): K(t) = Phi E(t) Phi^T can be computed as G G^T with
// G = Phi E(t)^{1/2}, i.e. one A^T A-type product per time step.
//
// We build a synthetic 1-D Laplacian eigenbasis (the DST basis, closed
// form), scale it by exp(-lambda t / 2), and compute the kernel with AtA.
// Physical sanity checks: K(t) rows sum to ~1 as t grows only for the full
// basis; here we check symmetry, positive semi-definiteness (diagonal
// dominance of Cauchy-Schwarz) and decay with t.
//
//   ./gram_kernel [--nodes 256] [--modes 64] [--t 0.1]

#include <cmath>
#include <cstdio>

#include "ata/ata.hpp"
#include "common/cli.hpp"
#include "common/timer.hpp"
#include "matrix/matrix.hpp"
#include "matrix/packed.hpp"

int main(int argc, char** argv) {
  using namespace atalib;

  CliFlags flags;
  flags.add_int("nodes", 256, "mesh nodes (1-D chain)");
  flags.add_int("modes", 64, "Laplacian eigenmodes used");
  flags.add_double("t", 0.1, "diffusion time");
  if (!flags.parse(argc, argv)) return 1;

  const index_t n = flags.get_int("nodes");
  const index_t k = flags.get_int("modes");
  const double t = flags.get_double("t");
  const double pi = 3.14159265358979323846;

  // 1-D path-graph Laplacian eigenpairs (DST-I basis):
  //   lambda_j = 2 - 2 cos(pi j / (n+1)),  phi_j(i) = sin(pi j (i+1)/(n+1)).
  // G(i, j) = phi_j(i) * exp(-lambda_j t / 2) * norm; K = G G^T.
  // AtA computes A^T A, so feed it A = G^T (k x n): A^T A = G G^T.
  Matrix<double> a(k, n);
  for (index_t j = 0; j < k; ++j) {
    const double lambda = 2.0 - 2.0 * std::cos(pi * static_cast<double>(j + 1) / (n + 1));
    const double scale = std::exp(-lambda * t / 2.0) * std::sqrt(2.0 / (n + 1));
    for (index_t i = 0; i < n; ++i) {
      a(j, i) = scale * std::sin(pi * static_cast<double>(j + 1) *
                                 static_cast<double>(i + 1) / (n + 1));
    }
  }

  std::printf("Heat kernel on a %ld-node chain, %ld modes, t = %.3f\n", n, k, t);
  Timer timer;
  auto kt = Matrix<double>::zeros(n, n);
  ata(1.0, a.const_view(), kt.view());
  symmetrize_from_lower(kt.view());
  std::printf("K(t) via AtA: %.3f s\n", timer.seconds());

  // Sanity: PSD (Cauchy-Schwarz on entries) and trace decay with time.
  for (index_t i = 0; i < n; ++i) {
    if (kt(i, i) < -1e-12) {
      std::printf("FAILED: negative diagonal at %ld\n", i);
      return 1;
    }
    for (index_t j = 0; j < i; ++j) {
      if (kt(i, j) * kt(i, j) > kt(i, i) * kt(j, j) * (1 + 1e-9) + 1e-15) {
        std::printf("FAILED: Cauchy-Schwarz violated at (%ld, %ld)\n", i, j);
        return 1;
      }
    }
  }
  double trace_now = 0;
  for (index_t i = 0; i < n; ++i) trace_now += kt(i, i);

  // Larger t must shrink the trace (heat dissipates).
  Matrix<double> a2(k, n);
  for (index_t j = 0; j < k; ++j) {
    const double lambda = 2.0 - 2.0 * std::cos(pi * static_cast<double>(j + 1) / (n + 1));
    const double scale = std::exp(-lambda * (2 * t) / 2.0) * std::sqrt(2.0 / (n + 1));
    for (index_t i = 0; i < n; ++i) {
      a2(j, i) = scale * std::sin(pi * static_cast<double>(j + 1) *
                                  static_cast<double>(i + 1) / (n + 1));
    }
  }
  auto kt2 = Matrix<double>::zeros(n, n);
  ata(1.0, a2.const_view(), kt2.view());
  double trace_later = 0;
  for (index_t i = 0; i < n; ++i) trace_later += kt2(i, i);

  std::printf("trace K(t) = %.4f, trace K(2t) = %.4f\n", trace_now, trace_later);
  if (trace_later >= trace_now) {
    std::printf("FAILED: heat kernel trace did not decay\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
