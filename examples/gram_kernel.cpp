// Discrete heat-kernel construction — the paper's geometry-processing
// motivation (§1): K(t) = Phi E(t) Phi^T can be computed as G G^T with
// G = Phi E(t)^{1/2}, i.e. one A^T A-type product per time step.
//
// A multi-scale analysis needs the kernel at a whole ladder of diffusion
// times at once, which is precisely the batched small-Gram serving shape:
// we build the scaled basis for every t in f32 (plenty for a diffusion
// kernel whose entries live in [0, 1]) and fuse all time steps into ONE
// api::Server::submit_batch call — one pool batch, one plan (all steps
// share the shape), per-step futures.
//
// We build a synthetic 1-D Laplacian eigenbasis (the DST basis, closed
// form) and scale it by exp(-lambda t / 2). Physical sanity checks per
// step: symmetry is implicit (lower triangle), positive semi-definiteness
// (diagonal nonnegativity + Cauchy-Schwarz), and the trace must decay
// monotonically along the time ladder (heat dissipates).
//
//   ./gram_kernel [--nodes 256] [--modes 64] [--t 0.1] [--steps 4]

#include <cmath>
#include <cstdio>
#include <vector>

#include "api/batch.hpp"
#include "api/server.hpp"
#include "common/cli.hpp"
#include "common/timer.hpp"
#include "matrix/matrix.hpp"
#include "matrix/packed.hpp"

int main(int argc, char** argv) {
  using namespace atalib;

  CliFlags flags;
  flags.add_int("nodes", 256, "mesh nodes (1-D chain)");
  flags.add_int("modes", 64, "Laplacian eigenmodes used");
  flags.add_double("t", 0.1, "smallest diffusion time");
  flags.add_int("steps", 4, "time-ladder steps (t, 2t, 4t, ...)");
  if (!flags.parse(argc, argv)) return 1;

  const index_t n = flags.get_int("nodes");
  const index_t k = flags.get_int("modes");
  const double t0 = flags.get_double("t");
  const int steps = std::max(1, static_cast<int>(flags.get_int("steps")));
  const double pi = 3.14159265358979323846;

  // 1-D path-graph Laplacian eigenpairs (DST-I basis):
  //   lambda_j = 2 - 2 cos(pi j / (n+1)),  phi_j(i) = sin(pi j (i+1)/(n+1)).
  // G(i, j) = phi_j(i) * exp(-lambda_j t / 2) * norm; K = G G^T.
  // AtA computes A^T A, so feed it A = G^T (k x n): A^T A = G G^T.
  std::vector<Matrix<float>> bases;
  for (int s = 0; s < steps; ++s) {
    const double t = t0 * static_cast<double>(1 << s);
    Matrix<float> a(k, n);
    for (index_t j = 0; j < k; ++j) {
      const double lambda = 2.0 - 2.0 * std::cos(pi * static_cast<double>(j + 1) / (n + 1));
      const double scale = std::exp(-lambda * t / 2.0) * std::sqrt(2.0 / (n + 1));
      for (index_t i = 0; i < n; ++i) {
        a(j, i) = static_cast<float>(scale * std::sin(pi * static_cast<double>(j + 1) *
                                                      static_cast<double>(i + 1) / (n + 1)));
      }
    }
    bases.push_back(std::move(a));
  }

  std::printf("Heat kernel ladder on a %ld-node chain, %ld modes, t = %.3f x 2^{0..%d}, f32\n",
              n, k, t0, steps - 1);

  // One fused batch: every time step is one AtA request; all steps share
  // one plan (same shape), so the batch plans once and runs as a single
  // pool batch.
  api::Server server;
  std::vector<Matrix<float>> kernels;
  for (int s = 0; s < steps; ++s) kernels.push_back(Matrix<float>::zeros(n, n));
  std::vector<api::AtaRequest<float>> requests;
  for (int s = 0; s < steps; ++s) {
    requests.push_back({1.0f, bases[static_cast<std::size_t>(s)].const_view(),
                        kernels[static_cast<std::size_t>(s)].view()});
  }
  Timer timer;
  auto futures = server.submit_batch<float>(requests);
  for (auto& f : futures) f.get();
  std::printf("K(t) ladder via submit_batch: %d kernels in %.3f s (%zu plan miss(es))\n",
              steps, timer.seconds(), static_cast<std::size_t>(server.plan_stats().misses));

  // Sanity per step: PSD (Cauchy-Schwarz on entries), then trace decay
  // along the ladder.
  double prev_trace = 0.0;
  for (int s = 0; s < steps; ++s) {
    auto& kt = kernels[static_cast<std::size_t>(s)];
    symmetrize_from_lower(kt.view());
    for (index_t i = 0; i < n; ++i) {
      if (kt(i, i) < -1e-5f) {
        std::printf("FAILED: negative diagonal at %ld (step %d)\n", i, s);
        return 1;
      }
      for (index_t j = 0; j < i; ++j) {
        const double lhs = static_cast<double>(kt(i, j)) * kt(i, j);
        const double rhs = static_cast<double>(kt(i, i)) * kt(j, j);
        if (lhs > rhs * (1 + 1e-4) + 1e-9) {
          std::printf("FAILED: Cauchy-Schwarz violated at (%ld, %ld), step %d\n", i, j, s);
          return 1;
        }
      }
    }
    double trace = 0.0;
    for (index_t i = 0; i < n; ++i) trace += kt(i, i);
    std::printf("trace K(%.3f) = %.4f\n", t0 * static_cast<double>(1 << s), trace);
    if (s > 0 && trace >= prev_trace) {
      std::printf("FAILED: heat kernel trace did not decay\n");
      return 1;
    }
    prev_trace = trace;
  }
  std::printf("OK\n");
  return 0;
}
