// Quickstart: compute C = A^T A three ways (serial AtA, multi-threaded
// AtA-S, simulated-distributed AtA-D) and verify they agree.
//
//   ./quickstart [--m 1200] [--n 800] [--threads 4] [--procs 8]

#include <cstdio>
#include <iostream>

#include "ata/ata.hpp"
#include "common/cli.hpp"
#include "common/timer.hpp"
#include "dist/ata_dist.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "matrix/io.hpp"
#include "matrix/packed.hpp"
#include "parallel/ata_shared.hpp"

int main(int argc, char** argv) {
  using namespace atalib;

  CliFlags flags;
  flags.add_int("m", 1200, "rows of A");
  flags.add_int("n", 800, "columns of A (C is n x n)");
  flags.add_int("threads", 4, "threads for AtA-S");
  flags.add_int("procs", 8, "simulated distributed processes for AtA-D");
  if (!flags.parse(argc, argv)) return 1;

  const index_t m = flags.get_int("m");
  const index_t n = flags.get_int("n");

  std::printf("Generating a %ld x %ld random matrix A...\n", m, n);
  const auto a = random_gaussian<double>(m, n, /*seed=*/2024);

  // --- Serial AtA (Algorithm 1): lower(C) += A^T A.
  auto c_serial = Matrix<double>::zeros(n, n);
  Timer t1;
  ata(1.0, a.const_view(), c_serial.view());
  std::printf("serial AtA            : %8.3f s\n", t1.seconds());

  // --- Shared-memory AtA-S (Algorithm 3).
  auto c_shared = Matrix<double>::zeros(n, n);
  SharedOptions sopts;
  sopts.threads = static_cast<int>(flags.get_int("threads"));
  Timer t2;
  ata_shared(1.0, a.const_view(), c_shared.view(), sopts);
  std::printf("AtA-S (%2d threads)    : %8.3f s\n", sopts.threads, t2.seconds());

  // --- Distributed AtA-D (Algorithm 4) on the in-process message runtime.
  dist::DistOptions dopts;
  dopts.procs = static_cast<int>(flags.get_int("procs"));
  const auto result = dist::ata_dist(1.0, a, dopts);
  std::printf("AtA-D (%2d processes)  : %8.3f s   (%llu messages, %llu words moved)\n",
              dopts.procs, result.seconds,
              static_cast<unsigned long long>(result.traffic.total_messages()),
              static_cast<unsigned long long>(result.traffic.total_words()));

  // --- All three must agree on the lower triangle.
  const double e1 =
      max_abs_diff_lower<double>(c_shared.const_view(), c_serial.const_view());
  const double e2 = max_abs_diff_lower<double>(result.c.const_view(), c_serial.const_view());
  std::printf("max |AtA-S - AtA| = %.2e, max |AtA-D - AtA| = %.2e\n", e1, e2);

  // AtA fills only lower(C); symmetrize to hand downstream code a full
  // matrix.
  symmetrize_from_lower(c_serial.view());
  std::printf("C (top-left corner):\n");
  print_matrix(std::cout, ConstMatrixView<double>(c_serial.block(0, 0, 4, 4)), 3);

  const double tol = mm_tolerance<double>(m, 256.0);
  if (e1 > tol || e2 > tol) {
    std::printf("FAILED: engines disagree beyond tolerance %.2e\n", tol);
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
