// Gram-Schmidt orthogonalization with AA^T verification — another of the
// paper's §1 motivations: "computing AA^T is a straightforward, yet
// effective, method to check for orthogonality", repeated inside
// Gram-Schmidt on the progressively built projection matrix.
//
// We orthonormalize the rows of a random matrix with modified Gram-Schmidt,
// then use the library's AA^T product (aat(), the paper's §3 remark that
// AtA covers both orientations) to verify Q Q^T = I, and show the same
// check failing loudly on the unorthogonalized input.
//
//   ./gram_schmidt [--rows 96] [--cols 512]

#include <cmath>
#include <cstdio>

#include "ata/ata.hpp"
#include "common/cli.hpp"
#include "common/timer.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "matrix/packed.hpp"

namespace {

using namespace atalib;

/// Max |lower(C) - I| over the lower triangle.
double max_dev_from_identity(const Matrix<double>& c) {
  double worst = 0;
  for (index_t i = 0; i < c.rows(); ++i) {
    for (index_t j = 0; j <= i; ++j) {
      worst = std::max(worst, std::abs(c(i, j) - (i == j ? 1.0 : 0.0)));
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.add_int("rows", 96, "vectors to orthogonalize (rows of A)");
  flags.add_int("cols", 512, "ambient dimension (columns of A)");
  if (!flags.parse(argc, argv)) return 1;

  const index_t m = flags.get_int("rows");
  const index_t n = flags.get_int("cols");
  if (m > n) {
    std::printf("need rows <= cols for a full-rank row basis\n");
    return 1;
  }

  auto q = random_gaussian<double>(m, n, 31);

  // Pre-check: random rows are NOT orthonormal.
  auto gram = Matrix<double>::zeros(m, m);
  aat(1.0, q.const_view(), gram.view());
  std::printf("before Gram-Schmidt: max |QQ^T - I| = %.3f (should be large)\n",
              max_dev_from_identity(gram));

  // Modified Gram-Schmidt on rows.
  Timer t;
  for (index_t i = 0; i < m; ++i) {
    for (index_t k = 0; k < i; ++k) {
      double dot = 0;
      for (index_t j = 0; j < n; ++j) dot += q(i, j) * q(k, j);
      for (index_t j = 0; j < n; ++j) q(i, j) -= dot * q(k, j);
    }
    double nrm = 0;
    for (index_t j = 0; j < n; ++j) nrm += q(i, j) * q(i, j);
    nrm = std::sqrt(nrm);
    if (nrm < 1e-12) {
      std::printf("FAILED: rank deficiency at row %ld\n", i);
      return 1;
    }
    for (index_t j = 0; j < n; ++j) q(i, j) /= nrm;
  }
  std::printf("modified Gram-Schmidt (%ld x %ld): %.3f s\n", m, n, t.seconds());

  // Post-check with the Strassen-based AA^T.
  gram.fill(0.0);
  Timer t2;
  aat(1.0, q.const_view(), gram.view());
  const double dev = max_dev_from_identity(gram);
  std::printf("after: max |QQ^T - I| = %.2e via aat() in %.3f s\n", dev, t2.seconds());

  if (dev > 1e-10) {
    std::printf("FAILED: basis not orthonormal\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
