// Least squares via normal equations — the paper's motivating application
// (§1): solve min_x ||A x - b||_2 by forming A^T A with AtA and factoring
// it with Cholesky (A^T A is symmetric positive definite for full-rank A,
// and AtA hands us exactly the lower triangle Cholesky needs).
//
//   ./least_squares [--m 4000] [--n 300] [--noise 0.01]

#include <cmath>
#include <cstdio>
#include <vector>

#include "ata/ata.hpp"
#include "blas/gemm.hpp"
#include "common/cli.hpp"
#include "common/timer.hpp"
#include "matrix/generate.hpp"

namespace {

using namespace atalib;

/// In-place lower Cholesky of the lower triangle of a (upper ignored).
bool cholesky_lower(Matrix<double>& a) {
  const index_t n = a.rows();
  for (index_t j = 0; j < n; ++j) {
    for (index_t k = 0; k < j; ++k) {
      for (index_t i = j; i < n; ++i) a(i, j) -= a(i, k) * a(j, k);
    }
    if (a(j, j) <= 0) return false;
    const double d = std::sqrt(a(j, j));
    for (index_t i = j; i < n; ++i) a(i, j) /= d;
  }
  return true;
}

/// Solve L L^T x = rhs in place.
void cholesky_solve(const Matrix<double>& l, std::vector<double>& x) {
  const index_t n = l.rows();
  for (index_t i = 0; i < n; ++i) {
    double s = x[static_cast<std::size_t>(i)];
    for (index_t j = 0; j < i; ++j) s -= l(i, j) * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = s / l(i, i);
  }
  for (index_t i = n - 1; i >= 0; --i) {
    double s = x[static_cast<std::size_t>(i)];
    for (index_t j = i + 1; j < n; ++j) s -= l(j, i) * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = s / l(i, i);
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.add_int("m", 4000, "observations (rows of A)");
  flags.add_int("n", 300, "parameters (columns of A)");
  flags.add_double("noise", 0.01, "observation noise sigma");
  if (!flags.parse(argc, argv)) return 1;

  const index_t m = flags.get_int("m");
  const index_t n = flags.get_int("n");
  const double noise = flags.get_double("noise");

  // Synthetic regression problem: b = A x_true + noise.
  auto a = random_gaussian<double>(m, n, 1);
  auto x_true = random_gaussian<double>(n, 1, 2);
  auto b = Matrix<double>::zeros(m, 1);
  blas::gemm_nn(1.0, a.const_view(), x_true.const_view(), b.view());
  {
    auto eps = random_gaussian<double>(m, 1, 3);
    for (index_t i = 0; i < m; ++i) b(i, 0) += noise * eps(i, 0);
  }

  std::printf("Normal equations for a %ld x %ld system\n", m, n);

  // A^T A via the Strassen-based AtA (lower triangle only — exactly what
  // Cholesky consumes).
  Timer t_ata;
  auto gram = Matrix<double>::zeros(n, n);
  ata(1.0, a.const_view(), gram.view());
  const double ata_seconds = t_ata.seconds();

  // A^T b.
  auto atb = Matrix<double>::zeros(n, 1);
  blas::gemm_tn(1.0, a.const_view(), b.const_view(), atb.view());

  Timer t_chol;
  if (!cholesky_lower(gram)) {
    std::printf("FAILED: Gram matrix not positive definite\n");
    return 1;
  }
  std::vector<double> x(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] = atb(i, 0);
  cholesky_solve(gram, x);
  const double chol_seconds = t_chol.seconds();

  // Report parameter recovery error.
  double err2 = 0, ref2 = 0;
  for (index_t i = 0; i < n; ++i) {
    const double d = x[static_cast<std::size_t>(i)] - x_true(i, 0);
    err2 += d * d;
    ref2 += x_true(i, 0) * x_true(i, 0);
  }
  const double rel = std::sqrt(err2 / ref2);
  std::printf("A^T A (AtA)      : %7.3f s\n", ata_seconds);
  std::printf("Cholesky + solve : %7.3f s\n", chol_seconds);
  std::printf("||x - x_true|| / ||x_true|| = %.3e  (noise %.0e)\n", rel, noise);

  // With modest noise the recovery error should be of the noise's order.
  if (rel > std::max(1e-6, 100 * noise)) {
    std::printf("FAILED: recovery error unexpectedly large\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
