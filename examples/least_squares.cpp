// Least squares via normal equations — the paper's motivating application
// (§1): solve min_x ||A x - b||_2 by forming A^T A with AtA and factoring
// it with Cholesky (A^T A is symmetric positive definite for full-rank A,
// and AtA hands us exactly the lower triangle Cholesky needs).
//
// An ensemble of regression problems (bootstrap resamples, per-fold
// designs, per-sensor calibrations) shares one shape, so the Gram stage
// is one fused api::Server::submit_batch call: the batch plans the shape
// once and forms every problem's A^T A as a single pool batch, with one
// future per problem. The designs here are tall (m >> n), so the query
// planner picks the blocked panel-SYRK engine over the Strassen
// recursion when the measured crossover says so.
//
//   ./least_squares [--m 4000] [--n 300] [--noise 0.01] [--problems 8]

#include <cmath>
#include <cstdio>
#include <vector>

#include "api/batch.hpp"
#include "api/server.hpp"
#include "blas/gemm.hpp"
#include "common/cli.hpp"
#include "common/timer.hpp"
#include "matrix/generate.hpp"

namespace {

using namespace atalib;

/// In-place lower Cholesky of the lower triangle of a (upper ignored).
bool cholesky_lower(Matrix<double>& a) {
  const index_t n = a.rows();
  for (index_t j = 0; j < n; ++j) {
    for (index_t k = 0; k < j; ++k) {
      for (index_t i = j; i < n; ++i) a(i, j) -= a(i, k) * a(j, k);
    }
    if (a(j, j) <= 0) return false;
    const double d = std::sqrt(a(j, j));
    for (index_t i = j; i < n; ++i) a(i, j) /= d;
  }
  return true;
}

/// Solve L L^T x = rhs in place.
void cholesky_solve(const Matrix<double>& l, std::vector<double>& x) {
  const index_t n = l.rows();
  for (index_t i = 0; i < n; ++i) {
    double s = x[static_cast<std::size_t>(i)];
    for (index_t j = 0; j < i; ++j) s -= l(i, j) * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = s / l(i, i);
  }
  for (index_t i = n - 1; i >= 0; --i) {
    double s = x[static_cast<std::size_t>(i)];
    for (index_t j = i + 1; j < n; ++j) s -= l(j, i) * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = s / l(i, i);
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.add_int("m", 4000, "observations (rows of A)");
  flags.add_int("n", 300, "parameters (columns of A)");
  flags.add_double("noise", 0.01, "observation noise sigma");
  flags.add_int("problems", 8, "independent problems in the ensemble");
  if (!flags.parse(argc, argv)) return 1;

  const index_t m = flags.get_int("m");
  const index_t n = flags.get_int("n");
  const double noise = flags.get_double("noise");
  const int problems = std::max(1, static_cast<int>(flags.get_int("problems")));

  // Synthetic ensemble: problem s has its own design and its own truth,
  //   b_s = A_s x_s + noise.
  std::vector<Matrix<double>> a, x_true, b;
  for (int s = 0; s < problems; ++s) {
    a.push_back(random_gaussian<double>(m, n, 3 * s + 1));
    x_true.push_back(random_gaussian<double>(n, 1, 3 * s + 2));
    b.push_back(Matrix<double>::zeros(m, 1));
    blas::gemm_nn(1.0, a.back().const_view(), x_true.back().const_view(), b.back().view());
    auto eps = random_gaussian<double>(m, 1, 3 * s + 3);
    for (index_t i = 0; i < m; ++i) b.back()(i, 0) += noise * eps(i, 0);
  }

  std::printf("Normal equations for %d independent %ld x %ld systems\n", problems, m, n);

  // All A_s^T A_s in ONE fused batch: the problems share a shape, so the
  // batch is one plan lookup and one pool batch with per-problem futures.
  api::Server server;
  std::vector<Matrix<double>> gram;
  for (int s = 0; s < problems; ++s) gram.push_back(Matrix<double>::zeros(n, n));
  std::vector<api::AtaRequest<double>> requests;
  for (int s = 0; s < problems; ++s) {
    requests.push_back({1.0, a[static_cast<std::size_t>(s)].const_view(),
                        gram[static_cast<std::size_t>(s)].view()});
  }
  Timer t_ata;
  for (auto& f : server.submit_batch<double>(requests)) f.get();
  const double ata_seconds = t_ata.seconds();
  std::printf("A^T A (submit_batch): %7.3f s for %d Grams (%zu plan miss(es))\n",
              ata_seconds, problems, static_cast<std::size_t>(server.plan_stats().misses));

  // Per-problem back end: A^T b, Cholesky, solve, recovery error.
  Timer t_chol;
  double worst_rel = 0.0;
  for (int s = 0; s < problems; ++s) {
    auto& g = gram[static_cast<std::size_t>(s)];
    auto atb = Matrix<double>::zeros(n, 1);
    blas::gemm_tn(1.0, a[static_cast<std::size_t>(s)].const_view(),
                  b[static_cast<std::size_t>(s)].const_view(), atb.view());
    if (!cholesky_lower(g)) {
      std::printf("FAILED: Gram matrix %d not positive definite\n", s);
      return 1;
    }
    std::vector<double> x(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] = atb(i, 0);
    cholesky_solve(g, x);

    double err2 = 0, ref2 = 0;
    for (index_t i = 0; i < n; ++i) {
      const double d = x[static_cast<std::size_t>(i)] - x_true[static_cast<std::size_t>(s)](i, 0);
      err2 += d * d;
      ref2 += x_true[static_cast<std::size_t>(s)](i, 0) * x_true[static_cast<std::size_t>(s)](i, 0);
    }
    worst_rel = std::max(worst_rel, std::sqrt(err2 / ref2));
  }
  const double chol_seconds = t_chol.seconds();

  std::printf("Cholesky + solve    : %7.3f s total\n", chol_seconds);
  std::printf("max ||x - x_true|| / ||x_true|| = %.3e  (noise %.0e)\n", worst_rel, noise);

  // With modest noise the recovery error should be of the noise's order.
  if (worst_rel > std::max(1e-6, 100 * noise)) {
    std::printf("FAILED: recovery error unexpectedly large\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
