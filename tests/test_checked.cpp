// Checked-arena debug mode (ATALIB_CHECKED, DESIGN.md §9).
//
// The negative cases are gtest death tests: a checked-mode violation calls
// checked_abort(), which prints the broken invariant and aborts, and the
// test asserts both the death and the message. They compile away with the
// instrumentation (release builds must not even reference the failure
// paths), so this file contributes only the build-mode sanity check there;
// the checked-arena CI leg runs the whole suite with the instrumentation on
// and these tests prove it actually fires.

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "common/arena.hpp"
#include "common/checked.hpp"
#include "runtime/workspace.hpp"

namespace atalib {
namespace {

TEST(CheckedArena, BuildModeIsConsistent) {
  // ATALIB_CHECKED is a PUBLIC compile definition: the library and every
  // test TU must agree on the arena layout. This test existing in both
  // modes keeps the suite runnable under either.
#if ATALIB_CHECKED
  SUCCEED() << "checked-arena instrumentation is ON";
#else
  SUCCEED() << "checked-arena instrumentation is OFF (release layout)";
#endif
}

#if ATALIB_CHECKED

TEST(CheckedArenaDeath, CanaryOverwriteCaughtOnRestore) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Arena<double> a(64);
        const auto cp = a.checkpoint();
        double* p = a.allocate(8);
        p[8] = 1.0;  // deliberate one-past-the-end write: lands on the canary
        a.restore(cp);
      },
      "arena canary overwritten");
}

TEST(CheckedArenaDeath, CanaryOverwriteCaughtOnReset) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Arena<float> a(32);
        float* p = a.allocate(4);
        p[4] = 2.0f;
        a.reset();
      },
      "arena canary overwritten");
}

TEST(CheckedArena, ExactFitLeavesNoCanaryAndPasses) {
  // An allocation that fills the slab has no room for a canary; restore
  // must not false-positive on it.
  Arena<double> a(16);
  const auto cp = a.checkpoint();
  double* p = a.allocate(16);
  for (int i = 0; i < 16; ++i) p[i] = 1.0;
  a.restore(cp);
  EXPECT_EQ(a.used(), 0u);
}

TEST(CheckedArena, RolledBackMemoryIsPoisonFilled) {
  Arena<double> a(64);
  const auto cp = a.checkpoint();
  double* p = a.allocate(8);
  for (int i = 0; i < 8; ++i) p[i] = 42.0;
  a.restore(cp);
  unsigned char expect[sizeof(double)];
  std::memset(expect, kArenaPoisonByte, sizeof(expect));
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(std::memcmp(&p[i], expect, sizeof(double)), 0)
        << "released element " << i << " not poisoned";
  }
}

TEST(CheckedArenaDeath, CrossThreadLeaseUseCaught) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        runtime::Workspace ws;
        Arena<double>& a = ws.arena<double>(64);
        // The lease belongs to this thread; allocating from another thread
        // is the cross-task aliasing bug class.
        std::thread t([&a] { (void)a.allocate(1); });
        t.join();
      },
      "arena lease violated");
}

TEST(CheckedArena, SameThreadLeaseAllocationsPass) {
  runtime::Workspace ws;
  Arena<double>& a = ws.arena<double>(64);
  EXPECT_NE(a.allocate(8), nullptr);
  EXPECT_NE(a.allocate(8), nullptr);
  // Re-leasing (the next task on this slot) resets and re-stamps.
  Arena<double>& b = ws.arena<double>(64);
  EXPECT_NE(b.allocate(16), nullptr);
}

TEST(CheckedArena, WarmThenCoveredRequestNeverGrows) {
  // The §5 ordering in its positive form: after warm(n), a request <= n is
  // satisfied without growth (a grow there would abort in checked mode).
  runtime::Workspace ws;
  ws.warm(256, 256);
  const std::size_t grows = ws.grow_count();
  (void)ws.arena<double>(128);
  (void)ws.arena<float>(256);
  EXPECT_EQ(ws.grow_count(), grows);
}

#endif  // ATALIB_CHECKED

}  // namespace
}  // namespace atalib
