// Unit tests for Matrix, views, packed storage, generators and comparators.

#include <gtest/gtest.h>

#include <cmath>

#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "matrix/io.hpp"
#include "matrix/matrix.hpp"
#include "matrix/packed.hpp"

namespace atalib {
namespace {

TEST(Matrix, InitializerListAndIndexing) {
  Matrix<double> m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(1, 2), 6);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix<double>{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, ZerosAndIdentity) {
  auto z = Matrix<float>::zeros(3, 4);
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 4; ++j) EXPECT_EQ(z(i, j), 0.0f);
  auto id = Matrix<double>::identity(3);
  EXPECT_DOUBLE_EQ(id(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
}

TEST(Matrix, CloneIsDeep) {
  Matrix<double> a{{1, 2}, {3, 4}};
  Matrix<double> b = a.clone();
  b(0, 0) = 99;
  EXPECT_DOUBLE_EQ(a(0, 0), 1.0);
}

TEST(Matrix, TransposedSwapsShape) {
  Matrix<double> a{{1, 2, 3}, {4, 5, 6}};
  Matrix<double> t = a.transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
}

TEST(View, BlockSharesStorage) {
  Matrix<double> a = Matrix<double>::zeros(4, 6);
  auto blk = a.block(1, 2, 2, 3);
  blk(0, 0) = 7.5;
  EXPECT_DOUBLE_EQ(a(1, 2), 7.5);
  EXPECT_EQ(blk.stride, 6);
}

TEST(View, NestedBlocksCompose) {
  Matrix<double> a(8, 8);
  for (index_t i = 0; i < 8; ++i)
    for (index_t j = 0; j < 8; ++j) a(i, j) = static_cast<double>(10 * i + j);
  auto outer = a.block(2, 2, 4, 4);
  auto inner = outer.block(1, 1, 2, 2);
  EXPECT_DOUBLE_EQ(inner(0, 0), 33.0);
  EXPECT_DOUBLE_EQ(inner(1, 1), 44.0);
}

TEST(View, HalfHelpersCeilFloor) {
  EXPECT_EQ(half_up(5), 3);
  EXPECT_EQ(half_down(5), 2);
  EXPECT_EQ(half_up(4), 2);
  EXPECT_EQ(half_down(4), 2);
  EXPECT_EQ(half_up(1), 1);
  EXPECT_EQ(half_down(1), 0);
}

TEST(View, CopyIntoAndFill) {
  Matrix<double> src{{1, 2}, {3, 4}};
  Matrix<double> dst = Matrix<double>::zeros(4, 4);
  copy_into(src.const_view(), dst.block(1, 1, 2, 2));
  EXPECT_DOUBLE_EQ(dst(2, 2), 4.0);
  fill_view(dst.block(0, 0, 1, 4), 9.0);
  EXPECT_DOUBLE_EQ(dst(0, 3), 9.0);
}

TEST(Packed, RoundTripPreservesLowerTriangle) {
  Matrix<double> a{{1, 0, 0}, {2, 3, 0}, {4, 5, 6}};
  auto p = PackedLower<double>::pack(a.const_view());
  EXPECT_EQ(p.size(), 6);
  Matrix<double> out = Matrix<double>::zeros(3, 3);
  p.unpack_into(out.view());
  EXPECT_DOUBLE_EQ(out(2, 1), 5.0);
  EXPECT_DOUBLE_EQ(out(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(out(0, 2), 0.0);  // upper untouched (was zero)
}

TEST(Packed, AddIntoAccumulates) {
  Matrix<double> a{{1, 0}, {2, 3}};
  auto p = PackedLower<double>::pack(a.const_view());
  Matrix<double> acc{{10, 0}, {10, 10}};
  p.add_into(acc.view());
  EXPECT_DOUBLE_EQ(acc(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(acc(1, 0), 12.0);
  EXPECT_DOUBLE_EQ(acc(1, 1), 13.0);
}

TEST(Packed, PackedSizeFormula) {
  EXPECT_EQ(PackedLower<double>::packed_size(1), 1);
  EXPECT_EQ(PackedLower<double>::packed_size(10), 55);
}

TEST(Packed, SymmetrizeFromLower) {
  Matrix<double> c{{1, 0, 0}, {2, 3, 0}, {4, 5, 6}};
  symmetrize_from_lower(c.view());
  EXPECT_DOUBLE_EQ(c(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 2), 5.0);
}

TEST(Generate, DeterministicInSeed) {
  auto a = random_uniform<double>(5, 7, 11);
  auto b = random_uniform<double>(5, 7, 11);
  auto c = random_uniform<double>(5, 7, 12);
  EXPECT_EQ(max_abs_diff<double>(a.const_view(), b.const_view()), 0.0);
  EXPECT_GT(max_abs_diff<double>(a.const_view(), c.const_view()), 0.0);
}

TEST(Generate, UniformRange) {
  auto a = random_uniform<float>(50, 50, 3);
  for (index_t i = 0; i < a.size(); ++i) {
    ASSERT_GE(a.data()[i], -1.0f);
    ASSERT_LT(a.data()[i], 1.0f);
  }
}

TEST(Generate, IntegerEntriesAreExactIntegers) {
  auto a = random_integer<double>(20, 20, 5, 17);
  for (index_t i = 0; i < a.size(); ++i) {
    const double v = a.data()[i];
    EXPECT_EQ(v, std::round(v));
    EXPECT_LE(std::abs(v), 5.0);
  }
}

TEST(Generate, SpdIsSymmetricWithNonnegativeDiagonal) {
  auto s = random_spd<double>(16, 23);
  for (index_t i = 0; i < 16; ++i) {
    EXPECT_GE(s(i, i), 0.0);
    for (index_t j = 0; j < i; ++j) EXPECT_DOUBLE_EQ(s(i, j), s(j, i));
  }
}

TEST(Compare, MaxAbsDiffAndLowerVariant) {
  Matrix<double> a{{1, 2}, {3, 4}};
  Matrix<double> b{{1, 9}, {3, 5}};
  EXPECT_DOUBLE_EQ(max_abs_diff<double>(a.const_view(), b.const_view()), 7.0);
  // Lower variant ignores the (0,1) difference.
  EXPECT_DOUBLE_EQ(max_abs_diff_lower<double>(a.const_view(), b.const_view()), 1.0);
}

TEST(Compare, FrobeniusAndRelativeError) {
  Matrix<double> a{{3, 4}};
  EXPECT_DOUBLE_EQ(frobenius_norm<double>(a.const_view()), 5.0);
  Matrix<double> b{{3, 4}};
  EXPECT_DOUBLE_EQ(relative_error<double>(a.const_view(), b.const_view()), 0.0);
}

TEST(Compare, ToleranceScalesWithInnerDim) {
  EXPECT_GT(mm_tolerance<double>(1000), mm_tolerance<double>(10));
  EXPECT_GT(mm_tolerance<float>(10), mm_tolerance<double>(10));
}

TEST(Io, PrintTruncatesLargeMatrices) {
  auto a = Matrix<double>::zeros(100, 100);
  const std::string s = to_string(ConstMatrixView<double>(a.block(0, 0, 100, 100)), 2);
  EXPECT_NE(s.find("100 x 100"), std::string::npos);
}

}  // namespace
}  // namespace atalib
