// Unit tests for level-1 kernels, especially the virtual-padding block sums
// that implement the paper's odd-size handling (§3.1).

#include <gtest/gtest.h>

#include "blas/level1.hpp"
#include "matrix/matrix.hpp"

namespace atalib {
namespace {

TEST(Axpy, BasicAccumulate) {
  double x[4] = {1, 2, 3, 4};
  double y[4] = {10, 10, 10, 10};
  blas::axpy<double>(4, 2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[3], 18.0);
}

TEST(ViewAxpy, AccumulatesSmallerIntoLarger) {
  Matrix<double> x{{1, 2}, {3, 4}};
  Matrix<double> y = Matrix<double>::zeros(3, 3);
  fill_view(y.view(), 1.0);
  blas::view_axpy(2.0, x.const_view(), y.block(0, 0, 3, 3));
  EXPECT_DOUBLE_EQ(y(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(y(1, 1), 9.0);
  // Cells outside x's extent are untouched (virtual zero contribution).
  EXPECT_DOUBLE_EQ(y(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(y(0, 2), 1.0);
}

TEST(Dot, MatchesManualSum) {
  double x[3] = {1, 2, 3};
  double y[3] = {4, 5, 6};
  EXPECT_DOUBLE_EQ(blas::dot<double>(3, x, y), 32.0);
}

TEST(Scal, ScalesStridedView) {
  Matrix<double> a{{1, 2, 3}, {4, 5, 6}};
  blas::scal(3.0, a.block(0, 1, 2, 2));
  EXPECT_DOUBLE_EQ(a(0, 0), 1.0);  // outside the view
  EXPECT_DOUBLE_EQ(a(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(a(1, 2), 18.0);
}

// -- Virtual padding combinations -------------------------------------
// dst is m1 x n1; operands may each be short one row, one column, or both.
// The reference is padding with explicit zeros.

struct PadCase {
  index_t dst_r, dst_c;
  index_t a_r, a_c;
  index_t b_r, b_c;
};

class BlockCombineTest : public ::testing::TestWithParam<PadCase> {};

Matrix<double> ramp(index_t r, index_t c, double offset) {
  Matrix<double> m(r, c);
  for (index_t i = 0; i < r; ++i)
    for (index_t j = 0; j < c; ++j) m(i, j) = offset + static_cast<double>(i * 13 + j);
  return m;
}

TEST_P(BlockCombineTest, AddMatchesExplicitPadding) {
  const PadCase p = GetParam();
  auto a = ramp(p.a_r, p.a_c, 1.0);
  auto b = ramp(p.b_r, p.b_c, 100.0);
  Matrix<double> dst(p.dst_r, p.dst_c);
  fill_view(dst.view(), -7.0);  // must be fully overwritten
  blas::block_add(a.const_view(), b.const_view(), dst.view());
  for (index_t i = 0; i < p.dst_r; ++i) {
    for (index_t j = 0; j < p.dst_c; ++j) {
      const double av = (i < p.a_r && j < p.a_c) ? a(i, j) : 0.0;
      const double bv = (i < p.b_r && j < p.b_c) ? b(i, j) : 0.0;
      ASSERT_DOUBLE_EQ(dst(i, j), av + bv) << "at " << i << "," << j;
    }
  }
}

TEST_P(BlockCombineTest, SubMatchesExplicitPadding) {
  const PadCase p = GetParam();
  auto a = ramp(p.a_r, p.a_c, 1.0);
  auto b = ramp(p.b_r, p.b_c, 100.0);
  Matrix<double> dst(p.dst_r, p.dst_c);
  fill_view(dst.view(), -7.0);
  blas::block_sub(a.const_view(), b.const_view(), dst.view());
  for (index_t i = 0; i < p.dst_r; ++i) {
    for (index_t j = 0; j < p.dst_c; ++j) {
      const double av = (i < p.a_r && j < p.a_c) ? a(i, j) : 0.0;
      const double bv = (i < p.b_r && j < p.b_c) ? b(i, j) : 0.0;
      ASSERT_DOUBLE_EQ(dst(i, j), av - bv);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRaggedCombos, BlockCombineTest,
    ::testing::Values(
        PadCase{4, 5, 4, 5, 4, 5},   // both full
        PadCase{4, 5, 3, 5, 4, 5},   // a short a row
        PadCase{4, 5, 4, 4, 4, 5},   // a short a column
        PadCase{4, 5, 3, 4, 4, 5},   // a short both
        PadCase{4, 5, 4, 5, 3, 5},   // b short a row
        PadCase{4, 5, 4, 5, 4, 4},   // b short a column
        PadCase{4, 5, 4, 5, 3, 4},   // b short both
        PadCase{4, 5, 3, 5, 4, 4},   // mixed raggedness
        PadCase{4, 5, 3, 4, 3, 4},   // both short both
        PadCase{1, 1, 1, 1, 1, 1},   // degenerate 1x1
        PadCase{2, 2, 1, 1, 2, 2},   // tiny with padding
        PadCase{2, 2, 1, 2, 2, 1})); // tiny crossed

TEST(BlockCopy, ZeroFillsPadding) {
  Matrix<double> a{{1, 2}, {3, 4}};
  Matrix<double> dst(3, 3);
  fill_view(dst.view(), 5.0);
  blas::block_copy(a.const_view(), dst.view());
  EXPECT_DOUBLE_EQ(dst(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(dst(2, 0), 0.0);
  EXPECT_DOUBLE_EQ(dst(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(dst(2, 2), 0.0);
}

TEST(BlockCombine, WorksOnStridedSubviews) {
  // The Strassen recursion always calls these on strided blocks; make sure
  // strides are honored.
  Matrix<double> big(6, 6);
  for (index_t i = 0; i < 6; ++i)
    for (index_t j = 0; j < 6; ++j) big(i, j) = static_cast<double>(i * 6 + j);
  Matrix<double> dst = Matrix<double>::zeros(2, 2);
  blas::block_add(ConstMatrixView<double>(big.block(0, 0, 2, 2)),
                  ConstMatrixView<double>(big.block(3, 3, 2, 2)), dst.view());
  EXPECT_DOUBLE_EQ(dst(0, 0), 0.0 + 21.0);
  EXPECT_DOUBLE_EQ(dst(1, 1), 7.0 + 28.0);
}

}  // namespace
}  // namespace atalib
