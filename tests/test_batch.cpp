// Tests for batched small-Gram serving (api/batch.hpp +
// Server::submit_batch): fused-batch results bitwise-identical to the
// per-request serial loop for both dtypes, one plan-cache lookup per
// distinct shape per batch, the warm batched path performing zero schedule
// builds / zero workspace slab allocations / zero thread-local pack
// allocations, all-or-nothing validation, and per-request error isolation
// plumbing (empty batches, rejected batches leave no futures behind).

#include <gtest/gtest.h>

#include <future>
#include <stdexcept>
#include <vector>

#include "api/batch.hpp"
#include "api/execute.hpp"
#include "api/server.hpp"
#include "ata/ata.hpp"
#include "blas/kernels/pack.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "sched/dist_tree.hpp"
#include "sched/shared_schedule.hpp"

namespace atalib {
namespace {

RecurseOptions tiny_base() {
  RecurseOptions opts;
  opts.base_case_elements = 256;
  opts.min_dim = 2;
  return opts;
}

// Batched-serving plan shape with explicit knobs everywhere so no test
// consults the measured tuner: tiny base case, tall-skinny planner
// disabled unless a test opts in.
SharedOptions batch_opts(int threads, int oversub) {
  SharedOptions so;
  so.threads = threads;
  so.oversub = oversub;
  so.recurse = tiny_base();
  so.tall_skinny_ratio = -1;
  return so;
}

std::uint64_t total_schedule_builds() {
  return sched::shared_schedule_builds() + sched::dist_tree_builds();
}

std::size_t pool_slab_grows(runtime::ThreadPool& pool) {
  std::size_t total = 0;
  for (int s = 0; s < pool.concurrency(); ++s) total += pool.workspace(s).grow_count();
  return total;
}

struct Shape {
  index_t m, n;
};

template <typename T>
void expect_batch_matches_serial(const char* tag) {
  // A mixed-shape batch with repeats, every request checked bitwise
  // against the serial recursion (integer inputs make every execution
  // order produce identical floats).
  api::Server server(api::Server::Options{4, 8});
  const Shape shapes[] = {{64, 64}, {96, 80}, {120, 88}, {96, 80}, {64, 64}, {96, 80}};
  constexpr int kReqs = static_cast<int>(sizeof(shapes) / sizeof(shapes[0]));

  std::vector<Matrix<T>> inputs, outputs, refs;
  std::vector<api::AtaRequest<T>> requests;
  for (int i = 0; i < kReqs; ++i) {
    const auto [m, n] = shapes[i];
    inputs.push_back(random_integer<T>(m, n, 3, 100 + i));
    outputs.push_back(Matrix<T>::zeros(n, n));
    auto c_ref = Matrix<T>::zeros(n, n);
    ata(T(2), inputs.back().const_view(), c_ref.view(), tiny_base());
    refs.push_back(std::move(c_ref));
    requests.push_back({T(2), inputs.back().const_view(), outputs.back().view()});
  }

  auto futures = server.submit_batch<T>(requests, batch_opts(2, 2));
  ASSERT_EQ(futures.size(), static_cast<std::size_t>(kReqs));
  for (auto& f : futures) f.get();
  for (int i = 0; i < kReqs; ++i) {
    EXPECT_EQ(max_abs_diff_lower<T>(outputs[static_cast<std::size_t>(i)].const_view(),
                                    refs[static_cast<std::size_t>(i)].const_view()),
              0.0)
        << tag << " request " << i;
  }
}

TEST(SubmitBatch, FusedBatchMatchesSerialBitwiseF64) {
  expect_batch_matches_serial<double>("f64");
}

TEST(SubmitBatch, FusedBatchMatchesSerialBitwiseF32) {
  expect_batch_matches_serial<float>("f32");
}

TEST(SubmitBatch, OnePlanLookupPerDistinctShapePerBatch) {
  api::Server server(api::Server::Options{2, 8});
  const Shape shapes[] = {{64, 64}, {96, 80}, {64, 64}, {120, 88}, {96, 80}, {64, 64}};
  constexpr int kReqs = static_cast<int>(sizeof(shapes) / sizeof(shapes[0]));

  std::vector<Matrix<double>> inputs, outputs;
  std::vector<api::AtaRequest<double>> requests;
  for (int i = 0; i < kReqs; ++i) {
    const auto [m, n] = shapes[i];
    inputs.push_back(random_integer<double>(m, n, 2, 7 + i));
    outputs.push_back(Matrix<double>::zeros(n, n));
    requests.push_back({1.0, inputs.back().const_view(), outputs.back().view()});
  }

  for (auto& f : server.submit_batch<double>(requests, batch_opts(1, 1))) f.get();
  auto s = server.plan_stats();
  EXPECT_EQ(s.misses, 3u) << "3 distinct shapes must cost exactly 3 cache lookups";
  EXPECT_EQ(s.hits, 0u) << "repeats within one batch must not re-enter the cache";

  for (auto& f : server.submit_batch<double>(requests, batch_opts(1, 1))) f.get();
  s = server.plan_stats();
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.hits, 3u) << "a repeat batch hits once per distinct shape, not per request";
}

TEST(SubmitBatch, DtypeIsPartOfThePlanKey) {
  // The same (m, n) served in f32 and f64 must plan twice: the key's dtype
  // separates them (satellite c).
  api::Server server(api::Server::Options{2, 8});
  const auto a64 = random_integer<double>(64, 48, 2, 11);
  const auto a32 = random_integer<float>(64, 48, 2, 11);
  auto c64 = Matrix<double>::zeros(48, 48);
  auto c32 = Matrix<float>::zeros(48, 48);

  api::AtaRequest<double> r64{1.0, a64.const_view(), c64.view()};
  api::AtaRequest<float> r32{1.0f, a32.const_view(), c32.view()};
  for (auto& f : server.submit_batch<double>({&r64, 1}, batch_opts(1, 1))) f.get();
  for (auto& f : server.submit_batch<float>({&r32, 1}, batch_opts(1, 1))) f.get();
  EXPECT_EQ(server.plan_stats().misses, 2u)
      << "f32 and f64 on one shape must be distinct plans";
  EXPECT_NE(api::shared_plan_key(api::Dtype::kF32, 64, 48, batch_opts(1, 1)),
            api::shared_plan_key(api::Dtype::kF64, 64, 48, batch_opts(1, 1)));
}

TEST(SubmitBatch, WarmBatchedPathIsSetupAndAllocationFree) {
  // The acceptance invariant of DESIGN.md §8: once a batch's shapes are
  // planned and the pool is warm, repeat batches of any size perform zero
  // schedule builds, zero workspace slab allocations, and zero
  // thread-local pack-buffer allocations — for f64 and f32.
  api::Server server(api::Server::Options{4, 8});
  constexpr int kReqs = 24;

  std::vector<Matrix<double>> in64;
  std::vector<Matrix<double>> out64;
  std::vector<Matrix<float>> in32;
  std::vector<Matrix<float>> out32;
  std::vector<api::AtaRequest<double>> req64;
  std::vector<api::AtaRequest<float>> req32;
  for (int i = 0; i < kReqs; ++i) {
    const index_t n = (i % 2 == 0) ? 64 : 88;
    const index_t m = n + 32;
    in64.push_back(random_integer<double>(m, n, 2, 200 + i));
    out64.push_back(Matrix<double>::zeros(n, n));
    req64.push_back({1.0, in64.back().const_view(), out64.back().view()});
    in32.push_back(random_integer<float>(m, n, 2, 300 + i));
    out32.push_back(Matrix<float>::zeros(n, n));
    req32.push_back({1.0f, in32.back().const_view(), out32.back().view()});
  }

  // Cold pass: plans build, the pool warms (both dtype slabs).
  for (auto& f : server.submit_batch<double>(req64, batch_opts(1, 1))) f.get();
  for (auto& f : server.submit_batch<float>(req32, batch_opts(1, 1))) f.get();

  const std::uint64_t builds = total_schedule_builds();
  const std::size_t grows = pool_slab_grows(server.executor());
  const std::uint64_t packs = blas::kernels::thread_pack_allocs().load();
  const auto warm_stats = server.plan_stats();
  for (int rep = 0; rep < 4; ++rep) {
    for (auto& f : server.submit_batch<double>(req64, batch_opts(1, 1))) f.get();
    for (auto& f : server.submit_batch<float>(req32, batch_opts(1, 1))) f.get();
  }
  EXPECT_EQ(total_schedule_builds(), builds)
      << "warm batches must not rebuild any schedule";
  EXPECT_EQ(pool_slab_grows(server.executor()), grows)
      << "warm batches must not allocate workspace slabs";
  EXPECT_EQ(blas::kernels::thread_pack_allocs().load(), packs)
      << "warm batch tasks must pack from the shared per-worker arenas";
  EXPECT_EQ(server.plan_stats().misses, warm_stats.misses)
      << "warm batches must not plan";
}

TEST(SubmitBatch, InvalidRequestRejectsWholeBatchBeforeEnqueue) {
  api::Server server(api::Server::Options{2, 8});
  const auto a0 = random_integer<double>(64, 48, 2, 1);
  const auto a1 = random_integer<double>(64, 48, 2, 2);
  auto c0 = Matrix<double>::zeros(48, 48);
  auto c_bad = Matrix<double>::zeros(64, 64);  // wrong: must be 48 x 48

  std::vector<api::AtaRequest<double>> requests = {
      {1.0, a0.const_view(), c0.view()},
      {1.0, a1.const_view(), c_bad.view()},
  };
  EXPECT_THROW(server.submit_batch<double>(requests, batch_opts(1, 1)),
               std::invalid_argument);
  // All-or-nothing: the good request must not have executed either.
  EXPECT_EQ(max_abs_diff_lower<double>(c0.const_view(),
                                       Matrix<double>::zeros(48, 48).const_view()),
            0.0);

  // Bad options are rejected before any request is examined.
  EXPECT_THROW(server.submit_batch<double>(requests, batch_opts(0, 1)),
               std::invalid_argument);
  SharedOptions bad_ratio = batch_opts(1, 1);
  bad_ratio.tall_skinny_ratio = -2;
  EXPECT_THROW(server.submit_batch<double>(requests, bad_ratio), std::invalid_argument);

  // The server still serves after rejected batches.
  std::vector<api::AtaRequest<double>> good = {{1.0, a0.const_view(), c0.view()}};
  for (auto& f : server.submit_batch<double>(good, batch_opts(1, 1))) f.get();
}

TEST(SubmitBatch, EmptyBatchReturnsNoFutures) {
  api::Server server(api::Server::Options{2, 4});
  std::vector<api::AtaRequest<double>> none;
  EXPECT_TRUE(server.submit_batch<double>(none).empty());
  EXPECT_EQ(server.plan_stats().hits + server.plan_stats().misses, 0u);
}

TEST(SubmitBatch, DefaultOverloadUsesSerialPerRequestPlans) {
  // The default batched plan shape is width 1 / oversub 1: one task per
  // request, so a 5-request batch runs exactly 5 tasks and the plan key it
  // caches under is the serial one.
  api::Server server(api::Server::Options{4, 8});
  const auto a = random_integer<double>(96, 80, 2, 51);
  auto c_ref = Matrix<double>::zeros(80, 80);
  ata(1.0, a.const_view(), c_ref.view());

  std::vector<Matrix<double>> outs;
  std::vector<api::AtaRequest<double>> requests;
  for (int i = 0; i < 5; ++i) {
    outs.push_back(Matrix<double>::zeros(80, 80));
    requests.push_back({1.0, a.const_view(), outs.back().view()});
  }
  for (auto& f : server.submit_batch<double>(requests)) f.get();
  for (const auto& out : outs) {
    EXPECT_EQ(max_abs_diff_lower<double>(out.const_view(), c_ref.const_view()), 0.0);
  }
  SharedOptions serial;
  serial.threads = 1;
  serial.oversub = 1;
  EXPECT_TRUE(server.plans().contains(
      api::shared_plan_key(api::dtype_of<double>(), 96, 80, serial)));
}

TEST(BuildBatchPlan, FlattensTasksAndSharesPlansAcrossRequests) {
  api::PlanCache cache(8);
  const auto a_small = random_integer<double>(64, 48, 2, 61);
  const auto a_big = random_integer<double>(96, 80, 2, 62);
  auto c_small0 = Matrix<double>::zeros(48, 48);
  auto c_small1 = Matrix<double>::zeros(48, 48);
  auto c_big = Matrix<double>::zeros(80, 80);
  std::vector<api::AtaRequest<double>> requests = {
      {1.0, a_small.const_view(), c_small0.view()},
      {1.0, a_big.const_view(), c_big.view()},
      {1.0, a_small.const_view(), c_small1.view()},
  };
  const auto opts = batch_opts(2, 2);
  const auto batch = api::build_batch_plan<double>(cache, requests, opts);

  ASSERT_EQ(batch.plans.size(), 2u);
  ASSERT_EQ(batch.plan_of_request.size(), 3u);
  EXPECT_EQ(batch.plan_of_request[0], 0);
  EXPECT_EQ(batch.plan_of_request[1], 1);
  EXPECT_EQ(batch.plan_of_request[2], 0) << "repeat shapes must share one plan";
  ASSERT_EQ(batch.task_offset.size(), 4u);
  EXPECT_EQ(batch.task_offset[0], 0);
  const int per_plan = 2 * 2;  // threads x oversub tasks per request
  EXPECT_EQ(batch.total_tasks(), 3 * per_plan);
  EXPECT_GE(batch.workspace_bound, batch.plans[0]->workspace_bound());
  EXPECT_GE(batch.workspace_bound, batch.plans[1]->workspace_bound());
}

}  // namespace
}  // namespace atalib
