// Tests for the task-tree schedulers (§4.1): level formulas, exact-P leaf
// counts, disjoint writes (AtA-S), coverage, and tree invariants (AtA-D).

#include <gtest/gtest.h>

#include <set>

#include "sched/dist_tree.hpp"
#include "sched/levels.hpp"
#include "sched/shared_schedule.hpp"

namespace atalib::sched {
namespace {

TEST(Levels, PaperSharedFormulaAnchors) {
  // eq. (6) hand-evaluated anchor points.
  EXPECT_EQ(paper_levels_shared(1), 0);
  EXPECT_EQ(paper_levels_shared(2), 1);
  EXPECT_EQ(paper_levels_shared(3), 1);
  EXPECT_EQ(paper_levels_shared(4), 2);   // P/2 = 2, k=0, 2 mod 4 != 0
  EXPECT_EQ(paper_levels_shared(8), 2);   // P/2 = 4, k=1, 4 mod 4 == 0
  EXPECT_EQ(paper_levels_shared(16), 2);  // P/2 = 8, k=1, 8 mod 4 == 0
  EXPECT_EQ(paper_levels_shared(32), 3);  // P/2 = 16, k=2, 16 mod 16 == 0
}

TEST(Levels, PaperDistFormulaAnchors) {
  // eq. (5) hand-evaluated anchor points.
  EXPECT_EQ(paper_levels_dist(1), 0);
  EXPECT_EQ(paper_levels_dist(2), 1);
  EXPECT_EQ(paper_levels_dist(6), 1);
  EXPECT_EQ(paper_levels_dist(7), 2);   // P/4 = 1, k=0, 1 mod 8 != 0
  EXPECT_EQ(paper_levels_dist(16), 2);  // P/4 = 4, k=0, 4 mod 8 != 0
  EXPECT_EQ(paper_levels_dist(32), 2);  // P/4 = 8, k=1, 8 mod 8 == 0
  EXPECT_EQ(paper_levels_dist(64), 2);  // P/4 = 16, k=1, 16 mod 8 == 0
  EXPECT_EQ(paper_levels_dist(68), 3);  // P/4 = 17, k=1, 17 mod 8 != 0
}

TEST(Levels, StepFunctionCharacter) {
  // The closed forms are step functions that move by at most one level per
  // process added. They are NOT monotone: a ragged partial level counts +1
  // and disappears when the next power completes it (e.g. shared l(15)=3,
  // l(16)=2) — exactly the "sporadic thinnings" the paper describes in §5.4.
  for (int p = 1; p < 256; ++p) {
    EXPECT_LE(std::abs(paper_levels_shared(p + 1) - paper_levels_shared(p)), 1) << p;
    EXPECT_LE(std::abs(paper_levels_dist(p + 1) - paper_levels_dist(p)), 1) << p;
  }
  EXPECT_EQ(paper_levels_shared(15), 3);
  EXPECT_EQ(paper_levels_shared(16), 2);
  EXPECT_GT(paper_levels_shared(256), paper_levels_shared(2));
  EXPECT_GT(paper_levels_dist(256), paper_levels_dist(2));
}

TEST(Levels, WorkFractionShrinksBySteps) {
  EXPECT_DOUBLE_EQ(shared_work_fraction(1), 1.0);
  EXPECT_DOUBLE_EQ(shared_work_fraction(2), 0.25);
  EXPECT_DOUBLE_EQ(shared_work_fraction(16), 1.0 / 16.0);
}

TEST(LeafOp, TargetsAndFlops) {
  Block a{0, 4, 10, 6};
  EXPECT_EQ(syrk_target(a), (Block{4, 4, 6, 6}));
  Block b{0, 0, 10, 4};
  EXPECT_EQ(gemm_target(a, b), (Block{4, 0, 6, 4}));
  LeafOp gemm_op{LeafOp::Kind::kGemm, a, b, gemm_target(a, b)};
  EXPECT_DOUBLE_EQ(gemm_op.flops(), 10.0 * 6 * 4);
  LeafOp syrk_op{LeafOp::Kind::kSyrk, a, Block{}, syrk_target(a)};
  EXPECT_DOUBLE_EQ(syrk_op.flops(), 10.0 * 6 * 7 / 2);
}

TEST(WritesOverlap, RectRectAndTriangleCases) {
  LeafOp g1{LeafOp::Kind::kGemm, {}, {}, Block{0, 0, 4, 4}};
  LeafOp g2{LeafOp::Kind::kGemm, {}, {}, Block{4, 0, 4, 4}};
  LeafOp g3{LeafOp::Kind::kGemm, {}, {}, Block{2, 2, 4, 4}};
  EXPECT_FALSE(writes_overlap(g1, g2));
  EXPECT_TRUE(writes_overlap(g1, g3));
  // Triangle at (4,4)..(8,8): its lower cells never reach the rectangle
  // strictly above the diagonal band.
  LeafOp tri{LeafOp::Kind::kSyrk, {}, {}, Block{4, 4, 4, 4}};
  LeafOp above{LeafOp::Kind::kGemm, {}, {}, Block{4, 5, 1, 3}};  // row 4, cols 5..8
  EXPECT_FALSE(writes_overlap(tri, above));
  LeafOp below{LeafOp::Kind::kGemm, {}, {}, Block{7, 4, 1, 2}};  // row 7, cols 4..6
  EXPECT_TRUE(writes_overlap(tri, below));
}

// ---- AtA-S schedule properties ---------------------------------------

class SharedScheduleP : public ::testing::TestWithParam<int> {};

TEST_P(SharedScheduleP, ExactlyPTasksOnNondegenerateShapes) {
  const int p = GetParam();
  const auto s = build_shared_schedule(256, 192, p);
  EXPECT_EQ(static_cast<int>(s.tasks.size()), p);
  // Thread ids are 0..P-1 without gaps.
  for (int t = 0; t < p; ++t) EXPECT_EQ(s.tasks[static_cast<std::size_t>(t)].thread, t);
}

TEST_P(SharedScheduleP, WritesArePairwiseDisjoint) {
  const int p = GetParam();
  const auto s = build_shared_schedule(200, 144, p);
  std::vector<LeafOp> all;
  for (const auto& t : s.tasks) all.insert(all.end(), t.ops.begin(), t.ops.end());
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_FALSE(writes_overlap(all[i], all[j]))
          << all[i].to_string() << " vs " << all[j].to_string();
    }
  }
}

TEST_P(SharedScheduleP, WritesCoverTheFullLowerTriangle) {
  const int p = GetParam();
  const index_t n = 97;
  const auto s = build_shared_schedule(120, n, p);
  std::vector<std::vector<int>> hits(static_cast<std::size_t>(n),
                                     std::vector<int>(static_cast<std::size_t>(n), 0));
  for (const auto& t : s.tasks) {
    for (const auto& op : t.ops) {
      for (index_t i = 0; i < op.c.rows; ++i) {
        for (index_t j = 0; j < op.c.cols; ++j) {
          const index_t gi = op.c.r0 + i, gj = op.c.c0 + j;
          if (op.kind == LeafOp::Kind::kSyrk && j > i) continue;  // lower only
          hits[static_cast<std::size_t>(gi)][static_cast<std::size_t>(gj)]++;
        }
      }
    }
  }
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j <= i; ++j) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1)
          << "cell (" << i << "," << j << ") with P=" << p;
    }
  }
}

TEST_P(SharedScheduleP, LoadIsRoughlyBalanced) {
  const int p = GetParam();
  const auto s = build_shared_schedule(512, 512, p);
  double max_w = 0, min_w = 1e300;
  for (const auto& t : s.tasks) {
    double w = 0;
    for (const auto& op : t.ops) w += op.flops();
    max_w = std::max(max_w, w);
    min_w = std::min(min_w, w);
  }
  // The alpha = 1/2 split aims at equal work; allow generous slack for the
  // triangular-vs-rectangular mix and remainder levels.
  EXPECT_LT(max_w / min_w, 4.0) << "P=" << p;
}

INSTANTIATE_TEST_SUITE_P(PSweep, SharedScheduleP,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 24, 32, 64));

TEST(SharedSchedule, DepthGrowsLikePaperStepFunction) {
  // Our tree depth is within one level of eq. (6) across the sweep (the
  // closed form counts only *complete* levels; remainder tiling adds one).
  for (int p = 1; p <= 64; ++p) {
    const auto s = build_shared_schedule(4096, 4096, p);
    const int paper = paper_levels_shared(p);
    EXPECT_GE(s.depth + 1, paper) << "P=" << p;
    EXPECT_LE(s.depth, paper + 2) << "P=" << p;
  }
}

// ---- AtA-D tree invariants -------------------------------------------

class DistTreeP : public ::testing::TestWithParam<int> {};

TEST_P(DistTreeP, ExactlyPLeavesWithDfsProcs) {
  const int p = GetParam();
  const auto tree = build_dist_tree(256, 200, p);
  EXPECT_EQ(tree.used_procs, p);
  std::set<int> procs;
  for (const auto& node : tree.nodes) {
    if (node.kind == DistNode::Kind::kLeaf) procs.insert(node.proc);
  }
  EXPECT_EQ(static_cast<int>(procs.size()), p);
  EXPECT_EQ(*procs.begin(), 0);
  EXPECT_EQ(*procs.rbegin(), p - 1);
}

TEST_P(DistTreeP, InnerNodesExecuteOnLeftmostLeafProcess) {
  const auto tree = build_dist_tree(128, 128, GetParam());
  for (const auto& node : tree.nodes) {
    if (node.kind == DistNode::Kind::kLeaf) continue;
    const auto& first = tree.nodes[static_cast<std::size_t>(node.children.front())];
    EXPECT_EQ(node.proc, first.proc);
  }
}

TEST_P(DistTreeP, ChildRegionsNestInParentRegions) {
  const auto tree = build_dist_tree(190, 170, GetParam());
  for (const auto& node : tree.nodes) {
    if (node.parent < 0) continue;
    const auto& par = tree.nodes[static_cast<std::size_t>(node.parent)];
    EXPECT_GE(node.c.r0, par.c.r0);
    EXPECT_GE(node.c.c0, par.c.c0);
    EXPECT_LE(node.c.r0 + node.c.rows, par.c.r0 + par.c.rows);
    EXPECT_LE(node.c.c0 + node.c.cols, par.c.c0 + par.c.cols);
  }
}

TEST_P(DistTreeP, NeedsCoverOpsAndNestUpward) {
  const auto tree = build_dist_tree(150, 140, GetParam());
  auto contains = [](const std::vector<Block>& needs, const Block& b) {
    return std::find(needs.begin(), needs.end(), b) != needs.end();
  };
  for (const auto& node : tree.nodes) {
    for (const auto& op : node.ops) {
      EXPECT_TRUE(contains(node.needs, op.a));
      if (op.kind == LeafOp::Kind::kGemm) {
        EXPECT_TRUE(contains(node.needs, op.b));
      }
    }
    if (node.parent >= 0) {
      const auto& par = tree.nodes[static_cast<std::size_t>(node.parent)];
      for (const auto& b : node.needs) EXPECT_TRUE(contains(par.needs, b));
    }
  }
}

TEST_P(DistTreeP, RootIsGemmFirstAsInFigure1) {
  const int p = GetParam();
  const auto tree = build_dist_tree(256, 256, p);
  EXPECT_EQ(tree.node(tree.root).proc, 0);
  if (p >= 2) {
    // Rank 0's leaf must be an A^T B task (paper: "after the first parallel
    // level, p0 works on a A^T B task").
    for (const auto& node : tree.nodes) {
      if (node.kind == DistNode::Kind::kLeaf && node.proc == 0) {
        EXPECT_EQ(node.ops.front().kind, LeafOp::Kind::kGemm);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PSweep, DistTreeP,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 24, 32, 48, 64));

TEST(DistTree, PrePostOrderAreConsistentPermutations) {
  const auto tree = build_dist_tree(100, 100, 16);
  auto pre = tree.preorder();
  auto post = tree.postorder();
  EXPECT_EQ(pre.size(), tree.nodes.size());
  EXPECT_EQ(post.size(), tree.nodes.size());
  EXPECT_EQ(pre.front(), tree.root);
  EXPECT_EQ(post.back(), tree.root);
  std::set<int> s1(pre.begin(), pre.end()), s2(post.begin(), post.end());
  EXPECT_EQ(s1.size(), tree.nodes.size());
  EXPECT_EQ(s2.size(), tree.nodes.size());
}

TEST(DistTree, AlphaShiftsGemmShare) {
  // Larger alpha -> more processes on the C21 gemm side.
  auto gemm_leaves = [](double alpha) {
    const auto tree = build_dist_tree(512, 512, 32, alpha);
    int count = 0;
    for (const auto& node : tree.nodes) {
      if (node.kind != DistNode::Kind::kLeaf) continue;
      if (node.ops.front().kind == LeafOp::Kind::kGemm) ++count;
    }
    return count;
  };
  EXPECT_LT(gemm_leaves(0.25), gemm_leaves(0.75));
}

}  // namespace
}  // namespace atalib::sched
