// Tests for RecursiveGEMM (Algorithm 2), the cache-oblivious cubic kernel
// whose recursion the parallel schedulers simulate.

#include <gtest/gtest.h>

#include "blas/reference.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "strassen/recursive_gemm.hpp"

namespace atalib {
namespace {

struct Shape {
  index_t m, n, k;
};

class RecGemmShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(RecGemmShapes, MatchesReferenceExactly) {
  const auto [m, n, k] = GetParam();
  RecurseOptions opts;
  opts.base_case_elements = 128;
  opts.min_dim = 2;
  auto a = random_integer<double>(m, n, 4, 1);
  auto b = random_integer<double>(m, k, 4, 2);
  auto c = Matrix<double>::zeros(n, k);
  auto c_ref = Matrix<double>::zeros(n, k);
  recursive_gemm_tn(1.5, a.const_view(), b.const_view(), c.view(), opts);
  blas::ref::gemm_tn(1.5, a.const_view(), b.const_view(), c_ref.view());
  EXPECT_EQ(max_abs_diff<double>(c.const_view(), c_ref.const_view()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(ShapeSweep, RecGemmShapes,
                         ::testing::Values(Shape{1, 1, 1}, Shape{2, 2, 2}, Shape{3, 5, 7},
                                           Shape{16, 16, 16}, Shape{17, 33, 9},
                                           Shape{64, 64, 64}, Shape{65, 63, 62},
                                           Shape{128, 16, 64}, Shape{10, 128, 10}));

TEST(RecursiveGemm, UnlikeStrassenItAllocatesNothing) {
  // RecursiveGEMM is the scheduler's model precisely because it has no
  // workspace (§4.1.3); this is a compile-time property of its signature
  // (no arena parameter), so here we only pin down that deep recursion
  // works on exactly-power-of-two and ragged sizes alike.
  RecurseOptions opts;
  opts.base_case_elements = 8;
  opts.min_dim = 1;
  auto a = random_integer<double>(37, 41, 2, 3);
  auto b = random_integer<double>(37, 43, 2, 4);
  auto c = Matrix<double>::zeros(41, 43);
  auto c_ref = Matrix<double>::zeros(41, 43);
  recursive_gemm_tn(1.0, a.const_view(), b.const_view(), c.view(), opts);
  blas::ref::gemm_tn(1.0, a.const_view(), b.const_view(), c_ref.view());
  EXPECT_EQ(max_abs_diff<double>(c.const_view(), c_ref.const_view()), 0.0);
}

TEST(RecursiveGemm, AccumulationOrderIndependence) {
  // C += over two calls equals one call with doubled alpha (exact for
  // integer inputs).
  auto a = random_integer<double>(24, 20, 2, 5);
  auto b = random_integer<double>(24, 18, 2, 6);
  RecurseOptions opts;
  opts.base_case_elements = 64;
  auto c1 = Matrix<double>::zeros(20, 18);
  auto c2 = Matrix<double>::zeros(20, 18);
  recursive_gemm_tn(1.0, a.const_view(), b.const_view(), c1.view(), opts);
  recursive_gemm_tn(1.0, a.const_view(), b.const_view(), c1.view(), opts);
  recursive_gemm_tn(2.0, a.const_view(), b.const_view(), c2.view(), opts);
  EXPECT_EQ(max_abs_diff<double>(c1.const_view(), c2.const_view()), 0.0);
}

}  // namespace
}  // namespace atalib
