// Tests for the blocked syrk kernel (the MKL ?syrk substitute and AtA's
// base case).

#include <gtest/gtest.h>

#include <algorithm>

#include "blas/panel_syrk.hpp"
#include "blas/parallel.hpp"
#include "blas/reference.hpp"
#include "blas/syrk.hpp"
#include "common/arena.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"

namespace atalib {
namespace {

struct Shape {
  index_t m, n;
};

class SyrkShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(SyrkShapes, MatchesReferenceExactlyOnIntegers) {
  const auto [m, n] = GetParam();
  auto a = random_integer<double>(m, n, 4, 1);
  auto c = Matrix<double>::zeros(n, n);
  auto c_ref = Matrix<double>::zeros(n, n);
  blas::syrk_ln(2.0, a.const_view(), c.view());
  blas::ref::syrk_ln(2.0, a.const_view(), c_ref.view());
  EXPECT_EQ(max_abs_diff_lower<double>(c.const_view(), c_ref.const_view()), 0.0);
}

TEST_P(SyrkShapes, NeverTouchesStrictUpperTriangle) {
  const auto [m, n] = GetParam();
  auto a = random_uniform<double>(m, n, 2);
  auto c = Matrix<double>::zeros(n, n);
  const double sentinel = -123.25;
  for (index_t i = 0; i < n; ++i)
    for (index_t j = i + 1; j < n; ++j) c(i, j) = sentinel;
  blas::syrk_ln(1.0, a.const_view(), c.view());
  for (index_t i = 0; i < n; ++i)
    for (index_t j = i + 1; j < n; ++j) ASSERT_EQ(c(i, j), sentinel);
}

INSTANTIATE_TEST_SUITE_P(ShapeSweep, SyrkShapes,
                         ::testing::Values(Shape{1, 1}, Shape{3, 2}, Shape{8, 8}, Shape{5, 17},
                                           Shape{33, 31}, Shape{64, 64}, Shape{7, 129},
                                           Shape{200, 3}, Shape{128, 130}, Shape{257, 127}));

TEST(Syrk, AccumulatesWithAlpha) {
  auto a = random_integer<double>(10, 6, 3, 4);
  auto c = Matrix<double>::zeros(6, 6);
  auto expected = Matrix<double>::zeros(6, 6);
  blas::ref::syrk_ln(1.5, a.const_view(), expected.view());
  blas::ref::syrk_ln(1.5, a.const_view(), expected.view());
  blas::syrk_ln(1.5, a.const_view(), c.view());
  blas::syrk_ln(1.5, a.const_view(), c.view());
  EXPECT_EQ(max_abs_diff_lower<double>(c.const_view(), expected.const_view()), 0.0);
}

TEST(Syrk, DiagonalIsNonnegativeForRealInput) {
  auto a = random_uniform<double>(30, 20, 9);
  auto c = Matrix<double>::zeros(20, 20);
  blas::syrk_ln(1.0, a.const_view(), c.view());
  for (index_t i = 0; i < 20; ++i) EXPECT_GE(c(i, i), 0.0);
}

class ParSyrkThreads : public ::testing::TestWithParam<int> {};

TEST_P(ParSyrkThreads, MatchesSerialWithEqualAreaStripes) {
  const int threads = GetParam();
  auto a = random_integer<double>(60, 53, 3, 13);
  auto c = Matrix<double>::zeros(53, 53);
  auto c_ref = Matrix<double>::zeros(53, 53);
  blas::syrk_ln(1.0, a.const_view(), c_ref.view());
  blas::par::syrk_ln(1.0, a.const_view(), c.view(), threads);
  EXPECT_EQ(max_abs_diff_lower<double>(c.const_view(), c_ref.const_view()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(ThreadSweep, ParSyrkThreads, ::testing::Values(1, 2, 3, 5, 8, 16, 53));

TEST(ParSyrk, MoreThreadsThanRowsClamps) {
  auto a = random_integer<double>(10, 4, 2, 14);
  auto c = Matrix<double>::zeros(4, 4);
  auto c_ref = Matrix<double>::zeros(4, 4);
  blas::syrk_ln(1.0, a.const_view(), c_ref.view());
  blas::par::syrk_ln(1.0, a.const_view(), c.view(), 128);
  EXPECT_EQ(max_abs_diff_lower<double>(c.const_view(), c_ref.const_view()), 0.0);
}

// ---- Panel-SYRK (the tall-skinny engine, blas/panel_syrk.hpp) ----------

class PanelSyrkShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(PanelSyrkShapes, MatchesReferenceExactlyOnIntegers) {
  // Integer inputs make the panel accumulation exact, so the row-panel
  // split must reproduce the one-shot kernel bitwise — for both scalar
  // types the serving path carries.
  const auto [m, n] = GetParam();
  {
    auto a = random_integer<double>(m, n, 4, 21);
    auto c = Matrix<double>::zeros(n, n);
    auto c_ref = Matrix<double>::zeros(n, n);
    blas::panel_syrk_ln(2.0, a.const_view(), c.view());
    blas::ref::syrk_ln(2.0, a.const_view(), c_ref.view());
    EXPECT_EQ(max_abs_diff_lower<double>(c.const_view(), c_ref.const_view()), 0.0);
  }
  {
    auto a = random_integer<float>(m, n, 4, 22);
    auto c = Matrix<float>::zeros(n, n);
    auto c_ref = Matrix<float>::zeros(n, n);
    blas::panel_syrk_ln(2.0f, a.const_view(), c.view());
    blas::ref::syrk_ln(2.0f, a.const_view(), c_ref.view());
    EXPECT_EQ(max_abs_diff_lower<float>(c.const_view(), c_ref.const_view()), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(TallShapeSweep, PanelSyrkShapes,
                         ::testing::Values(Shape{1, 1}, Shape{7, 3}, Shape{256, 8},
                                           Shape{300, 17}, Shape{513, 31}, Shape{1000, 5},
                                           Shape{1030, 64}, Shape{2048, 24}));

TEST(PanelSyrk, NeverTouchesStrictUpperTriangle) {
  auto a = random_uniform<double>(700, 24, 7);
  auto c = Matrix<double>::zeros(24, 24);
  const double sentinel = -321.5;
  for (index_t i = 0; i < 24; ++i)
    for (index_t j = i + 1; j < 24; ++j) c(i, j) = sentinel;
  blas::panel_syrk_ln(1.0, a.const_view(), c.view());
  for (index_t i = 0; i < 24; ++i)
    for (index_t j = i + 1; j < 24; ++j) ASSERT_EQ(c(i, j), sentinel);
}

TEST(PanelSyrk, GemmCompanionMatchesReferenceExactlyOnIntegers) {
  const index_t m = 777, n = 13, k = 21;
  auto a = random_integer<double>(m, n, 3, 31);
  auto b = random_integer<double>(m, k, 3, 32);
  auto c = Matrix<double>::zeros(n, k);
  auto c_ref = Matrix<double>::zeros(n, k);
  blas::panel_gemm_tn(1.5, a.const_view(), b.const_view(), c.view());
  blas::ref::gemm_tn(1.5, a.const_view(), b.const_view(), c_ref.view());
  EXPECT_EQ(max_abs_diff<double>(c.const_view(), c_ref.const_view()), 0.0);
}

TEST(PanelSyrk, PanelRowsIsDeterministicMultipleOf8FlooredAndCapped) {
  // The bitwise-reproducibility contract: panel height is a pure function
  // of (elem_bytes, m, n), a multiple of 8 when below m, never above m,
  // and never below min(256, m).
  for (std::size_t eb : {sizeof(float), sizeof(double)}) {
    for (index_t n : {index_t{1}, index_t{8}, index_t{64}, index_t{256}, index_t{4096}}) {
      for (index_t m : {index_t{1}, index_t{100}, index_t{256}, index_t{100000}}) {
        const index_t rows = blas::panel_syrk_rows(m, n, eb);
        EXPECT_EQ(rows, blas::panel_syrk_rows(m, n, eb));
        EXPECT_LE(rows, std::max<index_t>(m, 1));
        EXPECT_GE(rows, std::min<index_t>(m > 0 ? m : 1, 256));
        if (rows < m) EXPECT_EQ(rows % 8, 0) << "m=" << m << " n=" << n;
      }
    }
  }
  // Wider n => shorter panels (same byte budget).
  EXPECT_GE(blas::panel_syrk_rows(100000, 32, sizeof(double)),
            blas::panel_syrk_rows(100000, 1024, sizeof(double)));
  // f32 fits twice the rows of f64 in the same footprint (above the floor).
  EXPECT_GE(blas::panel_syrk_rows(1 << 20, 512, sizeof(float)),
            blas::panel_syrk_rows(1 << 20, 512, sizeof(double)));
}

TEST(PanelSyrk, ArenaAndThreadLocalPathsAgreeBitwise) {
  const index_t m = 1500, n = 40;
  auto a = random_integer<double>(m, n, 3, 41);
  auto c_tl = Matrix<double>::zeros(n, n);
  auto c_ar = Matrix<double>::zeros(n, n);
  blas::panel_syrk_ln(1.0, a.const_view(), c_tl.view());
  Arena<double> arena(static_cast<std::size_t>(blas::panel_syrk_workspace_bound<double>(m, n)));
  blas::panel_syrk_ln(1.0, a.const_view(), c_ar.view(), &arena);
  EXPECT_EQ(max_abs_diff_lower<double>(c_tl.const_view(), c_ar.const_view()), 0.0);
}

}  // namespace
}  // namespace atalib
