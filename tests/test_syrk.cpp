// Tests for the blocked syrk kernel (the MKL ?syrk substitute and AtA's
// base case).

#include <gtest/gtest.h>

#include "blas/parallel.hpp"
#include "blas/reference.hpp"
#include "blas/syrk.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"

namespace atalib {
namespace {

struct Shape {
  index_t m, n;
};

class SyrkShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(SyrkShapes, MatchesReferenceExactlyOnIntegers) {
  const auto [m, n] = GetParam();
  auto a = random_integer<double>(m, n, 4, 1);
  auto c = Matrix<double>::zeros(n, n);
  auto c_ref = Matrix<double>::zeros(n, n);
  blas::syrk_ln(2.0, a.const_view(), c.view());
  blas::ref::syrk_ln(2.0, a.const_view(), c_ref.view());
  EXPECT_EQ(max_abs_diff_lower<double>(c.const_view(), c_ref.const_view()), 0.0);
}

TEST_P(SyrkShapes, NeverTouchesStrictUpperTriangle) {
  const auto [m, n] = GetParam();
  auto a = random_uniform<double>(m, n, 2);
  auto c = Matrix<double>::zeros(n, n);
  const double sentinel = -123.25;
  for (index_t i = 0; i < n; ++i)
    for (index_t j = i + 1; j < n; ++j) c(i, j) = sentinel;
  blas::syrk_ln(1.0, a.const_view(), c.view());
  for (index_t i = 0; i < n; ++i)
    for (index_t j = i + 1; j < n; ++j) ASSERT_EQ(c(i, j), sentinel);
}

INSTANTIATE_TEST_SUITE_P(ShapeSweep, SyrkShapes,
                         ::testing::Values(Shape{1, 1}, Shape{3, 2}, Shape{8, 8}, Shape{5, 17},
                                           Shape{33, 31}, Shape{64, 64}, Shape{7, 129},
                                           Shape{200, 3}, Shape{128, 130}, Shape{257, 127}));

TEST(Syrk, AccumulatesWithAlpha) {
  auto a = random_integer<double>(10, 6, 3, 4);
  auto c = Matrix<double>::zeros(6, 6);
  auto expected = Matrix<double>::zeros(6, 6);
  blas::ref::syrk_ln(1.5, a.const_view(), expected.view());
  blas::ref::syrk_ln(1.5, a.const_view(), expected.view());
  blas::syrk_ln(1.5, a.const_view(), c.view());
  blas::syrk_ln(1.5, a.const_view(), c.view());
  EXPECT_EQ(max_abs_diff_lower<double>(c.const_view(), expected.const_view()), 0.0);
}

TEST(Syrk, DiagonalIsNonnegativeForRealInput) {
  auto a = random_uniform<double>(30, 20, 9);
  auto c = Matrix<double>::zeros(20, 20);
  blas::syrk_ln(1.0, a.const_view(), c.view());
  for (index_t i = 0; i < 20; ++i) EXPECT_GE(c(i, i), 0.0);
}

class ParSyrkThreads : public ::testing::TestWithParam<int> {};

TEST_P(ParSyrkThreads, MatchesSerialWithEqualAreaStripes) {
  const int threads = GetParam();
  auto a = random_integer<double>(60, 53, 3, 13);
  auto c = Matrix<double>::zeros(53, 53);
  auto c_ref = Matrix<double>::zeros(53, 53);
  blas::syrk_ln(1.0, a.const_view(), c_ref.view());
  blas::par::syrk_ln(1.0, a.const_view(), c.view(), threads);
  EXPECT_EQ(max_abs_diff_lower<double>(c.const_view(), c_ref.const_view()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(ThreadSweep, ParSyrkThreads, ::testing::Values(1, 2, 3, 5, 8, 16, 53));

TEST(ParSyrk, MoreThreadsThanRowsClamps) {
  auto a = random_integer<double>(10, 4, 2, 14);
  auto c = Matrix<double>::zeros(4, 4);
  auto c_ref = Matrix<double>::zeros(4, 4);
  blas::syrk_ln(1.0, a.const_view(), c_ref.view());
  blas::par::syrk_ln(1.0, a.const_view(), c.view(), 128);
  EXPECT_EQ(max_abs_diff_lower<double>(c.const_view(), c_ref.const_view()), 0.0);
}

}  // namespace
}  // namespace atalib
