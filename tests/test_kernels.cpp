// Bitwise-equality tests for the ISA-dispatched microkernels
// (src/blas/kernels/): every SIMD tier available on this machine against
// the scalar tile, across ragged shapes straddling each kernel's MR/NR
// edges, both transpose packings, and the packed-SYRK diagonal.
//
// Inputs are small integers, so every product and partial sum is exactly
// representable in float and double: FMA contraction, accumulation order,
// and blocking differences cannot round, and any mismatch is a real
// packing/microkernel/dispatch bug, not noise.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "blas/gemm.hpp"
#include "blas/kernels/registry.hpp"
#include "blas/reference.hpp"
#include "blas/syrk.hpp"
#include "common/arena.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"

namespace atalib {
namespace {

namespace kn = blas::kernels;
using kn::Isa;

/// RAII dispatch pin; restores automatic dispatch on scope exit.
class ForcedIsa {
 public:
  explicit ForcedIsa(Isa isa) { kn::set_forced_isa(isa); }
  ~ForcedIsa() { kn::set_forced_isa(std::nullopt); }
};

std::vector<Isa> simd_isas() {
  std::vector<Isa> v;
  for (const kn::KernelEntry* e : kn::available_kernels()) {
    if (e->isa != Isa::kScalar) v.push_back(e->isa);
  }
  return v;
}

/// Shape values straddling the register tile: 1, tile-1, tile, tile+1 for
/// both MR and NR, plus odd primes away from any tile boundary.
std::vector<index_t> edge_dims(index_t mr, index_t nr) {
  std::vector<index_t> dims{1, mr - 1, mr, mr + 1, nr - 1, nr, nr + 1, 13, 61};
  std::sort(dims.begin(), dims.end());
  dims.erase(std::unique(dims.begin(), dims.end()), dims.end());
  dims.erase(dims.begin(), std::upper_bound(dims.begin(), dims.end(), index_t{0}));
  return dims;
}

const std::vector<index_t> kDepths{1, 7, 31, 97};  // contraction depths (odd primes + 1)

template <typename T>
void expect_gemm_matches_scalar(Isa isa) {
  const kn::KernelConfig<T>& cfg = kn::config_for<T>(isa);
  const std::vector<index_t> dims = edge_dims(cfg.uk.mr, cfg.uk.nr);
  std::uint64_t seed = 1;
  for (const index_t rows : dims) {
    for (const index_t cols : dims) {
      for (const index_t depth : kDepths) {
        // Operand layouts per variant; C is rows x cols, contraction depth.
        const auto a_t = random_integer<T>(depth, rows, 3, seed++);  // op = ^T
        const auto a_n = random_integer<T>(rows, depth, 3, seed++);
        const auto b_n = random_integer<T>(depth, cols, 3, seed++);
        const auto b_t = random_integer<T>(cols, depth, 3, seed++);
        const auto run = [&](Isa use, auto fn) {
          ForcedIsa forced(use);
          auto c = Matrix<T>::zeros(rows, cols);
          fn(c);
          return c;
        };
        const auto check = [&](const char* what, auto fn) {
          const auto simd = run(isa, fn);
          const auto scalar = run(Isa::kScalar, fn);
          ASSERT_EQ(max_abs_diff<T>(simd.const_view(), scalar.const_view()), 0.0)
              << what << " rows=" << rows << " cols=" << cols << " depth=" << depth
              << " isa=" << kn::isa_name(isa);
        };
        check("gemm_tn", [&](Matrix<T>& c) {
          blas::gemm_tn(T(2), a_t.const_view(), b_n.const_view(), c.view());
        });
        check("gemm_nn", [&](Matrix<T>& c) {
          blas::gemm_nn(T(2), a_n.const_view(), b_n.const_view(), c.view());
        });
        check("gemm_nt", [&](Matrix<T>& c) {
          blas::gemm_nt(T(2), a_n.const_view(), b_t.const_view(), c.view());
        });
      }
    }
  }
}

template <typename T>
void expect_syrk_matches_scalar(Isa isa) {
  const kn::KernelConfig<T>& cfg = kn::config_for<T>(isa);
  const std::vector<index_t> dims = edge_dims(cfg.uk.mr, cfg.uk.nr);
  const T sentinel = T(-123.25);
  std::uint64_t seed = 1000;
  for (const index_t n : dims) {
    for (const index_t m : kDepths) {
      const auto a = random_integer<T>(m, n, 3, seed++);
      const auto run = [&](Isa use) {
        ForcedIsa forced(use);
        auto c = Matrix<T>::zeros(n, n);
        for (index_t i = 0; i < n; ++i) {
          for (index_t j = i + 1; j < n; ++j) c(i, j) = sentinel;
        }
        blas::syrk_ln(T(2), a.const_view(), c.view());
        return c;
      };
      const auto simd = run(isa);
      const auto scalar = run(Isa::kScalar);
      ASSERT_EQ(max_abs_diff<T>(simd.const_view(), scalar.const_view()), 0.0)
          << "syrk_ln m=" << m << " n=" << n << " isa=" << kn::isa_name(isa);
      for (index_t i = 0; i < n; ++i) {
        for (index_t j = i + 1; j < n; ++j) {
          ASSERT_EQ(simd(i, j), sentinel) << "upper triangle touched at (" << i << "," << j
                                          << ") isa=" << kn::isa_name(isa);
        }
      }
    }
  }
}

TEST(KernelRegistry, ScalarIsAlwaysCompiledAndLast) {
  const auto& kernels = kn::compiled_kernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_EQ(kernels.back()->isa, Isa::kScalar);
  EXPECT_TRUE(kernels.back()->supported());
}

TEST(KernelRegistry, EveryCompiledEntryIsWellFormed) {
  // Tile limits matter for every entry, not just the active one: the
  // packed-SYRK diagonal temporary is a kMaxMR x kMaxNR stack tile, and
  // the registry refuses configs that would overrun it.
  const auto check_tile = [](const char* name, index_t mr, index_t nr, bool has_fn) {
    EXPECT_GT(mr, 0) << name;
    EXPECT_GT(nr, 0) << name;
    EXPECT_LE(mr, kn::kMaxMR) << name;
    EXPECT_LE(nr, kn::kMaxNR) << name;
    EXPECT_TRUE(has_fn) << name;
  };
  for (const kn::KernelEntry* e : kn::compiled_kernels()) {
    check_tile(kn::isa_name(e->isa), e->f32.mr, e->f32.nr, e->f32.fn != nullptr);
    check_tile(kn::isa_name(e->isa), e->f64.mr, e->f64.nr, e->f64.fn != nullptr);
  }
  const auto& cfg = kn::active_config<double>();
  // Blocking must be tile-aligned so packed panels never overrun.
  EXPECT_EQ(cfg.blocks.mc % cfg.uk.mr, 0);
  EXPECT_EQ(cfg.blocks.nc % cfg.uk.nr, 0);
  EXPECT_GT(cfg.blocks.kc, 0);
}

TEST(KernelRegistry, ForcedScalarPinsDispatch) {
  ForcedIsa forced(Isa::kScalar);
  EXPECT_EQ(kn::active_config<double>().isa, Isa::kScalar);
  EXPECT_EQ(kn::active_config<float>().isa, Isa::kScalar);
  EXPECT_EQ(kn::forced_isa(), Isa::kScalar);
}

TEST(KernelRegistry, ForcingUnavailableIsaThrows) {
  // NEON and AVX2 are never compiled into the same binary, so at least one
  // of them is guaranteed unavailable on any architecture.
  const auto available = kn::available_kernels();
  for (const Isa isa : {Isa::kNeon, Isa::kAvx2}) {
    const bool have = std::any_of(available.begin(), available.end(),
                                  [&](const kn::KernelEntry* e) { return e->isa == isa; });
    if (!have) {
      EXPECT_THROW(kn::set_forced_isa(isa), std::invalid_argument);
      return;
    }
  }
  FAIL() << "NEON and AVX2 both reported available in one binary";
}

TEST(Kernels, GemmDoubleBitwiseMatchesScalarAcrossRaggedShapes) {
  for (const Isa isa : simd_isas()) expect_gemm_matches_scalar<double>(isa);
}

TEST(Kernels, GemmFloatBitwiseMatchesScalarAcrossRaggedShapes) {
  for (const Isa isa : simd_isas()) expect_gemm_matches_scalar<float>(isa);
}

TEST(Kernels, SyrkDoubleBitwiseMatchesScalarAndSkipsUpperTriangle) {
  for (const Isa isa : simd_isas()) expect_syrk_matches_scalar<double>(isa);
}

TEST(Kernels, SyrkFloatBitwiseMatchesScalarAndSkipsUpperTriangle) {
  for (const Isa isa : simd_isas()) expect_syrk_matches_scalar<float>(isa);
}

TEST(Kernels, ScalarPathMatchesNaiveReferenceExactly) {
  // Anchors the whole equivalence chain to the deliberately naive oracle.
  ForcedIsa forced(Isa::kScalar);
  const auto a = random_integer<double>(37, 29, 3, 7);
  const auto b = random_integer<double>(37, 23, 3, 8);
  auto c = Matrix<double>::zeros(29, 23);
  auto c_ref = Matrix<double>::zeros(29, 23);
  blas::gemm_tn(2.0, a.const_view(), b.const_view(), c.view());
  blas::ref::gemm_tn(2.0, a.const_view(), b.const_view(), c_ref.view());
  EXPECT_EQ(max_abs_diff<double>(c.const_view(), c_ref.const_view()), 0.0);

  auto s = Matrix<double>::zeros(29, 29);
  auto s_ref = Matrix<double>::zeros(29, 29);
  blas::syrk_ln(2.0, a.const_view(), s.view());
  blas::ref::syrk_ln(2.0, a.const_view(), s_ref.view());
  EXPECT_EQ(max_abs_diff_lower<double>(s.const_view(), s_ref.const_view()), 0.0);
}

TEST(Kernels, ArenaRoutedGemmMatchesThreadLocalAndStaysWithinBound) {
  const index_t m = 70, n = 66, k = 65;
  const auto a = random_integer<double>(k, m, 3, 21);  // gemm_tn layout
  const auto b = random_integer<double>(k, n, 3, 22);
  auto c_tls = Matrix<double>::zeros(m, n);
  auto c_arena = Matrix<double>::zeros(m, n);
  blas::gemm_tn(1.0, a.const_view(), b.const_view(), c_tls.view());

  const index_t bound = blas::gemm_workspace_bound<double>(m, n, k);
  ASSERT_GT(bound, 0);
  Arena<double> arena(static_cast<std::size_t>(bound));
  blas::gemm_tn(1.0, a.const_view(), b.const_view(), c_arena.view(), &arena);
  EXPECT_EQ(max_abs_diff<double>(c_arena.const_view(), c_tls.const_view()), 0.0);
  // Checkpoint-scoped: net-untouched on return, never past the bound.
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_LE(arena.high_water(), static_cast<std::size_t>(bound));
}

TEST(Kernels, ArenaRoutedSyrkMatchesThreadLocalAndStaysWithinBound) {
  const index_t m = 81, n = 67;
  const auto a = random_integer<double>(m, n, 3, 23);
  auto c_tls = Matrix<double>::zeros(n, n);
  auto c_arena = Matrix<double>::zeros(n, n);
  blas::syrk_ln(1.0, a.const_view(), c_tls.view());

  const index_t bound = blas::syrk_workspace_bound<double>(m, n);
  ASSERT_GT(bound, 0);
  Arena<double> arena(static_cast<std::size_t>(bound));
  blas::syrk_ln(1.0, a.const_view(), c_arena.view(), &arena);
  EXPECT_EQ(max_abs_diff_lower<double>(c_arena.const_view(), c_tls.const_view()), 0.0);
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_LE(arena.high_water(), static_cast<std::size_t>(bound));
}

TEST(Kernels, WorkspaceBoundCoversEveryDispatchPath) {
  // The bound must stay valid when a cached plan built under automatic
  // dispatch executes under a forced path (or vice versa): it is maximized
  // over every available ISA, so each per-ISA need fits under it.
  const index_t m = 130, n = 70, k = 90;
  const index_t bound = blas::gemm_workspace_bound<double>(m, n, k);
  for (const kn::KernelEntry* e : kn::available_kernels()) {
    const auto& cfg = kn::config_for<double>(e->isa);
    const kn::PackExtents ext = kn::pack_extents(cfg, m, n, k);
    EXPECT_LE(ext.a + ext.b, bound) << kn::isa_name(e->isa);
  }
}

}  // namespace
}  // namespace atalib
