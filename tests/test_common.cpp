// Unit tests for the common substrate: arena, RNG, CLI, table, cache probe.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/aligned_buffer.hpp"
#include "common/arena.hpp"
#include "common/cacheinfo.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"

namespace atalib {
namespace {

TEST(AlignedBuffer, AlignmentAndSize) {
  AlignedBuffer<double> buf(1000);
  EXPECT_EQ(buf.size(), 1000u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kBufferAlignment, 0u);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<float> a(16);
  float* p = a.data();
  AlignedBuffer<float> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_TRUE(a.empty());
}

TEST(AlignedBuffer, EmptyBufferIsValid) {
  AlignedBuffer<double> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.data(), nullptr);
}

TEST(Arena, BumpAllocationIsContiguousAndOrdered) {
  Arena<double> arena(100);
  double* a = arena.allocate(10);
  double* b = arena.allocate(20);
  EXPECT_EQ(b, a + 10);
  EXPECT_EQ(arena.used(), 30u);
}

TEST(Arena, CheckpointRestoreReleasesLIFO) {
  Arena<double> arena(100);
  arena.allocate(10);
  auto cp = arena.checkpoint();
  arena.allocate(50);
  EXPECT_EQ(arena.used(), 60u);
  arena.restore(cp);
  EXPECT_EQ(arena.used(), 10u);
  // Memory after restore is reusable.
  EXPECT_NO_THROW(arena.allocate(90));
}

TEST(Arena, ScopeRestoresOnUnwind) {
  Arena<float> arena(64);
  arena.allocate(8);
  {
    Arena<float>::Scope scope(arena);
    arena.allocate(32);
    EXPECT_EQ(arena.used(), 40u);
  }
  EXPECT_EQ(arena.used(), 8u);
}

TEST(Arena, ExhaustionThrowsInsteadOfGrowing) {
  Arena<double> arena(10);
  arena.allocate(10);
  EXPECT_THROW(arena.allocate(1), std::length_error);
}

TEST(Arena, HighWaterTracksPeak) {
  Arena<double> arena(100);
  auto cp = arena.checkpoint();
  arena.allocate(70);
  arena.restore(cp);
  arena.allocate(5);
  EXPECT_EQ(arena.high_water(), 70u);
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(123), b(123), c(124);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Xoshiro, Uniform01InRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Xoshiro, GaussianMoments) {
  Xoshiro256 rng(99);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Xoshiro, BoundedIsUnbiasedAtSmallBounds) {
  Xoshiro256 rng(5);
  int counts[5] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.bounded(5)]++;
  for (int c : counts) EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.01);
}

TEST(Cli, ParsesAllValueForms) {
  CliFlags flags;
  flags.add_int("size", 100, "matrix size");
  flags.add_double("alpha", 0.5, "balance");
  flags.add_bool("verbose", false, "log more");
  flags.add_string("engine", "strassen", "leaf engine");
  const char* argv[] = {"prog", "--size", "256", "--alpha=0.25", "--verbose", "--engine=blas"};
  ASSERT_TRUE(flags.parse(6, const_cast<char**>(argv)));
  EXPECT_EQ(flags.get_int("size"), 256);
  EXPECT_DOUBLE_EQ(flags.get_double("alpha"), 0.25);
  EXPECT_TRUE(flags.get_bool("verbose"));
  EXPECT_EQ(flags.get_string("engine"), "blas");
}

TEST(Cli, RejectsUnknownFlag) {
  CliFlags flags;
  flags.add_int("size", 1, "");
  const char* argv[] = {"prog", "--oops", "3"};
  EXPECT_FALSE(flags.parse(3, const_cast<char**>(argv)));
}

TEST(Cli, DefaultsSurviveNoArgs) {
  CliFlags flags;
  flags.add_int("n", 42, "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, const_cast<char**>(argv)));
  EXPECT_EQ(flags.get_int("n"), 42);
}

TEST(Cli, TypeMismatchThrows) {
  CliFlags flags;
  flags.add_int("n", 1, "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, const_cast<char**>(argv)));
  EXPECT_THROW(flags.get_double("n"), std::logic_error);
}

TEST(Table, RendersAlignedColumns) {
  Table t("Title");
  t.set_header({"a", "bbbb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("bbbb"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
}

TEST(Table, RowArityMismatchThrows) {
  Table t("x");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(CacheInfo, ProbeReturnsSaneValues) {
  const CacheInfo info = probe_cache_info();
  EXPECT_GE(info.l1_data_bytes, 8u * 1024);
  EXPECT_GE(info.l2_bytes, info.l1_data_bytes);
  EXPECT_GT(default_base_case_elements(sizeof(double)), 0u);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 1000000; ++i) x = x + 1.0;
  EXPECT_GT(t.seconds(), 0.0);
}

}  // namespace
}  // namespace atalib
