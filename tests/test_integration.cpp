// Cross-module integration tests: the same product computed by every engine
// in the library must agree, and downstream linear-algebra uses must work.

#include <gtest/gtest.h>

#include <cmath>

#include "ata/ata.hpp"
#include "blas/parallel.hpp"
#include "blas/reference.hpp"
#include "blas/syrk.hpp"
#include "dist/ata_dist.hpp"
#include "dist/summa_syrk.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "matrix/packed.hpp"
#include "parallel/ata_shared.hpp"

namespace atalib {
namespace {

RecurseOptions tiny_base() {
  RecurseOptions opts;
  opts.base_case_elements = 256;
  opts.min_dim = 2;
  return opts;
}

TEST(Integration, AllEnginesAgreeBitwiseOnIntegerInput) {
  // Integer matrices make every execution order produce identical floats,
  // so the five engines must agree exactly.
  const index_t m = 120, n = 88;
  auto a = random_integer<double>(m, n, 3, 42);
  auto reference = Matrix<double>::zeros(n, n);
  blas::ref::syrk_ln(1.0, a.const_view(), reference.view());

  auto by_syrk = Matrix<double>::zeros(n, n);
  blas::syrk_ln(1.0, a.const_view(), by_syrk.view());

  auto by_ata = Matrix<double>::zeros(n, n);
  ata(1.0, a.const_view(), by_ata.view(), tiny_base());

  auto by_shared = Matrix<double>::zeros(n, n);
  SharedOptions so;
  so.threads = 7;
  so.recurse = tiny_base();
  ata_shared(1.0, a.const_view(), by_shared.view(), so);

  dist::DistOptions dopts;
  dopts.procs = 13;
  dopts.recurse = tiny_base();
  const auto by_dist = dist::ata_dist(1.0, a, dopts);

  const auto by_summa = dist::summa_syrk(1.0, a, 5);

  const std::vector<const Matrix<double>*> engines = {&by_syrk, &by_ata, &by_shared,
                                                      &by_dist.c, &by_summa.c};
  for (const Matrix<double>* c : engines) {
    EXPECT_EQ(max_abs_diff_lower<double>(c->const_view(), reference.const_view()), 0.0);
  }
}

TEST(Integration, NormalEquationsSolveLeastSquares) {
  // Solve min ||Ax - b|| via A^T A x = A^T b with AtA + Cholesky; the
  // residual must be orthogonal to the column space (A^T r = 0).
  const index_t m = 60, n = 12;
  auto a = random_gaussian<double>(m, n, 7);
  auto x_true = random_gaussian<double>(n, 1, 8);
  // b = A x_true (so the residual of the solve should be ~0).
  auto b = Matrix<double>::zeros(m, 1);
  blas::ref::gemm_nn(1.0, a.const_view(), x_true.const_view(), b.view());

  auto ata_m = Matrix<double>::zeros(n, n);
  ata(1.0, a.const_view(), ata_m.view(), tiny_base());
  symmetrize_from_lower(ata_m.view());
  auto atb = Matrix<double>::zeros(n, 1);
  blas::ref::gemm_tn(1.0, a.const_view(), b.const_view(), atb.view());

  // In-place Cholesky solve (lower).
  Matrix<double> l = ata_m.clone();
  for (index_t j = 0; j < n; ++j) {
    for (index_t kk = 0; kk < j; ++kk)
      for (index_t i = j; i < n; ++i) l(i, j) -= l(i, kk) * l(j, kk);
    const double d = std::sqrt(l(j, j));
    ASSERT_GT(d, 0.0);
    for (index_t i = j; i < n; ++i) l(i, j) /= d;
  }
  // Forward/back substitution.
  std::vector<double> y(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    double s = atb(i, 0);
    for (index_t j = 0; j < i; ++j) s -= l(i, j) * y[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] = s / l(i, i);
  }
  std::vector<double> x(static_cast<std::size_t>(n));
  for (index_t i = n - 1; i >= 0; --i) {
    double s = y[static_cast<std::size_t>(i)];
    for (index_t j = i + 1; j < n; ++j) s -= l(j, i) * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = s / l(i, i);
  }
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], x_true(i, 0), 1e-8);
  }
}

TEST(Integration, GramMatrixOfOrthogonalColumnsIsIdentity) {
  // Build an orthonormal basis (Gram-Schmidt with the library's dot), then
  // AtA of it must be the identity.
  const index_t m = 50, n = 8;
  auto a = random_gaussian<double>(m, n, 21);
  // Modified Gram-Schmidt on columns.
  for (index_t j = 0; j < n; ++j) {
    for (index_t k = 0; k < j; ++k) {
      double dot = 0;
      for (index_t i = 0; i < m; ++i) dot += a(i, j) * a(i, k);
      for (index_t i = 0; i < m; ++i) a(i, j) -= dot * a(i, k);
    }
    double nrm = 0;
    for (index_t i = 0; i < m; ++i) nrm += a(i, j) * a(i, j);
    nrm = std::sqrt(nrm);
    for (index_t i = 0; i < m; ++i) a(i, j) /= nrm;
  }
  auto c = Matrix<double>::zeros(n, n);
  ata(1.0, a.const_view(), c.view(), tiny_base());
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j <= i; ++j) {
      EXPECT_NEAR(c(i, j), i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(Integration, SharedAndDistAgreeAcrossPrecisions) {
  const index_t m = 64, n = 64;
  auto a = random_integer<float>(m, n, 2, 33);
  auto c_ref = Matrix<float>::zeros(n, n);
  blas::ref::syrk_ln(1.0f, a.const_view(), c_ref.view());
  SharedOptions so;
  so.threads = 4;
  so.recurse = tiny_base();
  auto c_s = Matrix<float>::zeros(n, n);
  ata_shared(1.0f, a.const_view(), c_s.view(), so);
  dist::DistOptions dopts;
  dopts.procs = 4;
  dopts.recurse = tiny_base();
  const auto c_d = dist::ata_dist(1.0f, a, dopts);
  EXPECT_EQ(max_abs_diff_lower<float>(c_s.const_view(), c_ref.const_view()), 0.0);
  EXPECT_EQ(max_abs_diff_lower<float>(c_d.c.const_view(), c_ref.const_view()), 0.0);
}

TEST(Integration, SharedProfileMatchesParallelExecution) {
  // ata_shared_profile runs the same schedule serially; its result and the
  // OpenMP execution must agree bitwise, and its timing fields must be
  // internally consistent.
  auto a = random_integer<double>(80, 64, 3, 91);
  SharedOptions so;
  so.threads = 6;
  so.recurse = tiny_base();
  auto c1 = Matrix<double>::zeros(64, 64);
  ata_shared(1.0, a.const_view(), c1.view(), so);
  auto c2 = Matrix<double>::zeros(64, 64);
  const auto profile = ata_shared_profile(1.0, a.const_view(), c2.view(), so);
  EXPECT_EQ(max_abs_diff_lower<double>(c1.const_view(), c2.const_view()), 0.0);
  EXPECT_EQ(profile.task_seconds.size(), 6u);
  double total = 0, worst = 0;
  for (double s : profile.task_seconds) {
    EXPECT_GE(s, 0.0);
    total += s;
    worst = std::max(worst, s);
  }
  EXPECT_DOUBLE_EQ(profile.total_seconds, total);
  EXPECT_DOUBLE_EQ(profile.critical_path_seconds, worst);
  EXPECT_LE(profile.critical_path_seconds, profile.total_seconds);
}

TEST(Integration, DistCriticalPathIsMaxOfRankBusy) {
  auto a = random_uniform<double>(96, 96, 17);
  dist::DistOptions opts;
  opts.procs = 8;
  opts.recurse = tiny_base();
  const auto res = dist::ata_dist(1.0, a, opts);
  EXPECT_EQ(res.rank_busy_seconds.size(), 8u);
  double worst = 0;
  for (double s : res.rank_busy_seconds) {
    EXPECT_GE(s, 0.0);
    worst = std::max(worst, s);
  }
  EXPECT_DOUBLE_EQ(res.critical_path_seconds(), worst);
  EXPECT_GT(worst, 0.0);
}

TEST(Integration, RepeatedCallsAreIdempotentInStructure) {
  // Calling the full stack repeatedly (fresh C each time) must give the
  // same answer — guards against leaked state in thread-local buffers.
  auto a = random_integer<double>(48, 40, 3, 55);
  Matrix<double> first = Matrix<double>::zeros(40, 40);
  SharedOptions so;
  so.threads = 3;
  so.recurse = tiny_base();
  ata_shared(1.0, a.const_view(), first.view(), so);
  for (int rep = 0; rep < 5; ++rep) {
    auto again = Matrix<double>::zeros(40, 40);
    ata_shared(1.0, a.const_view(), again.view(), so);
    ASSERT_EQ(max_abs_diff_lower<double>(again.const_view(), first.const_view()), 0.0);
  }
}

}  // namespace
}  // namespace atalib
