// Tests for the distributed comparators: pdsyrk-like SUMMA, COSMA-like,
// CAPS-like.

#include <gtest/gtest.h>

#include "blas/reference.hpp"
#include "dist/caps_like.hpp"
#include "dist/cosma_like.hpp"
#include "dist/summa_syrk.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"

namespace atalib::dist {
namespace {

class BaselineP : public ::testing::TestWithParam<int> {};

TEST_P(BaselineP, SummaSyrkMatchesReference) {
  const int p = GetParam();
  auto a = random_integer<double>(100, 60, 3, 1);
  auto c_ref = Matrix<double>::zeros(60, 60);
  blas::ref::syrk_ln(2.0, a.const_view(), c_ref.view());
  const auto res = summa_syrk(2.0, a, p);
  EXPECT_EQ(max_abs_diff_lower<double>(res.c.const_view(), c_ref.const_view()), 0.0)
      << "P=" << p;
}

TEST_P(BaselineP, CosmaLikeMatchesReferenceOnAtB) {
  const int p = GetParam();
  auto a = random_integer<double>(64, 48, 3, 2);
  auto b = random_integer<double>(64, 56, 3, 3);
  auto c_ref = Matrix<double>::zeros(48, 56);
  blas::ref::gemm_tn(1.0, a.const_view(), b.const_view(), c_ref.view());
  const auto res = cosma_like_gemm(1.0, a, b, p);
  EXPECT_EQ(max_abs_diff<double>(res.c.const_view(), c_ref.const_view()), 0.0);
}

TEST_P(BaselineP, CapsLikeMatchesReferenceOnSquare) {
  const int p = GetParam();
  auto x = random_integer<double>(60, 60, 3, 4);
  auto y = random_integer<double>(60, 60, 3, 5);
  auto c_ref = Matrix<double>::zeros(60, 60);
  blas::ref::gemm_nn(1.0, x.const_view(), y.const_view(), c_ref.view());
  const auto res = caps_like_mm(x, y, p);
  EXPECT_EQ(max_abs_diff<double>(res.c.const_view(), c_ref.const_view()), 0.0) << "P=" << p;
}

INSTANTIATE_TEST_SUITE_P(PSweep, BaselineP, ::testing::Values(1, 2, 3, 4, 6, 7, 8, 13, 16, 49));

TEST(SummaSyrk, ClampsProcsToRows) {
  auto a = random_integer<double>(4, 10, 2, 6);
  auto c_ref = Matrix<double>::zeros(10, 10);
  blas::ref::syrk_ln(1.0, a.const_view(), c_ref.view());
  const auto res = summa_syrk(1.0, a, 64);  // more ranks than rows
  EXPECT_EQ(max_abs_diff_lower<double>(res.c.const_view(), c_ref.const_view()), 0.0);
}

TEST(CosmaLike, GridMinimizesModeledVolume) {
  // Tall-skinny A^T B: the model must prefer splitting the long dimension.
  const auto g1 = cosma_pick_grid(10000, 64, 64, 16);
  EXPECT_EQ(g1.pr * g1.pc, 16);
  EXPECT_EQ(g1.pr, 4);  // square C -> square grid
  const auto g2 = cosma_pick_grid(1000, 1024, 16, 16);
  EXPECT_GT(g2.pr, g2.pc);  // wide n -> more row groups
}

TEST(CosmaLike, RectangularOperands) {
  auto a = random_integer<double>(90, 30, 2, 7);
  auto b = random_integer<double>(90, 75, 2, 8);
  auto c_ref = Matrix<double>::zeros(30, 75);
  blas::ref::gemm_tn(1.0, a.const_view(), b.const_view(), c_ref.view());
  const auto res = cosma_like_gemm(1.0, a, b, 12);
  EXPECT_EQ(max_abs_diff<double>(res.c.const_view(), c_ref.const_view()), 0.0);
}

TEST(CapsLike, RejectsRectangular) {
  auto x = random_uniform<double>(10, 12, 1);
  auto y = random_uniform<double>(12, 10, 2);
  EXPECT_THROW(caps_like_mm(x, y, 7), std::invalid_argument);
}

TEST(CapsLike, OddSizeIsPaddedInternally) {
  auto x = random_integer<double>(29, 29, 2, 9);
  auto y = random_integer<double>(29, 29, 2, 10);
  auto c_ref = Matrix<double>::zeros(29, 29);
  blas::ref::gemm_nn(1.0, x.const_view(), y.const_view(), c_ref.view());
  const auto res = caps_like_mm(x, y, 14);
  EXPECT_EQ(max_abs_diff<double>(res.c.const_view(), c_ref.const_view()), 0.0);
}

TEST(CapsLike, TwoBfsLevelsWith49Procs) {
  auto x = random_integer<double>(40, 40, 2, 11);
  auto y = random_integer<double>(40, 40, 2, 12);
  auto c_ref = Matrix<double>::zeros(40, 40);
  blas::ref::gemm_nn(1.0, x.const_view(), y.const_view(), c_ref.view());
  const auto res = caps_like_mm(x, y, 49);
  EXPECT_EQ(res.levels, 2);
  EXPECT_EQ(max_abs_diff<double>(res.c.const_view(), c_ref.const_view()), 0.0);
}

TEST(Baselines, TrafficIsAccounted) {
  auto a = random_uniform<double>(64, 64, 3);
  const auto r1 = summa_syrk(1.0, a, 8);
  EXPECT_GT(r1.traffic.total_messages(), 0u);
  const auto r2 = cosma_like_gemm(1.0, a, a, 8);
  EXPECT_GT(r2.traffic.total_words(), 0u);
  const auto r3 = caps_like_mm(a, a, 7);
  EXPECT_GT(r3.traffic.total_words(), 0u);
}

}  // namespace
}  // namespace atalib::dist
