// Tests for metrics (eq. (9)) and the paper's cost models.

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/flops.hpp"
#include "metrics/models.hpp"
#include "sched/levels.hpp"

namespace atalib::metrics {
namespace {

TEST(EffectiveGflops, SquareMatchesEquation9) {
  // r * n^3 / (t * 1e9) for n = 1000, t = 1s -> r gflops.
  EXPECT_DOUBLE_EQ(effective_gflops(1.0, 1000, 1000, 1000, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(effective_gflops(2.0, 1000, 1000, 1000, 0.5), 4.0);
}

TEST(EffectiveGflops, RectangularGeneralization) {
  EXPECT_DOUBLE_EQ(effective_gflops(1.0, 60000, 5000, 5000, 1.0), 1500.0);
}

TEST(EffectiveGflops, ZeroTimeIsZeroNotInf) {
  EXPECT_DOUBLE_EQ(effective_gflops(1.0, 10, 10, 10, 0.0), 0.0);
}

TEST(PercentOfPeak, ScalesWithProcs) {
  EXPECT_DOUBLE_EQ(percent_of_peak(50.0, 100.0, 1), 50.0);
  EXPECT_DOUBLE_EQ(percent_of_peak(50.0, 100.0, 2), 25.0);
  EXPECT_DOUBLE_EQ(percent_of_peak(50.0, 0.0, 2), 0.0);
}

TEST(PeakMeasurement, ReturnsPositiveGflops) {
  const double peak = measure_peak_gflops();
  EXPECT_GT(peak, 0.1);
  EXPECT_LT(peak, 10000.0);
}

TEST(Models, AtaIsTwoThirdsOfStrassen) {
  for (double n : {512.0, 4096.0, 30000.0}) {
    EXPECT_NEAR(ata_cost_model(n) / strassen_cost_model(n), 2.0 / 3.0, 1e-12);
  }
}

TEST(Models, StrassenBeatsClassicalAsymptotically) {
  // Crossover exists: classical n^2(n+1) wins for small n, Strassen-order
  // wins for large n.
  EXPECT_LT(classical_ata_cost(64), ata_cost_model(64));
  EXPECT_GT(classical_ata_cost(1e6), ata_cost_model(1e6));
}

TEST(Models, SpaceModelIsThreeHalvesNSquared) {
  EXPECT_DOUBLE_EQ(ata_space_model(1000), 1.5e6);
}

TEST(Models, DistComputeShrinksStepwise) {
  const double full = dist_compute_model(4096, 1);
  EXPECT_GT(full, dist_compute_model(4096, 8));
  // l(8) == l(64) == 2 per eq. (5) — a wide plateau; the next drop is at
  // the first P with l == 3 (P = 68).
  EXPECT_DOUBLE_EQ(dist_compute_model(4096, 8), dist_compute_model(4096, 64));
  EXPECT_GT(dist_compute_model(4096, 64), dist_compute_model(4096, 68));
  // Plateau inside a step: l(16) == l(24) per eq. (5).
  EXPECT_EQ(sched::paper_levels_dist(16), sched::paper_levels_dist(24));
  EXPECT_DOUBLE_EQ(dist_compute_model(4096, 16), dist_compute_model(4096, 24));
}

TEST(Models, LatencyIsSizeFreeAndStepwise) {
  EXPECT_DOUBLE_EQ(dist_latency_model(2), 10.0);  // l=1: 2*(0+5)
  EXPECT_GT(dist_latency_model(64), dist_latency_model(6));
}

TEST(Models, BandwidthQuadraticInN) {
  const double b1 = dist_bandwidth_model(1000, 16);
  const double b2 = dist_bandwidth_model(2000, 16);
  EXPECT_NEAR(b2 / b1, 4.0, 0.05);
}

}  // namespace
}  // namespace atalib::metrics
