// Tests for the overload-hardened serving path (DESIGN.md §10): bounded
// admission (block/reject/shed-oldest), deadlines and priorities, the
// Server destructor contract under load, the sharded plan cache's
// build-once guarantee, the ATALIB_FAULTS parser, and the lock-free
// latency histograms behind Server::stats().
//
// The fault-injection hooks compile to no-ops unless the build sets
// -DATALIB_FAULT_INJECTION=ON; tests that need an unhealthy server set
// ATALIB_FAULTS around Server construction themselves (from_env() is
// re-read per server), so the fault CI leg runs this same file with the
// extra scenarios active and no other test sees the variable.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "api/errors.hpp"
#include "api/plan_cache.hpp"
#include "api/server.hpp"
#include "ata/ata.hpp"
#include "common/fault.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "metrics/latency.hpp"
#include "parallel/ata_shared.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/dist_tree.hpp"
#include "sched/shared_schedule.hpp"

namespace atalib {
namespace {

using Clock = std::chrono::steady_clock;

RecurseOptions tiny_base() {
  RecurseOptions opts;
  opts.base_case_elements = 256;
  opts.min_dim = 2;
  return opts;
}

SharedOptions shared_opts(int threads, int oversub) {
  SharedOptions so;
  so.threads = threads;
  so.oversub = oversub;
  so.recurse = tiny_base();
  return so;
}

api::PlanKey key_for(index_t m, index_t n, int threads, int oversub) {
  return api::shared_plan_key(api::dtype_of<double>(), m, n, shared_opts(threads, oversub));
}

std::uint64_t total_schedule_builds() {
  return sched::shared_schedule_builds() + sched::dist_tree_builds();
}

std::size_t pool_slab_grows(runtime::ThreadPool& pool) {
  std::size_t total = 0;
  for (int s = 0; s < pool.concurrency(); ++s) total += pool.workspace(s).grow_count();
  return total;
}

/// Occupies the pool's single worker until release() is called; started()
/// reports that the worker actually picked the task up. The pools under
/// test have 2 slots = 1 worker, so one blocker freezes the whole queue.
struct WorkerBlocker {
  std::atomic<bool> running{false};
  std::atomic<bool> go{false};
  std::future<void> done;

  void install(runtime::ThreadPool& pool) {
    done = pool.submit(1, [this](int, runtime::TaskContext&) {
      running.store(true, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    });
    while (!running.load(std::memory_order_acquire)) std::this_thread::yield();
  }
  void release() { go.store(true, std::memory_order_release); }
};

/// Polls stats() until every admitted batch retired (batch retirement is
/// the last task-side touch and may lag the future settle by a moment).
void wait_drained(const api::Server& server) {
  const auto give_up = Clock::now() + std::chrono::seconds(30);
  while (Clock::now() < give_up) {
    const auto s = server.stats();
    if (s.inflight_requests == 0 && s.queued_batches == 0) return;
    std::this_thread::yield();
  }
  FAIL() << "server never drained";
}

// ---- ThreadPool priority classes --------------------------------------

TEST(PoolPriority, HigherClassDrainsFirstFifoWithinClass) {
  // One worker, so every queued task lands in one slot queue and the pop
  // order IS the global execution order: priority classes must drain
  // high-to-low, FIFO within a class. A blocker holds the worker while
  // the low-priority batch is enqueued BEFORE the high one — the inversion
  // a plain FIFO queue would commit.
  runtime::ThreadPool pool(2);
  WorkerBlocker blocker;
  blocker.install(pool);

  constexpr int kPerBatch = 3;
  std::atomic<int> seq{0};
  std::array<int, kPerBatch> low_at{};   // execution position of low task t
  std::array<int, kPerBatch> high_at{};

  runtime::ThreadPool::SubmitOptions low_opts;
  low_opts.priority = 0;
  auto low = pool.submit(
      kPerBatch,
      [&](int t, runtime::TaskContext&) {
        low_at[static_cast<std::size_t>(t)] = seq.fetch_add(1, std::memory_order_relaxed);
      },
      low_opts);
  runtime::ThreadPool::SubmitOptions high_opts;
  high_opts.priority = 5;
  auto high = pool.submit(
      kPerBatch,
      [&](int t, runtime::TaskContext&) {
        high_at[static_cast<std::size_t>(t)] = seq.fetch_add(1, std::memory_order_relaxed);
      },
      high_opts);

  EXPECT_EQ(pool.queue_depth(), 2u * kPerBatch) << "all six tasks queued behind the blocker";
  blocker.release();
  blocker.done.get();
  high.get();
  low.get();

  EXPECT_EQ(pool.queue_depth(), 0u);
  for (int t = 0; t < kPerBatch; ++t) {
    // Every high-priority task ran before every low-priority task, even
    // though the low batch was enqueued first.
    for (int u = 0; u < kPerBatch; ++u) {
      EXPECT_LT(high_at[static_cast<std::size_t>(t)], low_at[static_cast<std::size_t>(u)]);
    }
  }
  // FIFO within a class: the single worker pops the hot end in order.
  for (int t = 1; t < kPerBatch; ++t) {
    EXPECT_LT(high_at[static_cast<std::size_t>(t - 1)], high_at[static_cast<std::size_t>(t)]);
    EXPECT_LT(low_at[static_cast<std::size_t>(t - 1)], low_at[static_cast<std::size_t>(t)]);
  }
}

// ---- Sharded PlanCache ------------------------------------------------

TEST(PlanCache, ShardedBuildOnceUnderConcurrentMisses) {
  // 8 client threads hammer the same cold key set concurrently. Build-once
  // must hold per key even when several keys collide in one shard and all
  // 8 threads miss on it at the same instant: total misses == distinct
  // keys, everything else is a hit, and every thread sees the same plan.
  api::PlanCache cache(32, 8);
  std::vector<api::PlanKey> keys;
  for (index_t m = 40; keys.size() < 12; m += 8) {
    keys.push_back(key_for(m, m - 8, 2, 1));
  }
  // The workload only stresses per-shard concurrency if shards collide;
  // with 12 keys over 8 shards the pigeonhole principle guarantees it.
  std::vector<int> shard_hits(8, 0);
  for (const auto& k : keys) ++shard_hits[cache.shard_of(k)];
  EXPECT_GT(*std::max_element(shard_hits.begin(), shard_hits.end()), 1);

  constexpr int kThreads = 8;
  constexpr int kReps = 4;
  std::vector<std::vector<const api::AtaPlan*>> seen(
      kThreads, std::vector<const api::AtaPlan*>(keys.size(), nullptr));
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (ready.load(std::memory_order_acquire) < kThreads) std::this_thread::yield();
      for (int rep = 0; rep < kReps; ++rep) {
        for (std::size_t k = 0; k < keys.size(); ++k) {
          const auto plan = cache.get_or_build(keys[k]);
          if (rep == 0) seen[static_cast<std::size_t>(i)][k] = plan.get();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto s = cache.stats();
  EXPECT_EQ(s.shards, 8u);
  EXPECT_EQ(s.misses, keys.size()) << "every key must build exactly once";
  EXPECT_EQ(s.evictions, 0u) << "working set fits the global budget, no shard may evict";
  EXPECT_EQ(s.hits + s.misses,
            static_cast<std::uint64_t>(kThreads) * kReps * keys.size());
  EXPECT_EQ(s.size, keys.size());
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)], seen[0])
        << "concurrent requesters must share one built plan per key";
  }
}

// ---- ATALIB_FAULTS parser (always compiled) ---------------------------

TEST(Fault, ParserGrammar) {
  EXPECT_EQ(fault::Plan::parse(""), nullptr);

  const auto plan = fault::Plan::parse("slow_task:100:2,throw_leaf:3,queue_pressure:7");
  ASSERT_NE(plan, nullptr);
  const fault::Site* slow = plan->find("slow_task");
  ASSERT_NE(slow, nullptr);
  EXPECT_EQ(slow->n1, 100u);
  EXPECT_EQ(slow->n2, 2u);
  const fault::Site* leaf = plan->find("throw_leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->n1, 3u);
  EXPECT_EQ(leaf->n2, 0u);
  EXPECT_EQ(plan->queue_pressure(), 7u);
  EXPECT_FALSE(plan->has("no_such_site"));

  EXPECT_THROW(fault::Plan::parse(":5"), std::invalid_argument);
  EXPECT_THROW(fault::Plan::parse("site:abc"), std::invalid_argument);
  EXPECT_THROW(fault::Plan::parse("site:1:2:3"), std::invalid_argument);
  EXPECT_THROW(fault::Plan::parse("ok:1,,also"), std::invalid_argument);
}

TEST(Fault, FireCountsOccurrencesDeterministically) {
  const auto plan = fault::Plan::parse("site:0");
  ASSERT_NE(plan, nullptr);
  // every=3: the 3rd, 6th, ... occurrence fires.
  std::vector<bool> fired;
  for (int k = 0; k < 7; ++k) fired.push_back(plan->fire("site", 3));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true, false}));
  EXPECT_FALSE(plan->fire("absent", 1)) << "an unlisted site never fires";
  // every=0 behaves as every=1 (fires on each occurrence).
  const auto each = fault::Plan::parse("s");
  for (int k = 0; k < 3; ++k) EXPECT_TRUE(each->fire("s", 0));
}

TEST(Fault, FromEnvGatedByBuildFlag) {
  setenv("ATALIB_FAULTS", "slow_task:1", 1);
  const auto plan = fault::Plan::from_env();
  unsetenv("ATALIB_FAULTS");
  if constexpr (fault::kEnabled) {
    ASSERT_NE(plan, nullptr);
    EXPECT_TRUE(plan->has("slow_task"));
  } else {
    EXPECT_EQ(plan, nullptr) << "a release build must ignore ATALIB_FAULTS";
  }
  EXPECT_EQ(fault::Plan::from_env(), nullptr);  // variable unset again
}

// ---- Latency histogram ------------------------------------------------

TEST(Latency, BucketEdgesRoundTripAndStayMonotone) {
  using H = metrics::LatencyHistogram;
  std::uint64_t prev_edge = 0;
  for (std::size_t b = 0; b < H::kBuckets; ++b) {
    const std::uint64_t edge = H::bucket_upper_edge(b);
    EXPECT_EQ(H::bucket_of(edge), b) << "edge of bucket " << b;
    if (b > 0) {
      EXPECT_GT(edge, prev_edge);
      // The first value past the previous edge belongs to this bucket.
      EXPECT_EQ(H::bucket_of(prev_edge + 1), b);
    }
    prev_edge = edge;
  }
  EXPECT_EQ(H::bucket_of(0), 0u);
  EXPECT_EQ(H::bucket_of(~std::uint64_t{0}), H::kBuckets - 1) << "overflow clamps to last";
}

TEST(Latency, QuantilesCountAndSum) {
  metrics::LatencyHistogram h;
  EXPECT_EQ(h.quantile_ns(0.5), 0u) << "empty histogram reports 0";
  for (int i = 0; i < 100; ++i) h.record(1000);
  h.record(1000000);
  EXPECT_EQ(h.count(), 101u);
  EXPECT_EQ(h.sum_ns(), 100u * 1000 + 1000000);
  // Quantile error is bounded by the bucket width: 1/8 octave = 12.5%.
  EXPECT_GE(h.quantile_ns(0.5), 1000u);
  EXPECT_LE(h.quantile_ns(0.5), 1125u);
  EXPECT_GE(h.quantile_ns(0.999), 1000000u);
  EXPECT_LE(h.quantile_ns(0.999), 1125000u);
  const auto s = metrics::summarize(h);
  EXPECT_EQ(s.count, 101u);
  EXPECT_EQ(s.p50_ns, h.quantile_ns(0.5));
  EXPECT_EQ(s.p999_ns, h.quantile_ns(0.999));
  EXPECT_NEAR(static_cast<double>(s.mean_ns),
              static_cast<double>(h.sum_ns()) / 101.0, 1.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum_ns(), 0u);
}

// ---- Admission gate edge cases ----------------------------------------

TEST(ServerOverload, ZeroCapacityGateRefusesEveryPolicy) {
  // max_queued_batches = 0 (and max_inflight_requests = 0) are genuine
  // zero-capacity gates: no submission can EVER fit, so even kBlock must
  // throw OverloadError instead of blocking forever — before any promise
  // or plan exists.
  const api::AdmissionPolicy policies[] = {api::AdmissionPolicy::kBlock,
                                           api::AdmissionPolicy::kReject,
                                           api::AdmissionPolicy::kShedOldest};
  const auto a = random_integer<double>(48, 32, 2, 11);
  for (const auto policy : policies) {
    api::Server::Options opts;
    opts.threads = 2;
    opts.max_queued_batches = 0;
    opts.admission = policy;
    api::Server server(opts);
    auto c = Matrix<double>::zeros(32, 32);
    EXPECT_THROW(server.submit(1.0, a.const_view(), c.view(), shared_opts(1, 1)),
                 api::OverloadError);
    const auto s = server.stats();
    EXPECT_EQ(s.rejected, 1u);
    EXPECT_EQ(s.admitted, 0u);
    EXPECT_EQ(s.compute.count, 0u) << "a refused request must never compute";
  }
  {
    api::Server::Options opts;
    opts.threads = 2;
    opts.max_inflight_requests = 0;
    api::Server server(opts);
    auto c = Matrix<double>::zeros(32, 32);
    EXPECT_THROW(server.submit(1.0, a.const_view(), c.view(), shared_opts(1, 1)),
                 api::OverloadError);
  }
}

TEST(ServerOverload, BatchLargerThanInflightBoundRejectsInsteadOfDeadlocking) {
  // A 3-request batch can never fit a 2-request bound; kBlock waiting for
  // capacity that cannot materialize would hang forever.
  api::Server::Options sopts;
  sopts.threads = 2;
  sopts.max_inflight_requests = 2;
  sopts.admission = api::AdmissionPolicy::kBlock;
  api::Server server(sopts);
  const auto a = random_integer<double>(24, 16, 2, 5);
  std::vector<Matrix<double>> cs;
  std::vector<api::AtaRequest<double>> reqs;
  for (int i = 0; i < 3; ++i) {
    cs.push_back(Matrix<double>::zeros(16, 16));
    reqs.push_back({1.0, a.const_view(), cs.back().view()});
  }
  EXPECT_THROW(server.submit_batch<double>(reqs, shared_opts(1, 1)), api::OverloadError);
  EXPECT_EQ(server.stats().rejected, 3u);
}

TEST(ServerOverload, DeadlineExpiredAtSubmitSettlesWithoutCompute) {
  api::Server::Options sopts;
  sopts.threads = 2;
  api::Server server(sopts);
  const auto a = random_integer<double>(48, 32, 2, 21);
  auto c = Matrix<double>::zeros(32, 32);
  fill_view(c.view(), -7.0);
  auto sentinel = Matrix<double>::zeros(32, 32);
  fill_view(sentinel.view(), -7.0);

  auto opts = shared_opts(1, 1);
  opts.deadline = Clock::now() - std::chrono::milliseconds(1);
  auto fut = server.submit(1.0, a.const_view(), c.view(), opts);
  EXPECT_THROW(fut.get(), api::DeadlineExceeded);
  wait_drained(server);

  const auto s = server.stats();
  EXPECT_EQ(s.admitted, 1u);
  EXPECT_EQ(s.deadline_expired, 1u);
  EXPECT_EQ(s.completed, 0u);
  EXPECT_EQ(s.compute.count, 0u) << "expired work must never reach a leaf GEMM";
  EXPECT_EQ(s.queue_wait.count, 0u);
  EXPECT_EQ(max_abs_diff_lower<double>(c.const_view(), sentinel.const_view()), 0.0)
      << "C must be untouched";
}

TEST(ServerOverload, DeadlineExpiredInQueueSkipsLeafGemms) {
  // The request is admitted healthy but its deadline passes while it waits
  // behind a blocked worker: its tasks must settle it with
  // DeadlineExceeded and skip compute entirely.
  api::Server::Options sopts;
  sopts.threads = 2;
  api::Server server(sopts);
  const auto a = random_integer<double>(48, 32, 2, 22);
  const auto opts = shared_opts(1, 1);
  {
    // Pre-warm plan + workspace so the gated submit below stays on the
    // never-blocking warm path (a cold warm would wait for the blocker).
    auto c0 = Matrix<double>::zeros(32, 32);
    server.submit(1.0, a.const_view(), c0.view(), opts).get();
  }
  const auto before = server.stats();

  WorkerBlocker blocker;
  blocker.install(server.executor());
  auto c = Matrix<double>::zeros(32, 32);
  fill_view(c.view(), -7.0);
  auto sentinel = Matrix<double>::zeros(32, 32);
  fill_view(sentinel.view(), -7.0);
  auto dopts = opts;
  dopts.deadline = Clock::now() + std::chrono::milliseconds(30);
  auto fut = server.submit(1.0, a.const_view(), c.view(), dopts);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  blocker.release();
  blocker.done.get();

  EXPECT_THROW(fut.get(), api::DeadlineExceeded);
  wait_drained(server);
  const auto after = server.stats();
  EXPECT_EQ(after.deadline_expired - before.deadline_expired, 1u);
  EXPECT_EQ(after.completed, before.completed);
  EXPECT_EQ(after.compute.count, before.compute.count)
      << "expired work must never reach a leaf GEMM";
  EXPECT_EQ(max_abs_diff_lower<double>(c.const_view(), sentinel.const_view()), 0.0);
}

TEST(ServerOverload, ShedOldestFreesCapacityForNewWork) {
  // Gate of one in-flight request, kShedOldest. R1 is admitted with a
  // short deadline and stuck behind a blocked worker; once its deadline
  // passes, R2's admission sheds it (DeadlineExceeded) instead of
  // rejecting R2 — and R2 then completes normally.
  api::Server::Options sopts;
  sopts.threads = 2;
  sopts.max_inflight_requests = 1;
  sopts.admission = api::AdmissionPolicy::kShedOldest;
  api::Server server(sopts);
  const auto a = random_integer<double>(48, 32, 2, 23);
  auto ref = Matrix<double>::zeros(32, 32);
  ata(1.0, a.const_view(), ref.view(), tiny_base());
  const auto opts = shared_opts(1, 1);
  {
    auto c0 = Matrix<double>::zeros(32, 32);
    server.submit(1.0, a.const_view(), c0.view(), opts).get();
  }

  WorkerBlocker blocker;
  blocker.install(server.executor());
  auto c1 = Matrix<double>::zeros(32, 32);
  fill_view(c1.view(), -7.0);
  auto sentinel = Matrix<double>::zeros(32, 32);
  fill_view(sentinel.view(), -7.0);
  auto dopts = opts;
  dopts.deadline = Clock::now() + std::chrono::milliseconds(20);
  auto r1 = server.submit(1.0, a.const_view(), c1.view(), dopts);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // R1 holds the only slot but is expired: this submit must shed it and
  // get admitted, not throw and not block.
  auto c2 = Matrix<double>::zeros(32, 32);
  auto r2 = server.submit(1.0, a.const_view(), c2.view(), opts);
  EXPECT_THROW(r1.get(), api::DeadlineExceeded) << "shed work settles with DeadlineExceeded";
  blocker.release();
  blocker.done.get();
  r2.get();

  EXPECT_EQ(max_abs_diff_lower<double>(c2.const_view(), ref.const_view()), 0.0);
  EXPECT_EQ(max_abs_diff_lower<double>(c1.const_view(), sentinel.const_view()), 0.0)
      << "shed request must never have computed";
  wait_drained(server);
  const auto s = server.stats();
  EXPECT_EQ(s.shed, 1u);
  EXPECT_GE(s.deadline_expired, 1u);
  EXPECT_EQ(s.rejected, 0u);
}

TEST(ServerOverload, HigherPriorityRequestOvertakesQueuedLowerPriority) {
  // Single worker; a low-priority request is queued first behind a
  // blocker, then a high-priority one. When the high future settles, the
  // low request (a multi-millisecond Gram) cannot already be done — which
  // is exactly what a FIFO pool would have produced.
  api::Server::Options sopts;
  sopts.threads = 2;
  api::Server server(sopts);
  const auto big = random_integer<double>(320, 256, 2, 31);
  const auto small = random_integer<double>(48, 32, 2, 32);
  const auto opts = shared_opts(1, 1);
  {
    auto cb = Matrix<double>::zeros(256, 256);
    auto cs = Matrix<double>::zeros(32, 32);
    server.submit(1.0, big.const_view(), cb.view(), opts).get();
    server.submit(1.0, small.const_view(), cs.view(), opts).get();
  }

  WorkerBlocker blocker;
  blocker.install(server.executor());
  auto c_low = Matrix<double>::zeros(256, 256);
  auto c_high = Matrix<double>::zeros(32, 32);
  auto low_opts = opts;
  low_opts.priority = 0;
  auto low = server.submit(1.0, big.const_view(), c_low.view(), low_opts);
  auto high_opts = opts;
  high_opts.priority = 9;
  auto high = server.submit(1.0, small.const_view(), c_high.view(), high_opts);
  blocker.release();

  high.get();
  EXPECT_EQ(low.wait_for(std::chrono::seconds(0)), std::future_status::timeout)
      << "priority inversion: the earlier low-priority request finished first";
  low.get();
  blocker.done.get();
  wait_drained(server);
}

// ---- Saturation (the PR's acceptance scenario) ------------------------

TEST(ServerOverload, RejectUnderSaturationSettlesEverythingAndKeepsAccounts) {
  // Clients = 4x the pool slots hammer a kReject server whose admission
  // bounds are far below the offered load. Required: no hang, every
  // returned future settles, every refusal is a synchronous OverloadError,
  // the books balance exactly, and sampled stats snapshots stay monotonic.
  // The fault-injection leg additionally makes every task slow
  // (ATALIB_FAULTS=slow_task) so the queue genuinely backs up.
  if constexpr (fault::kEnabled) {
    setenv("ATALIB_FAULTS", "slow_task:300", 1);
  }
  api::Server::Options sopts;
  sopts.threads = 2;  // 2 slots = 1 worker
  sopts.max_inflight_requests = 4;
  sopts.max_queued_batches = 4;
  sopts.admission = api::AdmissionPolicy::kReject;
  api::Server server(sopts);
  if constexpr (fault::kEnabled) unsetenv("ATALIB_FAULTS");

  const auto a = random_integer<double>(96, 64, 2, 41);
  auto ref = Matrix<double>::zeros(64, 64);
  ata(1.0, a.const_view(), ref.view(), tiny_base());
  const auto opts = shared_opts(1, 1);

  constexpr int kClients = 8;  // 4x the pool slots
  constexpr int kReps = 24;
  std::atomic<std::uint64_t> ok{0}, rejected{0}, mismatches{0};
  std::atomic<bool> monotonic{true}, stop_sampling{false};

  // Stats sampler: every counter must be monotonic across reads taken
  // while 8 writers race.
  std::thread sampler([&] {
    metrics::ServerStats prev = server.stats();
    while (!stop_sampling.load(std::memory_order_acquire)) {
      const metrics::ServerStats s = server.stats();
      if (s.admitted < prev.admitted || s.rejected < prev.rejected ||
          s.shed < prev.shed || s.deadline_expired < prev.deadline_expired ||
          s.completed < prev.completed || s.compute.count < prev.compute.count ||
          s.admission_wait.count < prev.admission_wait.count) {
        monotonic.store(false, std::memory_order_release);
      }
      prev = s;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int client = 0; client < kClients; ++client) {
    clients.emplace_back([&] {
      for (int rep = 0; rep < kReps; ++rep) {
        auto c = Matrix<double>::zeros(64, 64);
        std::future<void> fut;
        try {
          fut = server.submit(1.0, a.const_view(), c.view(), opts);
        } catch (const api::OverloadError&) {
          rejected.fetch_add(1, std::memory_order_relaxed);
          continue;  // refused synchronously: no future, no side effects
        }
        fut.get();  // every admitted future must settle (with a value here)
        ok.fetch_add(1, std::memory_order_relaxed);
        if (max_abs_diff_lower<double>(c.const_view(), ref.const_view()) != 0.0) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  wait_drained(server);
  stop_sampling.store(true, std::memory_order_release);
  sampler.join();

  EXPECT_TRUE(monotonic.load()) << "a stats snapshot went backwards";
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(ok.load() + rejected.load(),
            static_cast<std::uint64_t>(kClients) * kReps);
  const auto s = server.stats();
  EXPECT_EQ(s.admitted, ok.load());
  EXPECT_EQ(s.rejected, rejected.load());
  EXPECT_EQ(s.completed, ok.load());
  EXPECT_EQ(s.admission_wait.count, ok.load());
  EXPECT_EQ(s.compute.count, ok.load());
  EXPECT_EQ(s.inflight_requests, 0u);
  EXPECT_EQ(s.queued_batches, 0u);
  if constexpr (fault::kEnabled) {
    // With every task injected slow, 8 clients against a 4-deep gate must
    // actually trip the rejection path.
    EXPECT_GT(s.rejected, 0u);
    EXPECT_GT(s.compute.p50_ns, 300'000u) << "slow_task:300 must show up in compute p50";
  }

  // The overload machinery must not have cost the warm path its
  // amortization: repeats still do zero schedule builds, zero slab grows.
  const std::uint64_t builds = total_schedule_builds();
  const std::size_t grows = pool_slab_grows(server.executor());
  for (int rep = 0; rep < 4; ++rep) {
    auto c = Matrix<double>::zeros(64, 64);
    server.submit(1.0, a.const_view(), c.view(), opts).get();
  }
  EXPECT_EQ(total_schedule_builds(), builds);
  EXPECT_EQ(pool_slab_grows(server.executor()), grows);
}

TEST(ServerOverload, DeterministicRejectWhenQueueFullBehindBlockedWorker) {
  // Deterministic counterpart to the statistical saturation test: with the
  // single worker blocked and max_queued_batches admitted, the next submit
  // MUST throw OverloadError (nothing can drain), and the rejected request
  // must not have created a promise or touched the cache stats' hit path.
  api::Server::Options sopts;
  sopts.threads = 2;
  sopts.max_queued_batches = 2;
  sopts.admission = api::AdmissionPolicy::kReject;
  api::Server server(sopts);
  const auto a = random_integer<double>(48, 32, 2, 51);
  const auto opts = shared_opts(1, 1);
  {
    auto c0 = Matrix<double>::zeros(32, 32);
    server.submit(1.0, a.const_view(), c0.view(), opts).get();
  }

  WorkerBlocker blocker;
  blocker.install(server.executor());
  auto c1 = Matrix<double>::zeros(32, 32);
  auto c2 = Matrix<double>::zeros(32, 32);
  auto f1 = server.submit(1.0, a.const_view(), c1.view(), opts);
  auto f2 = server.submit(1.0, a.const_view(), c2.view(), opts);
  const auto hits_before = server.plan_stats().hits;
  auto c3 = Matrix<double>::zeros(32, 32);
  EXPECT_THROW(server.submit(1.0, a.const_view(), c3.view(), opts), api::OverloadError);
  EXPECT_EQ(server.plan_stats().hits, hits_before)
      << "the gate must refuse BEFORE the plan cache is consulted";
  EXPECT_EQ(server.stats().rejected, 1u);

  blocker.release();
  blocker.done.get();
  f1.get();
  f2.get();
  wait_drained(server);
}

// ---- Destructor contract ----------------------------------------------

TEST(ServerOverload, DestructorSettlesInflightFuturesWithServerShutdown) {
  // ~Server during in-flight load: the queued request's future settles
  // with ServerShutdown, its compute never runs, and the destructor
  // returns without hanging (it waits for the batch to retire as no-ops).
  const auto a = random_integer<double>(48, 32, 2, 61);
  auto c = Matrix<double>::zeros(32, 32);
  fill_view(c.view(), -7.0);
  auto sentinel = Matrix<double>::zeros(32, 32);
  fill_view(sentinel.view(), -7.0);
  std::future<void> fut;
  WorkerBlocker blocker;
  std::thread releaser;
  {
    api::Server::Options sopts;
    sopts.threads = 2;
    api::Server server(sopts);
    const auto opts = shared_opts(1, 1);
    {
      auto c0 = Matrix<double>::zeros(32, 32);
      server.submit(1.0, a.const_view(), c0.view(), opts).get();
    }
    blocker.install(server.executor());
    fut = server.submit(1.0, a.const_view(), c.view(), opts);
    // ~Server sweeps the ledger FIRST (settling the future) and then waits
    // for the batch to retire — which needs the worker back, so the
    // blocker is released from the side while the destructor blocks.
    releaser = std::thread([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      blocker.release();
    });
  }  // ~Server must return
  releaser.join();
  blocker.done.get();
  EXPECT_THROW(fut.get(), api::ServerShutdown);
  EXPECT_EQ(max_abs_diff_lower<double>(c.const_view(), sentinel.const_view()), 0.0)
      << "a request settled by shutdown must never have computed";
}

// ---- Fault-injection-only serving scenarios ---------------------------

TEST(ServerOverload, InjectedLeafFailureSurfacesOnOwnFutureOnly) {
  if constexpr (!fault::kEnabled) {
    GTEST_SKIP() << "requires -DATALIB_FAULT_INJECTION=ON";
  }
  setenv("ATALIB_FAULTS", "throw_leaf:1", 1);  // every served unit throws
  api::Server::Options sopts;
  sopts.threads = 2;
  api::Server faulty(sopts);
  unsetenv("ATALIB_FAULTS");

  const auto a = random_integer<double>(48, 32, 2, 71);
  auto c = Matrix<double>::zeros(32, 32);
  auto fut = faulty.submit(1.0, a.const_view(), c.view(), shared_opts(1, 1));
  EXPECT_THROW(fut.get(), fault::FaultInjected);
  wait_drained(faulty);
  // A task error is a *completed* request (settled with the task's own
  // error), not a rejection or deadline miss.
  const auto s = faulty.stats();
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.rejected, 0u);

  // The plan is captured per server: a server built without the variable
  // serves the same shape cleanly.
  api::Server clean(sopts);
  auto ref = Matrix<double>::zeros(32, 32);
  ata(1.0, a.const_view(), ref.view(), tiny_base());
  auto c2 = Matrix<double>::zeros(32, 32);
  clean.submit(1.0, a.const_view(), c2.view(), shared_opts(1, 1)).get();
  EXPECT_EQ(max_abs_diff_lower<double>(c2.const_view(), ref.const_view()), 0.0);
}

TEST(ServerOverload, QueuePressureFaultTripsAdmissionGate) {
  if constexpr (!fault::kEnabled) {
    GTEST_SKIP() << "requires -DATALIB_FAULT_INJECTION=ON";
  }
  setenv("ATALIB_FAULTS", "queue_pressure:1000", 1);
  api::Server::Options sopts;
  sopts.threads = 2;
  sopts.max_inflight_requests = 4;
  sopts.admission = api::AdmissionPolicy::kReject;
  api::Server server(sopts);
  unsetenv("ATALIB_FAULTS");

  const auto a = random_integer<double>(48, 32, 2, 81);
  auto c = Matrix<double>::zeros(32, 32);
  // 1000 phantom requests against a bound of 4: every submit is refused.
  EXPECT_THROW(server.submit(1.0, a.const_view(), c.view(), shared_opts(1, 1)),
               api::OverloadError);
  EXPECT_EQ(server.stats().rejected, 1u);
}

}  // namespace
}  // namespace atalib
