// Tests for the blocked gemm kernel (the self-built MKL ?gemm substitute).

#include <gtest/gtest.h>

#include "blas/gemm.hpp"
#include "blas/parallel.hpp"
#include "blas/reference.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"

namespace atalib {
namespace {

struct Shape {
  index_t m, n, k;
};

class GemmShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(GemmShapes, TnMatchesReferenceExactlyOnIntegers) {
  const auto [m, n, k] = GetParam();
  auto a = random_integer<double>(m, n, 4, 1);
  auto b = random_integer<double>(m, k, 4, 2);
  auto c_ref = Matrix<double>::zeros(n, k);
  auto c = Matrix<double>::zeros(n, k);
  blas::ref::gemm_tn(3.0, a.const_view(), b.const_view(), c_ref.view());
  blas::gemm_tn(3.0, a.const_view(), b.const_view(), c.view());
  EXPECT_EQ(max_abs_diff<double>(c.const_view(), c_ref.const_view()), 0.0);
}

TEST_P(GemmShapes, NnMatchesReference) {
  const auto [m, n, k] = GetParam();
  auto a = random_integer<double>(n, m, 4, 3);
  auto b = random_integer<double>(m, k, 4, 4);
  auto c_ref = Matrix<double>::zeros(n, k);
  auto c = Matrix<double>::zeros(n, k);
  blas::ref::gemm_nn(1.0, a.const_view(), b.const_view(), c_ref.view());
  blas::gemm_nn(1.0, a.const_view(), b.const_view(), c.view());
  EXPECT_EQ(max_abs_diff<double>(c.const_view(), c_ref.const_view()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, GemmShapes,
    ::testing::Values(Shape{1, 1, 1}, Shape{2, 3, 4}, Shape{5, 5, 5}, Shape{7, 11, 13},
                      Shape{16, 16, 16}, Shape{31, 33, 29}, Shape{64, 64, 64},
                      Shape{100, 1, 100}, Shape{1, 100, 100}, Shape{129, 65, 33},
                      Shape{257, 31, 129}, Shape{300, 300, 3}));

TEST(Gemm, AccumulatesIntoExistingC) {
  auto a = random_integer<double>(8, 8, 2, 5);
  auto b = random_integer<double>(8, 8, 2, 6);
  auto c = Matrix<double>::zeros(8, 8);
  fill_view(c.view(), 10.0);
  auto expected = c.clone();
  blas::ref::gemm_tn(1.0, a.const_view(), b.const_view(), expected.view());
  blas::gemm_tn(1.0, a.const_view(), b.const_view(), c.view());
  EXPECT_EQ(max_abs_diff<double>(c.const_view(), expected.const_view()), 0.0);
}

TEST(Gemm, AlphaZeroIsNoOp) {
  auto a = random_uniform<double>(16, 16, 1);
  auto b = random_uniform<double>(16, 16, 2);
  auto c = Matrix<double>::zeros(16, 16);
  fill_view(c.view(), 3.0);
  blas::gemm_tn(0.0, a.const_view(), b.const_view(), c.view());
  EXPECT_DOUBLE_EQ(c(5, 5), 3.0);
}

TEST(Gemm, EmptyDimensionsAreNoOps) {
  auto a = Matrix<double>::zeros(4, 0);
  auto b = Matrix<double>::zeros(4, 3);
  auto c = Matrix<double>::zeros(0, 3);
  EXPECT_NO_THROW(blas::gemm_tn(1.0, a.const_view(), b.const_view(), c.view()));
}

TEST(Gemm, WorksOnStridedSubBlocks) {
  auto big_a = random_integer<double>(40, 40, 3, 7);
  auto big_b = random_integer<double>(40, 40, 3, 8);
  ConstMatrixView<double> a = big_a.block(3, 5, 20, 17);
  ConstMatrixView<double> b = big_b.block(3, 2, 20, 11);
  auto c = Matrix<double>::zeros(17, 11);
  auto c_ref = Matrix<double>::zeros(17, 11);
  blas::gemm_tn(1.0, a, b, c.view());
  blas::ref::gemm_tn(1.0, a, b, c_ref.view());
  EXPECT_EQ(max_abs_diff<double>(c.const_view(), c_ref.const_view()), 0.0);
}

TEST(Gemm, NtVariantMatchesReference) {
  // C += A B^T: check against transposing B manually.
  auto a = random_integer<double>(9, 7, 3, 9);
  auto bt = random_integer<double>(11, 7, 3, 10);
  auto b = bt.transposed();  // 7 x 11
  auto c1 = Matrix<double>::zeros(9, 11);
  auto c2 = Matrix<double>::zeros(9, 11);
  blas::gemm_nt(1.0, a.const_view(), bt.const_view(), c1.view());
  blas::ref::gemm_nn(1.0, a.const_view(), b.const_view(), c2.view());
  EXPECT_EQ(max_abs_diff<double>(c1.const_view(), c2.const_view()), 0.0);
}

TEST(Gemm, FloatPrecisionWithinTolerance) {
  const index_t n = 64;
  auto a = random_uniform<float>(n, n, 21);
  auto b = random_uniform<float>(n, n, 22);
  auto c = Matrix<float>::zeros(n, n);
  auto c_ref = Matrix<float>::zeros(n, n);
  blas::gemm_tn(1.0f, a.const_view(), b.const_view(), c.view());
  blas::ref::gemm_tn(1.0f, a.const_view(), b.const_view(), c_ref.view());
  EXPECT_LT(max_abs_diff<float>(c.const_view(), c_ref.const_view()), mm_tolerance<float>(n));
}

class ParGemmThreads : public ::testing::TestWithParam<int> {};

TEST_P(ParGemmThreads, MatchesSerial) {
  const int threads = GetParam();
  auto a = random_integer<double>(50, 41, 3, 11);
  auto b = random_integer<double>(50, 37, 3, 12);
  auto c = Matrix<double>::zeros(41, 37);
  auto c_ref = Matrix<double>::zeros(41, 37);
  blas::gemm_tn(1.0, a.const_view(), b.const_view(), c_ref.view());
  blas::par::gemm_tn(1.0, a.const_view(), b.const_view(), c.view(), threads);
  EXPECT_EQ(max_abs_diff<double>(c.const_view(), c_ref.const_view()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(ThreadSweep, ParGemmThreads, ::testing::Values(1, 2, 3, 4, 8, 16, 64));

}  // namespace
}  // namespace atalib
