// Tests for AtA-D (Algorithm 4): correctness across P, alpha, shapes and
// engines, plus traffic accounting against the Prop. 4.2 models.

#include <gtest/gtest.h>

#include "blas/reference.hpp"
#include "dist/ata_dist.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "metrics/models.hpp"

namespace atalib::dist {
namespace {

RecurseOptions tiny_base() {
  RecurseOptions opts;
  opts.base_case_elements = 256;
  opts.min_dim = 2;
  return opts;
}

class AtaDistP : public ::testing::TestWithParam<int> {};

TEST_P(AtaDistP, MatchesReferenceOnSquare) {
  const int p = GetParam();
  auto a = random_integer<double>(96, 96, 3, 1);
  auto c_ref = Matrix<double>::zeros(96, 96);
  blas::ref::syrk_ln(1.0, a.const_view(), c_ref.view());
  DistOptions opts;
  opts.procs = p;
  opts.recurse = tiny_base();
  const auto res = ata_dist(1.0, a, opts);
  EXPECT_EQ(max_abs_diff_lower<double>(res.c.const_view(), c_ref.const_view()), 0.0)
      << "P=" << p;
}

TEST_P(AtaDistP, MatchesReferenceOnTall) {
  const int p = GetParam();
  auto a = random_integer<double>(180, 45, 3, 2);
  auto c_ref = Matrix<double>::zeros(45, 45);
  blas::ref::syrk_ln(1.0, a.const_view(), c_ref.view());
  DistOptions opts;
  opts.procs = p;
  opts.recurse = tiny_base();
  const auto res = ata_dist(1.0, a, opts);
  EXPECT_EQ(max_abs_diff_lower<double>(res.c.const_view(), c_ref.const_view()), 0.0);
}

TEST_P(AtaDistP, BlasLeafEngineAgrees) {
  const int p = GetParam();
  auto a = random_integer<double>(70, 66, 3, 3);
  auto c_ref = Matrix<double>::zeros(66, 66);
  blas::ref::syrk_ln(1.0, a.const_view(), c_ref.view());
  DistOptions opts;
  opts.procs = p;
  opts.engine = DistOptions::Engine::kBlas;
  const auto res = ata_dist(1.0, a, opts);
  EXPECT_EQ(max_abs_diff_lower<double>(res.c.const_view(), c_ref.const_view()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(PSweep, AtaDistP,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 11, 16, 24, 32, 64));

class AtaDistAlpha : public ::testing::TestWithParam<double> {};

TEST_P(AtaDistAlpha, LoadBalanceParameterPreservesCorrectness) {
  const double alpha = GetParam();
  auto a = random_integer<double>(80, 72, 3, 4);
  auto c_ref = Matrix<double>::zeros(72, 72);
  blas::ref::syrk_ln(1.0, a.const_view(), c_ref.view());
  DistOptions opts;
  opts.procs = 12;
  opts.alpha = alpha;
  opts.recurse = tiny_base();
  const auto res = ata_dist(1.0, a, opts);
  EXPECT_EQ(max_abs_diff_lower<double>(res.c.const_view(), c_ref.const_view()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AlphaSweep, AtaDistAlpha,
                         ::testing::Values(0.25, 0.375, 0.5, 0.625, 0.75));

TEST(AtaDist, ScaleFactorApplied) {
  auto a = random_integer<double>(40, 40, 2, 5);
  auto c_ref = Matrix<double>::zeros(40, 40);
  blas::ref::syrk_ln(-2.5, a.const_view(), c_ref.view());
  DistOptions opts;
  opts.procs = 8;
  opts.recurse = tiny_base();
  const auto res = ata_dist(-2.5, a, opts);
  EXPECT_EQ(max_abs_diff_lower<double>(res.c.const_view(), c_ref.const_view()), 0.0);
}

TEST(AtaDist, SingleProcessDoesNoCommunication) {
  auto a = random_integer<double>(50, 50, 2, 6);
  DistOptions opts;
  opts.procs = 1;
  opts.recurse = tiny_base();
  const auto res = ata_dist(1.0, a, opts);
  EXPECT_EQ(res.traffic.total_messages(), 0u);
}

TEST(AtaDist, TrafficGrowsWithPAndStaysNearBandwidthModel) {
  auto a = random_uniform<double>(128, 128, 7);
  std::uint64_t prev_words = 0;
  for (int p : {2, 8, 32}) {
    DistOptions opts;
    opts.procs = p;
    opts.recurse = tiny_base();
    const auto res = ata_dist(1.0, a, opts);
    EXPECT_GT(res.traffic.total_messages(), 0u);
    EXPECT_GE(res.traffic.total_words(), prev_words);
    prev_words = res.traffic.total_words();
  }
  // Root-process words should be the same order of magnitude as the
  // Prop. 4.2 bound (distribution + retrieval along the critical path).
  DistOptions opts;
  opts.procs = 16;
  opts.recurse = tiny_base();
  const auto res = ata_dist(1.0, a, opts);
  const double model = metrics::dist_bandwidth_model(128, 16);
  EXPECT_LT(static_cast<double>(res.traffic.root_words()), 4.0 * model);
}

TEST(AtaDist, LatencyWithinModelOrderAtRoot) {
  auto a = random_uniform<double>(96, 96, 9);
  for (int p : {8, 16, 32}) {
    DistOptions opts;
    opts.procs = p;
    opts.recurse = tiny_base();
    const auto res = ata_dist(1.0, a, opts);
    const double model = metrics::dist_latency_model(p);
    // Our per-block messages can exceed the paper's per-level aggregate
    // count by a small factor; the bound should hold within ~4x.
    EXPECT_LT(static_cast<double>(res.traffic.root_messages()), 6.0 * model) << "P=" << p;
  }
}

TEST(AtaDist, MaxLeafFlopsShrinksWithP) {
  auto a = random_uniform<double>(256, 256, 11);
  double prev = 1e300;
  for (int p : {1, 4, 16, 64}) {
    DistOptions opts;
    opts.procs = p;
    const auto res = ata_dist(1.0, a, opts);
    EXPECT_LE(res.max_leaf_flops, prev * 1.01);
    prev = res.max_leaf_flops;
  }
}

TEST(AtaDist, FloatPrecision) {
  auto a = random_uniform<float>(90, 84, 13);
  auto c_ref = Matrix<float>::zeros(84, 84);
  blas::ref::syrk_ln(1.0f, a.const_view(), c_ref.view());
  DistOptions opts;
  opts.procs = 10;
  opts.recurse = tiny_base();
  const auto res = ata_dist(1.0f, a, opts);
  EXPECT_LT(max_abs_diff_lower<float>(res.c.const_view(), c_ref.const_view()),
            mm_tolerance<float>(90, 512.0));
}

}  // namespace
}  // namespace atalib::dist
