// Tests for the plan/execute split and the serving front-end (src/api/):
// PlanCache LRU/stats/build-once semantics, the warm-path acceptance
// properties (zero schedule builds and zero workspace slab allocations on
// second-and-later executions of a cached plan), concurrent Server::submit
// correctness against serial execution, and SharedOptions validation.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "api/execute.hpp"
#include "api/plan_cache.hpp"
#include "api/server.hpp"
#include "ata/ata.hpp"
#include "dist/ata_dist.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "parallel/ata_shared.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/dist_tree.hpp"
#include "sched/shared_schedule.hpp"

namespace atalib {
namespace {

RecurseOptions tiny_base() {
  RecurseOptions opts;
  opts.base_case_elements = 256;
  opts.min_dim = 2;
  return opts;
}

SharedOptions shared_opts(int threads, int oversub) {
  SharedOptions so;
  so.threads = threads;
  so.oversub = oversub;
  so.recurse = tiny_base();
  return so;
}

api::PlanKey key_for(index_t m, index_t n, int threads, int oversub) {
  return api::shared_plan_key(api::dtype_of<double>(), m, n, shared_opts(threads, oversub));
}

std::uint64_t total_schedule_builds() {
  return sched::shared_schedule_builds() + sched::dist_tree_builds();
}

std::size_t pool_slab_grows(runtime::ThreadPool& pool) {
  std::size_t total = 0;
  for (int s = 0; s < pool.concurrency(); ++s) total += pool.workspace(s).grow_count();
  return total;
}

// ---- PlanCache --------------------------------------------------------

TEST(PlanCache, HitMissEvictionOrderAndStats) {
  // One shard: this test pins the strict *global* LRU order, which only a
  // single-shard cache guarantees (the default sharded cache is LRU per
  // shard; see PlanCache.ShardedBuildOnceUnderConcurrentMisses).
  api::PlanCache cache(2, 1);
  const auto ka = key_for(48, 40, 2, 1);
  const auto kb = key_for(56, 44, 2, 1);
  const auto kc = key_for(64, 48, 2, 1);

  const auto pa = cache.get_or_build(ka);  // miss
  const auto pb = cache.get_or_build(kb);  // miss
  EXPECT_EQ(cache.get_or_build(ka).get(), pa.get());  // hit, promotes A over B
  auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.size, 2u);
  EXPECT_EQ(s.capacity, 2u);

  cache.get_or_build(kc);  // miss; LRU victim must be B (A was just touched)
  s = cache.stats();
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.size, 2u);
  EXPECT_TRUE(cache.contains(ka));
  EXPECT_FALSE(cache.contains(kb));
  EXPECT_TRUE(cache.contains(kc));

  cache.get_or_build(kb);  // rebuilt: a fourth miss, evicting A (C is hotter)
  s = cache.stats();
  EXPECT_EQ(s.misses, 4u);
  EXPECT_EQ(s.evictions, 2u);
  EXPECT_FALSE(cache.contains(ka));
}

TEST(PlanCache, PlansAreImmutableSharedHandles) {
  api::PlanCache cache(4);
  const auto key = key_for(60, 52, 3, 2);
  const auto plan = cache.get_or_build(key);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->key(), key);
  EXPECT_EQ(static_cast<int>(plan->schedule().tasks.size()), 3 * 2);
  EXPECT_GT(plan->workspace_bound(), 0u);  // Strassen engine needs scratch
  // An evicted plan stays alive through the shared_ptr.
  cache.clear();
  EXPECT_FALSE(cache.contains(key));
  EXPECT_EQ(static_cast<int>(plan->schedule().tasks.size()), 3 * 2);
}

TEST(PlanCache, ConcurrentGetOrBuildBuildsEachPlanExactlyOnce) {
  api::PlanCache cache(8);
  const auto key = key_for(96, 80, 4, 2);
  const std::uint64_t builds_before = sched::shared_schedule_builds();

  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const api::AtaPlan>> got(kThreads);
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    clients.emplace_back([&, i] { got[static_cast<std::size_t>(i)] = cache.get_or_build(key); });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(sched::shared_schedule_builds() - builds_before, 1u)
      << "concurrent cold requests for one key must build the plan exactly once";
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)].get(), got[0].get());
  }
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kThreads - 1));
}

// ---- Warm-path acceptance: zero builds, zero slab allocations ----------

TEST(ApiExecute, WarmSharedPathPerformsNoBuildsAndNoSlabAllocations) {
  runtime::ThreadPool pool(4);
  api::PlanCache cache(4);
  const index_t m = 120, n = 96;
  const auto a = random_integer<double>(m, n, 3, 71);
  auto c_ref = Matrix<double>::zeros(n, n);
  ata(1.0, a.const_view(), c_ref.view(), tiny_base());

  const auto plan = cache.get_or_build(key_for(m, n, 4, 2));
  auto c = Matrix<double>::zeros(n, n);
  api::execute(*plan, 1.0, a.const_view(), c.view(), &pool);  // cold: may allocate
  EXPECT_EQ(max_abs_diff_lower<double>(c.const_view(), c_ref.const_view()), 0.0);

  const std::uint64_t builds_warm = total_schedule_builds();
  const std::size_t grows_warm = pool_slab_grows(pool);
  for (int rep = 0; rep < 5; ++rep) {
    fill_view(c.view(), 0.0);
    api::execute(*plan, 1.0, a.const_view(), c.view(), &pool);
    EXPECT_EQ(max_abs_diff_lower<double>(c.const_view(), c_ref.const_view()), 0.0);
  }
  EXPECT_EQ(total_schedule_builds(), builds_warm)
      << "second-and-later execute() must not rebuild any schedule";
  EXPECT_EQ(pool_slab_grows(pool), grows_warm)
      << "second-and-later execute() must not allocate workspace slabs";
}

TEST(ApiExecute, WarmDistPathPerformsNoTreeBuilds) {
  const auto a = random_integer<double>(72, 60, 2, 17);
  auto c_ref = Matrix<double>::zeros(60, 60);
  ata(1.0, a.const_view(), c_ref.view(), tiny_base());

  dist::DistOptions opts;
  opts.procs = 5;
  opts.recurse = tiny_base();
  const auto r0 = dist::ata_dist(1.0, a, opts);  // cold: builds (or refetches) the tree
  EXPECT_EQ(max_abs_diff_lower<double>(r0.c.const_view(), c_ref.const_view()), 0.0);

  const std::uint64_t builds_warm = total_schedule_builds();
  for (int rep = 0; rep < 3; ++rep) {
    const auto r = dist::ata_dist(1.0, a, opts);
    EXPECT_EQ(max_abs_diff_lower<double>(r.c.const_view(), c_ref.const_view()), 0.0);
    EXPECT_GT(r.traffic.total_messages(), 0u);
  }
  EXPECT_EQ(total_schedule_builds(), builds_warm)
      << "repeated ata_dist on one shape must reuse the cached dist tree";
}

TEST(ApiExecute, MismatchedPlanUseThrows) {
  api::PlanCache cache(4);
  const auto plan = cache.get_or_build(key_for(40, 32, 2, 1));
  const auto a_wrong = random_integer<double>(48, 32, 2, 5);
  const auto a_float = random_integer<float>(40, 32, 2, 5);
  auto c = Matrix<double>::zeros(32, 32);
  auto c_float = Matrix<float>::zeros(32, 32);
  auto c_wrong = Matrix<double>::zeros(40, 40);
  const auto a_ok = random_integer<double>(40, 32, 2, 5);

  EXPECT_THROW(api::execute(*plan, 1.0, a_wrong.const_view(), c.view()),
               std::invalid_argument);
  EXPECT_THROW(api::execute(*plan, 1.0f, a_float.const_view(), c_float.view()),
               std::invalid_argument);
  EXPECT_THROW(api::execute(*plan, 1.0, a_ok.const_view(), c_wrong.view()),
               std::invalid_argument);
  EXPECT_THROW(api::execute_dist(*plan, 1.0, a_ok), std::invalid_argument)
      << "a shared plan must be rejected by the dist entry point";
}

// ---- Server ------------------------------------------------------------

TEST(Server, ServesCorrectResultsAndCachesPlans) {
  api::Server server(api::Server::Options{4, 8});
  const index_t m = 96, n = 72;
  const auto a = random_integer<double>(m, n, 3, 29);
  auto c_ref = Matrix<double>::zeros(n, n);
  ata(1.0, a.const_view(), c_ref.view(), tiny_base());

  auto c = Matrix<double>::zeros(n, n);
  server.submit(1.0, a.const_view(), c.view(), shared_opts(4, 2)).get();
  EXPECT_EQ(max_abs_diff_lower<double>(c.const_view(), c_ref.const_view()), 0.0);
  EXPECT_EQ(server.plan_stats().misses, 1u);

  for (int rep = 0; rep < 4; ++rep) {
    fill_view(c.view(), 0.0);
    server.submit(1.0, a.const_view(), c.view(), shared_opts(4, 2)).get();
    EXPECT_EQ(max_abs_diff_lower<double>(c.const_view(), c_ref.const_view()), 0.0);
  }
  const auto s = server.plan_stats();
  EXPECT_EQ(s.misses, 1u) << "one shape must plan once";
  EXPECT_EQ(s.hits, 4u);
}

TEST(Server, WarmServingPathIsSetupFree) {
  api::Server server(api::Server::Options{4, 8});
  const index_t m = 104, n = 88;
  const auto a = random_integer<double>(m, n, 2, 31);
  auto c = Matrix<double>::zeros(n, n);
  server.submit(1.0, a.const_view(), c.view(), shared_opts(4, 2)).get();  // cold

  const std::uint64_t builds_warm = total_schedule_builds();
  const std::size_t grows_warm = pool_slab_grows(server.executor());
  for (int rep = 0; rep < 6; ++rep) {
    fill_view(c.view(), 0.0);
    server.submit(1.0, a.const_view(), c.view(), shared_opts(4, 2)).get();
  }
  EXPECT_EQ(total_schedule_builds(), builds_warm);
  EXPECT_EQ(pool_slab_grows(server.executor()), grows_warm)
      << "warm requests must not allocate workspace slabs";
}

TEST(Server, ConcurrentSubmitFromManyClientsMatchesSerialBitwise) {
  // N client threads x M shapes, every request's result compared bitwise
  // against the serial recursion (integer inputs make every execution
  // order produce identical floats).
  api::Server server(api::Server::Options{4, 8});
  struct Shape {
    index_t m, n;
  };
  const Shape shapes[] = {{64, 64}, {96, 80}, {120, 88}};
  constexpr int kClients = 6;
  constexpr int kRepsPerClient = 4;

  std::vector<Matrix<double>> inputs;
  std::vector<Matrix<double>> refs;
  for (const auto& shape : shapes) {
    inputs.push_back(random_integer<double>(shape.m, shape.n, 3, 1234));
    auto c_ref = Matrix<double>::zeros(shape.n, shape.n);
    ata(1.0, inputs.back().const_view(), c_ref.view(), tiny_base());
    refs.push_back(std::move(c_ref));
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int client = 0; client < kClients; ++client) {
    clients.emplace_back([&, client] {
      for (int rep = 0; rep < kRepsPerClient; ++rep) {
        const std::size_t si = static_cast<std::size_t>((client + rep) % 3);
        auto c = Matrix<double>::zeros(inputs[si].cols(), inputs[si].cols());
        auto fut = server.submit(1.0, inputs[si].const_view(), c.view(),
                                 shared_opts(3 + client % 2, 2));
        fut.get();
        if (max_abs_diff_lower<double>(c.const_view(), refs[si].const_view()) != 0.0) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "every concurrent request must match the serial result bitwise";
  const auto s = server.plan_stats();
  EXPECT_EQ(s.misses, 3u * 2u) << "3 shapes x 2 plan widths must each plan once";
  EXPECT_EQ(s.hits + s.misses, static_cast<std::uint64_t>(kClients * kRepsPerClient));
}

TEST(Server, RejectsInvalidOptionsAndShapesBeforeEnqueue) {
  api::Server server(api::Server::Options{2, 4});
  const auto a = random_integer<double>(32, 24, 2, 9);
  auto c = Matrix<double>::zeros(24, 24);
  auto c_bad = Matrix<double>::zeros(32, 32);
  EXPECT_THROW(server.submit(1.0, a.const_view(), c.view(), shared_opts(0, 1)),
               std::invalid_argument);
  EXPECT_THROW(server.submit(1.0, a.const_view(), c_bad.view(), shared_opts(2, 1)),
               std::invalid_argument);
  // The pool must still serve after rejected requests.
  server.submit(1.0, a.const_view(), c.view()).get();
}

// ---- SharedOptions validation (satellite) ------------------------------

TEST(SharedOptionsValidation, RejectsNonPositiveThreadsAndOversub) {
  const auto a = random_integer<double>(16, 16, 2, 1);
  auto c = Matrix<double>::zeros(16, 16);
  for (int threads : {0, -1, -8}) {
    SharedOptions so = shared_opts(1, 1);
    so.threads = threads;
    EXPECT_THROW(ata_shared(1.0, a.const_view(), c.view(), so), std::invalid_argument)
        << "threads=" << threads;
  }
  for (int oversub : {0, -2}) {
    SharedOptions so = shared_opts(2, 1);
    so.oversub = oversub;
    EXPECT_THROW(ata_shared(1.0, a.const_view(), c.view(), so), std::invalid_argument)
        << "oversub=" << oversub;
  }
}

TEST(SharedOptionsValidation, RejectsBadRecurseCutoffsEverywhere) {
  const auto a = random_integer<double>(16, 16, 2, 2);
  auto c = Matrix<double>::zeros(16, 16);

  SharedOptions neg_base = shared_opts(2, 1);
  neg_base.recurse.base_case_elements = -1;
  EXPECT_THROW(ata_shared(1.0, a.const_view(), c.view(), neg_base), std::invalid_argument);
  EXPECT_THROW(ata_shared_profile(1.0, a.const_view(), c.view(), neg_base),
               std::invalid_argument);

  SharedOptions zero_min = shared_opts(2, 1);
  zero_min.recurse.min_dim = 0;
  EXPECT_THROW(validate(zero_min), std::invalid_argument);

  // Parity: DistOptions rejects the same cut-offs.
  dist::DistOptions dopts;
  dopts.procs = 2;
  dopts.recurse.min_dim = -3;
  EXPECT_THROW(dist::ata_dist(1.0, a, dopts), std::invalid_argument);
}

// ---- Shape-aware planner: the tall-skinny engine choice ----------------

SharedOptions ratio_opts(index_t tall_skinny_ratio) {
  SharedOptions so = shared_opts(2, 1);
  so.tall_skinny_ratio = tall_skinny_ratio;
  return so;
}

TEST(QueryPlanner, TallSkinnyCrossoverSelectsPanelSyrkEngine) {
  // Forced thresholds on both sides of the shape make the choice an
  // oracle: m/n = 16 selects the panel engine iff the threshold is at or
  // below 16, and the decision (plus the ratio it was made with) is
  // captured in the plan key.
  const index_t m = 1024, n = 64;  // m/n = 16
  const auto below = api::shared_plan_key(api::dtype_of<double>(), m, n, ratio_opts(8));
  EXPECT_EQ(below.engine, LeafEngine::kPanelSyrk);
  EXPECT_EQ(below.tall_skinny_ratio, 8);

  const auto above = api::shared_plan_key(api::dtype_of<double>(), m, n, ratio_opts(32));
  EXPECT_EQ(above.engine, LeafEngine::kStrassen);
  EXPECT_EQ(above.tall_skinny_ratio, 32);

  const auto disabled = api::shared_plan_key(api::dtype_of<double>(), m, n, ratio_opts(-1));
  EXPECT_EQ(disabled.engine, LeafEngine::kStrassen);
  EXPECT_EQ(disabled.tall_skinny_ratio, -1);

  EXPECT_NE(below, above) << "the resolved ratio must separate cached plans";

  // Square-ish shapes never take the fast path regardless of threshold.
  const auto square = api::shared_plan_key(api::dtype_of<double>(), 96, 80, ratio_opts(2));
  EXPECT_EQ(square.engine, LeafEngine::kStrassen);

  // A forced non-Strassen engine is never overridden by the planner.
  SharedOptions blas_engine = ratio_opts(2);
  blas_engine.engine = LeafEngine::kBlas;
  EXPECT_EQ(api::shared_plan_key(api::dtype_of<double>(), m, n, blas_engine).engine,
            LeafEngine::kBlas);
}

TEST(QueryPlanner, PanelSyrkPlanExecutesBitwiseEqualToRecursive) {
  // Both engine choices on one tall-skinny input must agree bitwise on
  // integer data — the planner changes the schedule, not the math.
  const index_t m = 1024, n = 48;
  const auto a = random_integer<double>(m, n, 2, 77);
  auto c_ref = Matrix<double>::zeros(n, n);
  ata(1.0, a.const_view(), c_ref.view(), tiny_base());

  auto c_panel = Matrix<double>::zeros(n, n);
  ata_shared(1.0, a.const_view(), c_panel.view(), ratio_opts(4));  // panel engine
  EXPECT_EQ(max_abs_diff_lower<double>(c_panel.const_view(), c_ref.const_view()), 0.0);

  auto c_rec = Matrix<double>::zeros(n, n);
  ata_shared(1.0, a.const_view(), c_rec.view(), ratio_opts(-1));  // forced recursive
  EXPECT_EQ(max_abs_diff_lower<double>(c_rec.const_view(), c_ref.const_view()), 0.0);

  auto c_f32 = Matrix<float>::zeros(n, n);
  const auto a_f32 = random_integer<float>(m, n, 2, 78);
  auto c_f32_ref = Matrix<float>::zeros(n, n);
  ata(1.0f, a_f32.const_view(), c_f32_ref.view(), tiny_base());
  ata_shared(1.0f, a_f32.const_view(), c_f32.view(), ratio_opts(4));
  EXPECT_EQ(max_abs_diff_lower<float>(c_f32.const_view(), c_f32_ref.const_view()), 0.0);
}

TEST(QueryPlanner, RejectsRatioBelowMinusOne) {
  const auto a = random_integer<double>(64, 16, 2, 4);
  auto c = Matrix<double>::zeros(16, 16);
  SharedOptions so = ratio_opts(-2);
  EXPECT_THROW(ata_shared(1.0, a.const_view(), c.view(), so), std::invalid_argument);
}

TEST(SharedOptionsValidation, ValidOptionsStillCompute) {
  const auto a = random_integer<double>(40, 32, 2, 3);
  auto c_ref = Matrix<double>::zeros(32, 32);
  ata(1.0, a.const_view(), c_ref.view(), tiny_base());
  auto c = Matrix<double>::zeros(32, 32);
  ata_shared(1.0, a.const_view(), c.view(), shared_opts(3, 2));
  EXPECT_EQ(max_abs_diff_lower<double>(c.const_view(), c_ref.const_view()), 0.0);
}

}  // namespace
}  // namespace atalib
