// Tests for the generalized rectangular odd-size Strassen (FastStrassen)
// and its workspace accounting.

#include <gtest/gtest.h>

#include "blas/reference.hpp"
#include "common/arena.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "strassen/naive_strassen.hpp"
#include "strassen/strassen.hpp"
#include "strassen/workspace.hpp"

namespace atalib {
namespace {

RecurseOptions tiny_base() {
  RecurseOptions opts;
  opts.base_case_elements = 64;  // force deep recursion on small inputs
  opts.min_dim = 2;
  return opts;
}

struct Shape {
  index_t m, n, k;
};

class StrassenShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(StrassenShapes, MatchesReferenceExactlyOnIntegers) {
  const auto [m, n, k] = GetParam();
  auto a = random_integer<double>(m, n, 3, 1);
  auto b = random_integer<double>(m, k, 3, 2);
  auto c = Matrix<double>::zeros(n, k);
  auto c_ref = Matrix<double>::zeros(n, k);
  blas::ref::gemm_tn(2.0, a.const_view(), b.const_view(), c_ref.view());
  fast_strassen(2.0, a.const_view(), b.const_view(), c.view(), tiny_base());
  EXPECT_EQ(max_abs_diff<double>(c.const_view(), c_ref.const_view()), 0.0)
      << "m=" << m << " n=" << n << " k=" << k;
}

TEST_P(StrassenShapes, NaiveAllocatingVariantAgrees) {
  const auto [m, n, k] = GetParam();
  auto a = random_integer<double>(m, n, 3, 3);
  auto b = random_integer<double>(m, k, 3, 4);
  auto c1 = Matrix<double>::zeros(n, k);
  auto c2 = Matrix<double>::zeros(n, k);
  fast_strassen(1.0, a.const_view(), b.const_view(), c1.view(), tiny_base());
  naive_strassen_tn(1.0, a.const_view(), b.const_view(), c2.view(), tiny_base());
  EXPECT_EQ(max_abs_diff<double>(c1.const_view(), c2.const_view()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, StrassenShapes,
    ::testing::Values(Shape{2, 2, 2}, Shape{3, 3, 3}, Shape{4, 4, 4}, Shape{5, 5, 5},
                      Shape{7, 7, 7}, Shape{8, 8, 8}, Shape{9, 9, 9}, Shape{16, 16, 16},
                      Shape{17, 19, 23}, Shape{32, 32, 32}, Shape{33, 31, 29},
                      Shape{64, 64, 64}, Shape{65, 63, 64}, Shape{100, 30, 70},
                      Shape{30, 100, 70}, Shape{70, 30, 100}, Shape{127, 65, 129},
                      Shape{128, 1, 128}, Shape{1, 64, 64}, Shape{64, 64, 1}));

TEST(Strassen, AccumulatesIntoNonzeroC) {
  auto a = random_integer<double>(20, 15, 3, 5);
  auto b = random_integer<double>(20, 10, 3, 6);
  auto c = Matrix<double>::zeros(15, 10);
  fill_view(c.view(), 2.5);
  auto expected = c.clone();
  blas::ref::gemm_tn(-1.0, a.const_view(), b.const_view(), expected.view());
  fast_strassen(-1.0, a.const_view(), b.const_view(), c.view(), tiny_base());
  EXPECT_EQ(max_abs_diff<double>(c.const_view(), expected.const_view()), 0.0);
}

TEST(Strassen, WorkspaceBoundIsRespectedAndTight) {
  // The recursion must fit in exactly the computed bound (the arena throws
  // otherwise), and must actually use it when recursion happens.
  const RecurseOptions opts = tiny_base();
  for (const auto& s : {Shape{32, 32, 32}, Shape{33, 29, 31}, Shape{64, 16, 48}}) {
    auto a = random_uniform<double>(s.m, s.n, 7);
    auto b = random_uniform<double>(s.m, s.k, 8);
    auto c = Matrix<double>::zeros(s.n, s.k);
    const index_t bound = strassen_workspace_bound(s.m, s.n, s.k, opts, sizeof(double));
    Arena<double> arena(static_cast<std::size_t>(bound));
    EXPECT_NO_THROW(strassen_tn(1.0, a.const_view(), b.const_view(), c.view(), arena, opts));
    EXPECT_GT(arena.high_water(), 0u);
    EXPECT_LE(arena.high_water(), static_cast<std::size_t>(bound));
    EXPECT_EQ(arena.used(), 0u);  // fully released on unwind
  }
}

TEST(Strassen, WorkspaceBoundMatchesPaperSquareModel) {
  // §3.3: workspace ~ (mn + mk + nk)/3 summed over levels <= 3/2 n^2 for
  // square shapes (our per-level charge is (mn + mk + nk)/4 * geometric).
  RecurseOptions opts;
  opts.base_case_elements = 1;  // full recursion
  opts.min_dim = 1;
  const index_t n = 1024;
  const index_t bound = strassen_workspace_bound(n, n, n, opts, sizeof(double));
  EXPECT_LT(static_cast<double>(bound), 1.5 * static_cast<double>(n) * n);
  EXPECT_GT(static_cast<double>(bound), 0.9 * static_cast<double>(n) * n);
}

TEST(Strassen, BaseCasePredicates) {
  EXPECT_TRUE(gemm_base_case(4, 100, 100, 1, 8));    // tiny dimension
  EXPECT_TRUE(gemm_base_case(10, 10, 10, 1000, 2));  // fits in budget
  EXPECT_FALSE(gemm_base_case(100, 100, 100, 1000, 2));
  EXPECT_TRUE(ata_base_case(10, 10, 200, 2));
  EXPECT_FALSE(ata_base_case(100, 100, 200, 2));
}

TEST(Strassen, ReusedArenaAcrossCallsNeedsNoRealloc) {
  const RecurseOptions opts = tiny_base();
  const index_t bound = strassen_workspace_bound(48, 48, 48, opts, sizeof(double));
  Arena<double> arena(static_cast<std::size_t>(bound));
  auto a = random_integer<double>(48, 48, 2, 9);
  auto b = random_integer<double>(48, 48, 2, 10);
  auto c = Matrix<double>::zeros(48, 48);
  for (int i = 0; i < 3; ++i) {
    strassen_tn(1.0, a.const_view(), b.const_view(), c.view(), arena, opts);
    EXPECT_EQ(arena.used(), 0u);
  }
  auto c_ref = Matrix<double>::zeros(48, 48);
  blas::ref::gemm_tn(3.0, a.const_view(), b.const_view(), c_ref.view());
  EXPECT_EQ(max_abs_diff<double>(c.const_view(), c_ref.const_view()), 0.0);
}

TEST(Strassen, FloatPrecisionWithinStrassenTolerance) {
  const index_t n = 96;
  auto a = random_uniform<float>(n, n, 31);
  auto b = random_uniform<float>(n, n, 32);
  auto c = Matrix<float>::zeros(n, n);
  auto c_ref = Matrix<float>::zeros(n, n);
  RecurseOptions opts;
  opts.base_case_elements = 512;
  opts.min_dim = 4;
  fast_strassen(1.0f, a.const_view(), b.const_view(), c.view(), opts);
  blas::ref::gemm_tn(1.0f, a.const_view(), b.const_view(), c_ref.view());
  // Strassen's error grows faster than classical; allow extra slack.
  EXPECT_LT(max_abs_diff<float>(c.const_view(), c_ref.const_view()),
            mm_tolerance<float>(n, 512.0));
}

TEST(Strassen, LargeBaseCaseShortCircuitsToBlas) {
  // With a huge threshold the call is just one blas::gemm_tn and needs no
  // workspace.
  RecurseOptions opts;
  opts.base_case_elements = 1 << 28;
  auto a = random_integer<double>(40, 40, 3, 11);
  auto b = random_integer<double>(40, 40, 3, 12);
  auto c = Matrix<double>::zeros(40, 40);
  EXPECT_EQ(strassen_workspace_bound(40, 40, 40, opts, sizeof(double)), 0);
  Arena<double> arena(0);
  EXPECT_NO_THROW(strassen_tn(1.0, a.const_view(), b.const_view(), c.view(), arena, opts));
}

}  // namespace
}  // namespace atalib
