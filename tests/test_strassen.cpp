// Tests for the generalized rectangular odd-size Strassen (FastStrassen)
// and its workspace accounting.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include "api/execute.hpp"
#include "api/plan_cache.hpp"
#include "ata/ata.hpp"
#include "blas/gemm.hpp"
#include "blas/kernels/pack.hpp"
#include "blas/kernels/registry.hpp"
#include "blas/reference.hpp"
#include "common/arena.hpp"
#include "common/cacheinfo.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "parallel/ata_shared.hpp"
#include "runtime/thread_pool.hpp"
#include "strassen/naive_strassen.hpp"
#include "strassen/strassen.hpp"
#include "strassen/tuner.hpp"
#include "strassen/workspace.hpp"

namespace atalib {
namespace {

RecurseOptions tiny_base() {
  RecurseOptions opts;
  opts.base_case_elements = 64;  // force deep recursion on small inputs
  opts.min_dim = 2;
  return opts;
}

struct Shape {
  index_t m, n, k;
};

class StrassenShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(StrassenShapes, MatchesReferenceExactlyOnIntegers) {
  const auto [m, n, k] = GetParam();
  auto a = random_integer<double>(m, n, 3, 1);
  auto b = random_integer<double>(m, k, 3, 2);
  auto c = Matrix<double>::zeros(n, k);
  auto c_ref = Matrix<double>::zeros(n, k);
  blas::ref::gemm_tn(2.0, a.const_view(), b.const_view(), c_ref.view());
  fast_strassen(2.0, a.const_view(), b.const_view(), c.view(), tiny_base());
  EXPECT_EQ(max_abs_diff<double>(c.const_view(), c_ref.const_view()), 0.0)
      << "m=" << m << " n=" << n << " k=" << k;
}

TEST_P(StrassenShapes, NaiveAllocatingVariantAgrees) {
  const auto [m, n, k] = GetParam();
  auto a = random_integer<double>(m, n, 3, 3);
  auto b = random_integer<double>(m, k, 3, 4);
  auto c1 = Matrix<double>::zeros(n, k);
  auto c2 = Matrix<double>::zeros(n, k);
  fast_strassen(1.0, a.const_view(), b.const_view(), c1.view(), tiny_base());
  naive_strassen_tn(1.0, a.const_view(), b.const_view(), c2.view(), tiny_base());
  EXPECT_EQ(max_abs_diff<double>(c1.const_view(), c2.const_view()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, StrassenShapes,
    ::testing::Values(Shape{2, 2, 2}, Shape{3, 3, 3}, Shape{4, 4, 4}, Shape{5, 5, 5},
                      Shape{7, 7, 7}, Shape{8, 8, 8}, Shape{9, 9, 9}, Shape{16, 16, 16},
                      Shape{17, 19, 23}, Shape{32, 32, 32}, Shape{33, 31, 29},
                      Shape{64, 64, 64}, Shape{65, 63, 64}, Shape{100, 30, 70},
                      Shape{30, 100, 70}, Shape{70, 30, 100}, Shape{127, 65, 129},
                      Shape{128, 1, 128}, Shape{1, 64, 64}, Shape{64, 64, 1}));

TEST(Strassen, AccumulatesIntoNonzeroC) {
  auto a = random_integer<double>(20, 15, 3, 5);
  auto b = random_integer<double>(20, 10, 3, 6);
  auto c = Matrix<double>::zeros(15, 10);
  fill_view(c.view(), 2.5);
  auto expected = c.clone();
  blas::ref::gemm_tn(-1.0, a.const_view(), b.const_view(), expected.view());
  fast_strassen(-1.0, a.const_view(), b.const_view(), c.view(), tiny_base());
  EXPECT_EQ(max_abs_diff<double>(c.const_view(), expected.const_view()), 0.0);
}

TEST(Strassen, WorkspaceBoundIsRespectedAndTight) {
  // The recursion must fit in exactly the computed bound (the arena throws
  // otherwise), and must actually use it when recursion happens.
  const RecurseOptions opts = tiny_base();
  for (const auto& s : {Shape{32, 32, 32}, Shape{33, 29, 31}, Shape{64, 16, 48}}) {
    auto a = random_uniform<double>(s.m, s.n, 7);
    auto b = random_uniform<double>(s.m, s.k, 8);
    auto c = Matrix<double>::zeros(s.n, s.k);
    const index_t bound = strassen_workspace_bound(s.m, s.n, s.k, opts, sizeof(double));
    Arena<double> arena(static_cast<std::size_t>(bound));
    EXPECT_NO_THROW(strassen_tn(1.0, a.const_view(), b.const_view(), c.view(), arena, opts));
    EXPECT_GT(arena.high_water(), 0u);
    EXPECT_LE(arena.high_water(), static_cast<std::size_t>(bound));
    EXPECT_EQ(arena.used(), 0u);  // fully released on unwind
  }
}

TEST(Strassen, WorkspaceBoundMatchesPaperSquareModel) {
  // §3.3: workspace ~ (mn + mk + nk)/3 summed over levels <= 3/2 n^2 for
  // square shapes (our per-level charge is (mn + mk + nk)/4 * geometric).
  RecurseOptions opts;
  opts.base_case_elements = 1;  // full recursion
  opts.min_dim = 1;
  const index_t n = 1024;
  const index_t bound = strassen_workspace_bound(n, n, n, opts, sizeof(double));
  EXPECT_LT(static_cast<double>(bound), 1.5 * static_cast<double>(n) * n);
  EXPECT_GT(static_cast<double>(bound), 0.9 * static_cast<double>(n) * n);
}

TEST(Strassen, BaseCasePredicates) {
  EXPECT_TRUE(gemm_base_case(4, 100, 100, 1, 8));    // tiny dimension
  EXPECT_TRUE(gemm_base_case(10, 10, 10, 1000, 2));  // fits in budget
  EXPECT_FALSE(gemm_base_case(100, 100, 100, 1000, 2));
  EXPECT_TRUE(ata_base_case(10, 10, 200, 2));
  EXPECT_FALSE(ata_base_case(100, 100, 200, 2));
}

TEST(Strassen, ReusedArenaAcrossCallsNeedsNoRealloc) {
  const RecurseOptions opts = tiny_base();
  const index_t bound = strassen_workspace_bound(48, 48, 48, opts, sizeof(double));
  Arena<double> arena(static_cast<std::size_t>(bound));
  auto a = random_integer<double>(48, 48, 2, 9);
  auto b = random_integer<double>(48, 48, 2, 10);
  auto c = Matrix<double>::zeros(48, 48);
  for (int i = 0; i < 3; ++i) {
    strassen_tn(1.0, a.const_view(), b.const_view(), c.view(), arena, opts);
    EXPECT_EQ(arena.used(), 0u);
  }
  auto c_ref = Matrix<double>::zeros(48, 48);
  blas::ref::gemm_tn(3.0, a.const_view(), b.const_view(), c_ref.view());
  EXPECT_EQ(max_abs_diff<double>(c.const_view(), c_ref.const_view()), 0.0);
}

TEST(Strassen, FloatPrecisionWithinStrassenTolerance) {
  const index_t n = 96;
  auto a = random_uniform<float>(n, n, 31);
  auto b = random_uniform<float>(n, n, 32);
  auto c = Matrix<float>::zeros(n, n);
  auto c_ref = Matrix<float>::zeros(n, n);
  RecurseOptions opts;
  opts.base_case_elements = 512;
  opts.min_dim = 4;
  fast_strassen(1.0f, a.const_view(), b.const_view(), c.view(), opts);
  blas::ref::gemm_tn(1.0f, a.const_view(), b.const_view(), c_ref.view());
  // Strassen's error grows faster than classical; allow extra slack.
  EXPECT_LT(max_abs_diff<float>(c.const_view(), c_ref.const_view()),
            mm_tolerance<float>(n, 512.0));
}

TEST(Strassen, LargeBaseCaseShortCircuitsToBlas) {
  // With a huge threshold the call is one blas::gemm_tn; its only workspace
  // need is the leaf's packed panels, which now come from the same arena.
  RecurseOptions opts;
  opts.base_case_elements = 1 << 28;
  auto a = random_integer<double>(40, 40, 3, 11);
  auto b = random_integer<double>(40, 40, 3, 12);
  auto c = Matrix<double>::zeros(40, 40);
  const index_t bound = strassen_workspace_bound(40, 40, 40, opts, sizeof(double));
  EXPECT_EQ(bound, blas::gemm_workspace_bound<double>(40, 40, 40));
  Arena<double> arena(static_cast<std::size_t>(bound));
  EXPECT_NO_THROW(strassen_tn(1.0, a.const_view(), b.const_view(), c.view(), arena, opts));
  EXPECT_GT(arena.high_water(), 0u);  // the leaf really packed from the arena
  EXPECT_EQ(arena.used(), 0u);
}

// ---- Registry-backed leaves vs forced-scalar (bitwise) ------------------

namespace kn = blas::kernels;

struct ForcedIsa {
  explicit ForcedIsa(kn::Isa isa) { kn::set_forced_isa(isa); }
  ~ForcedIsa() { kn::set_forced_isa(std::nullopt); }
};

TEST(Strassen, RegistryLeavesMatchForcedScalarBitwise) {
  // Integer inputs make every add/sub/axpy and microkernel product exact, so
  // the SIMD tile kernels must agree with the scalar loops to the last bit —
  // across MR/NR-edge and odd-prime shapes that exercise ragged tails.
  if (kn::available_kernels().size() < 2) {
    GTEST_SKIP() << "only the scalar kernel is available on this CPU";
  }
  const RecurseOptions opts = tiny_base();
  for (const auto& s : {Shape{48, 48, 48}, Shape{33, 29, 31}, Shape{17, 19, 23},
                        Shape{13, 41, 37}, Shape{64, 63, 65}, Shape{12, 16, 40}}) {
    auto a = random_integer<double>(s.m, s.n, 3, 21);
    auto b = random_integer<double>(s.m, s.k, 3, 22);
    auto c_fast = Matrix<double>::zeros(s.n, s.k);
    auto c_scalar = Matrix<double>::zeros(s.n, s.k);
    fast_strassen(1.0, a.const_view(), b.const_view(), c_fast.view(), opts);
    {
      ForcedIsa scalar(kn::Isa::kScalar);
      fast_strassen(1.0, a.const_view(), b.const_view(), c_scalar.view(), opts);
    }
    EXPECT_EQ(max_abs_diff<double>(c_fast.const_view(), c_scalar.const_view()), 0.0)
        << "m=" << s.m << " n=" << s.n << " k=" << s.k;
  }
}

// ---- Warm-path acceptance: Strassen leaves allocate nothing -------------

TEST(Strassen, WarmStrassenLeavesAllocateNothing) {
  // Mirror of the kBlas warm-path test: once the pool slots are warm, a
  // Strassen-engine execute() must neither grow a slot slab nor touch the
  // thread-local pack fallback — every leaf packs from the slot arena.
  runtime::ThreadPool pool(4);
  api::PlanCache cache(2);
  SharedOptions so;
  so.threads = 4;
  so.oversub = 2;
  so.recurse = tiny_base();
  so.engine = LeafEngine::kStrassen;
  const index_t m = 120, n = 96;
  const auto a = random_integer<double>(m, n, 3, 77);
  auto c_ref = Matrix<double>::zeros(n, n);
  ata(1.0, a.const_view(), c_ref.view(), so.recurse);

  const auto plan = cache.get_or_build(api::shared_plan_key(api::dtype_of<double>(), m, n, so));
  auto c = Matrix<double>::zeros(n, n);
  api::execute(*plan, 1.0, a.const_view(), c.view(), &pool);  // cold: slabs may grow

  std::size_t grows_warm = 0;
  for (int s = 0; s < pool.concurrency(); ++s) grows_warm += pool.workspace(s).grow_count();
  const std::uint64_t packs_warm = kn::thread_pack_allocs().load();
  for (int rep = 0; rep < 5; ++rep) {
    fill_view(c.view(), 0.0);
    api::execute(*plan, 1.0, a.const_view(), c.view(), &pool);
    EXPECT_EQ(max_abs_diff_lower<double>(c.const_view(), c_ref.const_view()), 0.0);
  }
  std::size_t grows_after = 0;
  for (int s = 0; s < pool.concurrency(); ++s) grows_after += pool.workspace(s).grow_count();
  EXPECT_EQ(grows_after, grows_warm) << "warm Strassen leaves must not grow slot slabs";
  EXPECT_EQ(kn::thread_pack_allocs().load(), packs_warm)
      << "warm Strassen leaves must never fall back to thread-local pack buffers";
}

// ---- Tuner --------------------------------------------------------------

bool scalar_env_forced() {
  const char* v = std::getenv("ATALIB_FORCE_SCALAR_KERNELS");
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

TEST(StrassenTuner, SeededCacheFileIsDeterministicAndFeedsPlanKey) {
  if (scalar_env_forced()) {
    GTEST_SKIP() << "tuner is bypassed under ATALIB_FORCE_SCALAR_KERNELS";
  }
  const std::string path = testing::TempDir() + "atalib_tuning_seeded.txt";
  const char* isa = kn::isa_name(kn::active_config<double>().isa);
  {
    std::ofstream f(path, std::ios::trunc);
    f << isa << " f64 7777\n" << isa << " f32 5555\n";
  }
  strassen::Tuner t1(path), t2(path);
  EXPECT_EQ(t1.base_case_elements(sizeof(double)), 7777);
  EXPECT_EQ(t1.base_case_elements(sizeof(float)), 5555);
  // Same cache file -> same cut-off, no re-measurement drift.
  EXPECT_EQ(t2.base_case_elements(sizeof(double)), t1.base_case_elements(sizeof(double)));
  // The resolved cut-off is what plan keys carry, so equal tuning gives
  // equal keys (and distinct explicit cut-offs give distinct keys).
  SharedOptions so;
  so.threads = 2;
  so.recurse.base_case_elements = t1.base_case_elements(sizeof(double));
  const auto k1 = api::shared_plan_key(api::dtype_of<double>(), 64, 48, so);
  const auto k2 = api::shared_plan_key(api::dtype_of<double>(), 64, 48, so);
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(k1.base_case_elements, 7777);
  std::remove(path.c_str());
}

TEST(StrassenTuner, ForcedScalarEnvIgnoresTunerAndCacheFile) {
  if (!scalar_env_forced()) {
    GTEST_SKIP() << "set ATALIB_FORCE_SCALAR_KERNELS to exercise the bypass";
  }
  // The forced-scalar CI leg must be machine-independent: even a seeded
  // cache file is ignored and the static cache probe wins.
  const std::string path = testing::TempDir() + "atalib_tuning_ignored.txt";
  {
    std::ofstream f(path, std::ios::trunc);
    f << "scalar f64 7777\nscalar f32 5555\n";
  }
  strassen::Tuner tuner(path);
  EXPECT_EQ(tuner.base_case_elements(sizeof(double)),
            static_cast<index_t>(default_base_case_elements(sizeof(double))));
  EXPECT_EQ(tuner.base_case_elements(sizeof(float)),
            static_cast<index_t>(default_base_case_elements(sizeof(float))));
  std::remove(path.c_str());
}

TEST(StrassenTuner, ResolvedCutoffLandsInPlanKey) {
  // Explicit cut-offs pass through resolution untouched; 0 resolves to a
  // positive tuned value, so cached plans can never carry the "auto" marker.
  SharedOptions so;
  so.threads = 2;
  so.recurse.base_case_elements = 4096;
  const auto k = api::shared_plan_key(api::dtype_of<double>(), 64, 48, so);
  EXPECT_EQ(k.base_case_elements, 4096);
  RecurseOptions auto_opts;
  EXPECT_GT(auto_opts.resolved_base_elements(sizeof(double)), 0);
}

}  // namespace
}  // namespace atalib
