// Tests for the NUMA-aware runtime (DESIGN.md §7): fake-topology parsing,
// slot->node grouping, round-robin placement of hinted batches (the
// Snippet-2-style scheduled-count oracle), steal-locality counters, the
// worker-side first-touch warm, and bitwise agreement of NUMA-placed
// execution with a flat pool. Everything multi-node runs over
// ATALIB_FAKE_NUMA so the suite is deterministic on single-node CI hosts;
// guards restore any ambient value (the CI fake-numa leg exports 2x2 for
// the whole suite).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <latch>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/server.hpp"
#include "ata/ata.hpp"
#include "common/cacheinfo.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "parallel/ata_shared.hpp"
#include "runtime/thread_pool.hpp"

namespace atalib {
namespace {

/// Scoped ATALIB_FAKE_NUMA override; restores the ambient value (or its
/// absence) on destruction so tests compose with the CI leg that exports a
/// fake topology for the whole suite.
class FakeNumaGuard {
 public:
  explicit FakeNumaGuard(const char* spec) {
    const char* prev = std::getenv("ATALIB_FAKE_NUMA");
    if (prev != nullptr) saved_ = prev;
    if (spec != nullptr) {
      setenv("ATALIB_FAKE_NUMA", spec, 1);
    } else {
      unsetenv("ATALIB_FAKE_NUMA");
    }
  }
  ~FakeNumaGuard() {
    if (saved_.has_value()) {
      setenv("ATALIB_FAKE_NUMA", saved_->c_str(), 1);
    } else {
      unsetenv("ATALIB_FAKE_NUMA");
    }
  }
  FakeNumaGuard(const FakeNumaGuard&) = delete;
  FakeNumaGuard& operator=(const FakeNumaGuard&) = delete;

 private:
  std::optional<std::string> saved_;
};

// ---- Fake-topology parsing --------------------------------------------

TEST(FakeNuma, ParsesNodesByCpusSpec) {
  const auto topo = parse_fake_numa("2x4");
  ASSERT_TRUE(topo.has_value());
  EXPECT_TRUE(topo->fake);
  ASSERT_EQ(topo->num_nodes(), 2);
  EXPECT_EQ(topo->total_cpus(), 8);
  // CPU ids are blocked per node, like a real two-socket cpulist.
  EXPECT_EQ(topo->nodes[0].cpus, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(topo->nodes[1].cpus, (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(topo->node_of_cpu(3), 0);
  EXPECT_EQ(topo->node_of_cpu(4), 1);
}

TEST(FakeNuma, AcceptsUppercaseSeparator) {
  const auto topo = parse_fake_numa("4X2");
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(topo->num_nodes(), 4);
  EXPECT_EQ(topo->total_cpus(), 8);
}

TEST(FakeNuma, RejectsMalformedSpecs) {
  for (const char* bad : {"", "2", "2x", "x4", "2y4", "0x4", "2x0", "-1x4",
                          "2x-4", "axb", "2x4x8", "  "}) {
    EXPECT_FALSE(parse_fake_numa(bad).has_value()) << "spec: '" << bad << "'";
  }
}

TEST(FakeNuma, ProbeHonorsOverrideAndThrowsOnMalformed) {
  {
    FakeNumaGuard guard("3x2");
    const auto topo = probe_numa_topology();
    EXPECT_TRUE(topo.fake);
    EXPECT_EQ(topo.num_nodes(), 3);
    EXPECT_EQ(topo.total_cpus(), 6);
  }
  {
    FakeNumaGuard guard("not-a-topology");
    EXPECT_THROW(probe_numa_topology(), std::invalid_argument);
  }
  {
    FakeNumaGuard guard(nullptr);  // real probe: at least one node, one cpu
    const auto topo = probe_numa_topology();
    EXPECT_FALSE(topo.fake);
    EXPECT_GE(topo.num_nodes(), 1);
    EXPECT_GE(topo.total_cpus(), 1);
    for (int c : topo.nodes[0].cpus) EXPECT_EQ(topo.node_of_cpu(c), 0);
  }
}

// ---- Slot -> node grouping --------------------------------------------

TEST(NumaPool, SlotsBlockOverNodesProportionally) {
  FakeNumaGuard guard("2x4");
  runtime::ThreadPool pool(8);
  ASSERT_EQ(pool.numa_nodes(), 2);
  EXPECT_TRUE(pool.topology().fake);
  for (int s = 0; s < 4; ++s) EXPECT_EQ(pool.node_of_slot(s), 0) << "slot " << s;
  for (int s = 4; s < 8; ++s) EXPECT_EQ(pool.node_of_slot(s), 1) << "slot " << s;
}

TEST(NumaPool, UnevenPoolSizeStillCoversEveryNode) {
  FakeNumaGuard guard("2x4");
  runtime::ThreadPool pool(6);  // fewer slots than fake CPUs
  ASSERT_EQ(pool.numa_nodes(), 2);
  std::vector<int> per_node(2, 0);
  for (int s = 0; s < pool.concurrency(); ++s) {
    ++per_node[static_cast<std::size_t>(pool.node_of_slot(s))];
  }
  EXPECT_EQ(per_node[0], 3);
  EXPECT_EQ(per_node[1], 3);
}

// ---- Round-robin placement (scheduled-count oracle) --------------------

TEST(NumaPool, RoundRobinSchedulingBalancesNodes) {
  FakeNumaGuard guard("2x4");
  runtime::ThreadPool pool(8);
  ASSERT_EQ(pool.numa_nodes(), 2);
  const int ntasks = 16;
  std::atomic<int> ran{0};
  pool.run_placed(
      ntasks, [&](int, runtime::TaskContext&) { ran.fetch_add(1); }, 0,
      [](int t) { return t % 2; });
  EXPECT_EQ(ran.load(), ntasks);
  // Assignment-time counts are deterministic regardless of stealing: 8
  // tasks hinted at each node.
  EXPECT_EQ(pool.scheduled_on_node(0), 8u);
  EXPECT_EQ(pool.scheduled_on_node(1), 8u);
  const auto stats = pool.numa_stats();
  EXPECT_EQ(stats.total_scheduled(), 16u);
  EXPECT_EQ(stats.total_executed(), 16u);
  EXPECT_EQ(stats.scheduled_imbalance(), 0u);
}

TEST(NumaPool, FourNodeRoundRobinWithinOneTask) {
  FakeNumaGuard guard("4x2");
  runtime::ThreadPool pool(8);
  ASSERT_EQ(pool.numa_nodes(), 4);
  const int ntasks = 10;  // 10 = 4*2 + 2: two nodes get one extra task
  pool.run_placed(
      ntasks, [](int, runtime::TaskContext&) {}, 0, [](int t) { return t % 4; });
  std::uint64_t total = 0;
  for (int node = 0; node < 4; ++node) {
    const std::uint64_t count = pool.scheduled_on_node(node);
    EXPECT_GE(count, 2u) << "node " << node;
    EXPECT_LE(count, 3u) << "node " << node;
    total += count;
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(ntasks));
  EXPECT_EQ(pool.numa_stats().scheduled_imbalance(), 1u);
}

TEST(NumaPool, HonorsPreferredNodeExclusively) {
  FakeNumaGuard guard("2x2");
  runtime::ThreadPool pool(4);
  ASSERT_EQ(pool.numa_nodes(), 2);
  const int ntasks = 12;
  pool.run_placed(
      ntasks, [](int, runtime::TaskContext&) {}, 0, [](int) { return 1; });
  EXPECT_EQ(pool.scheduled_on_node(0), 0u);
  EXPECT_EQ(pool.scheduled_on_node(1), static_cast<std::uint64_t>(ntasks));
}

TEST(NumaPool, NegativeHintFallsBackToFlatRotation) {
  FakeNumaGuard guard("2x2");
  runtime::ThreadPool pool(4);
  const int ntasks = 8;
  pool.run_placed(
      ntasks, [](int, runtime::TaskContext&) {}, 0, [](int) { return -1; });
  // Flat rotation over 4 slots = 2 per slot = 4 per node.
  EXPECT_EQ(pool.scheduled_on_node(0), 4u);
  EXPECT_EQ(pool.scheduled_on_node(1), 4u);
}

TEST(NumaPool, UnhintedRunStillCountsScheduledPerNode) {
  FakeNumaGuard guard("2x2");
  runtime::ThreadPool pool(4);
  const int ntasks = 8;
  pool.run(ntasks, [](int, runtime::TaskContext&) {});
  // Block distribution: 2 tasks per slot, slots blocked 2+2 over the nodes.
  EXPECT_EQ(pool.scheduled_on_node(0), 4u);
  EXPECT_EQ(pool.scheduled_on_node(1), 4u);
  EXPECT_EQ(pool.numa_stats().total_executed(), 8u);
}

// ---- Steal locality ----------------------------------------------------

TEST(NumaPool, BalancedOneTaskPerSlotBatchHasZeroSteals) {
  // One hinted task per slot, latch-gated so no task finishes until every
  // slot has popped its own: steals of any kind are impossible, which
  // makes remote_steals == 0 deterministic even on an oversubscribed
  // single-CPU CI host (acceptance criterion).
  FakeNumaGuard guard("2x2");
  runtime::ThreadPool pool(4);
  ASSERT_EQ(pool.numa_nodes(), 2);
  std::latch all_started(4);
  pool.run_placed(
      4,
      [&](int, runtime::TaskContext&) {
        all_started.arrive_and_wait();
      },
      0, [](int t) { return t % 2; });
  EXPECT_EQ(pool.local_steals(), 0u);
  EXPECT_EQ(pool.remote_steals(), 0u);
  EXPECT_EQ(pool.steals(), 0u);
  // With zero steals, execution matches assignment exactly.
  EXPECT_EQ(pool.scheduled_on_node(0), pool.executed_on_node(0));
  EXPECT_EQ(pool.scheduled_on_node(1), pool.executed_on_node(1));
  EXPECT_EQ(pool.scheduled_on_node(0), 2u);
  EXPECT_EQ(pool.scheduled_on_node(1), 2u);
  const auto stats = pool.numa_stats();
  EXPECT_EQ(stats.steal_locality(), 1.0);
  EXPECT_EQ(stats.scheduled_per_node, stats.executed_per_node);
}

TEST(NumaPoolStats, DerivedQuantities) {
  metrics::NumaPoolStats stats;
  stats.nodes = 2;
  stats.scheduled_per_node = {10, 7};
  stats.executed_per_node = {9, 8};
  stats.local_steals = 3;
  stats.remote_steals = 1;
  EXPECT_EQ(stats.total_scheduled(), 17u);
  EXPECT_EQ(stats.total_executed(), 17u);
  EXPECT_EQ(stats.scheduled_imbalance(), 3u);
  EXPECT_DOUBLE_EQ(stats.steal_locality(), 0.75);
  EXPECT_NE(stats.to_string().find("steals local=3 remote=1"), std::string::npos);
}

// ---- Worker-side first-touch warm --------------------------------------

TEST(NumaPool, WarmGrowsEverySlotUnderFakeTopology) {
  FakeNumaGuard guard("2x2");
  runtime::ThreadPool pool(4);
  const std::size_t floats = 3000, doubles = 5000;
  pool.warm_workspaces(floats, doubles);
  for (int s = 0; s < pool.concurrency(); ++s) {
    EXPECT_GE(pool.workspace(s).bytes(), floats * sizeof(float) + doubles * sizeof(double))
        << "slot " << s;
  }
  // A batch fitting the warmed bound allocates nothing on any slot.
  std::vector<std::size_t> grows_before(4);
  for (int s = 0; s < 4; ++s) grows_before[static_cast<std::size_t>(s)] =
      pool.workspace(s).grow_count();
  pool.run_placed(
      8,
      [&](int, runtime::TaskContext& ctx) {
        Arena<double>& arena = ctx.arena<double>(doubles);
        arena.allocate(doubles);
      },
      0, [](int t) { return t % 2; });
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(pool.workspace(s).grow_count(), grows_before[static_cast<std::size_t>(s)])
        << "slot " << s;
  }
}

// ---- AtA over a fake topology ------------------------------------------

RecurseOptions tiny_base() {
  RecurseOptions opts;
  opts.base_case_elements = 256;
  opts.min_dim = 2;
  return opts;
}

TEST(NumaAta, PlacedExecutionBitwiseMatchesFlatPool) {
  // Integer inputs make every execution order produce identical floats, so
  // NUMA placement (any node assignment, any stealing) must agree exactly
  // with a flat pool and with the serial recursion.
  const index_t m = 96, n = 80;
  const auto a = random_integer<double>(m, n, 3, 4321);
  auto c_serial = Matrix<double>::zeros(n, n);
  ata(1.0, a.const_view(), c_serial.view(), tiny_base());

  auto run_with_pool = [&](runtime::ThreadPool& pool) {
    SharedOptions so;
    so.threads = 4;
    so.oversub = 2;
    so.recurse = tiny_base();
    so.executor = &pool;
    auto c = Matrix<double>::zeros(n, n);
    ata_shared(1.0, a.const_view(), c.view(), so);
    return c;
  };

  Matrix<double> c_numa(1, 1), c_flat(1, 1);
  {
    FakeNumaGuard guard("2x4");
    runtime::ThreadPool pool(8);
    ASSERT_EQ(pool.numa_nodes(), 2);
    c_numa = run_with_pool(pool);
    // The placed batch spread over both nodes.
    EXPECT_GT(pool.scheduled_on_node(0), 0u);
    EXPECT_GT(pool.scheduled_on_node(1), 0u);
  }
  {
    FakeNumaGuard guard(nullptr);  // real (likely flat) topology
    runtime::ThreadPool pool(8);
    c_flat = run_with_pool(pool);
  }
  EXPECT_EQ(max_abs_diff_lower<double>(c_numa.const_view(), c_serial.const_view()), 0.0);
  EXPECT_EQ(max_abs_diff_lower<double>(c_flat.const_view(), c_numa.const_view()), 0.0);
}

// ---- Serving front-end over a fake topology ----------------------------

TEST(NumaServer, RuntimeStatsReportPerNodePlacement) {
  FakeNumaGuard guard("2x2");
  api::Server server(api::Server::Options{.threads = 4, .plan_capacity = 4});
  ASSERT_EQ(server.executor().numa_nodes(), 2);

  const index_t m = 64, n = 48;
  const auto a = random_integer<float>(m, n, 2, 99);
  auto c = Matrix<float>::zeros(n, n);
  SharedOptions so;
  so.threads = 4;
  so.oversub = 1;  // exactly 4 tasks -> 2 per node round-robin
  so.recurse = tiny_base();
  server.submit(1.0f, a.const_view(), c.view(), so).get();

  const auto stats = server.runtime_stats();
  EXPECT_EQ(stats.nodes, 2);
  EXPECT_TRUE(stats.fake_topology);
  EXPECT_EQ(stats.total_scheduled(), 4u);
  EXPECT_EQ(stats.total_executed(), 4u);
  EXPECT_EQ(stats.scheduled_per_node[0], 2u);
  EXPECT_EQ(stats.scheduled_per_node[1], 2u);

  // Result correctness through the hinted serving path.
  auto c_serial = Matrix<float>::zeros(n, n);
  ata(1.0f, a.const_view(), c_serial.view(), tiny_base());
  EXPECT_EQ(max_abs_diff_lower<float>(c.const_view(), c_serial.const_view()), 0.0);
}

}  // namespace
}  // namespace atalib
