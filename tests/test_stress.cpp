// Sanitizer-targeted concurrency stress (DESIGN.md §9).
//
// These tests exist to give TSan/ASan real interleavings to chew on, not to
// assert new functional behavior: N client threads hammer
// Server::submit_batch while the small plan-cache capacity forces constant
// LRU eviction and rebuild of shared plans, and a chaos thread repeatedly
// drives an mpisim communicator with a throwing rank so the abort/poison
// protocol and first-error capture race real batch traffic. Results are
// still checked bitwise (integer inputs) — a lost update would show up as a
// wrong Gram, not just a sanitizer report.
//
// Iteration counts are deliberately small by default so the tier-1 suite
// stays fast; the sanitizer CI legs set ATALIB_STRESS=1 to multiply them.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "api/batch.hpp"
#include "api/server.hpp"
#include "ata/ata.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "mpisim/communicator.hpp"
#include "runtime/thread_pool.hpp"

namespace atalib {
namespace {

int stress_scale() {
  const char* env = std::getenv("ATALIB_STRESS");
  return (env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0) ? 8 : 1;
}

RecurseOptions tiny_base() {
  RecurseOptions opts;
  opts.base_case_elements = 256;
  opts.min_dim = 2;
  return opts;
}

SharedOptions stress_opts() {
  SharedOptions so;
  so.threads = 2;
  so.oversub = 2;
  so.recurse = tiny_base();
  so.tall_skinny_ratio = -1;  // keep the measured tuner out of stress runs
  return so;
}

TEST(Stress, ConcurrentSubmitBatchUnderEvictionAndMpisimAborts) {
  // plan_capacity 2 with 4 client threads each owning a distinct shape:
  // every client's plan keeps getting evicted by the others and rebuilt
  // through the build-once in-flight path while batches from all clients
  // overlap on the pool.
  api::Server server(api::Server::Options{4, 2});
  constexpr int kClients = 4;
  const int iters = 4 * stress_scale();

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  // Chaos thread: an mpisim protocol whose rank 2 throws while the peers
  // are blocked in recv. Runs on its own rank pool (blocking rank bodies
  // must not share slots with the server's batches) and must rethrow the
  // original error every time, concurrently with the serving traffic.
  std::thread chaos([&] {
    runtime::ThreadPool rank_pool(4);
    while (!stop.load(std::memory_order_acquire)) {
      mpisim::Communicator comm(4);
      try {
        comm.run_on(rank_pool, [](mpisim::RankCtx& ctx, runtime::TaskContext&) {
          if (ctx.rank() == 2) throw std::runtime_error("injected rank failure");
          (void)ctx.recv<int>(2, 9);
        });
        ++failures;  // must not complete cleanly
      } catch (const std::runtime_error&) {
        // expected: the injected failure, not a secondary AbortedError
      } catch (...) {
        ++failures;
      }
    }
  });

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const index_t m = 48 + 16 * c;
      const index_t n = 32 + 8 * c;
      const auto a = random_integer<double>(m, n, 3, 7 + c);
      auto ref = Matrix<double>::zeros(n, n);
      ata(2.0, a.const_view(), ref.view(), tiny_base());

      constexpr int kReqsPerBatch = 3;
      std::vector<Matrix<double>> outs;
      for (int r = 0; r < kReqsPerBatch; ++r) outs.push_back(Matrix<double>::zeros(n, n));

      for (int it = 0; it < iters; ++it) {
        std::vector<api::AtaRequest<double>> requests;
        for (auto& out : outs) {
          out.fill(0.0);
          requests.push_back({2.0, a.const_view(), out.view()});
        }
        try {
          for (auto& f : server.submit_batch<double>(requests, stress_opts())) f.get();
        } catch (...) {
          ++failures;
          return;
        }
        for (const auto& out : outs) {
          if (max_abs_diff_lower<double>(out.const_view(), ref.const_view()) != 0.0) {
            ++failures;
            return;
          }
        }
      }
    });
  }

  for (auto& t : clients) t.join();
  stop.store(true, std::memory_order_release);
  chaos.join();

  EXPECT_EQ(failures.load(), 0);
  // Four live shapes through a 2-plan cache must have evicted; the serving
  // path stayed correct through every rebuild.
  const auto stats = server.plan_stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.misses, 0u);
}

TEST(Stress, SharedShapeSubmitBatchKeepsBuildOncePlans) {
  // All clients request the SAME shape: the in-flight build map must hand
  // every concurrent first-request the one shared build, and the warm path
  // must survive clients racing submit_batch with nothing forcing order.
  api::Server server(api::Server::Options{4, 4});
  constexpr int kClients = 4;
  const int iters = 6 * stress_scale();

  const auto a = random_integer<double>(64, 48, 3, 11);
  auto ref = Matrix<double>::zeros(48, 48);
  ata(2.0, a.const_view(), ref.view(), tiny_base());

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      auto out = Matrix<double>::zeros(48, 48);
      for (int it = 0; it < iters; ++it) {
        out.fill(0.0);
        api::AtaRequest<double> req{2.0, a.const_view(), out.view()};
        try {
          for (auto& f : server.submit_batch<double>({&req, 1}, stress_opts())) f.get();
        } catch (...) {
          ++failures;
          return;
        }
        if (max_abs_diff_lower<double>(out.const_view(), ref.const_view()) != 0.0) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.plan_stats().evictions, 0u);
}

}  // namespace
}  // namespace atalib
