// Tests for the in-process message-passing runtime.

#include <gtest/gtest.h>

#include <numeric>

#include "mpisim/communicator.hpp"

namespace atalib::mpisim {
namespace {

TEST(Communicator, PingPongDeliversPayload) {
  Communicator comm(2);
  comm.run([](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      const double data[3] = {1.5, 2.5, 3.5};
      ctx.send(1, 7, data, 3);
      auto back = ctx.recv<double>(1, 8);
      EXPECT_EQ(back.size(), 3u);
      EXPECT_DOUBLE_EQ(back[2], 7.0);
    } else {
      auto msg = ctx.recv<double>(0, 7);
      EXPECT_DOUBLE_EQ(msg[0], 1.5);
      for (auto& v : msg) v *= 2;
      ctx.send(0, 8, msg.data(), msg.size());
    }
  });
}

TEST(Communicator, TagMatchingIsSelective) {
  // Messages sent out of tag order must still be matched correctly.
  Communicator comm(2);
  comm.run([](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      const int a = 111, b = 222;
      ctx.send_value(1, /*tag=*/2, b);
      ctx.send_value(1, /*tag=*/1, a);
    } else {
      EXPECT_EQ(ctx.recv_value<int>(0, 1), 111);
      EXPECT_EQ(ctx.recv_value<int>(0, 2), 222);
    }
  });
}

TEST(Communicator, FifoWithinSameSourceAndTag) {
  Communicator comm(2);
  comm.run([](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      for (int i = 0; i < 10; ++i) ctx.send_value(1, 4, i);
    } else {
      for (int i = 0; i < 10; ++i) EXPECT_EQ(ctx.recv_value<int>(0, 4), i);
    }
  });
}

TEST(Communicator, ManyRanksAllToRoot) {
  const int p = 16;
  Communicator comm(p);
  comm.run([p](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      long long sum = 0;
      for (int src = 1; src < p; ++src) sum += ctx.recv_value<long long>(src, 1);
      EXPECT_EQ(sum, (p - 1) * p / 2);
    } else {
      ctx.send_value<long long>(0, 1, ctx.rank());
    }
  });
}

TEST(Communicator, TrafficCountsMessagesAndWords) {
  Communicator comm(3);
  comm.run([](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      std::vector<double> payload(100, 1.0);
      ctx.send(1, 1, payload.data(), payload.size());
      ctx.send(2, 1, payload.data(), 50);
    } else {
      ctx.recv<double>(0, 1);
    }
  });
  const auto t = comm.traffic();
  EXPECT_EQ(t.messages_sent[0], 2u);
  EXPECT_EQ(t.words_sent[0], 150u);
  EXPECT_EQ(t.messages_received[1], 1u);
  EXPECT_EQ(t.words_received[1], 100u);
  EXPECT_EQ(t.words_received[2], 50u);
  EXPECT_EQ(t.total_messages(), 2u);
  EXPECT_EQ(t.total_words(), 150u);
  EXPECT_EQ(t.root_messages(), 2u);
}

TEST(Communicator, SelfSendIsAProtocolError) {
  Communicator comm(1);
  EXPECT_THROW(comm.run([](RankCtx& ctx) {
    const int v = 1;
    ctx.send_value(0, 0, v);
  }),
               std::logic_error);
}

TEST(Communicator, ExceptionsPropagateToCaller) {
  Communicator comm(2);
  EXPECT_THROW(comm.run([](RankCtx& ctx) {
    if (ctx.rank() == 1) throw std::runtime_error("rank failure");
    // rank 0 does nothing and exits
  }),
               std::runtime_error);
}

TEST(Communicator, LargePayloadIntegrity) {
  Communicator comm(2);
  comm.run([](RankCtx& ctx) {
    const std::size_t n = 1 << 18;
    if (ctx.rank() == 0) {
      std::vector<float> data(n);
      std::iota(data.begin(), data.end(), 0.0f);
      ctx.send(1, 3, data.data(), data.size());
    } else {
      auto data = ctx.recv<float>(0, 3);
      ASSERT_EQ(data.size(), n);
      EXPECT_EQ(data[12345], 12345.0f);
      EXPECT_EQ(data[n - 1], static_cast<float>(n - 1));
    }
  });
}

}  // namespace
}  // namespace atalib::mpisim
