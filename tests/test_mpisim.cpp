// Tests for the in-process message-passing runtime.

#include <gtest/gtest.h>

#include <numeric>

#include "mpisim/communicator.hpp"
#include "runtime/thread_pool.hpp"

namespace atalib::mpisim {
namespace {

TEST(Communicator, PingPongDeliversPayload) {
  Communicator comm(2);
  comm.run([](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      const double data[3] = {1.5, 2.5, 3.5};
      ctx.send(1, 7, data, 3);
      auto back = ctx.recv<double>(1, 8);
      EXPECT_EQ(back.size(), 3u);
      EXPECT_DOUBLE_EQ(back[2], 7.0);
    } else {
      auto msg = ctx.recv<double>(0, 7);
      EXPECT_DOUBLE_EQ(msg[0], 1.5);
      for (auto& v : msg) v *= 2;
      ctx.send(0, 8, msg.data(), msg.size());
    }
  });
}

TEST(Communicator, TagMatchingIsSelective) {
  // Messages sent out of tag order must still be matched correctly.
  Communicator comm(2);
  comm.run([](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      const int a = 111, b = 222;
      ctx.send_value(1, /*tag=*/2, b);
      ctx.send_value(1, /*tag=*/1, a);
    } else {
      EXPECT_EQ(ctx.recv_value<int>(0, 1), 111);
      EXPECT_EQ(ctx.recv_value<int>(0, 2), 222);
    }
  });
}

TEST(Communicator, FifoWithinSameSourceAndTag) {
  Communicator comm(2);
  comm.run([](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      for (int i = 0; i < 10; ++i) ctx.send_value(1, 4, i);
    } else {
      for (int i = 0; i < 10; ++i) EXPECT_EQ(ctx.recv_value<int>(0, 4), i);
    }
  });
}

TEST(Communicator, ManyRanksAllToRoot) {
  const int p = 16;
  Communicator comm(p);
  comm.run([p](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      long long sum = 0;
      for (int src = 1; src < p; ++src) sum += ctx.recv_value<long long>(src, 1);
      EXPECT_EQ(sum, (p - 1) * p / 2);
    } else {
      ctx.send_value<long long>(0, 1, ctx.rank());
    }
  });
}

TEST(Communicator, TrafficCountsMessagesAndWords) {
  Communicator comm(3);
  comm.run([](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      std::vector<double> payload(100, 1.0);
      ctx.send(1, 1, payload.data(), payload.size());
      ctx.send(2, 1, payload.data(), 50);
    } else {
      ctx.recv<double>(0, 1);
    }
  });
  const auto t = comm.traffic();
  EXPECT_EQ(t.messages_sent[0], 2u);
  EXPECT_EQ(t.words_sent[0], 150u);
  EXPECT_EQ(t.messages_received[1], 1u);
  EXPECT_EQ(t.words_received[1], 100u);
  EXPECT_EQ(t.words_received[2], 50u);
  EXPECT_EQ(t.total_messages(), 2u);
  EXPECT_EQ(t.total_words(), 150u);
  EXPECT_EQ(t.root_messages(), 2u);
}

TEST(Communicator, SelfSendIsAProtocolError) {
  Communicator comm(1);
  EXPECT_THROW(comm.run([](RankCtx& ctx) {
    const int v = 1;
    ctx.send_value(0, 0, v);
  }),
               std::logic_error);
}

TEST(Communicator, ExceptionsPropagateToCaller) {
  Communicator comm(2);
  EXPECT_THROW(comm.run([](RankCtx& ctx) {
    if (ctx.rank() == 1) throw std::runtime_error("rank failure");
    // rank 0 does nothing and exits
  }),
               std::runtime_error);
}

TEST(Communicator, RankFailureUnblocksPeersAndPropagatesOriginalError) {
  // Rank 1 dies before sending what everyone else is waiting on: the
  // abort protocol must poison the mailboxes (no hang) and rethrow the
  // *original* failure, not the secondary AbortedError the peers see.
  const int p = 6;
  Communicator comm(p);
  try {
    comm.run([](RankCtx& ctx) {
      if (ctx.rank() == 1) throw std::invalid_argument("rank 1 failed");
      if (ctx.rank() != 1) ctx.recv<int>(1, 7);  // would block forever without abort
    });
    FAIL() << "run() should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "rank 1 failed");
  }
}

TEST(Communicator, RankFailureUnblocksPeersUnderRunOn) {
  const int p = 4;
  runtime::ThreadPool pool(p);
  Communicator comm(p);
  try {
    comm.run_on(pool, [](RankCtx& ctx, runtime::TaskContext&) {
      if (ctx.rank() == 2) throw std::invalid_argument("rank 2 failed");
      ctx.recv<int>(2, 3);
    });
    FAIL() << "run_on() should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "rank 2 failed");
  }
}

TEST(Communicator, StressManyRanksInterleavedTagMatching) {
  // The dist workload shape: every rank sends to every other rank several
  // tagged messages, deliberately posted in an order different from the
  // receive order, with receive order also scrambled per (source, tag).
  // Buffered sends make this deadlock-free by construction; the test
  // asserts full delivery, correct matching, and exact traffic counts.
  const int p = 24;
  const int per_pair = 3;
  Communicator comm(p);
  comm.run([p](RankCtx& ctx) {
    const int me = ctx.rank();
    // Send phase: to each destination, post tags in descending order and
    // payloads encoding (source, tag) so matching errors are observable.
    for (int d = 1; d < p; ++d) {
      const int dest = (me + d) % p;
      for (int tag = per_pair - 1; tag >= 0; --tag) {
        // tag also sets the length, so a mismatched pop would fail loudly.
        std::vector<int> payload(static_cast<std::size_t>(tag + 1), me * 100 + tag);
        ctx.send(dest, tag, payload.data(), payload.size());
      }
    }
    // Receive phase: iterate sources in a rank-dependent rotation and tags
    // ascending — interleaved against every sender's descending posts.
    for (int d = 1; d < p; ++d) {
      const int src = (me + p - d) % p;
      for (int tag = 0; tag < per_pair; ++tag) {
        const auto got = ctx.recv<int>(src, tag);
        ASSERT_EQ(got.size(), static_cast<std::size_t>(tag + 1));
        EXPECT_EQ(got.front(), src * 100 + tag);
      }
    }
  });
  const auto t = comm.traffic();
  const auto expected_msgs = static_cast<std::uint64_t>(p) * (p - 1) * per_pair;
  // Each (source, dest) pair carries 1 + 2 + ... + per_pair words.
  const auto expected_words =
      static_cast<std::uint64_t>(p) * (p - 1) * (per_pair * (per_pair + 1) / 2);
  EXPECT_EQ(t.total_messages(), expected_msgs);
  EXPECT_EQ(t.total_words(), expected_words);
  std::uint64_t received_msgs = 0, received_words = 0;
  for (int r = 0; r < p; ++r) {
    received_msgs += t.messages_received[static_cast<std::size_t>(r)];
    received_words += t.words_received[static_cast<std::size_t>(r)];
  }
  EXPECT_EQ(received_msgs, expected_msgs);  // nothing left undelivered
  EXPECT_EQ(received_words, expected_words);
}

TEST(Communicator, RunOnExecutorMatchesThreadRun) {
  // run_on executes ranks as a ThreadPool batch; the protocol result and
  // traffic must be identical to the thread-per-rank run(), and each rank
  // must get a usable per-slot workspace.
  const int p = 8;
  runtime::ThreadPool pool(p);
  Communicator comm(p);
  comm.run_on(pool, [p](RankCtx& ctx, runtime::TaskContext& tctx) {
    Arena<double>& arena = tctx.arena<double>(64);
    double* slot = arena.allocate(1);
    *slot = ctx.rank();
    if (ctx.rank() == 0) {
      double sum = 0;
      for (int src = 1; src < p; ++src) sum += ctx.recv_value<double>(src, 9);
      EXPECT_DOUBLE_EQ(sum, p * (p - 1) / 2.0);
    } else {
      ctx.send_value<double>(0, 9, *slot);
    }
  });
  EXPECT_EQ(comm.traffic().total_messages(), static_cast<std::uint64_t>(p - 1));
}

TEST(Communicator, RunOnRejectsNarrowExecutor) {
  // Rank bodies block on recv; an executor with fewer slots than ranks
  // would deadlock, so run_on must refuse it up front.
  runtime::ThreadPool pool(2);
  Communicator comm(3);
  EXPECT_THROW(comm.run_on(pool, [](RankCtx&, runtime::TaskContext&) {}), std::logic_error);
}

TEST(Communicator, RunOnRejectsNestedSubmission) {
  // From inside a pool task a nested run() executes inline-serial, which
  // would deadlock a multi-rank protocol — run_on must throw instead.
  runtime::ThreadPool outer(2);
  runtime::ThreadPool wide(4);
  Communicator comm(2);
  EXPECT_THROW(outer.run(2,
                         [&](int t, runtime::TaskContext&) {
                           if (t == 0) {
                             comm.run_on(wide, [](RankCtx&, runtime::TaskContext&) {});
                           }
                         }),
               std::logic_error);
}

TEST(Communicator, LargePayloadIntegrity) {
  Communicator comm(2);
  comm.run([](RankCtx& ctx) {
    const std::size_t n = 1 << 18;
    if (ctx.rank() == 0) {
      std::vector<float> data(n);
      std::iota(data.begin(), data.end(), 0.0f);
      ctx.send(1, 3, data.data(), data.size());
    } else {
      auto data = ctx.recv<float>(0, 3);
      ASSERT_EQ(data.size(), n);
      EXPECT_EQ(data[12345], 12345.0f);
      EXPECT_EQ(data[n - 1], static_cast<float>(n - 1));
    }
  });
}

}  // namespace
}  // namespace atalib::mpisim
