// Tests for the persistent task-pool runtime: exactly-once execution under
// stealing (the Snippet-1-style integrity property), workspace reuse,
// re-entrancy, error propagation, the over-decomposed AtA-S schedule, and
// bitwise agreement of pool-executed AtA-S with the serial engines.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "ata/ata.hpp"
#include "blas/parallel.hpp"
#include "blas/reference.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "parallel/ata_shared.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/shared_schedule.hpp"

namespace atalib {
namespace {

// ---- Pool integrity ---------------------------------------------------

TEST(ThreadPool, EveryTaskRunsExactlyOnce) {
  runtime::ThreadPool pool(4);
  ASSERT_EQ(pool.concurrency(), 4);
  const int ntasks = 20000;
  // One buffer per slot; a slot is driven by exactly one thread during a
  // batch, so the buffers need no locking — same shape as the tasksys
  // integrity test.
  std::vector<std::vector<int>> buffers(static_cast<std::size_t>(pool.concurrency()));
  for (int batch = 0; batch < 3; ++batch) {
    for (auto& b : buffers) b.clear();
    pool.run(ntasks, [&](int t, runtime::TaskContext& ctx) {
      buffers[static_cast<std::size_t>(ctx.worker)].push_back(t);
    });
    std::set<int> seen;
    for (const auto& b : buffers) {
      for (int t : b) {
        EXPECT_TRUE(seen.insert(t).second) << "duplicate task " << t;
      }
    }
    EXPECT_EQ(static_cast<int>(seen.size()), ntasks) << "dropped tasks";
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), ntasks - 1);
  }
  EXPECT_EQ(pool.batches(), 3u);
}

TEST(ThreadPool, AssortedBatchSizesSumCorrectly) {
  runtime::ThreadPool pool(3);
  for (int n : {1, 2, 3, 7, 64, 1000}) {
    std::atomic<long long> sum{0};
    pool.run(n, [&](int t, runtime::TaskContext&) {
      sum.fetch_add(t, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n - 1) / 2) << "n=" << n;
  }
}

TEST(ThreadPool, ReentrantSubmissionExecutesInline) {
  runtime::ThreadPool pool(2);
  std::atomic<int> inner{0};
  pool.run(4, [&](int, runtime::TaskContext&) {
    pool.run(8, [&](int, runtime::TaskContext&) {
      inner.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner.load(), 4 * 8);
}

TEST(ThreadPool, TaskExceptionPropagatesAndPoolSurvives) {
  runtime::ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.run(16,
                        [&](int t, runtime::TaskContext&) {
                          ran.fetch_add(1, std::memory_order_relaxed);
                          if (t == 3) throw std::runtime_error("task 3 failed");
                        }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 16) << "batch must drain even after a failure";
  std::atomic<int> after{0};
  pool.run(8, [&](int, runtime::TaskContext&) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 8);
}

// ---- Queued multi-batch admission --------------------------------------

TEST(ThreadPoolMultiBatch, SubmitReturnsFuturesAndRunsEveryTask) {
  runtime::ThreadPool pool(4);
  std::atomic<long long> sums[3] = {{0}, {0}, {0}};
  std::future<void> futs[3];
  for (int b = 0; b < 3; ++b) {
    futs[b] = pool.submit(100 + b, [&sums, b](int t, runtime::TaskContext&) {
      sums[b].fetch_add(t, std::memory_order_relaxed);
    });
  }
  for (int b = 0; b < 3; ++b) {
    futs[b].get();
    const long long n = 100 + b;
    EXPECT_EQ(sums[b].load(), n * (n - 1) / 2) << "batch " << b;
  }
  EXPECT_GE(pool.batches(), 3u);
}

TEST(ThreadPoolMultiBatch, BatchesFromIndependentClientsOverlap) {
  // Batch 1 parks one task on a gate; batch 2 must run to completion while
  // batch 1 is still in flight — the queued-admission property the serving
  // front-end relies on. (The old pool serialized clients at run().)
  runtime::ThreadPool pool(4);
  std::promise<void> gate;
  std::shared_future<void> gate_f = gate.get_future().share();
  auto f1 = pool.submit(1, [gate_f](int, runtime::TaskContext&) { gate_f.wait(); });

  std::atomic<int> ran{0};
  auto f2 = pool.submit(16, [&ran](int, runtime::TaskContext&) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  f2.get();  // completes even though batch 1 holds a slot
  EXPECT_EQ(ran.load(), 16);
  EXPECT_EQ(f1.wait_for(std::chrono::seconds(0)), std::future_status::timeout)
      << "batch 1 must still be blocked when batch 2 finishes";
  gate.set_value();
  f1.get();
}

TEST(ThreadPoolMultiBatch, ConcurrentRunClientsBothComplete) {
  runtime::ThreadPool pool(4);
  std::atomic<long long> sum1{0}, sum2{0};
  std::thread c1([&] {
    pool.run(2000, [&](int t, runtime::TaskContext&) {
      sum1.fetch_add(t, std::memory_order_relaxed);
    });
  });
  std::thread c2([&] {
    pool.run(2000, [&](int t, runtime::TaskContext&) {
      sum2.fetch_add(t, std::memory_order_relaxed);
    });
  });
  c1.join();
  c2.join();
  EXPECT_EQ(sum1.load(), 2000LL * 1999 / 2);
  EXPECT_EQ(sum2.load(), 2000LL * 1999 / 2);
}

TEST(ThreadPoolMultiBatch, SubmitExceptionSurfacesOnFutureAndPoolSurvives) {
  runtime::ThreadPool pool(3);
  std::atomic<int> ran{0};
  auto f = pool.submit(12, [&ran](int t, runtime::TaskContext&) {
    ran.fetch_add(1, std::memory_order_relaxed);
    if (t == 5) throw std::runtime_error("task 5 failed");
  });
  EXPECT_THROW(f.get(), std::runtime_error);
  EXPECT_EQ(ran.load(), 12) << "batch must drain even after a failure";
  auto f2 = pool.submit(8, [](int, runtime::TaskContext&) {});
  f2.get();
}

TEST(ThreadPoolMultiBatch, SubmitFromInsideATaskExecutesInline) {
  runtime::ThreadPool pool(2);
  std::atomic<int> inner{0};
  pool.run(3, [&](int, runtime::TaskContext&) {
    auto f = pool.submit(5, [&](int, runtime::TaskContext&) {
      inner.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready)
        << "nested submit must complete before returning";
  });
  EXPECT_EQ(inner.load(), 3 * 5);
}

TEST(ThreadPoolMultiBatch, WarmWaitsForQuiescenceThenGrows) {
  runtime::ThreadPool pool(3);
  pool.warm_workspaces(0, 512);
  auto f = pool.submit(64, [](int, runtime::TaskContext& ctx) {
    Arena<double>& arena = ctx.arena<double>(256);
    arena.allocate(16)[0] = 1.0;
  });
  // Larger than the warmed mark: must wait until the batch above retires,
  // then grow every slot — never while tasks could touch the arenas. The
  // batch deregisters (waking the warm) just before its promise is
  // fulfilled, so the future may trail the warm's return by an
  // instruction or two — assert with a bounded wait, not wait_for(0).
  pool.warm_workspaces(0, 4096);
  EXPECT_EQ(f.wait_for(std::chrono::seconds(5)), std::future_status::ready)
      << "a growing warm must have waited for the in-flight batch";
  f.get();
  std::size_t grows_after_warm = 0;
  for (int s = 0; s < pool.concurrency(); ++s) {
    grows_after_warm += pool.workspace(s).grow_count();
  }
  auto f2 = pool.submit(64, [](int, runtime::TaskContext& ctx) {
    Arena<double>& arena = ctx.arena<double>(4096);
    arena.allocate(64)[0] = 2.0;
  });
  f2.get();
  std::size_t grows_after_batch = 0;
  for (int s = 0; s < pool.concurrency(); ++s) {
    grows_after_batch += pool.workspace(s).grow_count();
  }
  EXPECT_EQ(grows_after_batch, grows_after_warm)
      << "requests at the warmed mark must not allocate";
}

// ---- Workspace reuse --------------------------------------------------

TEST(Workspace, GrowsMonotonicallyAndReuses) {
  runtime::Workspace ws;
  Arena<double>& a1 = ws.arena<double>(100);
  EXPECT_GE(a1.capacity(), 100u);
  EXPECT_EQ(ws.grow_count(), 1u);
  double* p = a1.allocate(100);
  EXPECT_NE(p, nullptr);
  // A smaller request reuses the slab, reset to empty.
  Arena<double>& a2 = ws.arena<double>(50);
  EXPECT_EQ(&a2, &a1);
  EXPECT_EQ(a2.used(), 0u);
  EXPECT_GE(a2.capacity(), 100u);
  EXPECT_EQ(ws.grow_count(), 1u);
  // A larger request grows once; float arena is independent.
  ws.arena<double>(200);
  EXPECT_EQ(ws.grow_count(), 2u);
  ws.arena<float>(64);
  EXPECT_EQ(ws.grow_count(), 3u);
  EXPECT_GE(ws.bytes(), 200 * sizeof(double) + 64 * sizeof(float));
}

TEST(ThreadPool, WarmPoolStopsAllocatingWorkspace) {
  runtime::ThreadPool pool(3);
  // Stealing routes any task to any slot, so "warming by execution" is
  // nondeterministic — a slot may first meet the largest request in a
  // late batch. The contract (and what ata_shared does) is to pre-grow
  // every slot to the batch bound; after that no batch may allocate.
  pool.warm_workspaces(0, 1024 + 64 * 3);
  std::size_t grows_after_warmup = 0;
  for (int s = 0; s < pool.concurrency(); ++s) {
    grows_after_warmup += pool.workspace(s).grow_count();
  }
  auto batch = [&] {
    pool.run(24, [&](int t, runtime::TaskContext& ctx) {
      Arena<double>& arena = ctx.arena<double>(static_cast<std::size_t>(1024 + 64 * (t % 4)));
      double* p = arena.allocate(128);
      p[0] = static_cast<double>(t);  // touch the slab
    });
  };
  for (int rep = 0; rep < 6; ++rep) batch();
  std::size_t grows_after_reps = 0;
  for (int s = 0; s < pool.concurrency(); ++s) {
    grows_after_reps += pool.workspace(s).grow_count();
  }
  EXPECT_EQ(grows_after_reps, grows_after_warmup)
      << "warmed batches must not reallocate workspace";
}

// ---- Over-decomposed AtA-S schedule ------------------------------------

TEST(SharedScheduleOversub, BuildsPrimeTasksWithDisjointCoveringWrites) {
  const index_t m = 120, n = 97;
  for (int p : {3, 4, 7}) {
    for (int oversub : {2, 3}) {
      const auto s = sched::build_shared_schedule(m, n, p, oversub);
      EXPECT_EQ(static_cast<int>(s.tasks.size()), p * oversub) << "P=" << p << " c=" << oversub;
      std::vector<sched::LeafOp> all;
      for (const auto& t : s.tasks) all.insert(all.end(), t.ops.begin(), t.ops.end());
      for (std::size_t i = 0; i < all.size(); ++i) {
        for (std::size_t j = i + 1; j < all.size(); ++j) {
          EXPECT_FALSE(sched::writes_overlap(all[i], all[j]))
              << all[i].to_string() << " vs " << all[j].to_string();
        }
      }
      // Every lower-triangle cell written exactly once.
      std::vector<int> hits(static_cast<std::size_t>(n * n), 0);
      for (const auto& op : all) {
        for (index_t i = 0; i < op.c.rows; ++i) {
          for (index_t j = 0; j < op.c.cols; ++j) {
            if (op.kind == sched::LeafOp::Kind::kSyrk && j > i) continue;
            hits[static_cast<std::size_t>((op.c.r0 + i) * n + op.c.c0 + j)]++;
          }
        }
      }
      for (index_t i = 0; i < n; ++i) {
        for (index_t j = 0; j <= i; ++j) {
          ASSERT_EQ(hits[static_cast<std::size_t>(i * n + j)], 1)
              << "cell (" << i << "," << j << ") P=" << p << " c=" << oversub;
        }
      }
    }
  }
}

// ---- AtA-S over the pool vs serial engines -----------------------------

RecurseOptions tiny_base() {
  RecurseOptions opts;
  opts.base_case_elements = 256;
  opts.min_dim = 2;
  return opts;
}

TEST(AtaSharedPool, BitwiseMatchesSerialAtaOnIntegerInputs) {
  // Integer matrices make every execution order produce identical floats,
  // so the pool execution (any stealing interleaving) must agree exactly
  // with the serial recursion.
  runtime::ThreadPool pool(4);
  const struct {
    index_t m, n;
  } shapes[] = {{64, 64}, {96, 80}, {120, 88}};
  for (const auto& shape : shapes) {
    const auto a = random_integer<double>(shape.m, shape.n, 3, 1234);
    auto c_serial = Matrix<double>::zeros(shape.n, shape.n);
    ata(1.0, a.const_view(), c_serial.view(), tiny_base());
    for (int p : {1, 3, 4, 7}) {
      for (int oversub : {1, 2, 4}) {
        SharedOptions so;
        so.threads = p;
        so.oversub = oversub;
        so.recurse = tiny_base();
        so.executor = &pool;
        auto c_pool = Matrix<double>::zeros(shape.n, shape.n);
        ata_shared(1.0, a.const_view(), c_pool.view(), so);
        EXPECT_EQ(max_abs_diff_lower<double>(c_pool.const_view(), c_serial.const_view()), 0.0)
            << "m=" << shape.m << " n=" << shape.n << " P=" << p << " c=" << oversub;
      }
    }
  }
}

TEST(AtaSharedPool, DefaultExecutorAndForkJoinAgree) {
  const auto a = random_integer<float>(72, 56, 2, 77);
  auto c_ref = Matrix<float>::zeros(56, 56);
  blas::ref::syrk_ln(1.0f, a.const_view(), c_ref.view());

  SharedOptions so;
  so.threads = 5;
  so.oversub = 2;
  so.recurse = tiny_base();
  auto c_default = Matrix<float>::zeros(56, 56);
  ata_shared(1.0f, a.const_view(), c_default.view(), so);  // default executor

  runtime::ForkJoinExecutor forkjoin(4);
  so.executor = &forkjoin;
  auto c_fj = Matrix<float>::zeros(56, 56);
  ata_shared(1.0f, a.const_view(), c_fj.view(), so);

  EXPECT_EQ(max_abs_diff_lower<float>(c_default.const_view(), c_ref.const_view()), 0.0);
  EXPECT_EQ(max_abs_diff_lower<float>(c_fj.const_view(), c_ref.const_view()), 0.0);
}

TEST(AtaSharedPool, BlasEngineAndProfileAgreeOverPool) {
  runtime::ThreadPool pool(3);
  const auto a = random_integer<double>(80, 64, 3, 91);
  auto c_ref = Matrix<double>::zeros(64, 64);
  blas::ref::syrk_ln(1.0, a.const_view(), c_ref.view());

  SharedOptions so;
  so.threads = 6;
  so.oversub = 3;
  so.recurse = tiny_base();
  so.executor = &pool;
  so.engine = SharedOptions::Engine::kBlas;
  auto c_blas = Matrix<double>::zeros(64, 64);
  ata_shared(1.0, a.const_view(), c_blas.view(), so);
  EXPECT_EQ(max_abs_diff_lower<double>(c_blas.const_view(), c_ref.const_view()), 0.0);

  so.engine = SharedOptions::Engine::kStrassen;
  auto c_prof = Matrix<double>::zeros(64, 64);
  const auto profile = ata_shared_profile(1.0, a.const_view(), c_prof.view(), so);
  EXPECT_EQ(static_cast<int>(profile.task_seconds.size()), 6 * 3);
  EXPECT_EQ(max_abs_diff_lower<double>(c_prof.const_view(), c_ref.const_view()), 0.0);
}

// ---- Parallel BLAS over an explicit executor ---------------------------

TEST(BlasParExecutor, StripedKernelsMatchReference) {
  runtime::ThreadPool pool(4);
  const index_t m = 48, n = 36, k = 28;
  const auto a = random_integer<double>(m, n, 3, 5);
  const auto b = random_integer<double>(m, k, 3, 6);

  auto c_ref = Matrix<double>::zeros(n, k);
  blas::ref::gemm_tn(1.0, a.const_view(), b.const_view(), c_ref.view());
  auto c_par = Matrix<double>::zeros(n, k);
  blas::par::gemm_tn(1.0, a.const_view(), b.const_view(), c_par.view(), 7, pool);
  EXPECT_EQ(max_abs_diff<double>(c_par.const_view(), c_ref.const_view()), 0.0);

  auto s_ref = Matrix<double>::zeros(n, n);
  blas::ref::syrk_ln(1.0, a.const_view(), s_ref.view());
  auto s_par = Matrix<double>::zeros(n, n);
  blas::par::syrk_ln(1.0, a.const_view(), s_par.view(), 5, pool);
  EXPECT_EQ(max_abs_diff_lower<double>(s_par.const_view(), s_ref.const_view()), 0.0);
}

}  // namespace
}  // namespace atalib
