// Option validation for the distributed entry points: invalid
// configurations must fail fast with std::invalid_argument (same throw
// contract as caps_like_mm's shape check) before any rank starts.

#include <gtest/gtest.h>

#include <stdexcept>

#include "blas/reference.hpp"
#include "dist/ata_dist.hpp"
#include "dist/cosma_like.hpp"
#include "dist/summa_syrk.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"

namespace atalib::dist {
namespace {

TEST(DistOptionsValidation, RejectsNonPositiveProcs) {
  auto a = random_integer<double>(16, 16, 2, 1);
  for (int procs : {0, -1, -64}) {
    DistOptions opts;
    opts.procs = procs;
    EXPECT_THROW(ata_dist(1.0, a, opts), std::invalid_argument) << "procs=" << procs;
  }
  EXPECT_THROW(summa_syrk(1.0, a, 0), std::invalid_argument);
  EXPECT_THROW(cosma_like_gemm(1.0, a, a, -2), std::invalid_argument);
}

TEST(DistOptionsValidation, RejectsAlphaOutsideOpenUnitInterval) {
  auto a = random_integer<double>(16, 16, 2, 2);
  for (double alpha : {0.0, 1.0, -0.25, 1.5}) {
    DistOptions opts;
    opts.procs = 4;
    opts.alpha = alpha;
    EXPECT_THROW(ata_dist(1.0, a, opts), std::invalid_argument) << "alpha=" << alpha;
  }
}

TEST(DistOptionsValidation, RejectsBadRecurseCutoffs) {
  // Parity with validate(SharedOptions): the shared RecurseOptions checks
  // run inside DistOptions validation too.
  auto a = random_integer<double>(16, 16, 2, 7);
  DistOptions neg_base;
  neg_base.procs = 4;
  neg_base.recurse.base_case_elements = -8;
  EXPECT_THROW(ata_dist(1.0, a, neg_base), std::invalid_argument);
  DistOptions zero_min;
  zero_min.procs = 4;
  zero_min.recurse.min_dim = 0;
  EXPECT_THROW(ata_dist(1.0, a, zero_min), std::invalid_argument);
}

TEST(DistOptionsValidation, ExtremeButValidAlphaStillComputesCorrectly) {
  auto a = random_integer<double>(48, 40, 2, 3);
  auto c_ref = Matrix<double>::zeros(40, 40);
  blas::ref::syrk_ln(1.0, a.const_view(), c_ref.view());
  for (double alpha : {0.01, 0.99}) {
    DistOptions opts;
    opts.procs = 6;
    opts.alpha = alpha;
    opts.recurse.base_case_elements = 256;
    opts.recurse.min_dim = 2;
    const auto res = ata_dist(1.0, a, opts);
    EXPECT_EQ(max_abs_diff_lower<double>(res.c.const_view(), c_ref.const_view()), 0.0)
        << "alpha=" << alpha;
  }
}

TEST(DistOptionsValidation, CosmaRejectsMismatchedRowCounts) {
  auto a = random_integer<double>(16, 8, 2, 4);
  auto b = random_integer<double>(12, 8, 2, 5);
  EXPECT_THROW(cosma_like_gemm(1.0, a, b, 4), std::invalid_argument);
}

}  // namespace
}  // namespace atalib::dist
