// Tests for AtA (Algorithm 1), the paper's core contribution.

#include <gtest/gtest.h>

#include "ata/ata.hpp"
#include "blas/reference.hpp"
#include "common/arena.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "runtime/workspace.hpp"
#include "strassen/workspace.hpp"

namespace atalib {
namespace {

RecurseOptions tiny_base() {
  RecurseOptions opts;
  opts.base_case_elements = 64;
  opts.min_dim = 2;
  return opts;
}

struct Shape {
  index_t m, n;
};

class AtaShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(AtaShapes, MatchesSyrkReferenceExactlyOnIntegers) {
  const auto [m, n] = GetParam();
  auto a = random_integer<double>(m, n, 3, 1);
  auto c = Matrix<double>::zeros(n, n);
  auto c_ref = Matrix<double>::zeros(n, n);
  blas::ref::syrk_ln(1.0, a.const_view(), c_ref.view());
  ata(1.0, a.const_view(), c.view(), tiny_base());
  EXPECT_EQ(max_abs_diff_lower<double>(c.const_view(), c_ref.const_view()), 0.0)
      << "m=" << m << " n=" << n;
}

TEST_P(AtaShapes, NaiveVariantAgrees) {
  const auto [m, n] = GetParam();
  auto a = random_integer<double>(m, n, 3, 2);
  auto c1 = Matrix<double>::zeros(n, n);
  auto c2 = Matrix<double>::zeros(n, n);
  ata(1.0, a.const_view(), c1.view(), tiny_base());
  ata_naive(1.0, a.const_view(), c2.view(), tiny_base());
  EXPECT_EQ(max_abs_diff_lower<double>(c1.const_view(), c2.const_view()), 0.0);
}

TEST_P(AtaShapes, NeverTouchesStrictUpperTriangle) {
  const auto [m, n] = GetParam();
  auto a = random_uniform<double>(m, n, 3);
  auto c = Matrix<double>::zeros(n, n);
  const double sentinel = 77.125;
  for (index_t i = 0; i < n; ++i)
    for (index_t j = i + 1; j < n; ++j) c(i, j) = sentinel;
  ata(1.0, a.const_view(), c.view(), tiny_base());
  for (index_t i = 0; i < n; ++i)
    for (index_t j = i + 1; j < n; ++j) ASSERT_EQ(c(i, j), sentinel);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, AtaShapes,
    ::testing::Values(Shape{1, 1}, Shape{2, 2}, Shape{3, 3}, Shape{4, 4}, Shape{5, 5},
                      Shape{7, 9}, Shape{9, 7}, Shape{16, 16}, Shape{17, 17}, Shape{31, 33},
                      Shape{64, 64}, Shape{65, 64}, Shape{64, 65}, Shape{100, 10},
                      Shape{10, 100}, Shape{128, 127}, Shape{129, 67}, Shape{1, 50},
                      Shape{50, 1}));

TEST(Ata, ScalesByAlphaAndAccumulates) {
  auto a = random_integer<double>(30, 20, 3, 4);
  auto c = Matrix<double>::zeros(20, 20);
  auto expected = Matrix<double>::zeros(20, 20);
  blas::ref::syrk_ln(0.5, a.const_view(), expected.view());
  blas::ref::syrk_ln(-2.0, a.const_view(), expected.view());
  ata(0.5, a.const_view(), c.view(), tiny_base());
  ata(-2.0, a.const_view(), c.view(), tiny_base());
  EXPECT_EQ(max_abs_diff_lower<double>(c.const_view(), expected.const_view()), 0.0);
}

TEST(Ata, ExternalArenaIsSufficientAndReleased) {
  const RecurseOptions opts = tiny_base();
  const index_t m = 70, n = 66;
  const index_t bound = ata_workspace_bound(m, n, opts, sizeof(double));
  Arena<double> arena(static_cast<std::size_t>(bound));
  auto a = random_integer<double>(m, n, 3, 5);
  auto c = Matrix<double>::zeros(n, n);
  EXPECT_NO_THROW(ata(1.0, a.const_view(), c.view(), arena, opts));
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_LE(arena.high_water(), static_cast<std::size_t>(bound));
}

TEST(Ata, WorkspaceBoundBelowPaperSpaceModel) {
  // §3.3: S(n) = 3/2 n^2 including the output; our arena covers only the
  // Strassen temporaries, which must come in well under n^2/2.
  RecurseOptions opts;
  opts.base_case_elements = 1;
  opts.min_dim = 1;
  const index_t n = 512;
  const index_t bound = ata_workspace_bound(n, n, opts, sizeof(double));
  EXPECT_LT(static_cast<double>(bound), 0.5 * static_cast<double>(n) * n);
}

TEST(Ata, DiagonalDominatesForSpdStructure) {
  // C = A^T A is PSD: |c_ij| <= sqrt(c_ii c_jj) (Cauchy-Schwarz).
  auto a = random_uniform<double>(40, 24, 6);
  auto c = Matrix<double>::zeros(24, 24);
  ata(1.0, a.const_view(), c.view(), tiny_base());
  for (index_t i = 0; i < 24; ++i) {
    for (index_t j = 0; j < i; ++j) {
      ASSERT_LE(c(i, j) * c(i, j), c(i, i) * c(j, j) * (1 + 1e-12));
    }
  }
}

TEST(Ata, FloatPrecision) {
  const index_t m = 80, n = 72;
  auto a = random_uniform<float>(m, n, 8);
  auto c = Matrix<float>::zeros(n, n);
  auto c_ref = Matrix<float>::zeros(n, n);
  RecurseOptions opts;
  opts.base_case_elements = 256;
  opts.min_dim = 4;
  ata(1.0f, a.const_view(), c.view(), opts);
  blas::ref::syrk_ln(1.0f, a.const_view(), c_ref.view());
  EXPECT_LT(max_abs_diff_lower<float>(c.const_view(), c_ref.const_view()),
            mm_tolerance<float>(m, 512.0));
}

class AatShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(AatShapes, AAtMatchesReferenceOnTransposedInput) {
  // aat(A) must equal syrk_ln(A^T): lower(C) = A A^T.
  const auto [m, n] = GetParam();
  auto a = random_integer<double>(m, n, 3, 77);
  auto at = a.transposed();
  auto c = Matrix<double>::zeros(m, m);
  auto c_ref = Matrix<double>::zeros(m, m);
  blas::ref::syrk_ln(1.0, at.const_view(), c_ref.view());
  aat(1.0, a.const_view(), c.view(), tiny_base());
  EXPECT_EQ(max_abs_diff_lower<double>(c.const_view(), c_ref.const_view()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(ShapeSweep, AatShapes,
                         ::testing::Values(Shape{1, 1}, Shape{5, 9}, Shape{16, 16},
                                           Shape{33, 17}, Shape{17, 33}, Shape{64, 100}));

TEST(Aat, GramOfWideMatrixIsSmall) {
  // AA^T of an m x n matrix is m x m even when n >> m.
  auto a = random_integer<double>(6, 200, 2, 78);
  auto c = Matrix<double>::zeros(6, 6);
  aat(1.0, a.const_view(), c.view(), tiny_base());
  auto at = a.transposed();
  auto c_ref = Matrix<double>::zeros(6, 6);
  blas::ref::syrk_ln(1.0, at.const_view(), c_ref.view());
  EXPECT_EQ(max_abs_diff_lower<double>(c.const_view(), c_ref.const_view()), 0.0);
}

TEST(Aat, ArenaRoutedCallsAreMallocFreeOnceWarm) {
  // The transpose buffer comes out of the caller-visible arena, so a
  // reused runtime::Workspace slab serves repeated aat() calls with zero
  // slab allocations after the first.
  const index_t m = 48, n = 36;
  auto a = random_integer<double>(m, n, 3, 79);
  auto at = a.transposed();
  auto c_ref = Matrix<double>::zeros(m, m);
  blas::ref::syrk_ln(1.0, at.const_view(), c_ref.view());

  const auto bound =
      static_cast<std::size_t>(aat_workspace_bound(m, n, tiny_base(), sizeof(double)));
  runtime::Workspace ws;
  for (int rep = 0; rep < 4; ++rep) {
    Arena<double>& arena = ws.arena<double>(bound);
    auto c = Matrix<double>::zeros(m, m);
    aat(1.0, a.const_view(), c.view(), arena, tiny_base());
    EXPECT_EQ(max_abs_diff_lower<double>(c.const_view(), c_ref.const_view()), 0.0)
        << "rep " << rep;
    EXPECT_EQ(arena.used(), 0u) << "aat must release its checkpoint";
  }
  EXPECT_EQ(ws.grow_count(), 1u) << "only the first call may grow the slab";
}

TEST(Ata, DefaultOptionsProbeCacheAndWork) {
  // Default-constructed options must work out of the box (cache probe).
  auto a = random_integer<double>(150, 90, 2, 9);
  auto c = Matrix<double>::zeros(90, 90);
  auto c_ref = Matrix<double>::zeros(90, 90);
  ata(1.0, a.const_view(), c.view());
  blas::ref::syrk_ln(1.0, a.const_view(), c_ref.view());
  EXPECT_EQ(max_abs_diff_lower<double>(c.const_view(), c_ref.const_view()), 0.0);
}

}  // namespace
}  // namespace atalib
