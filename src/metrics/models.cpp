#include "metrics/models.hpp"

#include <cmath>

#include "sched/levels.hpp"

namespace atalib::metrics {

namespace {
const double kLog27 = std::log2(7.0);
}

double strassen_cost_model(double n) { return 7.0 * std::pow(n, kLog27); }

double ata_cost_model(double n) { return (2.0 / 3.0) * strassen_cost_model(n); }

double classical_ata_cost(double n) { return n * n * (n + 1); }

double ata_space_model(double n) { return 1.5 * n * n; }

double dist_compute_model(double n, int p) {
  const int l = sched::paper_levels_dist(p);
  const double block = n / std::pow(2.0, l);
  return block * block * (n / std::pow(2.0, std::max(l - 1, 0)));
}

double dist_latency_model(int p) {
  const int l = sched::paper_levels_dist(p);
  return 2.0 * (7.0 * std::max(l - 1, 0) + 5.0);
}

double dist_bandwidth_model(double n, int p) {
  const int l = sched::paper_levels_dist(p);
  const double geo = 1.0 - 1.0 / std::pow(4.0, std::max(l - 2, 0));
  return 6.0 * (n / 2) * (n / 2) + n * (n + 2) / 2.0 + (7.0 / 6.0) * n * n * geo;
}

}  // namespace atalib::metrics
