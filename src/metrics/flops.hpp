#pragma once
// Performance metrics: effective GFLOPs (eq. (9)) and theoretical peak.

#include "matrix/view.hpp"

namespace atalib::metrics {

/// eq. (9): effective GFLOPs = r * n^3 / (t * 1e9), generalized to
/// rectangular shapes as r * m*n*k (for A^T A set k = n, so a square input
/// reproduces r * n^3 exactly). r = 1 for A^T A-specific algorithms,
/// r = 2 for general matrix multiplication.
double effective_gflops(double r, index_t m, index_t n, index_t k, double seconds);

/// Measure this machine's attainable per-core gemm GFLOPs (best of a few
/// short runs on an in-cache problem). Used as the denominator of the
/// %-of-theoretical-peak plots (Fig. 6 right column); the paper uses the
/// node's datasheet peak, which a simulated cluster does not have.
double measure_peak_gflops();

/// Percentage of peak: 100 * eff / (peak * procs).
double percent_of_peak(double eff_gflops, double peak_gflops, int procs);

}  // namespace atalib::metrics
