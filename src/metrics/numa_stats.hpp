#pragma once
// Topology and steal-locality counters for the NUMA-aware runtime.
//
// Plain data, deliberately free of any runtime/ dependency: metrics/ sits
// at the bottom of the layering (DESIGN.md §1), so the producer lives above
// it — runtime::ThreadPool::numa_stats() fills one of these, and the
// serving introspection surface (api::Server::runtime_stats) and the
// runtime_pool bench report it. The per-node *scheduled* counts are
// assignment-time (where a task was enqueued, the Snippet-2-style test
// oracle — deterministic under round-robin placement); the *executed*
// counts are where tasks actually ran, which stealing may shift.

#include <cstdint>
#include <string>
#include <vector>

namespace atalib::metrics {

struct NumaPoolStats {
  int nodes = 1;
  bool fake_topology = false;  ///< synthesized via ATALIB_FAKE_NUMA
  std::vector<std::uint64_t> scheduled_per_node;  ///< tasks enqueued per node
  std::vector<std::uint64_t> executed_per_node;   ///< tasks executed per node
  std::uint64_t local_steals = 0;   ///< victim on the thief's own node
  std::uint64_t remote_steals = 0;  ///< victim on another node

  std::uint64_t total_scheduled() const;
  std::uint64_t total_executed() const;
  /// max − min over scheduled_per_node: round-robin placement keeps this
  /// within the granularity of one batch's remainder (≤ 1 for a single
  /// balanced batch).
  std::uint64_t scheduled_imbalance() const;
  /// local / (local + remote) in [0, 1]; 1.0 when no steal ever crossed a
  /// node boundary (including the no-steals-at-all case).
  double steal_locality() const;
  /// One-line human summary for logs and bench tables.
  std::string to_string() const;
};

}  // namespace atalib::metrics
