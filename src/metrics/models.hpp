#pragma once
// Closed-form cost models from the paper, for prediction-vs-measurement
// benches and tests.

#include "matrix/view.hpp"

namespace atalib::metrics {

/// Strassen multiplication count model T_S(n) ~ 7 n^(log2 7) (§3.2).
double strassen_cost_model(double n);

/// AtA cost model, eq. (3): T(n) ~ (2/3) T_S(n).
double ata_cost_model(double n);

/// Classical A^T A multiplication count n^2 (n + 1) (§3.2).
double classical_ata_cost(double n);

/// AtA workspace model S(n) = (3/2) n^2 (§3.3).
double ata_space_model(double n);

/// Prop. 4.1: AtA-D computation cost O((n/2^l)^2 * n/2^(l-1)) with
/// l = paper_levels_dist(P).
double dist_compute_model(double n, int p);

/// Prop. 4.2 latency bound: L(n, P) = 2 (7 (l(P) - 1) + 5) messages.
double dist_latency_model(int p);

/// Prop. 4.2 bandwidth bound:
/// BW <= 6 (n/2)^2 + n(n+2)/2 + (7/6) n^2 (1 - 1/4^(l-2)).
double dist_bandwidth_model(double n, int p);

}  // namespace atalib::metrics
