#include "metrics/flops.hpp"

#include <algorithm>

#include "blas/gemm.hpp"
#include "common/timer.hpp"
#include "matrix/generate.hpp"

namespace atalib::metrics {

double effective_gflops(double r, index_t m, index_t n, index_t k, double seconds) {
  if (seconds <= 0) return 0.0;
  return r * static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(k) /
         (seconds * 1e9);
}

double measure_peak_gflops() {
  // 256^3 double gemm: operands fit in L2, so this measures the microkernel
  // rather than memory. 2*n^3 flops per run.
  const index_t n = 256;
  auto a = random_uniform<double>(n, n, 42);
  auto b = random_uniform<double>(n, n, 43);
  auto c = Matrix<double>::zeros(n, n);
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    Timer t;
    blas::gemm_tn(1.0, a.const_view(), b.const_view(), c.view());
    best = std::max(best, 2.0 * static_cast<double>(n) * n * n / (t.seconds() * 1e9));
  }
  return best;
}

double percent_of_peak(double eff_gflops, double peak_gflops, int procs) {
  if (peak_gflops <= 0 || procs <= 0) return 0.0;
  return 100.0 * eff_gflops / (peak_gflops * procs);
}

}  // namespace atalib::metrics
