#include "metrics/numa_stats.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace atalib::metrics {

std::uint64_t NumaPoolStats::total_scheduled() const {
  return std::accumulate(scheduled_per_node.begin(), scheduled_per_node.end(),
                         std::uint64_t{0});
}

std::uint64_t NumaPoolStats::total_executed() const {
  return std::accumulate(executed_per_node.begin(), executed_per_node.end(),
                         std::uint64_t{0});
}

std::uint64_t NumaPoolStats::scheduled_imbalance() const {
  if (scheduled_per_node.empty()) return 0;
  const auto [lo, hi] =
      std::minmax_element(scheduled_per_node.begin(), scheduled_per_node.end());
  return *hi - *lo;
}

double NumaPoolStats::steal_locality() const {
  const std::uint64_t total = local_steals + remote_steals;
  if (total == 0) return 1.0;
  return static_cast<double>(local_steals) / static_cast<double>(total);
}

std::string NumaPoolStats::to_string() const {
  std::ostringstream os;
  os << "nodes=" << nodes << (fake_topology ? " (fake)" : "") << " scheduled=[";
  for (std::size_t i = 0; i < scheduled_per_node.size(); ++i) {
    if (i > 0) os << ",";
    os << scheduled_per_node[i];
  }
  os << "] executed=[";
  for (std::size_t i = 0; i < executed_per_node.size(); ++i) {
    if (i > 0) os << ",";
    os << executed_per_node[i];
  }
  os << "] steals local=" << local_steals << " remote=" << remote_steals;
  return os.str();
}

}  // namespace atalib::metrics
