#include "metrics/latency.hpp"

#include <algorithm>
#include <cmath>

namespace atalib::metrics {

std::size_t LatencyHistogram::bucket_of(std::uint64_t ns) {
  if (ns < kLinearBuckets) return static_cast<std::size_t>(ns);
  // Octave o holds values in [16<<o, 16<<(o+1)), split into kSubBuckets
  // equal slices of width (16<<o)/kSubBuckets = 2<<o.
  std::size_t octave = 0;
  std::uint64_t base = kLinearBuckets;
  while (octave + 1 < kOctaves && ns >= (base << 1)) {
    base <<= 1;
    ++octave;
  }
  const std::uint64_t width = base / kSubBuckets;
  std::uint64_t sub = (ns - base) / width;
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;  // clamp overflow octave
  return kLinearBuckets + octave * kSubBuckets + static_cast<std::size_t>(sub);
}

std::uint64_t LatencyHistogram::bucket_upper_edge(std::size_t bucket) {
  if (bucket < kLinearBuckets) return bucket;
  const std::size_t octave = (bucket - kLinearBuckets) / kSubBuckets;
  const std::size_t sub = (bucket - kLinearBuckets) % kSubBuckets;
  const std::uint64_t base = static_cast<std::uint64_t>(kLinearBuckets)
                             << octave;
  const std::uint64_t width = base / kSubBuckets;
  return base + width * (sub + 1) - 1;
}

std::uint64_t LatencyHistogram::count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t LatencyHistogram::quantile_ns(double q) const {
  std::array<std::uint64_t, kBuckets> snap;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    snap[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snap[i];
  }
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                     std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += snap[i];
    if (seen >= rank) return bucket_upper_edge(i);
  }
  return bucket_upper_edge(kBuckets - 1);
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
}

LatencyStats summarize(const LatencyHistogram& h) {
  LatencyStats s;
  s.count = h.count();
  if (s.count > 0) s.mean_ns = h.sum_ns() / s.count;
  s.p50_ns = h.quantile_ns(0.50);
  s.p99_ns = h.quantile_ns(0.99);
  s.p999_ns = h.quantile_ns(0.999);
  return s;
}

}  // namespace atalib::metrics
