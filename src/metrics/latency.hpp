#pragma once
// Lock-free latency histograms and the Server::stats() snapshot
// (DESIGN.md §10).
//
// Every served request is timed across three phases — admission-wait
// (submit entry → past the admission gate), queue-wait (admitted →
// first task of its batch starts), compute (first task start → future
// settled) — and each phase feeds a LatencyHistogram. Recording is a
// single relaxed fetch_add on a fixed-size bucket array: wait-free, no
// allocation, safe from any pool worker. Snapshots are taken with
// relaxed loads; per the same contract as PlanCacheStats, a snapshot is
// not an atomic cut across buckets, but every counter is monotonic so
// totals never decrease between consecutive reads.
//
// Buckets are log-spaced: exact 1ns-per-bucket up to 16ns, then 8
// buckets per octave. 35 octaves above the linear range cover through
// ~5 minutes in <300 buckets with <9% worst-case quantile error — plenty
// for p50/p99/p999 on a serving path whose interesting range spans
// microseconds to seconds.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace atalib::metrics {

/// A wait-free fixed-footprint histogram of nanosecond durations.
class LatencyHistogram {
 public:
  static constexpr std::size_t kLinearBuckets = 16;   // 0..15 ns, exact
  static constexpr std::size_t kSubBuckets = 8;       // per octave above
  static constexpr std::size_t kOctaves = 35;         // through ~5.7 min
  static constexpr std::size_t kBuckets =
      kLinearBuckets + kOctaves * kSubBuckets;

  /// Map a duration to its bucket. Exposed for tests; monotone in `ns`.
  static std::size_t bucket_of(std::uint64_t ns);
  /// Upper edge (inclusive) of a bucket, used as the reported quantile
  /// value. bucket_of(bucket_upper_edge(b)) == b for every b.
  static std::uint64_t bucket_upper_edge(std::size_t bucket);

  void record(std::uint64_t ns) {
    buckets_[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  std::uint64_t count() const;
  std::uint64_t sum_ns() const {
    return sum_ns_.load(std::memory_order_relaxed);
  }
  /// Value at quantile q in [0,1]: the upper edge of the first bucket
  /// whose cumulative count reaches ceil(q * total). 0 when empty.
  std::uint64_t quantile_ns(double q) const;

  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_ns_{0};
};

/// A plain-data summary of one histogram, as reported in ServerStats.
struct LatencyStats {
  std::uint64_t count = 0;
  std::uint64_t mean_ns = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t p999_ns = 0;
};

LatencyStats summarize(const LatencyHistogram& h);

/// Snapshot returned by Server::stats(). Counters are cumulative since
/// server construction and monotonic across consecutive reads;
/// queue-depth gauges are instantaneous.
struct ServerStats {
  // Admission outcomes (requests).
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;        // kReject refusals (OverloadError)
  std::uint64_t shed = 0;            // kShedOldest reclaimed expired work
  std::uint64_t deadline_expired = 0;  // settled DeadlineExceeded, never ran
  std::uint64_t completed = 0;       // settled with value or task error
  // Instantaneous gauges.
  std::uint64_t inflight_requests = 0;
  std::uint64_t queued_batches = 0;
  std::uint64_t pool_queue_depth = 0;  // tasks waiting in pool queues
  // Per-phase latency.
  LatencyStats admission_wait;
  LatencyStats queue_wait;
  LatencyStats compute;
};

}  // namespace atalib::metrics
