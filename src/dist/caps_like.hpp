#pragma once
// CAPS-like comparator: Communication-Avoiding Parallel Strassen for
// square C = X * Y (Fig. 6 "CAPS" curves; the paper runs it only on the
// square shapes).
//
// CAPS alternates BFS steps (all 7 Strassen sub-products proceed in
// parallel on 1/7 of the processes each) with DFS steps (everyone works on
// one sub-product). This comparator takes l = floor(log_7 P) BFS steps —
// the communication-minimal regime CAPS is known for — then finishes each
// sub-product locally with the blocked cubic kernel. Odd dimensions are
// zero-padded per level (never materialized wider than one level's
// operands). DistResult::levels reports l; with P = 49 that is the paper's
// two-BFS-level configuration.

#include "dist/result.hpp"

namespace atalib::dist {

/// C = X * Y for square X, Y on `procs` processes. Throws
/// std::invalid_argument unless X and Y are square with equal dimension
/// and procs >= 1.
template <typename T>
DistResult<T> caps_like_mm(const Matrix<T>& x, const Matrix<T>& y, int procs);

extern template DistResult<float> caps_like_mm<float>(const Matrix<float>&,
                                                      const Matrix<float>&, int);
extern template DistResult<double> caps_like_mm<double>(const Matrix<double>&,
                                                        const Matrix<double>&, int);

}  // namespace atalib::dist
