#include "dist/caps_like.hpp"

#include <algorithm>
#include <stdexcept>

#include "blas/gemm.hpp"
#include "common/timer.hpp"
#include "dist/block_io.hpp"
#include "dist/harness.hpp"

namespace atalib::dist {
namespace {

/// Tags are level-scoped so the seven operand/result streams of nested BFS
/// steps never alias on a (source, tag) channel.
int tag_left(int level, int i) { return 100 + 16 * level + 2 * i; }
int tag_right(int level, int i) { return 100 + 16 * level + 2 * i + 1; }
int tag_product(int level, int i) { return 1000 + 8 * level + i; }

/// h x h matrix holding quadrant (ra, ca) of the n x n view `v` plus
/// sign * quadrant (rb, cb), both zero-padded to h = ceil(n/2). rb < 0
/// selects the single-quadrant case.
template <typename T>
Matrix<T> quad_combine(ConstMatrixView<T> v, index_t h, int ra, int ca, int rb, int cb,
                       T sign) {
  const index_t n = v.rows;
  Matrix<T> out = Matrix<T>::zeros(h, h);
  auto extent = [&](int q) { return std::pair<index_t, index_t>{q * h, std::min(n, (q + 1) * h)}; };
  {
    const auto [r0, r1] = extent(ra);
    const auto [c0, c1] = extent(ca);
    for (index_t i = r0; i < r1; ++i)
      for (index_t j = c0; j < c1; ++j) out(i - r0, j - c0) = v(i, j);
  }
  if (rb >= 0) {
    const auto [r0, r1] = extent(rb);
    const auto [c0, c1] = extent(cb);
    for (index_t i = r0; i < r1; ++i)
      for (index_t j = c0; j < c1; ++j) out(i - r0, j - c0) += sign * v(i, j);
  }
  return out;
}

/// Add sign * m (h x h) into quadrant (qr, qc) of the n x n view `c`,
/// cropping the padding.
template <typename T>
void add_quadrant(MatrixView<T> c, const Matrix<T>& m, index_t h, int qr, int qc, T sign) {
  const index_t n = c.rows;
  const index_t r0 = qr * h, r1 = std::min(n, (qr + 1) * h);
  const index_t c0 = qc * h, c1 = std::min(n, (qc + 1) * h);
  for (index_t i = r0; i < r1; ++i)
    for (index_t j = c0; j < c1; ++j) c(i, j) += sign * m(i - r0, j - c0);
}

/// One group's step of the BFS recursion, executed by every rank in
/// [lo, lo + size). Only the group root (rank lo) holds x/y and returns
/// the n x n product; other ranks participate in exactly one subgroup and
/// return an empty matrix.
template <typename T>
Matrix<T> caps_step(mpisim::RankCtx& ctx, std::vector<T>& staging, int lo, int size, int level,
                    int max_level, ConstMatrixView<T> x, ConstMatrixView<T> y, index_t n) {
  const int me = ctx.rank();
  if (level == max_level || size < 7) {
    if (me != lo) return {};
    Matrix<T> c = Matrix<T>::zeros(n, n);
    blas::gemm_nn(T(1), x, y, c.view());
    return c;
  }
  const index_t h = half_up(n);
  // Subgroup i of size/7 (+1 for the first size%7) ranks computes M_{i+1}.
  int sub_lo[7], sub_size[7];
  for (int i = 0, at = lo; i < 7; ++i) {
    sub_size[i] = size / 7 + (i < size % 7 ? 1 : 0);
    sub_lo[i] = at;
    at += sub_size[i];
  }
  // The classic seven operand pairs, in the order M1..M7.
  struct Pair {
    int ra, ca, rb, cb;  // left operand quadrants (rb < 0: single)
    int sa;
    int rc, cc, rd, cd;  // right operand quadrants
    int sc;
  };
  static constexpr Pair kPairs[7] = {
      {0, 0, 1, 1, +1, 0, 0, 1, 1, +1},  // M1 = (X11+X22)(Y11+Y22)
      {1, 0, 1, 1, +1, 0, 0, -1, -1, +1},  // M2 = (X21+X22) Y11
      {0, 0, -1, -1, +1, 0, 1, 1, 1, -1},  // M3 = X11 (Y12-Y22)
      {1, 1, -1, -1, +1, 1, 0, 0, 0, -1},  // M4 = X22 (Y21-Y11)
      {0, 0, 0, 1, +1, 1, 1, -1, -1, +1},  // M5 = (X11+X12) Y22
      {1, 0, 0, 0, -1, 0, 0, 0, 1, +1},  // M6 = (X21-X11)(Y11+Y12)
      {0, 1, 1, 1, -1, 1, 0, 1, 1, +1},  // M7 = (X12-X22)(Y21+Y22)
  };

  Matrix<T> my_left, my_right;
  if (me == lo) {
    for (int i = 0; i < 7; ++i) {
      const Pair& pr = kPairs[i];
      Matrix<T> l = quad_combine(x, h, pr.ra, pr.ca, pr.rb, pr.cb, T(pr.sa));
      Matrix<T> r = quad_combine(y, h, pr.rc, pr.cc, pr.rd, pr.cd, T(pr.sc));
      if (sub_lo[i] == me) {  // subgroup 0's root is the group root itself
        my_left = std::move(l);
        my_right = std::move(r);
      } else {
        send_block(ctx, sub_lo[i], tag_left(level, i), l.const_view(), staging);
        send_block(ctx, sub_lo[i], tag_right(level, i), r.const_view(), staging);
      }
    }
  }
  int g = 0;
  while (me >= sub_lo[g] + sub_size[g]) ++g;
  if (me == sub_lo[g] && me != lo) {
    my_left = recv_matrix<T>(ctx, lo, tag_left(level, g), h, h);
    my_right = recv_matrix<T>(ctx, lo, tag_right(level, g), h, h);
  }
  Matrix<T> sub = caps_step(ctx, staging, sub_lo[g], sub_size[g], level + 1, max_level,
                            my_left.const_view(), my_right.const_view(), h);
  if (me == sub_lo[g] && me != lo) {
    send_block(ctx, lo, tag_product(level, g), sub.const_view(), staging);
  }
  if (me != lo) return {};

  Matrix<T> c = Matrix<T>::zeros(n, n);
  Matrix<T> m[7];
  m[0] = std::move(sub);
  for (int i = 1; i < 7; ++i) {
    m[i] = recv_matrix<T>(ctx, sub_lo[i], tag_product(level, i), h, h);
  }
  // C11 = M1+M4-M5+M7, C12 = M3+M5, C21 = M2+M4, C22 = M1-M2+M3+M6.
  add_quadrant(c.view(), m[0], h, 0, 0, T(1));
  add_quadrant(c.view(), m[3], h, 0, 0, T(1));
  add_quadrant(c.view(), m[4], h, 0, 0, T(-1));
  add_quadrant(c.view(), m[6], h, 0, 0, T(1));
  add_quadrant(c.view(), m[2], h, 0, 1, T(1));
  add_quadrant(c.view(), m[4], h, 0, 1, T(1));
  add_quadrant(c.view(), m[1], h, 1, 0, T(1));
  add_quadrant(c.view(), m[3], h, 1, 0, T(1));
  add_quadrant(c.view(), m[0], h, 1, 1, T(1));
  add_quadrant(c.view(), m[1], h, 1, 1, T(-1));
  add_quadrant(c.view(), m[2], h, 1, 1, T(1));
  add_quadrant(c.view(), m[5], h, 1, 1, T(1));
  return c;
}

}  // namespace

template <typename T>
DistResult<T> caps_like_mm(const Matrix<T>& x, const Matrix<T>& y, int procs) {
  if (procs < 1) throw std::invalid_argument("caps_like_mm: procs must be >= 1");
  if (x.rows() != x.cols() || y.rows() != y.cols() || x.cols() != y.rows()) {
    throw std::invalid_argument("caps_like_mm: operands must be square and conformant");
  }
  Timer wall;
  const index_t n = x.rows();
  int max_level = 0;
  for (long long cap = 7; cap <= procs; cap *= 7) ++max_level;

  DistResult<T> res;
  res.c = Matrix<T>::zeros(n, n);
  res.levels = max_level;
  res.rank_busy_seconds.assign(static_cast<std::size_t>(procs), 0.0);

  Matrix<T>* c_out = &res.c;
  run_ranks(res, procs, wall, 0, 0, [&](mpisim::RankCtx& ctx, runtime::TaskContext&) {
    std::vector<T> staging;
    Matrix<T> out = caps_step(ctx, staging, 0, procs, 0, max_level, x.const_view(),
                              y.const_view(), n);
    if (ctx.rank() == 0) *c_out = std::move(out);
  });
  return res;
}

template DistResult<float> caps_like_mm<float>(const Matrix<float>&, const Matrix<float>&,
                                               int);
template DistResult<double> caps_like_mm<double>(const Matrix<double>&, const Matrix<double>&,
                                                 int);

}  // namespace atalib::dist
