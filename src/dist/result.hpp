#pragma once
// Result envelope shared by AtA-D and the distributed comparators.
//
// Every distributed algorithm in dist/ returns the product plus the two
// quantities the paper's analysis is about: exact communication counts
// (mpisim counts every message and word, so Prop. 4.2 is checked against
// measured traffic, not inferred from timings) and the critical path (the
// busiest rank's CPU time, which is what a real cluster's wall clock
// tracks once communication overlaps compute).

#include <algorithm>
#include <vector>

#include "matrix/matrix.hpp"
#include "mpisim/stats.hpp"

namespace atalib::dist {

/// Exact per-rank communication accounting (the mpisim counters):
/// total_messages()/total_words() for volume, root_messages()/root_words()
/// for the paper's critical path through the root process.
using Traffic = mpisim::TrafficSnapshot;

template <typename T>
struct DistResult {
  Matrix<T> c;          ///< the product (lower triangle for A^T A-type)
  double seconds = 0;   ///< wall time of the whole distribute-compute-retrieve run
  Traffic traffic;      ///< exact message/word counts per rank

  /// Per-rank busy CPU seconds (CLOCK_THREAD_CPUTIME_ID: recv waits do not
  /// count). Indexed by rank; sized to the *requested* process count, with
  /// ranks the schedule could not use left at zero.
  std::vector<double> rank_busy_seconds;

  /// Largest per-leaf multiplication count in the schedule (AtA-D only).
  double max_leaf_flops = 0;

  /// Parallel levels actually built: task-tree depth for AtA-D (compare
  /// sched::paper_levels_dist), BFS Strassen levels for CAPS-like.
  int levels = 0;

  /// The busiest rank's busy time — the simulated cluster's compute-bound
  /// wall clock.
  double critical_path_seconds() const {
    double worst = 0;
    for (double s : rank_busy_seconds) worst = std::max(worst, s);
    return worst;
  }
};

}  // namespace atalib::dist
