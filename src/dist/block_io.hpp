#pragma once
// Matrix-block transport over the mpisim mailboxes.
//
// Every matrix crossing a rank boundary goes through these helpers so the
// word accounting is uniform: a rectangular block travels as rows*cols
// words in row-major order; a symmetric (A^T A-type) partial result
// travels as its packed lower triangle, n(n+1)/2 words — the §4.3.1
// optimization that produces the n(n+2)/2 term of the Prop. 4.2 bandwidth
// bound. Receivers ACCUMULATE (+=) because the AtA-D retrieval phase is a
// gather-and-sum; use a zeroed destination for plain placement.

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "matrix/matrix.hpp"
#include "matrix/packed.hpp"
#include "mpisim/communicator.hpp"
#include "sched/task.hpp"

namespace atalib::dist {

/// Flatten `v` into `staging` (resized) and send it as one message.
template <typename T>
void send_block(mpisim::RankCtx& ctx, int dest, int tag, ConstMatrixView<T> v,
                std::vector<T>& staging) {
  staging.resize(static_cast<std::size_t>(v.rows) * static_cast<std::size_t>(v.cols));
  T* out = staging.data();
  for (index_t i = 0; i < v.rows; ++i) {
    std::memcpy(out, v.data + i * v.stride, static_cast<std::size_t>(v.cols) * sizeof(T));
    out += v.cols;
  }
  ctx.send(dest, tag, staging.data(), staging.size());
}

/// Receive one rows*cols message into a fresh flat buffer (row-major,
/// stride == cols). Size-checked against the expected block geometry.
template <typename T>
std::vector<T> recv_block(mpisim::RankCtx& ctx, int source, int tag, index_t rows,
                          index_t cols) {
  std::vector<T> data = ctx.recv<T>(source, tag);
  if (data.size() != static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols)) {
    throw std::logic_error("dist protocol error: block payload size mismatch");
  }
  return data;
}

/// Receive one rows*cols message as an owning Matrix.
template <typename T>
Matrix<T> recv_matrix(mpisim::RankCtx& ctx, int source, int tag, index_t rows, index_t cols) {
  const std::vector<T> data = recv_block<T>(ctx, source, tag, rows, cols);
  Matrix<T> out(rows, cols);
  std::copy(data.begin(), data.end(), out.data());
  return out;
}

/// Receive a rows*cols block and accumulate it into `dst`.
template <typename T>
void recv_add_block(mpisim::RankCtx& ctx, int source, int tag, MatrixView<T> dst) {
  const std::vector<T> data = recv_block<T>(ctx, source, tag, dst.rows, dst.cols);
  const T* in = data.data();
  for (index_t i = 0; i < dst.rows; ++i) {
    for (index_t j = 0; j < dst.cols; ++j) dst(i, j) += in[j];
    in += dst.cols;
  }
}

/// Pack the lower triangle of square `v` into `staging` and send it.
template <typename T>
void send_packed_lower(mpisim::RankCtx& ctx, int dest, int tag, ConstMatrixView<T> v,
                       std::vector<T>& staging) {
  const index_t n = v.rows;
  staging.resize(PackedLower<T>::packed_words(n));
  std::size_t k = 0;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j <= i; ++j) staging[k++] = v(i, j);
  }
  ctx.send(dest, tag, staging.data(), staging.size());
}

/// Receive a packed lower triangle and accumulate it into lower(dst).
template <typename T>
void recv_add_packed_lower(mpisim::RankCtx& ctx, int source, int tag, MatrixView<T> dst) {
  const index_t n = dst.rows;
  const std::vector<T> data = ctx.recv<T>(source, tag);
  if (data.size() != PackedLower<T>::packed_words(n)) {
    throw std::logic_error("dist protocol error: packed payload size mismatch");
  }
  std::size_t k = 0;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j <= i; ++j) dst(i, j) += data[k++];
  }
}

/// A rank's received A blocks, keyed by their global-coordinate Block.
/// Lookups are by exact Block equality: the tree's `needs` lists guarantee
/// every block a child requires appears verbatim in its parent's store
/// (sched/dist_tree.cpp dedups but never splits). Needs lists are small
/// (a handful of blocks), so linear search beats a map.
template <typename T>
class BlockStore {
 public:
  void put(const sched::Block& b, std::vector<T> data) {
    entries_.push_back(Entry{b, std::move(data)});
  }

  ConstMatrixView<T> view(const sched::Block& b) const {
    for (const Entry& e : entries_) {
      if (e.block == b) return ConstMatrixView<T>(e.data.data(), b.rows, b.cols, b.cols);
    }
    throw std::logic_error("dist protocol error: block not in store: " +
                           sched::LeafOp{sched::LeafOp::Kind::kSyrk, b, {}, {}}.to_string());
  }

 private:
  struct Entry {
    sched::Block block;
    std::vector<T> data;
  };
  std::vector<Entry> entries_;
};

}  // namespace atalib::dist
