#pragma once
// Shared run harness for the distributed algorithms.
//
// Every dist/ entry point runs the same frame: lease the rank pool (with
// optional arena pre-warm), execute one rank body per simulated process,
// time each body's busy CPU seconds, and fill the result's traffic /
// critical-path / wall-clock fields. Keeping the frame in one place means
// a protocol or accounting change lands everywhere at once.

#include <algorithm>
#include <vector>

#include "common/timer.hpp"
#include "dist/rank_pool.hpp"
#include "dist/result.hpp"
#include "mpisim/communicator.hpp"

namespace atalib::dist {

/// Run `body(rank_ctx, task_ctx)` on `ranks` simulated processes and fill
/// `res.traffic`, `res.rank_busy_seconds` (which must be pre-sized; ranks
/// beyond `ranks` stay zero) and `res.seconds` (from `wall` — ata_dist
/// starts it before its plan-cache fetch so cold-call setup counts like
/// the baselines' in-line setup; api::execute_dist without a caller timer
/// covers the run only). Each
/// body is timed with a per-rank ThreadCpuTimer, so blocked recvs do not
/// inflate the critical path. `warm_float`/`warm_double` pre-grow every
/// pool slot's arena before the batch (0 = skip).
template <typename T, typename Body>
void run_ranks(DistResult<T>& res, int ranks, const Timer& wall, std::size_t warm_float,
               std::size_t warm_double, Body&& body) {
  RankPoolLease lease(ranks);
  if (warm_float > 0 || warm_double > 0) {
    lease.executor().warm_workspaces(warm_float, warm_double);
  }
  mpisim::Communicator comm(ranks);
  std::vector<double> busy(static_cast<std::size_t>(ranks), 0.0);
  comm.run_on(lease.executor(), [&](mpisim::RankCtx& ctx, runtime::TaskContext& tctx) {
    ThreadCpuTimer timer;
    body(ctx, tctx);
    busy[static_cast<std::size_t>(ctx.rank())] = timer.seconds();
  });
  std::copy_n(busy.begin(), std::min(busy.size(), res.rank_busy_seconds.size()),
              res.rank_busy_seconds.begin());
  res.traffic = comm.traffic();
  res.seconds = wall.seconds();
}

}  // namespace atalib::dist
