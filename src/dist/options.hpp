#pragma once
// AtA-D configuration (Algorithm 4).

#include <stdexcept>
#include <string>

#include "parallel/leaf_exec.hpp"
#include "strassen/options.hpp"

namespace atalib::dist {

struct DistOptions {
  /// The paper's P: simulated process count (one mpisim rank each).
  int procs = 1;

  /// §4.1.2 load-balance parameter: the fraction of a syrk node's
  /// processes assigned to its off-diagonal A^T B sub-tree. The paper
  /// derives 1/2 from equating per-process multiplication counts.
  double alpha = 0.5;

  /// Leaf recursion cut-offs, shared with the sequential algorithms.
  RecurseOptions recurse{};

  /// Leaf engine, shared with AtA-S (parallel/leaf_exec.hpp).
  using Engine = LeafEngine;
  Engine engine = Engine::kStrassen;
};

/// Validate up front with a clear message (same throw contract as the
/// comparators: std::invalid_argument before any thread or rank starts).
inline void validate(const DistOptions& opts) {
  if (opts.procs < 1) {
    throw std::invalid_argument("DistOptions.procs must be >= 1, got " +
                                std::to_string(opts.procs));
  }
  if (!(opts.alpha > 0.0) || !(opts.alpha < 1.0)) {
    throw std::invalid_argument("DistOptions.alpha must be in (0, 1), got " +
                                std::to_string(opts.alpha));
  }
  atalib::validate(opts.recurse, "DistOptions");
}

}  // namespace atalib::dist
