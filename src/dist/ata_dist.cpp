#include "dist/ata_dist.hpp"

#include "api/execute.hpp"
#include "api/plan_cache.hpp"
#include "common/timer.hpp"

namespace atalib::dist {

// Thin wrapper over build-or-fetch-plan + execute: the tree build, rank
// chains, and arena bound live in the cached api::AtaPlan, and the
// distribute-compute-retrieve protocol is api::execute_dist — the same
// planning path the shared-memory layer uses.
template <typename T>
DistResult<T> ata_dist(T alpha, const Matrix<T>& a, const DistOptions& opts) {
  validate(opts);
  // The stopwatch starts before the plan fetch: a cold call's tree build
  // counts toward wall time exactly like the Fig. 6 baselines' in-line
  // setup (a warm call's cache hit costs ~nothing), so cross-method
  // seconds stay apples-to-apples.
  const Timer wall;
  const auto plan = api::PlanCache::global().get_or_build(
      api::dist_plan_key(api::dtype_of<T>(), a.rows(), a.cols(), opts));
  return api::execute_dist(*plan, alpha, a, &wall);
}

template DistResult<float> ata_dist<float>(float, const Matrix<float>&, const DistOptions&);
template DistResult<double> ata_dist<double>(double, const Matrix<double>&, const DistOptions&);

}  // namespace atalib::dist
