#include "dist/ata_dist.hpp"

#include <algorithm>
#include <type_traits>

#include "common/timer.hpp"
#include "dist/block_io.hpp"
#include "dist/harness.hpp"
#include "sched/dist_tree.hpp"

namespace atalib::dist {
namespace {

/// One rank's whole distribute-compute-retrieve walk. `chain` is this
/// rank's node chain (entry -> ... -> leaf, see DistTree::rank_chains);
/// the entry's C region is accumulated in a single buffer that every chain
/// node writes through, so chain hand-offs cost no copies or messages.
template <typename T>
void rank_body(T alpha, const Matrix<T>& a, MatrixView<T> c_out, const sched::DistTree& tree,
               const std::vector<int>& chain, const DistOptions& opts, std::size_t arena_bound,
               mpisim::RankCtx& ctx, runtime::TaskContext& tctx) {
  const int r = ctx.rank();
  const sched::DistNode& entry = tree.node(chain.front());
  const bool is_root = entry.parent < 0;

  // --- Phase 1a: receive this subtree's A blocks from the parent process.
  BlockStore<T> store;
  if (!is_root) {
    const int src = tree.node(entry.parent).proc;
    for (const sched::Block& b : entry.needs) {
      store.put(b, recv_block<T>(ctx, src, chain.front(), b.rows, b.cols));
    }
  }
  // The root serves blocks straight out of A; everyone else out of the
  // store (needs lists nest upward, so every child block is present).
  auto a_view = [&](const sched::Block& b) -> ConstMatrixView<T> {
    if (is_root) return a.block(b.r0, b.c0, b.rows, b.cols);
    return store.view(b);
  };

  // --- Phase 1b: forward each off-chain child its subtree's blocks,
  // top-down (a child's child may sit on yet another process and is served
  // by that child, not by us).
  std::vector<T> staging;
  for (int id : chain) {
    for (int cid : tree.node(id).children) {
      const sched::DistNode& ch = tree.node(cid);
      if (ch.proc == r) continue;
      for (const sched::Block& b : ch.needs) send_block(ctx, ch.proc, cid, a_view(b), staging);
    }
  }

  // --- Phase 2: leaf compute. One arena serves both the entry-region
  // accumulator and the leaf kernels' Strassen scratch; the rank pool
  // pre-warmed it, so a steady-state run allocates nothing here.
  Arena<T>& arena = tctx.arena<T>(arena_bound);
  MatrixView<T> region;
  if (is_root) {
    region = c_out;  // the root's entry region is all of C
  } else {
    T* buf = arena.allocate(static_cast<std::size_t>(entry.c.size()));
    region = MatrixView<T>(buf, entry.c.rows, entry.c.cols, entry.c.cols);
    fill_view(region, T(0));
  }
  auto region_of = [&](const sched::Block& blk) {
    return region.block(blk.r0 - entry.c.r0, blk.c0 - entry.c.c0, blk.rows, blk.cols);
  };

  const sched::DistNode& leaf = tree.node(chain.back());
  for (const sched::LeafOp& op : leaf.ops) {
    ConstMatrixView<T> bv;
    if (op.kind == sched::LeafOp::Kind::kGemm) bv = a_view(op.b);
    run_leaf_kernel(alpha, a_view(op.a), bv, region_of(op.c), op.kind, arena, opts.engine,
                    opts.recurse);
  }

  // --- Phase 3: retrieval, bottom-up. Off-chain children send their
  // partial C; chain children already accumulated in place.
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    for (int cid : tree.node(*it).children) {
      const sched::DistNode& ch = tree.node(cid);
      if (ch.proc == r) continue;
      if (ch.symmetric) {
        recv_add_packed_lower(ctx, ch.proc, cid, region_of(ch.c));
      } else {
        recv_add_block(ctx, ch.proc, cid, region_of(ch.c));
      }
    }
  }
  if (!is_root) {
    const int dst = tree.node(entry.parent).proc;
    if (entry.symmetric) {
      send_packed_lower(ctx, dst, chain.front(), ConstMatrixView<T>(region), staging);
    } else {
      send_block(ctx, dst, chain.front(), ConstMatrixView<T>(region), staging);
    }
  }
}

}  // namespace

template <typename T>
DistResult<T> ata_dist(T alpha, const Matrix<T>& a, const DistOptions& opts) {
  validate(opts);
  Timer wall;
  const index_t n = a.cols();
  const sched::DistTree tree = sched::build_dist_tree(a.rows(), n, opts.procs, opts.alpha);
  const auto chains = tree.rank_chains();
  const int ranks = std::max(1, tree.used_procs);

  DistResult<T> res;
  res.c = Matrix<T>::zeros(n, n);
  res.levels = tree.depth;
  res.rank_busy_seconds.assign(static_cast<std::size_t>(opts.procs), 0.0);

  // Per-rank arena bound: the entry-region accumulator (non-root ranks)
  // plus the largest leaf-op scratch. Warm every pool slot to the maximum
  // over ranks — stealing may route any rank to any slot.
  std::size_t arena_bound = 0;
  for (int r = 0; r < ranks; ++r) {
    const sched::DistNode& entry = tree.node(chains[static_cast<std::size_t>(r)].front());
    const sched::DistNode& leaf = tree.node(chains[static_cast<std::size_t>(r)].back());
    index_t scratch = 0;
    double flops = 0;
    for (const sched::LeafOp& op : leaf.ops) {
      scratch = std::max(scratch, leaf_op_workspace<T>(op, opts.engine, opts.recurse));
      flops += op.flops();
    }
    res.max_leaf_flops = std::max(res.max_leaf_flops, flops);
    const index_t region_elems = entry.parent < 0 ? 0 : entry.c.size();
    arena_bound = std::max(arena_bound, static_cast<std::size_t>(region_elems + scratch));
  }

  const bool is_float = std::is_same_v<T, float>;
  MatrixView<T> c_view = res.c.view();
  run_ranks(res, ranks, wall, is_float ? arena_bound : 0, is_float ? 0 : arena_bound,
            [&](mpisim::RankCtx& ctx, runtime::TaskContext& tctx) {
              rank_body(alpha, a, c_view, tree, chains[static_cast<std::size_t>(ctx.rank())],
                        opts, arena_bound, ctx, tctx);
            });
  return res;
}

template DistResult<float> ata_dist<float>(float, const Matrix<float>&, const DistOptions&);
template DistResult<double> ata_dist<double>(double, const Matrix<double>&, const DistOptions&);

}  // namespace atalib::dist
