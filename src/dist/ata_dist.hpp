#pragma once
// AtA-D (Algorithm 4, §4.1): distributed lower(C) = alpha * A^T A over P
// simulated message-passing processes.
//
// Three phases, all driven by the communication-free task tree that every
// process builds identically (sched::build_dist_tree):
//   1. distribute — pre-order: each node's process sends every off-chain
//      child the A blocks its subtree needs (root process owns A);
//   2. compute — each process runs its leaf multiplication(s) through the
//      shared leaf substrate (parallel/leaf_exec.hpp) on its rank-pool
//      Workspace arena;
//   3. retrieve — post-order gather-and-sum: children send partial C
//      blocks up (symmetric partials as packed lower triangles, §4.3.1);
//      a process's own chain accumulates in place in one entry-region
//      buffer, so the root's final assembly is part of the same sweep.
// Every message and word is counted exactly (DistResult::traffic), which
// is what the Prop. 4.2 bench checks against the closed forms.

#include "dist/options.hpp"
#include "dist/result.hpp"

namespace atalib::dist {

/// Compute lower(C) = alpha * A^T A on opts.procs simulated processes.
/// A is m x n; the result's strict upper triangle is zero (never written).
/// Throws std::invalid_argument on invalid options (see validate()).
template <typename T>
DistResult<T> ata_dist(T alpha, const Matrix<T>& a, const DistOptions& opts);

extern template DistResult<float> ata_dist<float>(float, const Matrix<float>&,
                                                  const DistOptions&);
extern template DistResult<double> ata_dist<double>(double, const Matrix<double>&,
                                                    const DistOptions&);

}  // namespace atalib::dist
