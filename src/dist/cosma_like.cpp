#include "dist/cosma_like.hpp"

#include <algorithm>
#include <stdexcept>

#include "blas/gemm.hpp"
#include "common/timer.hpp"
#include "dist/block_io.hpp"
#include "dist/harness.hpp"

namespace atalib::dist {
namespace {

constexpr int kTagA = 1;
constexpr int kTagB = 2;
constexpr int kTagC = 3;

}  // namespace

CosmaGrid cosma_pick_grid(index_t m, index_t n, index_t k, int procs) {
  (void)m;  // volume = m * (pc*n + pr*k); m scales every candidate equally
  CosmaGrid best;
  double best_cost = -1;
  for (int pr = 1; pr <= procs; ++pr) {
    if (procs % pr != 0) continue;
    const int pc = procs / pr;
    // Replicated words per process row/column group: every process in a
    // grid column needs the same A panel (pc copies of each), every
    // process in a grid row the same B panel (pr copies).
    const double cost = static_cast<double>(pc) * static_cast<double>(n) +
                        static_cast<double>(pr) * static_cast<double>(k);
    if (best_cost < 0 || cost < best_cost) {
      best_cost = cost;
      best = CosmaGrid{pr, pc};
    }
  }
  return best;
}

template <typename T>
DistResult<T> cosma_like_gemm(T alpha, const Matrix<T>& a, const Matrix<T>& b, int procs) {
  if (procs < 1) throw std::invalid_argument("cosma_like_gemm: procs must be >= 1");
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("cosma_like_gemm: A and B must share their row count");
  }
  Timer wall;
  const index_t m = a.rows(), n = a.cols(), k = b.cols();
  const CosmaGrid grid = cosma_pick_grid(m, n, k, procs);
  const int p = grid.pr * grid.pc;

  DistResult<T> res;
  res.c = Matrix<T>::zeros(n, k);
  res.rank_busy_seconds.assign(static_cast<std::size_t>(procs), 0.0);

  auto rows_of = [&](int i) {
    return std::pair<index_t, index_t>{n * i / grid.pr, n * (i + 1) / grid.pr};
  };
  auto cols_of = [&](int j) {
    return std::pair<index_t, index_t>{k * j / grid.pc, k * (j + 1) / grid.pc};
  };

  MatrixView<T> c_view = res.c.view();
  run_ranks(res, p, wall, 0, 0, [&](mpisim::RankCtx& ctx, runtime::TaskContext&) {
    const int r = ctx.rank();
    const int i = r / grid.pc, j = r % grid.pc;
    const auto [n0, n1] = rows_of(i);
    const auto [k0, k1] = cols_of(j);
    std::vector<T> staging;
    if (r == 0) {
      for (int q = 1; q < p; ++q) {
        const auto [qn0, qn1] = rows_of(q / grid.pc);
        const auto [qk0, qk1] = cols_of(q % grid.pc);
        send_block(ctx, q, kTagA, a.block(0, qn0, m, qn1 - qn0), staging);
        send_block(ctx, q, kTagB, b.block(0, qk0, m, qk1 - qk0), staging);
      }
      blas::gemm_tn(alpha, a.block(0, n0, m, n1 - n0), b.block(0, k0, m, k1 - k0),
                    c_view.block(n0, k0, n1 - n0, k1 - k0));
      // C tiles are disjoint, so accumulate-into-zeros is plain placement.
      for (int q = 1; q < p; ++q) {
        const auto [qn0, qn1] = rows_of(q / grid.pc);
        const auto [qk0, qk1] = cols_of(q % grid.pc);
        recv_add_block(ctx, q, kTagC, c_view.block(qn0, qk0, qn1 - qn0, qk1 - qk0));
      }
    } else {
      const std::vector<T> pa = recv_block<T>(ctx, 0, kTagA, m, n1 - n0);
      const std::vector<T> pb = recv_block<T>(ctx, 0, kTagB, m, k1 - k0);
      Matrix<T> local = Matrix<T>::zeros(n1 - n0, k1 - k0);
      if (n1 > n0 && k1 > k0) {
        blas::gemm_tn(alpha, ConstMatrixView<T>(pa.data(), m, n1 - n0, n1 - n0),
                      ConstMatrixView<T>(pb.data(), m, k1 - k0, k1 - k0), local.view());
      }
      send_block(ctx, 0, kTagC, local.const_view(), staging);
    }
  });
  return res;
}

template DistResult<float> cosma_like_gemm<float>(float, const Matrix<float>&,
                                                  const Matrix<float>&, int);
template DistResult<double> cosma_like_gemm<double>(double, const Matrix<double>&,
                                                    const Matrix<double>&, int);

}  // namespace atalib::dist
