#pragma once
// The process-wide rank pool: the runtime::Executor that mpisim rank
// bodies run on.
//
// Ranks block on recv, so a batch of R rank bodies needs R truly
// concurrent slots — more than the hardware-sized default executor offers
// for large P. The rank pool is a dedicated persistent ThreadPool grown to
// the largest rank count ever requested: repeated distributed runs reuse
// parked workers (no thread creation) and their per-slot Workspace arenas
// (no leaf-compute mallocs once warm), exactly like the shared-memory
// layer. See the blocking-batch invariant note in runtime/thread_pool.hpp.

#include <mutex>

#include "common/thread_annotations.hpp"
#include "runtime/executor.hpp"

namespace atalib::dist {

/// Exclusive lease on the rank pool, sized to at least `ranks` slots.
/// Distributed runs hold one for their whole communicator batch: slot
/// workspaces are rank-exclusive only while a single run is in flight, so
/// concurrent distributed calls from independent threads serialize here
/// (the same discipline as ForkJoinExecutor's run mutex).
class RankPoolLease {
 public:
  explicit RankPoolLease(int ranks);

  RankPoolLease(const RankPoolLease&) = delete;
  RankPoolLease& operator=(const RankPoolLease&) = delete;

  /// Executor with >= `ranks` slots, valid while the lease is held.
  runtime::Executor& executor();

 private:
  /// Holds the rank-pool mutex (an annotated atalib::Mutex) for the lease's
  /// lifetime; see rank_pool.cpp for the analysis-escape rationale.
  std::unique_lock<Mutex> lock_;
};

}  // namespace atalib::dist
