#pragma once
// COSMA-like comparator: communication-optimal A^T B on a process grid
// chosen by a volume model (Fig. 6 "COSMA" curves).
//
// COSMA's core idea is to derive the process decomposition from the
// communication-volume optimum rather than a fixed square grid. The
// comparator keeps that decision structure in miniature: cosma_pick_grid
// minimizes the modeled replication volume m(pc*n + pr*k) over all pr*pc
// factorizations, so tall-skinny products split the long dimension (the
// case COSMA wins on) while square products get the square grid; each
// process then owns one C tile and computes it with the blocked cubic
// kernel from a full-height A column panel and B column panel.

#include "dist/result.hpp"

namespace atalib::dist {

/// A pr x pc process grid: pr groups over C's rows (A^T B's n dimension),
/// pc groups over C's columns (the k dimension). pr * pc == procs.
struct CosmaGrid {
  int pr = 1;
  int pc = 1;
};

/// Pick the grid minimizing the modeled communication volume for the
/// m x n (A) by m x k (B) product on `procs` processes.
CosmaGrid cosma_pick_grid(index_t m, index_t n, index_t k, int procs);

/// C = alpha * A^T B (A m x n, B m x k, C n x k) on `procs` processes.
/// Throws std::invalid_argument if procs < 1 or the row counts differ.
template <typename T>
DistResult<T> cosma_like_gemm(T alpha, const Matrix<T>& a, const Matrix<T>& b, int procs);

extern template DistResult<float> cosma_like_gemm<float>(float, const Matrix<float>&,
                                                         const Matrix<float>&, int);
extern template DistResult<double> cosma_like_gemm<double>(double, const Matrix<double>&,
                                                           const Matrix<double>&, int);

}  // namespace atalib::dist
