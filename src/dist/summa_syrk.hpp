#pragma once
// pdsyrk-like comparator: the classical distributed A^T A the paper
// benchmarks AtA-D against (Fig. 6 "pdsyrk" curves).
//
// ScaLAPACK's pdsyrk pipelines rank-k panel updates over a process grid;
// on a simulated cluster the equivalent communication/compute structure is
// the 1-D row-panel reduce formulation implemented here: the root scatters
// P row panels of A, every process computes its full lower-triangular
// contribution A_p^T A_p with the blocked cubic kernel, and the root
// reduces the P packed lower triangles. Communication is O(mn + P n^2/2)
// words with no Strassen savings — exactly the baseline trade-off AtA-D
// is designed to beat.

#include "dist/result.hpp"

namespace atalib::dist {

/// lower(C) = alpha * A^T A over `procs` simulated processes (clamped to
/// the row count — a panel needs at least one row). Throws
/// std::invalid_argument if procs < 1.
template <typename T>
DistResult<T> summa_syrk(T alpha, const Matrix<T>& a, int procs);

extern template DistResult<float> summa_syrk<float>(float, const Matrix<float>&, int);
extern template DistResult<double> summa_syrk<double>(double, const Matrix<double>&, int);

}  // namespace atalib::dist
