#include "dist/summa_syrk.hpp"

#include <algorithm>
#include <stdexcept>

#include "blas/syrk.hpp"
#include "common/timer.hpp"
#include "dist/block_io.hpp"
#include "dist/harness.hpp"

namespace atalib::dist {
namespace {

constexpr int kTagPanel = 1;
constexpr int kTagReduce = 2;

}  // namespace

template <typename T>
DistResult<T> summa_syrk(T alpha, const Matrix<T>& a, int procs) {
  if (procs < 1) throw std::invalid_argument("summa_syrk: procs must be >= 1");
  Timer wall;
  const index_t m = a.rows(), n = a.cols();
  const int p = static_cast<int>(std::clamp<index_t>(procs, 1, std::max<index_t>(m, 1)));

  DistResult<T> res;
  res.c = Matrix<T>::zeros(n, n);
  res.rank_busy_seconds.assign(static_cast<std::size_t>(procs), 0.0);

  MatrixView<T> c_view = res.c.view();
  run_ranks(res, p, wall, 0, 0, [&](mpisim::RankCtx& ctx, runtime::TaskContext&) {
    const int r = ctx.rank();
    auto panel_rows = [&](int q) {
      return std::pair<index_t, index_t>{m * q / p, m * (q + 1) / p};
    };
    std::vector<T> staging;
    if (r == 0) {
      for (int q = 1; q < p; ++q) {
        const auto [r0, r1] = panel_rows(q);
        send_block(ctx, q, kTagPanel, a.block(r0, 0, r1 - r0, n), staging);
      }
      // Root's own contribution goes straight into C, then the reduce.
      const auto [r0, r1] = panel_rows(0);
      blas::syrk_ln(alpha, a.block(r0, 0, r1 - r0, n), c_view);
      for (int q = 1; q < p; ++q) recv_add_packed_lower(ctx, q, kTagReduce, c_view);
    } else {
      const auto [r0, r1] = panel_rows(r);
      const std::vector<T> panel = recv_block<T>(ctx, 0, kTagPanel, r1 - r0, n);
      Matrix<T> local = Matrix<T>::zeros(n, n);
      blas::syrk_ln(alpha, ConstMatrixView<T>(panel.data(), r1 - r0, n, n), local.view());
      send_packed_lower(ctx, 0, kTagReduce, local.const_view(), staging);
    }
  });
  return res;
}

template DistResult<float> summa_syrk<float>(float, const Matrix<float>&, int);
template DistResult<double> summa_syrk<double>(double, const Matrix<double>&, int);

}  // namespace atalib::dist
