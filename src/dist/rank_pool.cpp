#include "dist/rank_pool.hpp"

#include <memory>
#include <stdexcept>

#include "runtime/thread_pool.hpp"

namespace atalib::dist {
namespace {

std::mutex& pool_mu() {
  static std::mutex mu;
  return mu;
}

/// The pool itself, created lazily and regrown (recreated) when a larger
/// rank count arrives. Guarded by pool_mu(): recreation must not race a
/// batch, which is why the lease holds the mutex for its whole lifetime.
std::unique_ptr<runtime::ThreadPool>& pool_slot() {
  static std::unique_ptr<runtime::ThreadPool> pool;
  return pool;
}

}  // namespace

RankPoolLease::RankPoolLease(int ranks) {
  if (ranks < 1) throw std::invalid_argument("RankPoolLease needs >= 1 rank");
  // Refuse nested acquisition BEFORE touching the mutex: a distributed
  // entry point called from inside an executor task (including another
  // run's rank body, which holds this very lease) would self-deadlock on
  // pool_mu, and even if it didn't, a nested batch executes inline-serial.
  if (runtime::ThreadPool::current_thread_in_task()) {
    throw std::logic_error(
        "distributed entry points cannot run inside an executor task (the "
        "rank-pool lease is held by the enclosing run, and a nested batch "
        "would execute inline-serial)");
  }
  lock_ = std::unique_lock<std::mutex>(pool_mu());
  auto& pool = pool_slot();
  if (!pool || pool->concurrency() < ranks) {
    pool.reset();  // join the old workers before spawning the wider pool
    pool = std::make_unique<runtime::ThreadPool>(ranks);
  }
}

runtime::Executor& RankPoolLease::executor() { return *pool_slot(); }

}  // namespace atalib::dist
