#include "dist/rank_pool.hpp"

#include <memory>
#include <stdexcept>

#include "common/thread_annotations.hpp"
#include "runtime/thread_pool.hpp"

namespace atalib::dist {
namespace {

/// Guards the pool slot below. Held for a lease's whole lifetime: recreation
/// must not race a batch, and slot workspaces are rank-exclusive only while
/// a single run is in flight.
Mutex g_pool_mu;

/// The pool itself, created lazily and regrown (recreated) when a larger
/// rank count arrives. Function-local static for init-order safety; callers
/// must hold g_pool_mu (a constexpr-constructible namespace static, so it
/// is valid before and after the pool's own lifetime).
std::unique_ptr<runtime::ThreadPool>& pool_slot() ATALIB_REQUIRES(g_pool_mu) {
  static std::unique_ptr<runtime::ThreadPool> pool;
  return pool;
}

}  // namespace

// The lease holds g_pool_mu from constructor to destructor — an object
// lifetime, not a lexical scope, which the clang analysis cannot model
// (DESIGN.md §9); hence the no-analysis escapes with the discipline stated
// here: ctor acquires, executor() requires, the std::unique_lock member
// releases on destruction.
RankPoolLease::RankPoolLease(int ranks) ATALIB_NO_THREAD_SAFETY_ANALYSIS {
  if (ranks < 1) throw std::invalid_argument("RankPoolLease needs >= 1 rank");
  // Refuse nested acquisition BEFORE touching the mutex: a distributed
  // entry point called from inside an executor task (including another
  // run's rank body, which holds this very lease) would self-deadlock on
  // g_pool_mu, and even if it didn't, a nested batch executes inline-serial.
  if (runtime::ThreadPool::current_thread_in_task()) {
    throw std::logic_error(
        "distributed entry points cannot run inside an executor task (the "
        "rank-pool lease is held by the enclosing run, and a nested batch "
        "would execute inline-serial)");
  }
  lock_ = std::unique_lock<Mutex>(g_pool_mu);
  auto& pool = pool_slot();
  if (!pool || pool->concurrency() < ranks) {
    pool.reset();  // join the old workers before spawning the wider pool
    pool = std::make_unique<runtime::ThreadPool>(ranks);
  }
}

runtime::Executor& RankPoolLease::executor() ATALIB_NO_THREAD_SAFETY_ANALYSIS {
  // Valid by construction: the lease's lock_ holds g_pool_mu.
  return *pool_slot();
}

}  // namespace atalib::dist
