#pragma once
// Serving-layer error taxonomy (DESIGN.md §10).
//
// The overload-control contract is that every admitted request's future is
// settled with exactly one of: a value, the task's own exception, or one of
// the typed errors below — and that a request REJECTED at the admission
// gate throws before any promise exists, so the client can tell "the
// server refused to take this" (retry elsewhere / back off) apart from
// "the server took it and it failed" (the work is gone). All three derive
// from std::runtime_error so existing catch-alls keep working.

#include <stdexcept>
#include <string>

namespace atalib::api {

/// Thrown synchronously by submit()/submit_batch() when the admission gate
/// is full under AdmissionPolicy::kReject (or when the request can never
/// fit: more requests than max_inflight_requests, or a zero-capacity
/// queue). Thrown before any promise, plan lookup, or task exists — the
/// reject path is exception-clean and allocation-free.
class OverloadError : public std::runtime_error {
 public:
  explicit OverloadError(const std::string& what) : std::runtime_error(what) {}
};

/// Settled onto a request's future when its deadline passed before its
/// tasks executed (at submit time, in the queue, or when a shed-oldest
/// admission reclaimed it). The request's leaf GEMMs never ran; its output
/// buffer is untouched by any task that observed the expiry.
class DeadlineExceeded : public std::runtime_error {
 public:
  explicit DeadlineExceeded(const std::string& what) : std::runtime_error(what) {}
};

/// Settled onto every in-flight future by Server::~Server, and thrown by
/// submissions that race destruction: teardown under load is a defined
/// path, never a hang or an abandoned promise.
class ServerShutdown : public std::runtime_error {
 public:
  explicit ServerShutdown(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace atalib::api
