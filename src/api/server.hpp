#pragma once
// Concurrent serving front-end: the cached-plan request path, hardened for
// overload (DESIGN.md §10).
//
// A Server owns a sharded plan cache and a multi-batch ThreadPool. submit()
// admits one lower(C) += alpha * A^T A request: pass the admission gate,
// build-or-fetch the plan, warm the pool to the plan's workspace bound, and
// enqueue the plan's tasks as one pool batch — then return a future. On the
// *warm* path (shape seen before, workspace bound at or below the pool's
// warmed mark) submit never blocks on compute: the plan is a cache hit, the
// warm check is two atomic loads, and the batch is queued without waiting.
// A *cold* request pays its setup in line: planning once per shape, and —
// when its workspace bound exceeds the warmed mark — a pool quiescence wait
// while every slot grows. Multiple client threads submit concurrently and
// their batches overlap on the pool's workers.
//
// Overload control. Admission is bounded: at most max_inflight_requests
// requests and max_queued_batches batches are in flight at once, and the
// gate is consulted BEFORE any promise, plan lookup, or workspace exists.
// When full, the AdmissionPolicy decides: kBlock waits for capacity,
// kReject throws OverloadError synchronously, kShedOldest reclaims the
// oldest deadline-expired admitted work (settling it with DeadlineExceeded)
// and rejects only if nothing is sheddable. Every admitted request carries
// an effective deadline (min of SharedOptions::deadline and the per-request
// AtaRequest::deadline) checked again before its tasks compute, and a
// priority that orders queued batches at the pool's pop/steal points.
// Every admitted request's future is settled exactly once — with a value,
// the task's own error, DeadlineExceeded, or ServerShutdown — including
// across Server destruction under load.
//
// The warm serving path still performs zero schedule builds and zero
// workspace slab allocations per request — the compile-once/execute-many
// amortization the ROADMAP's repeated-traffic north star asks for; the
// admission gate adds one mutex acquisition to it.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <span>
#include <vector>

#include "api/batch.hpp"
#include "api/errors.hpp"
#include "api/plan_cache.hpp"
#include "common/fault.hpp"
#include "metrics/latency.hpp"
#include "runtime/thread_pool.hpp"

namespace atalib::api {

/// What the admission gate does with a request that finds the server full.
enum class AdmissionPolicy {
  /// Wait for in-flight work to settle (the default; matches the historic
  /// unbounded behavior when the limits are kUnlimited).
  kBlock,
  /// Throw OverloadError synchronously — before any promise exists.
  kReject,
  /// Settle the oldest admitted requests whose deadlines already expired
  /// with DeadlineExceeded to free capacity; reject if nothing is
  /// sheddable. Never sheds unexpired work.
  kShedOldest,
};

namespace detail {

/// Per-request settle state shared by the task path, the deadline check,
/// the shed scan, and the destructor sweep. Whoever wins the `settled` CAS
/// owns the promise and must release the request's admission slot.
struct RequestTicket {
  std::promise<void> promise;
  std::atomic<bool> settled{false};
  /// Set after an early settle (shed / deadline / shutdown): tasks that
  /// observe it skip their compute entirely.
  std::atomic<bool> cancelled{false};
  std::chrono::steady_clock::time_point deadline = kNoDeadline;
  std::chrono::steady_clock::time_point admitted_at{};
  /// steady_clock nanos when the request's first task began computing;
  /// -1 until then. Claimed by CAS so queue-wait is recorded once.
  std::atomic<std::int64_t> started_ns{-1};
};

}  // namespace detail

class Server {
 public:
  /// "No limit" for the admission bounds below. Distinct from 0, which is
  /// a genuine zero-capacity gate (every submit is refused).
  static constexpr std::size_t kUnlimited = ~static_cast<std::size_t>(0);

  struct Options {
    /// Pool slots (0 = hardware concurrency). Workers = threads - 1; the
    /// warm serving path never blocks a client thread on compute.
    int threads = 0;
    /// LRU capacity of the plan cache (plans, not bytes).
    std::size_t plan_capacity = PlanCache::kDefaultCapacity;
    /// Independent LRU+mutex shards of the plan cache (clamped to
    /// [1, plan_capacity]); see PlanCache.
    std::size_t plan_shards = PlanCache::kDefaultShards;
    /// Admission bound on requests admitted but not yet settled.
    std::size_t max_inflight_requests = kUnlimited;
    /// Admission bound on batches admitted but not yet retired (a submit()
    /// is a batch of one). 0 refuses every submission.
    std::size_t max_queued_batches = kUnlimited;
    /// What to do when either bound is hit.
    AdmissionPolicy admission = AdmissionPolicy::kBlock;
  };

  Server() : Server(Options{}) {}
  explicit Server(const Options& opts);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Teardown under load is a defined path: every future still in flight
  /// is settled with ServerShutdown (its tasks become no-ops), concurrent
  /// blocked/new submissions throw ServerShutdown, and the destructor
  /// waits for every admitted batch to retire before the pool joins — so
  /// no task can touch server state, or a client's a/c buffers, after
  /// ~Server returns. Requests whose compute already began still finish
  /// that compute (a GEMM is never interrupted mid-write) but settle with
  /// ServerShutdown regardless.
  ~Server();

  /// Admit one request. `a` and `c` must stay valid until the returned
  /// future is ready, and `c` must not alias any other in-flight request's
  /// output. `opts.executor` is ignored (the server's pool executes);
  /// `opts.threads`/`oversub`/`engine`/`recurse` select the plan;
  /// `opts.priority`/`opts.deadline` are this request's QoS. Warm requests
  /// return without blocking; cold ones pay planning and workspace growth
  /// in line (see the class comment). Throws std::invalid_argument on bad
  /// options or shape mismatches, OverloadError per the admission policy,
  /// and ServerShutdown when racing destruction — all before anything is
  /// enqueued; a task failure, DeadlineExceeded, or ServerShutdown during
  /// teardown surfaces on the future.
  template <typename T>
  std::future<void> submit(T alpha, ConstMatrixView<T> a, MatrixView<T> c,
                           SharedOptions opts);

  /// submit() with defaults: plan width = the pool's concurrency,
  /// oversub 2 so stealing can rebalance uneven tasks.
  template <typename T>
  std::future<void> submit(T alpha, ConstMatrixView<T> a, MatrixView<T> c);

  /// Admit many requests as ONE fused executor batch (the small-Gram
  /// throughput path, DESIGN.md §8): one admission-gate pass for the whole
  /// batch, group by shape through the plan cache (one lookup per distinct
  /// shape), warm the pool once to the batch-wide workspace bound, and
  /// enqueue every request's tasks as a single queued pool batch with NUMA
  /// round-robin hints — per-worker pack buffers and arenas are shared
  /// across the whole batch, so the warm path performs zero schedule
  /// builds and zero slab allocations regardless of batch size. The
  /// batch's pool priority is the max request (and opts) priority, and
  /// higher-priority requests' tasks are ordered first within it. Returns
  /// one future per request, in request order; a task failure surfaces on
  /// its own request's future only, and an expired request settles with
  /// DeadlineExceeded without computing. Validation is all-or-nothing: any
  /// bad request throws std::invalid_argument before anything is enqueued
  /// (the batch's admission is rolled back). Buffer-lifetime rules match
  /// submit(), per request. Requests of one batch share `opts` (and a
  /// scalar type); opts.executor is ignored.
  template <typename T>
  std::vector<std::future<void>> submit_batch(std::span<const AtaRequest<T>> requests,
                                              SharedOptions opts);

  /// submit_batch() with the batched-serving default plan shape: width 1,
  /// oversub 1 — each small request is one serial task, and parallelism
  /// comes from the *batch* spreading requests over the pool, not from
  /// splitting any single small Gram into stripes.
  template <typename T>
  std::vector<std::future<void>> submit_batch(std::span<const AtaRequest<T>> requests);

  PlanCacheStats plan_stats() const { return cache_.stats(); }
  /// Topology + steal-locality snapshot of the serving pool: per-node
  /// scheduled/executed task counts and local/remote steal totals
  /// (metrics/numa_stats.hpp). Pairs with plan_stats()/stats() as the
  /// introspection surface a deployment scrapes.
  metrics::NumaPoolStats runtime_stats() const { return pool_.numa_stats(); }
  /// Overload-control snapshot: admission outcome counters (monotonic),
  /// in-flight gauges, and per-phase latency quantiles (admission-wait,
  /// queue-wait, compute). Lock-free except the two gauges.
  metrics::ServerStats stats() const;
  PlanCache& plans() { return cache_; }
  runtime::ThreadPool& executor() { return pool_; }

 private:
  using Ticket = detail::RequestTicket;
  using Clock = std::chrono::steady_clock;

  /// Pass the admission gate for a batch of `nreq` requests; returns the
  /// admission timestamp. Throws OverloadError/ServerShutdown per policy.
  /// Re-entrant submissions (from inside a pool task, which execute
  /// inline) bypass the bounds — blocking there would deadlock the worker.
  Clock::time_point admit(std::size_t nreq);
  /// Roll back an admit() whose batch failed validation/planning.
  void unadmit(std::size_t nreq);
  /// Settle every ledger ticket whose deadline has passed with
  /// DeadlineExceeded; returns how many were shed.
  std::size_t shed_expired(Clock::time_point now) ATALIB_REQUIRES(gate_mu_);
  /// Win the settle CAS or return false. The winner's slot release +
  /// ledger trim happens here too (under gate_mu_).
  bool claim_and_release(Ticket& t);
  /// Called by the last task of a batch: the final server-state touch of
  /// any admitted batch — ~Server waits for queued_batches_ == 0, so the
  /// server outlives every task-side access.
  void on_batch_retired();

  PlanCache cache_;

  // Admission configuration (immutable after construction).
  std::size_t max_inflight_;
  std::size_t max_batches_;
  AdmissionPolicy policy_;
  /// Parsed ATALIB_FAULTS plan (null unless the build enables injection
  /// and the variable is set). Shared with batch states so hooks keep
  /// working while the server tears down.
  std::shared_ptr<const fault::Plan> faults_;

  // Monotonic outcome counters (relaxed; see metrics::ServerStats).
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
  std::atomic<std::uint64_t> completed_{0};

  // Per-phase latency (lock-free).
  metrics::LatencyHistogram admission_wait_;
  metrics::LatencyHistogram queue_wait_;
  metrics::LatencyHistogram compute_;

  /// The admission gate. Guards the two in-flight gauges, the shutdown
  /// flag, and the ledger of admitted-unsettled tickets (oldest first) the
  /// shed scan and destructor sweep walk. Settled tickets are trimmed from
  /// the front lazily on every release.
  mutable Mutex gate_mu_;
  std::condition_variable_any gate_cv_;
  std::size_t inflight_requests_ ATALIB_GUARDED_BY(gate_mu_) = 0;
  std::size_t queued_batches_ ATALIB_GUARDED_BY(gate_mu_) = 0;
  /// kBlock admitters currently inside gate_cv_.wait; ~Server waits for
  /// them to drain so no thread still waits on the cv when it destructs.
  std::size_t gate_waiters_ ATALIB_GUARDED_BY(gate_mu_) = 0;
  bool shutting_down_ ATALIB_GUARDED_BY(gate_mu_) = false;
  std::deque<std::shared_ptr<Ticket>> ledger_ ATALIB_GUARDED_BY(gate_mu_);

  /// Declared last so it destructs FIRST: ~ThreadPool joins the workers,
  /// and that join is what guarantees no worker is still inside a mutex
  /// unlock or histogram record when the members above destruct.
  runtime::ThreadPool pool_;
};

#define ATALIB_API_SERVER_EXTERN(T)                                                    \
  extern template std::future<void> Server::submit<T>(T, ConstMatrixView<T>,           \
                                                      MatrixView<T>, SharedOptions);   \
  extern template std::future<void> Server::submit<T>(T, ConstMatrixView<T>,           \
                                                      MatrixView<T>);                  \
  extern template std::vector<std::future<void>> Server::submit_batch<T>(              \
      std::span<const AtaRequest<T>>, SharedOptions);                                  \
  extern template std::vector<std::future<void>> Server::submit_batch<T>(              \
      std::span<const AtaRequest<T>>)
ATALIB_API_SERVER_EXTERN(float);
ATALIB_API_SERVER_EXTERN(double);
#undef ATALIB_API_SERVER_EXTERN

}  // namespace atalib::api
