#pragma once
// Concurrent serving front-end: the cached-plan request path.
//
// A Server owns a plan cache and a multi-batch ThreadPool. submit() admits
// one lower(C) += alpha * A^T A request: build-or-fetch the plan, warm the
// pool to the plan's workspace bound, and enqueue the plan's tasks as one
// pool batch — then return a future. On the *warm* path (shape seen
// before, workspace bound at or below the pool's warmed mark) submit never
// blocks on compute: the plan is a cache hit, the warm check is two atomic
// loads, and the batch is queued without waiting. A *cold* request pays
// its setup in line: planning once per shape, and — when its workspace
// bound exceeds the warmed mark — a pool quiescence wait while every slot
// grows (admissions briefly queue behind that growth; see
// ThreadPool::warm_workspaces). Multiple client threads submit
// concurrently and their batches overlap on the pool's workers; the
// per-slot workspace discipline holds because every task re-requests its
// arena at body start.
//
// The warm serving path therefore performs zero schedule builds and zero
// workspace slab allocations per request — the compile-once/execute-many
// amortization the ROADMAP's repeated-traffic north star asks for.

#include <future>
#include <span>
#include <vector>

#include "api/batch.hpp"
#include "api/plan_cache.hpp"
#include "runtime/thread_pool.hpp"

namespace atalib::api {

class Server {
 public:
  struct Options {
    /// Pool slots (0 = hardware concurrency). Workers = threads - 1; the
    /// warm serving path never blocks a client thread on compute.
    int threads = 0;
    /// LRU capacity of the plan cache (plans, not bytes).
    std::size_t plan_capacity = PlanCache::kDefaultCapacity;
  };

  Server() : Server(Options{}) {}
  explicit Server(const Options& opts);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Destruction requires every submitted future to be ready (clients own
  /// the a/c buffers, so an abandoned in-flight request would also be a
  /// use-after-free on their side).
  ~Server() = default;

  /// Admit one request. `a` and `c` must stay valid until the returned
  /// future is ready, and `c` must not alias any other in-flight request's
  /// output. `opts.executor` is ignored (the server's pool executes);
  /// `opts.threads`/`oversub`/`engine`/`recurse` select the plan. Warm
  /// requests return without blocking; cold ones pay planning and
  /// workspace growth in line (see the class comment). Throws
  /// std::invalid_argument on bad options or shape mismatches before
  /// anything is enqueued; a task failure surfaces on the future.
  template <typename T>
  std::future<void> submit(T alpha, ConstMatrixView<T> a, MatrixView<T> c,
                           SharedOptions opts);

  /// submit() with defaults: plan width = the pool's concurrency,
  /// oversub 2 so stealing can rebalance uneven tasks.
  template <typename T>
  std::future<void> submit(T alpha, ConstMatrixView<T> a, MatrixView<T> c);

  /// Admit many requests as ONE fused executor batch (the small-Gram
  /// throughput path, DESIGN.md §8): group by shape through the plan cache
  /// (one lookup per distinct shape), warm the pool once to the batch-wide
  /// workspace bound, and enqueue every request's tasks as a single queued
  /// pool batch with NUMA round-robin hints — per-worker pack buffers and
  /// arenas are shared across the whole batch, so the warm path performs
  /// zero schedule builds and zero slab allocations regardless of batch
  /// size. Returns one future per request, in order; a task failure
  /// surfaces on its own request's future only. Validation is
  /// all-or-nothing: any bad request throws std::invalid_argument before
  /// anything is enqueued. Buffer-lifetime rules match submit(), per
  /// request. Requests of one batch share `opts` (and a scalar type);
  /// opts.executor is ignored.
  template <typename T>
  std::vector<std::future<void>> submit_batch(std::span<const AtaRequest<T>> requests,
                                              SharedOptions opts);

  /// submit_batch() with the batched-serving default plan shape: width 1,
  /// oversub 1 — each small request is one serial task, and parallelism
  /// comes from the *batch* spreading requests over the pool, not from
  /// splitting any single small Gram into stripes.
  template <typename T>
  std::vector<std::future<void>> submit_batch(std::span<const AtaRequest<T>> requests);

  PlanCacheStats plan_stats() const { return cache_.stats(); }
  /// Topology + steal-locality snapshot of the serving pool: per-node
  /// scheduled/executed task counts and local/remote steal totals
  /// (metrics/numa_stats.hpp). Pairs with plan_stats() as the
  /// introspection surface a deployment scrapes.
  metrics::NumaPoolStats runtime_stats() const { return pool_.numa_stats(); }
  PlanCache& plans() { return cache_; }
  runtime::ThreadPool& executor() { return pool_; }

 private:
  PlanCache cache_;
  runtime::ThreadPool pool_;
};

#define ATALIB_API_SERVER_EXTERN(T)                                                    \
  extern template std::future<void> Server::submit<T>(T, ConstMatrixView<T>,           \
                                                      MatrixView<T>, SharedOptions);   \
  extern template std::future<void> Server::submit<T>(T, ConstMatrixView<T>,           \
                                                      MatrixView<T>);                  \
  extern template std::vector<std::future<void>> Server::submit_batch<T>(              \
      std::span<const AtaRequest<T>>, SharedOptions);                                  \
  extern template std::vector<std::future<void>> Server::submit_batch<T>(              \
      std::span<const AtaRequest<T>>)
ATALIB_API_SERVER_EXTERN(float);
ATALIB_API_SERVER_EXTERN(double);
#undef ATALIB_API_SERVER_EXTERN

}  // namespace atalib::api
