#pragma once
// Thread-safe sharded LRU cache of AtaPlans — the handle-style amortization
// that turns repeated traffic malloc- and replanning-free.
//
// get_or_build() returns the cached plan on a hit (promoting it to
// most-recently-used) and builds it exactly once on a miss, even when many
// client threads request the same cold key concurrently: the first caller
// inserts a shared_future and builds outside the lock, later callers block
// on that future instead of replanning. Eviction is strict LRU by entry
// count; a plan evicted while executions still hold its shared_ptr stays
// alive until they drop it (plans are immutable, so this is safe).
//
// The cache is split into N independent shards, each its own LRU + mutex,
// with keys routed by PlanKeyHash — so a slow cold build (or just heavy
// concurrent miss traffic) convoys only the 1/N of the key space that
// shares its shard, never the whole serving front-end (DESIGN.md §10).
// Capacity is a GLOBAL budget tracked by an atomic entry count, not a
// per-shard split: as long as the distinct working set fits the capacity,
// no hash imbalance can force an eviction (a per-shard split would thrash
// colliding keys even under capacity). When the budget is exceeded, the
// inserting shard evicts from its own LRU tail. Build-once and LRU order
// hold *per shard*; a single-shard cache (shards = 1) reproduces the
// historical global-LRU behavior exactly, which is what the LRU-order
// tests pin.
//
// Counters (hits/misses/evictions) are per-shard relaxed atomics, written
// under the shard lock but read lock-free: a stats() snapshot is not an
// atomic cut across shards, but every counter is monotonic, so aggregate
// hits + misses never decreases between consecutive reads.

#include <atomic>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "api/plan.hpp"
#include "common/thread_annotations.hpp"

namespace atalib::api {

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;     ///< builds started (including failed ones)
  std::uint64_t evictions = 0;  ///< entries dropped by the LRU capacity bound
  std::size_t size = 0;
  std::size_t capacity = 0;
  std::size_t shards = 0;  ///< independent LRU+mutex shards
};

class PlanCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;
  static constexpr std::size_t kDefaultShards = 8;

  /// `capacity` is the maximum number of cached plans across ALL shards
  /// (>= 1; 0 is clamped) — a global budget, not a per-shard split, so a
  /// working set that fits the capacity never evicts regardless of how the
  /// keys hash. `shards` is clamped to [1, capacity]. Concurrent cold
  /// builds may transiently overshoot the budget by at most one entry per
  /// in-flight build; the overshoot is reclaimed on the next miss.
  explicit PlanCache(std::size_t capacity = kDefaultCapacity,
                     std::size_t shards = kDefaultShards);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The plan for `key`: cached (hit) or built exactly once per shard
  /// (miss; builds run outside the shard lock, concurrent requesters for
  /// the same key wait on the builder). Rethrows the build error to every
  /// waiter and forgets the entry, so a later request retries.
  std::shared_ptr<const AtaPlan> get_or_build(const PlanKey& key);

  /// True if `key` is resident right now. Does not touch LRU order.
  bool contains(const PlanKey& key) const;

  PlanCacheStats stats() const;

  /// Drop every entry (stats counters keep accumulating; in-flight
  /// executions keep their plans alive via shared_ptr).
  void clear();

  /// Shard index `key` routes to (PlanKeyHash modulo the shard count).
  /// Exposed so tests can construct per-shard collision workloads.
  std::size_t shard_of(const PlanKey& key) const;

  /// The process-wide cache used by the ata_shared / ata_dist wrappers.
  static PlanCache& global();

 private:
  using Future = std::shared_future<std::shared_ptr<const AtaPlan>>;
  using Lru = std::list<PlanKey>;  // front = most recently used

  struct Entry {
    Future plan;
    Lru::iterator lru_it;
    std::uint64_t id = 0;  ///< distinguishes re-inserted keys on build completion
    /// Set (under the shard lock) once the build published its value; lets
    /// the eviction scan test eligibility with a plain bool instead of a
    /// future-state probe per entry while holding the lock.
    bool ready = false;
  };

  /// One shard: an independent LRU cache. The lock covers the LRU list,
  /// the map, and next_id: every mutation touches at least two of them and
  /// must be atomic as a group (splice + map update, insert + eviction
  /// scan). The stats counters are written under the lock too (so each
  /// increment pairs with the mutation it counts) but are atomics so
  /// stats() can read them without taking every shard lock.
  struct Shard {
    mutable Mutex mu;
    Lru lru ATALIB_GUARDED_BY(mu);
    std::unordered_map<PlanKey, Entry, PlanKeyHash> map ATALIB_GUARDED_BY(mu);
    std::uint64_t next_id ATALIB_GUARDED_BY(mu) = 0;
    std::atomic<std::uint64_t> hits{0};       // monotonic
    std::atomic<std::uint64_t> misses{0};     // monotonic
    std::atomic<std::uint64_t> evictions{0};  // monotonic
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t capacity_;  ///< global entry budget; immutable
  /// Total resident entries across shards. Incremented/decremented under
  /// the owning shard's lock; read with relaxed loads by the eviction
  /// check in other shards (an approximate read only risks a one-entry
  /// transient overshoot, never a lost entry).
  std::atomic<std::size_t> size_{0};
};

}  // namespace atalib::api
