#pragma once
// Thread-safe LRU cache of AtaPlans — the handle-style amortization that
// turns repeated traffic malloc- and replanning-free.
//
// get_or_build() returns the cached plan on a hit (promoting it to
// most-recently-used) and builds it exactly once on a miss, even when many
// client threads request the same cold key concurrently: the first caller
// inserts a shared_future and builds outside the lock, later callers block
// on that future instead of replanning. Eviction is strict LRU by entry
// count; a plan evicted while executions still hold its shared_ptr stays
// alive until they drop it (plans are immutable, so this is safe).
//
// Counters (hits/misses/evictions) feed the serving bench and the tests
// that prove the warm path never replans.

#include <cstdint>
#include <future>
#include <list>
#include <unordered_map>

#include "api/plan.hpp"
#include "common/thread_annotations.hpp"

namespace atalib::api {

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;     ///< builds started (including failed ones)
  std::uint64_t evictions = 0;  ///< entries dropped by the LRU capacity bound
  std::size_t size = 0;
  std::size_t capacity = 0;
};

class PlanCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;

  /// `capacity` is the maximum number of cached plans (>= 1; 0 is clamped).
  explicit PlanCache(std::size_t capacity = kDefaultCapacity);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The plan for `key`: cached (hit) or built exactly once (miss; builds
  /// run outside the cache lock, concurrent requesters for the same key
  /// wait on the builder). Rethrows the build error to every waiter and
  /// forgets the entry, so a later request retries.
  std::shared_ptr<const AtaPlan> get_or_build(const PlanKey& key);

  /// True if `key` is resident right now. Does not touch LRU order.
  bool contains(const PlanKey& key) const;

  PlanCacheStats stats() const;

  /// Drop every entry (stats counters keep accumulating; in-flight
  /// executions keep their plans alive via shared_ptr).
  void clear();

  /// The process-wide cache used by the ata_shared / ata_dist wrappers.
  static PlanCache& global();

 private:
  using Future = std::shared_future<std::shared_ptr<const AtaPlan>>;
  using Lru = std::list<PlanKey>;  // front = most recently used

  struct Entry {
    Future plan;
    Lru::iterator lru_it;
    std::uint64_t id = 0;  ///< distinguishes re-inserted keys on build completion
    /// Set (under mu_) once the build published its value; lets the
    /// eviction scan test eligibility with a plain bool instead of a
    /// future-state probe per entry while holding the cache lock.
    bool ready = false;
  };

  /// One lock covers the LRU list, the map, and the stats counters: every
  /// mutation touches at least two of them and must be atomic as a group
  /// (splice + map update, insert + eviction scan).
  mutable Mutex mu_;
  std::size_t capacity_;  ///< immutable after construction
  Lru lru_ ATALIB_GUARDED_BY(mu_);
  std::unordered_map<PlanKey, Entry, PlanKeyHash> map_ ATALIB_GUARDED_BY(mu_);
  std::uint64_t next_id_ ATALIB_GUARDED_BY(mu_) = 0;
  std::uint64_t hits_ ATALIB_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ ATALIB_GUARDED_BY(mu_) = 0;
  std::uint64_t evictions_ ATALIB_GUARDED_BY(mu_) = 0;
};

}  // namespace atalib::api
