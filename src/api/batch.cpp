#include "api/batch.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "api/execute.hpp"

namespace atalib::api {

template <typename T>
BatchPlan build_batch_plan(PlanCache& cache, std::span<const AtaRequest<T>> requests,
                           const SharedOptions& opts) {
  BatchPlan batch;
  batch.plan_of_request.reserve(requests.size());
  batch.task_offset.reserve(requests.size() + 1);
  batch.task_offset.push_back(0);

  // Group by plan key: one PlanCache round-trip per distinct shape in the
  // batch, however many requests share it. The local index is keyed by
  // (m, n) only — every other key component is fixed by `opts` and T.
  std::unordered_map<std::uint64_t, int> group_of_shape;
  for (const AtaRequest<T>& req : requests) {
    // Reject a mismatched C before touching the cache (same rule as
    // Server::submit): a bad request must not build or evict plans.
    if (req.c.rows != req.a.cols || req.c.cols != req.a.cols) {
      throw std::invalid_argument(
          "submit_batch: request " + std::to_string(batch.plan_of_request.size()) +
          ": C must be n x n = " + std::to_string(req.a.cols) + "^2, got " +
          std::to_string(req.c.rows) + "x" + std::to_string(req.c.cols));
    }
    const std::uint64_t shape = (static_cast<std::uint64_t>(req.a.rows) << 32) |
                                (static_cast<std::uint64_t>(req.a.cols) & 0xffffffffu);
    auto [it, fresh] = group_of_shape.try_emplace(
        shape, static_cast<int>(batch.plans.size()));
    if (fresh) {
      auto plan = cache.get_or_build(
          shared_plan_key(dtype_of<T>(), req.a.rows, req.a.cols, opts));
      batch.workspace_bound = std::max(batch.workspace_bound, plan->workspace_bound());
      batch.plans.push_back(std::move(plan));
    }
    const auto& plan = *batch.plans[static_cast<std::size_t>(it->second)];
    check_shared<T>(plan, req.a, req.c);
    batch.plan_of_request.push_back(it->second);
    batch.task_offset.push_back(batch.task_offset.back() +
                                static_cast<int>(plan.schedule().tasks.size()));
  }
  return batch;
}

#define ATALIB_API_BATCH_INST(T)                                   \
  template BatchPlan build_batch_plan<T>(                          \
      PlanCache&, std::span<const AtaRequest<T>>, const SharedOptions&)
ATALIB_API_BATCH_INST(float);
ATALIB_API_BATCH_INST(double);
#undef ATALIB_API_BATCH_INST

}  // namespace atalib::api
