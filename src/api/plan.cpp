#include "api/plan.hpp"

#include <algorithm>

#include "parallel/leaf_exec.hpp"

namespace atalib::api {
namespace {

void hash_combine(std::size_t& seed, std::size_t v) {
  // splitmix-style mix; good enough for an unordered_map bucket spread.
  seed ^= v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
}

/// Largest arena request any op in `ops` can make, in elements of `dtype`.
index_t ops_workspace(const std::vector<sched::LeafOp>& ops, const PlanKey& key) {
  const RecurseOptions rec = key.recurse();
  index_t bound = 0;
  for (const auto& op : ops) {
    const index_t b = key.dtype == Dtype::kF32
                          ? leaf_op_workspace<float>(op, key.engine, rec)
                          : leaf_op_workspace<double>(op, key.engine, rec);
    bound = std::max(bound, b);
  }
  return bound;
}

}  // namespace

std::size_t PlanKeyHash::operator()(const PlanKey& k) const noexcept {
  std::size_t seed = 0;
  hash_combine(seed, static_cast<std::size_t>(k.mode));
  hash_combine(seed, static_cast<std::size_t>(k.dtype));
  hash_combine(seed, static_cast<std::size_t>(k.m));
  hash_combine(seed, static_cast<std::size_t>(k.n));
  hash_combine(seed, static_cast<std::size_t>(k.p));
  hash_combine(seed, static_cast<std::size_t>(k.oversub));
  hash_combine(seed, std::hash<double>{}(k.lb_alpha));
  hash_combine(seed, static_cast<std::size_t>(k.engine));
  hash_combine(seed, static_cast<std::size_t>(k.base_case_elements));
  hash_combine(seed, static_cast<std::size_t>(k.min_dim));
  hash_combine(seed, static_cast<std::size_t>(k.tall_skinny_ratio));
  return seed;
}

PlanKey shared_plan_key(Dtype dtype, index_t m, index_t n, const SharedOptions& opts) {
  PlanKey key;
  key.mode = PlanMode::kShared;
  key.dtype = dtype;
  key.m = m;
  key.n = n;
  key.p = opts.threads;
  key.oversub = opts.oversub;
  key.engine = opts.engine;
  // Store the *resolved* cut-off (auto -> tuner), so the tuned value is part
  // of the cache identity: two processes with different tuning outcomes can
  // never share a serialized plan whose schedule assumed the other cut-off,
  // and a plan's workspace bounds always match the leaves' actual recursion.
  key.base_case_elements =
      opts.recurse.resolved_base_elements(dtype == Dtype::kF32 ? sizeof(float) : sizeof(double));
  key.min_dim = opts.recurse.min_dim;
  key.tall_skinny_ratio = opts.tall_skinny_ratio;
  // Shape-aware engine choice: a kStrassen request whose m/n reaches the
  // tall-skinny crossover is served by the blocked panel-SYRK engine
  // instead of the recursion. The tuner is consulted *lazily* — only for
  // shapes the panel engine could possibly win (m >= 2n, the smallest
  // crossover the ladder can report) — so square-ish traffic never pays
  // the measurement, and the resolved ratio lands in the key like the
  // base-case cut-off does. tall_skinny_ratio: 0 = auto (tuner), > 0 =
  // forced threshold (clamped to the m >= 2n floor), -1 = recursion only.
  if (opts.engine == LeafEngine::kStrassen && opts.tall_skinny_ratio >= 0 && n > 0 &&
      m >= 2 * n) {
    index_t ratio = opts.tall_skinny_ratio;
    if (ratio == 0) {
      ratio = tuned_tall_skinny_ratio(dtype == Dtype::kF32 ? sizeof(float) : sizeof(double));
    }
    key.tall_skinny_ratio = ratio;
    if (m >= ratio * n) key.engine = LeafEngine::kPanelSyrk;
  }
  return key;
}

PlanKey dist_plan_key(Dtype dtype, index_t m, index_t n, const dist::DistOptions& opts) {
  PlanKey key;
  key.mode = PlanMode::kDist;
  key.dtype = dtype;
  key.m = m;
  key.n = n;
  key.p = opts.procs;
  key.lb_alpha = opts.alpha;
  key.engine = opts.engine;
  // Same resolved-cut-off rule as shared_plan_key (see above).
  key.base_case_elements =
      opts.recurse.resolved_base_elements(dtype == Dtype::kF32 ? sizeof(float) : sizeof(double));
  key.min_dim = opts.recurse.min_dim;
  return key;
}

std::shared_ptr<const AtaPlan> AtaPlan::build(const PlanKey& key) {
  auto plan = std::shared_ptr<AtaPlan>(new AtaPlan);
  plan->key_ = key;
  if (key.mode == PlanMode::kShared) {
    plan->schedule_ = sched::build_shared_schedule(key.m, key.n, key.p, key.oversub);
    plan->task_workspace_.reserve(plan->schedule_.tasks.size());
    for (const auto& task : plan->schedule_.tasks) {
      const index_t b = ops_workspace(task.ops, key);
      plan->task_workspace_.push_back(b);
      plan->workspace_bound_ = std::max(plan->workspace_bound_, static_cast<std::size_t>(b));
    }
  } else {
    plan->tree_ = sched::build_dist_tree(key.m, key.n, key.p, key.lb_alpha);
    plan->chains_ = plan->tree_.rank_chains();
    plan->ranks_ = std::max(1, plan->tree_.used_procs);
    // Per-rank arena bound: the entry-region accumulator (non-root ranks)
    // plus the largest leaf-op scratch; max over ranks because stealing
    // may route any rank body to any pool slot.
    for (int r = 0; r < plan->ranks_; ++r) {
      const auto& chain = plan->chains_[static_cast<std::size_t>(r)];
      const sched::DistNode& entry = plan->tree_.node(chain.front());
      const sched::DistNode& leaf = plan->tree_.node(chain.back());
      const index_t scratch = ops_workspace(leaf.ops, key);
      double flops = 0;
      for (const auto& op : leaf.ops) flops += op.flops();
      plan->max_leaf_flops_ = std::max(plan->max_leaf_flops_, flops);
      const index_t region_elems = entry.parent < 0 ? 0 : entry.c.size();
      plan->workspace_bound_ =
          std::max(plan->workspace_bound_, static_cast<std::size_t>(region_elems + scratch));
    }
  }
  return plan;
}

}  // namespace atalib::api
