#pragma once
// Batched small-Gram serving: fuse many AtA requests into one executor
// batch (DESIGN.md §8).
//
// The serving shape the examples point at — thousands of small-to-medium
// Gram matrices per second — is throughput-bound on per-request overhead,
// not on any single multiplication: a per-request submit pays a future
// allocation, a pool wake-up, and a client round-trip per tiny product.
// submit_batch amortizes all three. A BatchPlan groups the requests by
// plan-cache key (one cache lookup per *distinct shape per batch*, not per
// request), flattens every request's tasks into one index space, and the
// Server schedules that as a single queued pool batch whose tasks share
// the per-worker pack buffers and arenas — so a warm batch performs zero
// schedule builds, zero workspace slab allocations, and zero thread-local
// pack allocations no matter how many requests it carries.
//
// Requests inside one batch share a scalar type (the dtype is part of
// every plan key; mixed-precision traffic is two batches) but not a shape:
// mixed shapes simply form more groups.

#include <memory>
#include <span>
#include <vector>

#include "api/plan_cache.hpp"

namespace atalib::api {

/// One lower(C) += alpha * A^T A request of a batch. The caller owns `a`
/// and `c`; both must stay valid until the request's future is ready, and
/// no two in-flight requests may alias an output.
template <typename T>
struct AtaRequest {
  T alpha = T(1);
  ConstMatrixView<T> a;
  MatrixView<T> c;
  /// Per-request QoS (api::Server; DESIGN.md §10). The batch's pool
  /// priority is the max over its requests and the SharedOptions priority;
  /// within the batch, higher-priority requests' tasks are ordered first.
  int priority = 0;
  /// Absolute steady-clock deadline; effective deadline is the min of this
  /// and SharedOptions::deadline. Expired requests settle with
  /// DeadlineExceeded without running their leaf GEMMs.
  std::chrono::steady_clock::time_point deadline = kNoDeadline;
};

/// The fused execution shape of one batch: the distinct plans it touches
/// and the request -> plan assignment, plus the flattened task count the
/// executor batch runs. Built by build_batch_plan; immutable afterwards.
struct BatchPlan {
  /// Distinct plans, in first-appearance order.
  std::vector<std::shared_ptr<const AtaPlan>> plans;
  /// plans[] index serving each request (parallel to the request span).
  std::vector<int> plan_of_request;
  /// Per-request offset into the flat task index space; back() is the
  /// total task count of the fused batch.
  std::vector<int> task_offset;
  /// Max workspace_bound() over plans[] — what the pool is warmed to once
  /// per batch.
  std::size_t workspace_bound = 0;

  int total_tasks() const { return task_offset.empty() ? 0 : task_offset.back(); }
};

/// Group `requests` by plan key through `cache` and validate every request
/// against its plan (std::invalid_argument on any dtype/shape mismatch —
/// thrown before anything executes, so a rejected batch is all-or-nothing).
/// `opts` must already be validated; opts.executor is ignored. Cache
/// accounting: one hit-or-miss per distinct shape in the batch.
template <typename T>
BatchPlan build_batch_plan(PlanCache& cache, std::span<const AtaRequest<T>> requests,
                           const SharedOptions& opts);

#define ATALIB_API_BATCH_EXTERN(T)                                        \
  extern template BatchPlan build_batch_plan<T>(                          \
      PlanCache&, std::span<const AtaRequest<T>>, const SharedOptions&)
ATALIB_API_BATCH_EXTERN(float);
ATALIB_API_BATCH_EXTERN(double);
#undef ATALIB_API_BATCH_EXTERN

}  // namespace atalib::api
