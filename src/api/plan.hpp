#pragma once
// Compile-once / execute-many plans for the serving front-end.
//
// The paper's schedules depend only on the problem *shape* — (m, n, P,
// oversub) for AtA-S, (m, n, P, alpha) for AtA-D — never on the matrix
// entries, so a repeated-traffic workload should pay for planning exactly
// once per shape. An AtaPlan freezes everything a request would otherwise
// recompute: the task tree (sched::build_shared_schedule or
// sched::build_dist_tree), the per-task workspace high-water marks from
// parallel/leaf_exec.hpp, the rank chains, and the engine/cut-off options.
// Plans are immutable after build and shared by const pointer, so any
// number of concurrent executions (api/execute.hpp, api/server.hpp) can
// read one plan without synchronization.

#include <cstdint>
#include <memory>
#include <vector>

#include "dist/options.hpp"
#include "parallel/ata_shared.hpp"
#include "sched/dist_tree.hpp"
#include "sched/shared_schedule.hpp"

namespace atalib::api {

/// Scalar type a plan was sized for. Workspace bounds depend on the
/// element size (the base-case cut-off is a cache footprint), so float and
/// double plans for one shape are distinct cache entries.
enum class Dtype { kF32, kF64 };

template <typename T>
constexpr Dtype dtype_of() {
  static_assert(std::is_same_v<T, float> || std::is_same_v<T, double>,
                "plans support float and double");
  return std::is_same_v<T, float> ? Dtype::kF32 : Dtype::kF64;
}

enum class PlanMode { kShared, kDist };

/// Everything schedule construction depends on — the plan-cache key. Two
/// requests with equal keys are served by one plan.
struct PlanKey {
  PlanMode mode = PlanMode::kShared;
  Dtype dtype = Dtype::kF64;
  index_t m = 0;  ///< input rows
  index_t n = 0;  ///< input cols (C is n x n)
  int p = 1;      ///< the paper's P: threads (shared) / processes (dist)
  int oversub = 1;         ///< shared only; always 1 for dist plans
  double lb_alpha = 0.0;   ///< dist only (§4.1.2); always 0 for shared plans
  /// *Resolved* leaf engine: what the shape-aware planner chose, not what
  /// the caller asked for. shared_plan_key turns kStrassen into kPanelSyrk
  /// when m/n reaches the tall-skinny crossover (DESIGN.md §8).
  LeafEngine engine = LeafEngine::kStrassen;
  index_t base_case_elements = 0;  ///< *resolved* cut-off (auto -> tuner value)
  index_t min_dim = 8;
  /// *Resolved* tall-skinny crossover the engine decision was made with
  /// (auto -> tuner value for shapes the panel engine could serve; the raw
  /// option otherwise). Part of the key for the same reason as the
  /// base-case cut-off: two processes with different tuning outcomes must
  /// not share a plan whose engine assumed the other crossover.
  index_t tall_skinny_ratio = 0;

  bool operator==(const PlanKey&) const = default;

  RecurseOptions recurse() const {
    RecurseOptions r;
    r.base_case_elements = base_case_elements;
    r.min_dim = min_dim;
    return r;
  }
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const noexcept;
};

/// Key for an AtA-S request. `opts` must already be validated; the
/// executor field is an execution detail and not part of the key.
PlanKey shared_plan_key(Dtype dtype, index_t m, index_t n, const SharedOptions& opts);

/// Key for an AtA-D request.
PlanKey dist_plan_key(Dtype dtype, index_t m, index_t n, const dist::DistOptions& opts);

/// An immutable, shape-bound execution plan. Shared-mode plans carry the
/// AtA-S task list plus workspace bounds; dist-mode plans carry the AtA-D
/// tree, per-rank chains, and the rank-pool arena bound. All sizes are in
/// elements of key().dtype.
class AtaPlan {
 public:
  /// Build a plan from scratch (one schedule build). Most callers should
  /// go through PlanCache::get_or_build instead.
  static std::shared_ptr<const AtaPlan> build(const PlanKey& key);

  const PlanKey& key() const { return key_; }
  RecurseOptions recurse() const { return key_.recurse(); }
  LeafEngine engine() const { return key_.engine; }

  // --- Shared mode -------------------------------------------------------
  const sched::SharedSchedule& schedule() const { return schedule_; }
  /// Per-task arena high-water marks (largest leaf_op_workspace over the
  /// task's ops). Indexed like schedule().tasks.
  const std::vector<index_t>& task_workspace() const { return task_workspace_; }
  /// Max over task_workspace() — what every executor slot is warmed to
  /// (stealing may route any task to any slot). For dist plans: the
  /// per-rank bound (entry-region accumulator plus leaf scratch).
  std::size_t workspace_bound() const { return workspace_bound_; }
  /// Home NUMA node for shared-mode task `task` on an executor reporting
  /// `nnodes` nodes: plain round-robin over the write-disjoint C stripes.
  /// Computed against the executor at execute time rather than stored,
  /// because plans are cached by *shape* — one plan may serve executors
  /// with different topologies (real pool, fake-topology pool, fork-join)
  /// within a process. Deterministic, so per-node scheduled counts are a
  /// test oracle (tests/test_numa.cpp).
  int preferred_node(int task, int nnodes) const {
    return nnodes > 1 ? task % nnodes : 0;
  }

  // --- Dist mode ---------------------------------------------------------
  const sched::DistTree& tree() const { return tree_; }
  const std::vector<std::vector<int>>& rank_chains() const { return chains_; }
  /// Ranks the tree actually uses (== key().p except degenerate shapes).
  int ranks() const { return ranks_; }
  /// Largest per-leaf multiplication count (DistResult::max_leaf_flops).
  double max_leaf_flops() const { return max_leaf_flops_; }

 private:
  AtaPlan() = default;

  PlanKey key_;
  sched::SharedSchedule schedule_;
  std::vector<index_t> task_workspace_;
  std::size_t workspace_bound_ = 0;
  sched::DistTree tree_;
  std::vector<std::vector<int>> chains_;
  int ranks_ = 1;
  double max_leaf_flops_ = 0;
};

}  // namespace atalib::api
