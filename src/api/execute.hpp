#pragma once
// Execute a cached plan: the malloc-free, replanning-free half of the
// plan/execute split.
//
// The warm path — every call after a plan's first execution on a given
// executor — performs zero schedule builds (the plan is immutable) and
// zero workspace slab allocations (warm_for() raises the executor's
// per-slot arenas to the plan's high-water mark once; subsequent warms are
// two atomic loads on the pool). tests/test_api.cpp pins both properties
// with the sched build counters and the Workspace grow counters.
//
// These are the bodies the thin wrappers (ata_shared, ata_shared_profile,
// ata_dist) and the serving front-end (api::Server) all execute through,
// so the shared and distributed layers keep one planning path.

#include "api/plan.hpp"
#include "common/timer.hpp"
#include "dist/result.hpp"
#include "runtime/executor.hpp"

namespace atalib::api {

/// lower(C) += alpha * A^T A over a shared-mode plan. A must be the
/// plan's m x n shape (C n x n) and T its dtype; throws
/// std::invalid_argument otherwise. `executor` null uses
/// runtime::default_executor().
template <typename T>
void execute(const AtaPlan& plan, T alpha, ConstMatrixView<T> a, MatrixView<T> c,
             runtime::Executor* executor = nullptr);

/// Serial per-task timing of a shared-mode plan (see SharedProfile).
template <typename T>
SharedProfile execute_profile(const AtaPlan& plan, T alpha, ConstMatrixView<T> a,
                              MatrixView<T> c);

/// Run a dist-mode plan's distribute-compute-retrieve protocol on the rank
/// pool. By default wall time (DistResult::seconds) covers the run only —
/// plan lookup/build is the caller's (cached) concern, which is the point
/// of the split. Callers that account setup in wall time — ata_dist starts
/// its stopwatch before the plan fetch so Fig. 6 cold runs stay
/// apples-to-apples with the baselines' in-line setup — pass their own
/// already-running `wall`.
template <typename T>
dist::DistResult<T> execute_dist(const AtaPlan& plan, T alpha, const Matrix<T>& a,
                                 const Timer* wall = nullptr);

/// One task of a shared-mode plan on an executor slot — the batch body
/// execute() and Server::submit() both run. `task` indexes
/// plan.schedule().tasks; scratch comes from ctx's slot workspace, sized
/// to plan.workspace_bound().
template <typename T>
void run_plan_task(const AtaPlan& plan, int task, T alpha, ConstMatrixView<T> a,
                   MatrixView<T> c, runtime::TaskContext& ctx);

/// Pre-grow every executor slot to a shared-mode plan's workspace bound
/// (no-op once warm). Dtype-dispatches on the plan key.
void warm_for(const AtaPlan& plan, runtime::Executor& exec);

/// Throw std::invalid_argument unless (mode, dtype, shape) all match.
template <typename T>
void check_shared(const AtaPlan& plan, ConstMatrixView<T> a, MatrixView<T> c);

#define ATALIB_API_EXECUTE_EXTERN(T)                                                       \
  extern template void execute<T>(const AtaPlan&, T, ConstMatrixView<T>, MatrixView<T>,    \
                                  runtime::Executor*);                                     \
  extern template SharedProfile execute_profile<T>(const AtaPlan&, T, ConstMatrixView<T>,  \
                                                   MatrixView<T>);                         \
  extern template dist::DistResult<T> execute_dist<T>(const AtaPlan&, T, const Matrix<T>&, \
                                                      const Timer*);                       \
  extern template void run_plan_task<T>(const AtaPlan&, int, T, ConstMatrixView<T>,        \
                                        MatrixView<T>, runtime::TaskContext&);             \
  extern template void check_shared<T>(const AtaPlan&, ConstMatrixView<T>, MatrixView<T>)
ATALIB_API_EXECUTE_EXTERN(float);
ATALIB_API_EXECUTE_EXTERN(double);
#undef ATALIB_API_EXECUTE_EXTERN

}  // namespace atalib::api
