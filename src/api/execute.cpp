#include "api/execute.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "common/timer.hpp"
#include "dist/block_io.hpp"
#include "dist/harness.hpp"
#include "parallel/leaf_exec.hpp"

namespace atalib::api {
namespace {

/// Cut the op's global-coordinate blocks out of A/C and hand them to the
/// shared leaf kernel (parallel/leaf_exec.hpp) — the same code path for a
/// pool task and a simulated rank.
template <typename T>
void run_op(T alpha, ConstMatrixView<T> a, MatrixView<T> c, const sched::LeafOp& op,
            Arena<T>& arena, const AtaPlan& plan) {
  auto ab = a.block(op.a.r0, op.a.c0, op.a.rows, op.a.cols);
  auto cb = c.block(op.c.r0, op.c.c0, op.c.rows, op.c.cols);
  ConstMatrixView<T> bb;
  if (op.kind == sched::LeafOp::Kind::kGemm) {
    bb = a.block(op.b.r0, op.b.c0, op.b.rows, op.b.cols);
  }
  run_leaf_kernel(alpha, ab, bb, cb, op.kind, arena, plan.engine(), plan.recurse());
}

/// One rank's whole distribute-compute-retrieve walk (Algorithm 4).
/// `chain` is this rank's node chain (entry -> ... -> leaf, see
/// DistTree::rank_chains); the entry's C region is accumulated in a single
/// buffer that every chain node writes through, so chain hand-offs cost no
/// copies or messages.
template <typename T>
void rank_body(T alpha, const Matrix<T>& a, MatrixView<T> c_out, const AtaPlan& plan,
               const std::vector<int>& chain, mpisim::RankCtx& ctx,
               runtime::TaskContext& tctx) {
  using dist::BlockStore;
  const sched::DistTree& tree = plan.tree();
  const int r = ctx.rank();
  const sched::DistNode& entry = tree.node(chain.front());
  const bool is_root = entry.parent < 0;

  // --- Phase 1a: receive this subtree's A blocks from the parent process.
  BlockStore<T> store;
  if (!is_root) {
    const int src = tree.node(entry.parent).proc;
    for (const sched::Block& b : entry.needs) {
      store.put(b, dist::recv_block<T>(ctx, src, chain.front(), b.rows, b.cols));
    }
  }
  // The root serves blocks straight out of A; everyone else out of the
  // store (needs lists nest upward, so every child block is present).
  auto a_view = [&](const sched::Block& b) -> ConstMatrixView<T> {
    if (is_root) return a.block(b.r0, b.c0, b.rows, b.cols);
    return store.view(b);
  };

  // --- Phase 1b: forward each off-chain child its subtree's blocks,
  // top-down (a child's child may sit on yet another process and is served
  // by that child, not by us).
  std::vector<T> staging;
  for (int id : chain) {
    for (int cid : tree.node(id).children) {
      const sched::DistNode& ch = tree.node(cid);
      if (ch.proc == r) continue;
      for (const sched::Block& b : ch.needs) {
        dist::send_block(ctx, ch.proc, cid, a_view(b), staging);
      }
    }
  }

  // --- Phase 2: leaf compute. One arena serves both the entry-region
  // accumulator and the leaf kernels' Strassen scratch; the rank pool
  // pre-warmed it, so a steady-state run allocates nothing here.
  Arena<T>& arena = tctx.arena<T>(plan.workspace_bound());
  MatrixView<T> region;
  if (is_root) {
    region = c_out;  // the root's entry region is all of C
  } else {
    T* buf = arena.allocate(static_cast<std::size_t>(entry.c.size()));
    region = MatrixView<T>(buf, entry.c.rows, entry.c.cols, entry.c.cols);
    fill_view(region, T(0));
  }
  auto region_of = [&](const sched::Block& blk) {
    return region.block(blk.r0 - entry.c.r0, blk.c0 - entry.c.c0, blk.rows, blk.cols);
  };

  const sched::DistNode& leaf = tree.node(chain.back());
  for (const sched::LeafOp& op : leaf.ops) {
    ConstMatrixView<T> bv;
    if (op.kind == sched::LeafOp::Kind::kGemm) bv = a_view(op.b);
    run_leaf_kernel(alpha, a_view(op.a), bv, region_of(op.c), op.kind, arena, plan.engine(),
                    plan.recurse());
  }

  // --- Phase 3: retrieval, bottom-up. Off-chain children send their
  // partial C; chain children already accumulated in place.
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    for (int cid : tree.node(*it).children) {
      const sched::DistNode& ch = tree.node(cid);
      if (ch.proc == r) continue;
      if (ch.symmetric) {
        dist::recv_add_packed_lower(ctx, ch.proc, cid, region_of(ch.c));
      } else {
        dist::recv_add_block(ctx, ch.proc, cid, region_of(ch.c));
      }
    }
  }
  if (!is_root) {
    const int dst = tree.node(entry.parent).proc;
    if (entry.symmetric) {
      dist::send_packed_lower(ctx, dst, chain.front(), ConstMatrixView<T>(region), staging);
    } else {
      dist::send_block(ctx, dst, chain.front(), ConstMatrixView<T>(region), staging);
    }
  }
}

void check_mode_dtype(const AtaPlan& plan, PlanMode mode, Dtype dtype) {
  if (plan.key().mode != mode) {
    throw std::invalid_argument("AtaPlan mode mismatch: shared/dist plan used with the "
                                "other execute entry point");
  }
  if (plan.key().dtype != dtype) {
    throw std::invalid_argument("AtaPlan dtype mismatch: plan was built for the other "
                                "scalar type");
  }
}

}  // namespace

template <typename T>
void check_shared(const AtaPlan& plan, ConstMatrixView<T> a, MatrixView<T> c) {
  check_mode_dtype(plan, PlanMode::kShared, dtype_of<T>());
  if (a.rows != plan.key().m || a.cols != plan.key().n) {
    throw std::invalid_argument(
        "AtaPlan shape mismatch: plan is for " + std::to_string(plan.key().m) + "x" +
        std::to_string(plan.key().n) + ", A is " + std::to_string(a.rows) + "x" +
        std::to_string(a.cols));
  }
  if (c.rows != plan.key().n || c.cols != plan.key().n) {
    throw std::invalid_argument("AtaPlan output mismatch: C must be n x n = " +
                                std::to_string(plan.key().n) + "^2, got " +
                                std::to_string(c.rows) + "x" + std::to_string(c.cols));
  }
}

void warm_for(const AtaPlan& plan, runtime::Executor& exec) {
  const std::size_t bound = plan.workspace_bound();
  if (bound == 0) return;  // the BLAS engine is allocation-free
  if (plan.key().dtype == Dtype::kF32) {
    exec.warm_workspaces(bound, 0);
  } else {
    exec.warm_workspaces(0, bound);
  }
}

template <typename T>
void run_plan_task(const AtaPlan& plan, int task, T alpha, ConstMatrixView<T> a,
                   MatrixView<T> c, runtime::TaskContext& ctx) {
  const auto& t = plan.schedule().tasks[static_cast<std::size_t>(task)];
  // Every slot's arena is sized to the plan-wide high-water mark, not the
  // task at hand: stealing may route any task to any slot, and a per-task
  // bound would let a late first-time steal of the biggest task trigger a
  // malloc on an otherwise warm pool.
  Arena<T>& arena = ctx.arena<T>(plan.workspace_bound());
  for (const auto& op : t.ops) run_op(alpha, a, c, op, arena, plan);
}

template <typename T>
void execute(const AtaPlan& plan, T alpha, ConstMatrixView<T> a, MatrixView<T> c,
             runtime::Executor* executor) {
  check_shared(plan, a, c);
  runtime::Executor& exec = executor ? *executor : runtime::default_executor();
  const int ntasks = static_cast<int>(plan.schedule().tasks.size());
  // A one-task or width-1 batch executes inline/serial on one workspace
  // that grows monotonically on first use — pre-growing every pool slot
  // for it would pin slots-many full-size slabs that never see a task.
  if (ntasks > 1 && plan.key().p > 1) warm_for(plan, exec);
  // Width p caps the fork-join engine at the planned thread count; the
  // pool treats it as advisory (see Executor::run) — its idle workers may
  // still steal, which is always safe on write-disjoint tasks.
  auto body = [&](int t, runtime::TaskContext& ctx) {
    run_plan_task(plan, t, alpha, a, c, ctx);
  };
  const int nnodes = exec.numa_nodes();
  if (nnodes > 1) {
    // Pin the plan's write-disjoint C stripes to nodes round-robin so each
    // stripe's packed panels and output pages stay node-local; flat
    // executors skip the hint machinery entirely.
    exec.run_placed(ntasks, body, plan.key().p,
                    [&plan, nnodes](int t) { return plan.preferred_node(t, nnodes); });
  } else {
    exec.run(ntasks, body, plan.key().p);
  }
}

template <typename T>
SharedProfile execute_profile(const AtaPlan& plan, T alpha, ConstMatrixView<T> a,
                              MatrixView<T> c) {
  check_shared(plan, a, c);
  runtime::Workspace workspace;  // one reusable arena across all timed tasks
  SharedProfile profile;
  const auto& tasks = plan.schedule().tasks;
  // Report where the placement hints would home each task on the default
  // executor's topology (profiling itself runs serially regardless).
  const int nnodes = std::max(1, runtime::default_executor().numa_nodes());
  profile.tasks_per_node.assign(static_cast<std::size_t>(nnodes), 0);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    ++profile.tasks_per_node[static_cast<std::size_t>(
        plan.preferred_node(static_cast<int>(i), nnodes))];
  }
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    Arena<T>& arena =
        workspace.arena<T>(static_cast<std::size_t>(plan.task_workspace()[i]));
    ThreadCpuTimer timer;
    for (const auto& op : tasks[i].ops) run_op(alpha, a, c, op, arena, plan);
    const double s = timer.seconds();
    profile.task_seconds.push_back(s);
    profile.critical_path_seconds = std::max(profile.critical_path_seconds, s);
    profile.total_seconds += s;
  }
  return profile;
}

template <typename T>
dist::DistResult<T> execute_dist(const AtaPlan& plan, T alpha, const Matrix<T>& a,
                                 const Timer* wall_in) {
  check_mode_dtype(plan, PlanMode::kDist, dtype_of<T>());
  if (a.rows() != plan.key().m || a.cols() != plan.key().n) {
    throw std::invalid_argument("AtaPlan shape mismatch: dist plan is for " +
                                std::to_string(plan.key().m) + "x" +
                                std::to_string(plan.key().n));
  }
  const Timer local_wall;
  const Timer& wall = wall_in ? *wall_in : local_wall;
  const index_t n = a.cols();
  const int ranks = plan.ranks();

  dist::DistResult<T> res;
  res.c = Matrix<T>::zeros(n, n);
  res.levels = plan.tree().depth;
  res.max_leaf_flops = plan.max_leaf_flops();
  res.rank_busy_seconds.assign(static_cast<std::size_t>(plan.key().p), 0.0);

  const bool is_float = std::is_same_v<T, float>;
  const std::size_t bound = plan.workspace_bound();
  MatrixView<T> c_view = res.c.view();
  dist::run_ranks(res, ranks, wall, is_float ? bound : 0, is_float ? 0 : bound,
                  [&](mpisim::RankCtx& ctx, runtime::TaskContext& tctx) {
                    rank_body(alpha, a, c_view, plan,
                              plan.rank_chains()[static_cast<std::size_t>(ctx.rank())], ctx,
                              tctx);
                  });
  return res;
}

#define ATALIB_API_EXECUTE_INST(T)                                                  \
  template void execute<T>(const AtaPlan&, T, ConstMatrixView<T>, MatrixView<T>,    \
                           runtime::Executor*);                                     \
  template SharedProfile execute_profile<T>(const AtaPlan&, T, ConstMatrixView<T>,  \
                                            MatrixView<T>);                         \
  template dist::DistResult<T> execute_dist<T>(const AtaPlan&, T, const Matrix<T>&,  \
                                               const Timer*);                       \
  template void run_plan_task<T>(const AtaPlan&, int, T, ConstMatrixView<T>,        \
                                 MatrixView<T>, runtime::TaskContext&);             \
  template void check_shared<T>(const AtaPlan&, ConstMatrixView<T>, MatrixView<T>)
ATALIB_API_EXECUTE_INST(float);
ATALIB_API_EXECUTE_INST(double);
#undef ATALIB_API_EXECUTE_INST

}  // namespace atalib::api
