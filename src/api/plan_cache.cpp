#include "api/plan_cache.hpp"

#include <algorithm>
#include <optional>
#include <utility>

namespace atalib::api {

PlanCache::PlanCache(std::size_t capacity, std::size_t shards)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  const std::size_t n =
      std::clamp<std::size_t>(shards, 1, capacity_);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

PlanCache& PlanCache::global() {
  static PlanCache cache;
  return cache;
}

std::size_t PlanCache::shard_of(const PlanKey& key) const {
  return PlanKeyHash{}(key) % shards_.size();
}

std::shared_ptr<const AtaPlan> PlanCache::get_or_build(const PlanKey& key) {
  Shard& sh = *shards_[shard_of(key)];
  Future fut;
  // Deferred: the hot hit path must not pay the promise's shared-state
  // allocation — it is only materialized on a miss.
  std::optional<std::promise<std::shared_ptr<const AtaPlan>>> prom;
  std::uint64_t my_id = 0;
  {
    MutexLock lk(sh.mu);
    auto it = sh.map.find(key);
    if (it != sh.map.end()) {
      sh.hits.fetch_add(1, std::memory_order_relaxed);
      sh.lru.splice(sh.lru.begin(), sh.lru, it->second.lru_it);  // promote to MRU
      fut = it->second.plan;
    } else {
      sh.misses.fetch_add(1, std::memory_order_relaxed);
      my_id = ++sh.next_id;
      prom.emplace();
      fut = prom->get_future().share();
      sh.lru.push_front(key);
      sh.map.emplace(key, Entry{fut, sh.lru.begin(), my_id});
      size_.fetch_add(1, std::memory_order_relaxed);
      // Enforce the GLOBAL budget by evicting from this shard's cold end.
      // Only the inserting shard evicts (its lock is already held), so a
      // hash-imbalanced shard sheds its own tail while a working set that
      // fits the capacity never evicts at all.
      while (size_.load(std::memory_order_relaxed) > capacity_) {
        // Evict the coldest entry whose build has completed. An in-flight
        // entry must survive — dropping it would let a concurrent request
        // for the same key start a duplicate build, breaking the
        // build-exactly-once guarantee. The budget may therefore be
        // exceeded transiently, by at most the number of concurrent cold
        // builds; the next miss retries the eviction.
        if (sh.lru.empty()) break;  // nothing evictable in this shard
        auto victim = sh.lru.end();
        for (auto lit = std::prev(sh.lru.end());; --lit) {
          if (sh.map.find(*lit)->second.ready) {
            victim = lit;
            break;
          }
          if (lit == sh.lru.begin()) break;
        }
        if (victim == sh.lru.end()) break;  // every entry still building
        sh.map.erase(*victim);
        sh.lru.erase(victim);
        size_.fetch_sub(1, std::memory_order_relaxed);
        sh.evictions.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (prom) {
    try {
      prom->set_value(AtaPlan::build(key));
      // Mark the entry evictable (unless eviction already dropped it or a
      // later build re-inserted the key).
      MutexLock lk(sh.mu);
      auto it = sh.map.find(key);
      if (it != sh.map.end() && it->second.id == my_id) it->second.ready = true;
    } catch (...) {
      {
        // Forget the failed entry (unless eviction already dropped it or a
        // later build re-inserted the key) so the next request retries.
        MutexLock lk(sh.mu);
        auto it = sh.map.find(key);
        if (it != sh.map.end() && it->second.id == my_id) {
          sh.lru.erase(it->second.lru_it);
          sh.map.erase(it);
          size_.fetch_sub(1, std::memory_order_relaxed);
        }
      }
      prom->set_exception(std::current_exception());
    }
  }
  return fut.get();  // blocks on a concurrent builder; rethrows build errors
}

bool PlanCache::contains(const PlanKey& key) const {
  const Shard& sh = *shards_[shard_of(key)];
  MutexLock lk(sh.mu);
  return sh.map.find(key) != sh.map.end();
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats s;
  s.capacity = capacity_;
  s.shards = shards_.size();
  for (const auto& shard : shards_) {
    // Relaxed reads of monotonic counters: the totals can lag a racing
    // writer but never decrease across consecutive snapshots.
    s.hits += shard->hits.load(std::memory_order_relaxed);
    s.misses += shard->misses.load(std::memory_order_relaxed);
    s.evictions += shard->evictions.load(std::memory_order_relaxed);
    MutexLock lk(shard->mu);
    s.size += shard->map.size();
  }
  return s;
}

void PlanCache::clear() {
  for (const auto& shard : shards_) {
    MutexLock lk(shard->mu);
    size_.fetch_sub(shard->map.size(), std::memory_order_relaxed);
    shard->map.clear();
    shard->lru.clear();
  }
}

}  // namespace atalib::api
