#include "api/plan_cache.hpp"

#include <algorithm>
#include <optional>
#include <utility>

namespace atalib::api {

PlanCache::PlanCache(std::size_t capacity) : capacity_(std::max<std::size_t>(1, capacity)) {}

PlanCache& PlanCache::global() {
  static PlanCache cache;
  return cache;
}

std::shared_ptr<const AtaPlan> PlanCache::get_or_build(const PlanKey& key) {
  Future fut;
  // Deferred: the hot hit path must not pay the promise's shared-state
  // allocation — it is only materialized on a miss.
  std::optional<std::promise<std::shared_ptr<const AtaPlan>>> prom;
  std::uint64_t my_id = 0;
  {
    MutexLock lk(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // promote to MRU
      fut = it->second.plan;
    } else {
      ++misses_;
      my_id = ++next_id_;
      prom.emplace();
      fut = prom->get_future().share();
      lru_.push_front(key);
      map_.emplace(key, Entry{fut, lru_.begin(), my_id});
      while (map_.size() > capacity_) {
        // Evict the coldest entry whose build has completed. An in-flight
        // entry must survive — dropping it would let a concurrent request
        // for the same key start a duplicate build, breaking the
        // build-exactly-once guarantee. The map may therefore exceed
        // capacity transiently, by at most the number of concurrent cold
        // builds; the next miss retries the eviction.
        auto victim = lru_.end();
        for (auto it = std::prev(lru_.end());; --it) {
          if (map_.find(*it)->second.ready) {
            victim = it;
            break;
          }
          if (it == lru_.begin()) break;
        }
        if (victim == lru_.end()) break;  // every entry still building
        map_.erase(*victim);
        lru_.erase(victim);
        ++evictions_;
      }
    }
  }
  if (prom) {
    try {
      prom->set_value(AtaPlan::build(key));
      // Mark the entry evictable (unless eviction already dropped it or a
      // later build re-inserted the key).
      MutexLock lk(mu_);
      auto it = map_.find(key);
      if (it != map_.end() && it->second.id == my_id) it->second.ready = true;
    } catch (...) {
      {
        // Forget the failed entry (unless eviction already dropped it or a
        // later build re-inserted the key) so the next request retries.
        MutexLock lk(mu_);
        auto it = map_.find(key);
        if (it != map_.end() && it->second.id == my_id) {
          lru_.erase(it->second.lru_it);
          map_.erase(it);
        }
      }
      prom->set_exception(std::current_exception());
    }
  }
  return fut.get();  // blocks on a concurrent builder; rethrows build errors
}

bool PlanCache::contains(const PlanKey& key) const {
  MutexLock lk(mu_);
  return map_.find(key) != map_.end();
}

PlanCacheStats PlanCache::stats() const {
  MutexLock lk(mu_);
  PlanCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.size = map_.size();
  s.capacity = capacity_;
  return s;
}

void PlanCache::clear() {
  MutexLock lk(mu_);
  map_.clear();
  lru_.clear();
}

}  // namespace atalib::api
