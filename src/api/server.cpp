#include "api/server.hpp"

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "api/execute.hpp"

namespace atalib::api {

Server::Server(const Options& opts) : cache_(opts.plan_capacity), pool_(opts.threads) {}

template <typename T>
std::future<void> Server::submit(T alpha, ConstMatrixView<T> a, MatrixView<T> c,
                                 SharedOptions opts) {
  opts.executor = nullptr;  // requests always execute on the server's pool
  validate(opts);
  // Reject a mismatched C before touching the cache: the check needs no
  // plan, and a rejected request must not pay a schedule build or insert
  // an entry that could evict a plan warm traffic is using.
  if (c.rows != a.cols || c.cols != a.cols) {
    throw std::invalid_argument("Server::submit: C must be n x n = " +
                                std::to_string(a.cols) + "^2, got " + std::to_string(c.rows) +
                                "x" + std::to_string(c.cols));
  }
  std::shared_ptr<const AtaPlan> plan =
      cache_.get_or_build(shared_plan_key(dtype_of<T>(), a.rows, a.cols, opts));
  check_shared(*plan, a, c);
  warm_for(*plan, pool_);
  const int ntasks = static_cast<int>(plan->schedule().tasks.size());
  // The batch owns the plan (an eviction must not pull the schedule out
  // from under in-flight tasks) and captures the views by value; the
  // caller's buffers must outlive the future per the submit() contract.
  auto body = [plan, alpha, a, c](int t, runtime::TaskContext& ctx) {
    run_plan_task(*plan, t, alpha, a, c, ctx);
  };
  const int nnodes = pool_.numa_nodes();
  if (nnodes > 1) {
    // Home each write-disjoint C stripe on a node round-robin so its pages
    // and packed panels stay node-local (AtaPlan::preferred_node).
    return pool_.submit(ntasks, std::move(body),
                        [plan, nnodes](int t) { return plan->preferred_node(t, nnodes); });
  }
  return pool_.submit(ntasks, std::move(body));
}

template <typename T>
std::future<void> Server::submit(T alpha, ConstMatrixView<T> a, MatrixView<T> c) {
  SharedOptions opts;
  opts.threads = pool_.concurrency();
  opts.oversub = 2;
  return submit(alpha, a, c, opts);
}

#define ATALIB_API_SERVER_INST(T)                                                      \
  template std::future<void> Server::submit<T>(T, ConstMatrixView<T>, MatrixView<T>,   \
                                               SharedOptions);                         \
  template std::future<void> Server::submit<T>(T, ConstMatrixView<T>, MatrixView<T>)
ATALIB_API_SERVER_INST(float);
ATALIB_API_SERVER_INST(double);
#undef ATALIB_API_SERVER_INST

}  // namespace atalib::api
