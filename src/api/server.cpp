#include "api/server.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

#include "api/execute.hpp"

namespace atalib::api {

namespace {

using SteadyClock = std::chrono::steady_clock;

std::int64_t ns_of(SteadyClock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(tp.time_since_epoch())
      .count();
}

std::uint64_t elapsed_ns(SteadyClock::time_point from, SteadyClock::time_point to) {
  return to <= from
             ? 0
             : static_cast<std::uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
                       .count());
}

}  // namespace

Server::Server(const Options& opts)
    : cache_(opts.plan_capacity, opts.plan_shards),
      max_inflight_(opts.max_inflight_requests),
      max_batches_(opts.max_queued_batches),
      policy_(opts.admission),
      faults_(fault::Plan::from_env()),
      pool_(opts.threads) {}

Server::~Server() {
  UniqueLock lk(gate_mu_);
  shutting_down_ = true;
  // Abort everything still unsettled: tasks that have not computed yet see
  // `cancelled` and skip; clients get ServerShutdown instead of a hang.
  for (auto& t : ledger_) {
    bool expected = false;
    if (!t->settled.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
      continue;
    }
    t->cancelled.store(true, std::memory_order_release);
    t->promise.set_exception(std::make_exception_ptr(
        ServerShutdown("atalib: Server destroyed with the request in flight")));
    --inflight_requests_;
  }
  ledger_.clear();
  gate_cv_.notify_all();
  // Wait for every admitted batch to retire and every blocked admitter to
  // wake (and throw ServerShutdown) before the members destruct: after
  // this loop no pool task touches server state, and ~pool_ (declared
  // last, destructed first) joins the workers before the gate itself goes.
  while (queued_batches_ != 0 || gate_waiters_ != 0) gate_cv_.wait(lk);
}

Server::Clock::time_point Server::admit(std::size_t nreq) {
  const auto t0 = Clock::now();
  if (runtime::ThreadPool::current_thread_in_task()) {
    // Re-entrant submissions execute inline in the pool (never queued);
    // blocking the worker on its own server's gate would deadlock, so they
    // bypass the bounds and only respect shutdown.
    MutexLock lk(gate_mu_);
    if (shutting_down_) {
      throw ServerShutdown("Server::submit: server is shutting down");
    }
    inflight_requests_ += nreq;
    ++queued_batches_;
    return t0;
  }
  if (nreq > max_inflight_ || max_batches_ == 0) {
    // Can never fit, under any policy: blocking would deadlock.
    rejected_.fetch_add(nreq, std::memory_order_relaxed);
    throw OverloadError(
        "Server::submit: request batch can never satisfy the admission bounds "
        "(batch of " +
        std::to_string(nreq) + ", max_inflight_requests " +
        std::to_string(max_inflight_) + ", max_queued_batches " +
        std::to_string(max_batches_) + ")");
  }
  UniqueLock lk(gate_mu_);
  for (;;) {
    if (shutting_down_) {
      throw ServerShutdown("Server::submit: server is shutting down");
    }
    std::size_t phantom = 0;
    if constexpr (fault::kEnabled) {
      if (faults_) phantom = faults_->queue_pressure();
    }
    const bool req_ok = max_inflight_ == kUnlimited ||
                        inflight_requests_ + phantom + nreq <= max_inflight_;
    const bool batch_ok = max_batches_ == kUnlimited || queued_batches_ < max_batches_;
    if (req_ok && batch_ok) break;
    if (policy_ == AdmissionPolicy::kShedOldest && shed_expired(Clock::now()) > 0) {
      continue;  // re-evaluate with the freed capacity
    }
    if (policy_ == AdmissionPolicy::kBlock) {
      ++gate_waiters_;
      gate_cv_.wait(lk);
      --gate_waiters_;
      if (shutting_down_) gate_cv_.notify_all();  // let ~Server see the drain
      continue;
    }
    rejected_.fetch_add(nreq, std::memory_order_relaxed);
    throw OverloadError(
        "Server::submit: admission gate full (" + std::to_string(inflight_requests_) +
        " in flight of " + std::to_string(max_inflight_) + ", " +
        std::to_string(queued_batches_) + " batches of " + std::to_string(max_batches_) +
        ")");
  }
  inflight_requests_ += nreq;
  ++queued_batches_;
  return t0;
}

void Server::unadmit(std::size_t nreq) {
  MutexLock lk(gate_mu_);
  inflight_requests_ -= nreq;
  --queued_batches_;
  gate_cv_.notify_all();
}

std::size_t Server::shed_expired(Clock::time_point now) {
  std::size_t freed = 0;
  for (auto& t : ledger_) {
    if (t->settled.load(std::memory_order_relaxed)) continue;
    if (now < t->deadline) continue;
    bool expected = false;
    if (!t->settled.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
      continue;
    }
    t->cancelled.store(true, std::memory_order_release);
    t->promise.set_exception(std::make_exception_ptr(DeadlineExceeded(
        "atalib: request shed under kShedOldest after its deadline expired")));
    --inflight_requests_;
    ++freed;
  }
  while (!ledger_.empty() && ledger_.front()->settled.load(std::memory_order_relaxed)) {
    ledger_.pop_front();
  }
  if (freed > 0) {
    shed_.fetch_add(freed, std::memory_order_relaxed);
    deadline_expired_.fetch_add(freed, std::memory_order_relaxed);
  }
  return freed;
}

bool Server::claim_and_release(Ticket& t) {
  bool expected = false;
  if (!t.settled.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
    return false;
  }
  MutexLock lk(gate_mu_);
  --inflight_requests_;
  while (!ledger_.empty() && ledger_.front()->settled.load(std::memory_order_relaxed)) {
    ledger_.pop_front();
  }
  gate_cv_.notify_all();
  return true;
}

void Server::on_batch_retired() {
  // The LAST server-state touch any task of a batch performs; ~Server
  // waits for queued_batches_ == 0, so everything a task does happens
  // before the members destruct.
  MutexLock lk(gate_mu_);
  --queued_batches_;
  gate_cv_.notify_all();
}

metrics::ServerStats Server::stats() const {
  metrics::ServerStats s;
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  {
    MutexLock lk(gate_mu_);
    s.inflight_requests = inflight_requests_;
    s.queued_batches = queued_batches_;
  }
  s.pool_queue_depth = pool_.queue_depth();
  s.admission_wait = metrics::summarize(admission_wait_);
  s.queue_wait = metrics::summarize(queue_wait_);
  s.compute = metrics::summarize(compute_);
  return s;
}

template <typename T>
std::future<void> Server::submit(T alpha, ConstMatrixView<T> a, MatrixView<T> c,
                                 SharedOptions opts) {
  // Reject a mismatched C before touching the gate or the cache: the check
  // needs no plan, and a rejected request must not pay a schedule build or
  // insert an entry that could evict a plan warm traffic is using.
  if (c.rows != a.cols || c.cols != a.cols) {
    throw std::invalid_argument("Server::submit: C must be n x n = " +
                                std::to_string(a.cols) + "^2, got " + std::to_string(c.rows) +
                                "x" + std::to_string(c.cols));
  }
  // One request is a batch of one: a single machinery gives submit() the
  // same admission, deadline, settle-once, and teardown guarantees.
  AtaRequest<T> req;
  req.alpha = alpha;
  req.a = a;
  req.c = c;
  req.priority = opts.priority;
  req.deadline = opts.deadline;
  auto futures = submit_batch<T>(std::span<const AtaRequest<T>>(&req, 1), std::move(opts));
  return std::move(futures.front());
}

template <typename T>
std::future<void> Server::submit(T alpha, ConstMatrixView<T> a, MatrixView<T> c) {
  SharedOptions opts;
  opts.threads = pool_.concurrency();
  opts.oversub = 2;
  return submit(alpha, a, c, opts);
}

namespace {

/// One unit of batched work: request `req`, task `local` of its plan.
struct BatchUnit {
  int req;
  int local;
};

/// One pool task of a fused batch: a run of consecutive units. Multi-task
/// plans get one unit per pool task (their stripes must spread over the
/// pool); single-task requests are CHUNKED — consecutive same-plan
/// requests share one pool task — so the per-task executor overhead
/// (queue round-trip, context wake-up) is paid once per chunk, not once
/// per tiny request. That amortization is where batch >> 1 beats a
/// per-request loop even when no parallel speedup is available.
struct BatchChunk {
  int first_unit;
  int nunits;
};

/// Shared lifetime of one fused batch: the plans, the request views, and
/// the per-request completion/error bookkeeping every task touches. Tasks
/// hold it by shared_ptr so the state outlives both the client (who may
/// drop futures early) and the pool batch.
template <typename T>
struct BatchState {
  BatchPlan batch;
  std::vector<AtaRequest<T>> requests;
  std::vector<std::shared_ptr<detail::RequestTicket>> tickets;
  std::vector<BatchUnit> units;
  std::vector<BatchChunk> chunks;
  // Atomics are not movable, so the per-request arrays live behind
  // unique_ptr instead of vector.
  std::unique_ptr<std::atomic<int>[]> remaining;
  std::unique_ptr<std::atomic<bool>[]> failed;
  std::vector<std::exception_ptr> errors;
  /// Chunks not yet finished; the task taking it to zero retires the
  /// batch at the server's gate.
  std::atomic<int> chunks_remaining{0};
  /// The server's fault plan, shared so injection hooks stay valid even
  /// while the server tears down.
  std::shared_ptr<const fault::Plan> faults;
};

}  // namespace

template <typename T>
std::vector<std::future<void>> Server::submit_batch(std::span<const AtaRequest<T>> requests,
                                                    SharedOptions opts) {
  opts.executor = nullptr;  // requests always execute on the server's pool
  validate(opts);
  if (requests.empty()) return {};
  const std::size_t nreq = requests.size();

  // The admission gate comes FIRST: a rejected submission throws before
  // any promise, plan lookup, or ticket exists.
  const Clock::time_point t0 = admit(nreq);

  auto state = std::make_shared<BatchState<T>>();
  try {
    // Throws std::invalid_argument on any bad request, before any promise
    // exists or any task is enqueued: a rejected batch is all-or-nothing.
    state->batch = build_batch_plan<T>(cache_, requests, opts);
  } catch (...) {
    unadmit(nreq);
    throw;
  }
  state->requests.assign(requests.begin(), requests.end());
  state->faults = faults_;
  admitted_.fetch_add(nreq, std::memory_order_relaxed);

  const Clock::time_point admitted_at = Clock::now();
  const std::uint64_t adm_ns = elapsed_ns(t0, admitted_at);

  const int total = state->batch.total_tasks();
  state->tickets.reserve(nreq);
  state->units.reserve(static_cast<std::size_t>(total));
  state->remaining = std::make_unique<std::atomic<int>[]>(nreq);
  state->failed = std::make_unique<std::atomic<bool>[]>(nreq);
  state->errors.resize(nreq);

  std::vector<std::future<void>> futures;
  futures.reserve(nreq);
  for (std::size_t r = 0; r < nreq; ++r) {
    auto ticket = std::make_shared<Ticket>();
    ticket->deadline = std::min(opts.deadline, requests[r].deadline);
    ticket->admitted_at = admitted_at;
    futures.push_back(ticket->promise.get_future());
    state->tickets.push_back(std::move(ticket));
    const int ntasks = state->batch.task_offset[r + 1] - state->batch.task_offset[r];
    state->remaining[r].store(ntasks, std::memory_order_relaxed);
    state->failed[r].store(false, std::memory_order_relaxed);
    admission_wait_.record(adm_ns);
  }
  {
    MutexLock lk(gate_mu_);
    for (const auto& t : state->tickets) ledger_.push_back(t);
  }
  // A deadline already expired at submit settles right here: its tasks are
  // still enqueued (keeping the batch layout uniform) but become no-ops.
  for (std::size_t r = 0; r < nreq; ++r) {
    Ticket& ticket = *state->tickets[r];
    if (admitted_at < ticket.deadline) continue;
    ticket.cancelled.store(true, std::memory_order_release);
    if (claim_and_release(ticket)) {
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      ticket.promise.set_exception(std::make_exception_ptr(DeadlineExceeded(
          "atalib: request deadline already expired at submit")));
    }
  }

  // Order units so higher-priority requests' tasks sit ahead of lower ones
  // in the flat index space (stable: FIFO within a priority class). The
  // batch's pool priority is the max over its requests, so a mixed batch
  // competes at its most urgent class.
  std::vector<int> order(nreq);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&requests](int x, int y) {
    return requests[static_cast<std::size_t>(x)].priority >
           requests[static_cast<std::size_t>(y)].priority;
  });
  int batch_priority = opts.priority;
  for (std::size_t r = 0; r < nreq; ++r) {
    batch_priority = std::max(batch_priority, requests[r].priority);
  }
  for (int r : order) {
    const auto rr = static_cast<std::size_t>(r);
    const int ntasks = state->batch.task_offset[rr + 1] - state->batch.task_offset[rr];
    for (int local = 0; local < ntasks; ++local) {
      state->units.push_back({r, local});
    }
  }

  // Chunk the unit list into pool tasks. Serial (single-task) requests
  // coalesce into runs of up to `chunk_target` consecutive same-plan
  // units; multi-task plans stay one unit per pool task so their stripes
  // spread over the pool. The target keeps several chunks per worker so
  // stealing can still balance an uneven batch.
  const int chunk_target =
      std::clamp(total / (std::max(1, pool_.concurrency()) * 8), 1, 64);
  for (int u = 0; u < total;) {
    const int req = state->units[static_cast<std::size_t>(u)].req;
    const int plan_idx = state->batch.plan_of_request[static_cast<std::size_t>(req)];
    const bool serial =
        state->batch.task_offset[static_cast<std::size_t>(req) + 1] -
            state->batch.task_offset[static_cast<std::size_t>(req)] ==
        1;
    int len = 1;
    if (serial) {
      while (u + len < total && len < chunk_target) {
        const auto& next = state->units[static_cast<std::size_t>(u + len)];
        const auto nr = static_cast<std::size_t>(next.req);
        if (state->batch.plan_of_request[nr] != plan_idx ||
            state->batch.task_offset[nr + 1] - state->batch.task_offset[nr] != 1) {
          break;
        }
        ++len;
      }
    }
    state->chunks.push_back({u, len});
    u += len;
  }
  state->chunks_remaining.store(static_cast<int>(state->chunks.size()),
                                std::memory_order_relaxed);

  // One warm call for the whole batch: the pool's high-water mark covers
  // the largest plan, so every task's arena request is satisfied from the
  // already-grown slot slabs (the zero-slab warm-path invariant).
  if constexpr (std::is_same_v<T, float>) {
    pool_.warm_workspaces(state->batch.workspace_bound, 0);
  } else {
    pool_.warm_workspaces(0, state->batch.workspace_bound);
  }

  // Per-request completion: the unit that takes `remaining` to zero wins
  // the ticket's settle CAS (unless a shed / deadline / shutdown settled
  // it first, in which case the work was skipped). The first failing unit
  // of a request claims the error slot (CAS), writes the exception_ptr,
  // and the acq_rel decrement chain publishes it to whichever unit settles
  // — so a failure surfaces on its own request's future and never on the
  // (discarded) pool-level batch future or on a sibling request.
  Server* const server = this;
  auto body = [state, server](int t, runtime::TaskContext& ctx) {
    const BatchChunk chunk = state->chunks[static_cast<std::size_t>(t)];
    for (int u = chunk.first_unit; u < chunk.first_unit + chunk.nunits; ++u) {
      const BatchUnit unit = state->units[static_cast<std::size_t>(u)];
      const int req = unit.req;
      Ticket& ticket = *state->tickets[static_cast<std::size_t>(req)];
      const AtaRequest<T>& r = state->requests[static_cast<std::size_t>(req)];
      const AtaPlan& plan =
          *state->batch.plans[static_cast<std::size_t>(
              state->batch.plan_of_request[static_cast<std::size_t>(req)])];
      if (!ticket.cancelled.load(std::memory_order_acquire)) {
        const SteadyClock::time_point now = SteadyClock::now();
        if (now >= ticket.deadline) {
          // Expired before this unit computed: settle with DeadlineExceeded
          // and skip the leaf GEMMs (any remaining units skip too).
          ticket.cancelled.store(true, std::memory_order_release);
          if (server->claim_and_release(ticket)) {
            server->deadline_expired_.fetch_add(1, std::memory_order_relaxed);
            ticket.promise.set_exception(std::make_exception_ptr(DeadlineExceeded(
                "atalib: request deadline expired before execution")));
          }
        } else {
          std::int64_t expected = -1;
          if (ticket.started_ns.compare_exchange_strong(expected, ns_of(now),
                                                        std::memory_order_acq_rel)) {
            server->queue_wait_.record(elapsed_ns(ticket.admitted_at, now));
          }
          try {
            if constexpr (fault::kEnabled) {
              if (state->faults) {
                state->faults->maybe_slow_task();
                state->faults->maybe_throw_leaf();
              }
            }
            run_plan_task(plan, unit.local, r.alpha, r.a, r.c, ctx);
          } catch (...) {
            bool claimed = false;
            if (state->failed[req].compare_exchange_strong(claimed, true,
                                                           std::memory_order_relaxed)) {
              state->errors[static_cast<std::size_t>(req)] = std::current_exception();
            }
          }
        }
      }
      if (state->remaining[req].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        if (server->claim_and_release(ticket)) {
          server->completed_.fetch_add(1, std::memory_order_relaxed);
          const std::int64_t started = ticket.started_ns.load(std::memory_order_acquire);
          if (started >= 0) {
            const std::int64_t done = ns_of(SteadyClock::now());
            server->compute_.record(
                done > started ? static_cast<std::uint64_t>(done - started) : 0);
          }
          if (state->failed[req].load(std::memory_order_relaxed)) {
            ticket.promise.set_exception(state->errors[static_cast<std::size_t>(req)]);
          } else {
            ticket.promise.set_value();
          }
        }
      }
    }
    if (state->chunks_remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      server->on_batch_retired();
    }
  };

  const int nchunks = static_cast<int>(state->chunks.size());
  const int nnodes = pool_.numa_nodes();
  runtime::ThreadPool::SubmitOptions pool_opts;
  pool_opts.priority = batch_priority;
  if (nnodes > 1) {
    // Round-robin *chunks* over nodes (small single-task requests are
    // the common case), while a request split into stripes keeps its
    // plan's stripe->node mapping, rotated by the request index.
    pool_opts.preferred_node = [state, nnodes](int t) {
      const BatchChunk chunk = state->chunks[static_cast<std::size_t>(t)];
      const BatchUnit unit = state->units[static_cast<std::size_t>(chunk.first_unit)];
      const AtaPlan& plan =
          *state->batch.plans[static_cast<std::size_t>(
              state->batch.plan_of_request[static_cast<std::size_t>(unit.req)])];
      const int pref = plan.preferred_node(unit.local, nnodes);
      return pref < 0 ? unit.req % nnodes : (unit.req + pref) % nnodes;
    };
  }
  pool_.submit(nchunks, std::move(body), pool_opts);
  return futures;
}

template <typename T>
std::vector<std::future<void>> Server::submit_batch(std::span<const AtaRequest<T>> requests) {
  SharedOptions opts;
  opts.threads = 1;
  opts.oversub = 1;
  return submit_batch(requests, opts);
}

#define ATALIB_API_SERVER_INST(T)                                                      \
  template std::future<void> Server::submit<T>(T, ConstMatrixView<T>, MatrixView<T>,   \
                                               SharedOptions);                         \
  template std::future<void> Server::submit<T>(T, ConstMatrixView<T>, MatrixView<T>);  \
  template std::vector<std::future<void>> Server::submit_batch<T>(                     \
      std::span<const AtaRequest<T>>, SharedOptions);                                  \
  template std::vector<std::future<void>> Server::submit_batch<T>(                     \
      std::span<const AtaRequest<T>>)
ATALIB_API_SERVER_INST(float);
ATALIB_API_SERVER_INST(double);
#undef ATALIB_API_SERVER_INST

}  // namespace atalib::api
