#include "api/server.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

#include "api/execute.hpp"

namespace atalib::api {

Server::Server(const Options& opts) : cache_(opts.plan_capacity), pool_(opts.threads) {}

template <typename T>
std::future<void> Server::submit(T alpha, ConstMatrixView<T> a, MatrixView<T> c,
                                 SharedOptions opts) {
  opts.executor = nullptr;  // requests always execute on the server's pool
  validate(opts);
  // Reject a mismatched C before touching the cache: the check needs no
  // plan, and a rejected request must not pay a schedule build or insert
  // an entry that could evict a plan warm traffic is using.
  if (c.rows != a.cols || c.cols != a.cols) {
    throw std::invalid_argument("Server::submit: C must be n x n = " +
                                std::to_string(a.cols) + "^2, got " + std::to_string(c.rows) +
                                "x" + std::to_string(c.cols));
  }
  std::shared_ptr<const AtaPlan> plan =
      cache_.get_or_build(shared_plan_key(dtype_of<T>(), a.rows, a.cols, opts));
  check_shared(*plan, a, c);
  warm_for(*plan, pool_);
  const int ntasks = static_cast<int>(plan->schedule().tasks.size());
  // The batch owns the plan (an eviction must not pull the schedule out
  // from under in-flight tasks) and captures the views by value; the
  // caller's buffers must outlive the future per the submit() contract.
  auto body = [plan, alpha, a, c](int t, runtime::TaskContext& ctx) {
    run_plan_task(*plan, t, alpha, a, c, ctx);
  };
  const int nnodes = pool_.numa_nodes();
  if (nnodes > 1) {
    // Home each write-disjoint C stripe on a node round-robin so its pages
    // and packed panels stay node-local (AtaPlan::preferred_node).
    return pool_.submit(ntasks, std::move(body),
                        [plan, nnodes](int t) { return plan->preferred_node(t, nnodes); });
  }
  return pool_.submit(ntasks, std::move(body));
}

template <typename T>
std::future<void> Server::submit(T alpha, ConstMatrixView<T> a, MatrixView<T> c) {
  SharedOptions opts;
  opts.threads = pool_.concurrency();
  opts.oversub = 2;
  return submit(alpha, a, c, opts);
}

namespace {

/// One unit of batched work: request `req`, task `local` of its plan.
struct BatchUnit {
  int req;
  int local;
};

/// One pool task of a fused batch: a run of consecutive units. Multi-task
/// plans get one unit per pool task (their stripes must spread over the
/// pool); single-task requests are CHUNKED — consecutive same-plan
/// requests share one pool task — so the per-task executor overhead
/// (queue round-trip, context wake-up) is paid once per chunk, not once
/// per tiny request. That amortization is where batch >> 1 beats a
/// per-request loop even when no parallel speedup is available.
struct BatchChunk {
  int first_unit;
  int nunits;
};

/// Shared lifetime of one fused batch: the plans, the request views, and
/// the per-request completion/error bookkeeping every task touches. Tasks
/// hold it by shared_ptr so the state outlives both the client (who may
/// drop futures early) and the pool batch.
template <typename T>
struct BatchState {
  BatchPlan batch;
  std::vector<AtaRequest<T>> requests;
  std::vector<std::promise<void>> promises;
  std::vector<BatchUnit> units;
  std::vector<BatchChunk> chunks;
  // Atomics are not movable, so the per-request arrays live behind
  // unique_ptr instead of vector.
  std::unique_ptr<std::atomic<int>[]> remaining;
  std::unique_ptr<std::atomic<bool>[]> failed;
  std::vector<std::exception_ptr> errors;
};

}  // namespace

template <typename T>
std::vector<std::future<void>> Server::submit_batch(std::span<const AtaRequest<T>> requests,
                                                    SharedOptions opts) {
  opts.executor = nullptr;  // requests always execute on the server's pool
  validate(opts);
  if (requests.empty()) return {};

  auto state = std::make_shared<BatchState<T>>();
  // Throws std::invalid_argument on any bad request, before any promise
  // exists or any task is enqueued: a rejected batch is all-or-nothing.
  state->batch = build_batch_plan<T>(cache_, requests, opts);
  state->requests.assign(requests.begin(), requests.end());

  const std::size_t nreq = requests.size();
  const int total = state->batch.total_tasks();
  state->promises.resize(nreq);
  state->units.reserve(static_cast<std::size_t>(total));
  state->remaining = std::make_unique<std::atomic<int>[]>(nreq);
  state->failed = std::make_unique<std::atomic<bool>[]>(nreq);
  state->errors.resize(nreq);

  std::vector<std::future<void>> futures;
  futures.reserve(nreq);
  for (std::size_t r = 0; r < nreq; ++r) {
    const int ntasks = state->batch.task_offset[r + 1] - state->batch.task_offset[r];
    state->remaining[r].store(ntasks, std::memory_order_relaxed);
    state->failed[r].store(false, std::memory_order_relaxed);
    for (int local = 0; local < ntasks; ++local) {
      state->units.push_back({static_cast<int>(r), local});
    }
    futures.push_back(state->promises[r].get_future());
  }

  // Chunk the unit list into pool tasks. Serial (single-task) requests
  // coalesce into runs of up to `chunk_target` consecutive same-plan
  // units; multi-task plans stay one unit per pool task so their stripes
  // spread over the pool. The target keeps several chunks per worker so
  // stealing can still balance an uneven batch.
  const int chunk_target =
      std::clamp(total / (std::max(1, pool_.concurrency()) * 8), 1, 64);
  for (int u = 0; u < total;) {
    const int req = state->units[static_cast<std::size_t>(u)].req;
    const int plan_idx = state->batch.plan_of_request[static_cast<std::size_t>(req)];
    const bool serial =
        state->batch.task_offset[static_cast<std::size_t>(req) + 1] -
            state->batch.task_offset[static_cast<std::size_t>(req)] ==
        1;
    int len = 1;
    if (serial) {
      while (u + len < total && len < chunk_target) {
        const auto& next = state->units[static_cast<std::size_t>(u + len)];
        const auto nr = static_cast<std::size_t>(next.req);
        if (state->batch.plan_of_request[nr] != plan_idx ||
            state->batch.task_offset[nr + 1] - state->batch.task_offset[nr] != 1) {
          break;
        }
        ++len;
      }
    }
    state->chunks.push_back({u, len});
    u += len;
  }

  // One warm call for the whole batch: the pool's high-water mark covers
  // the largest plan, so every task's arena request is satisfied from the
  // already-grown slot slabs (the zero-slab warm-path invariant).
  if constexpr (std::is_same_v<T, float>) {
    pool_.warm_workspaces(state->batch.workspace_bound, 0);
  } else {
    pool_.warm_workspaces(0, state->batch.workspace_bound);
  }

  // Per-request completion: the unit that takes `remaining` to zero
  // settles that request's promise. The first failing unit of a request
  // claims the error slot (CAS), writes the exception_ptr, and the
  // acq_rel decrement chain publishes it to whichever unit settles —
  // so a failure surfaces on its own request's future and never on the
  // (discarded) pool-level batch future or on a sibling request.
  auto body = [state](int t, runtime::TaskContext& ctx) {
    const BatchChunk chunk = state->chunks[static_cast<std::size_t>(t)];
    for (int u = chunk.first_unit; u < chunk.first_unit + chunk.nunits; ++u) {
      const BatchUnit unit = state->units[static_cast<std::size_t>(u)];
      const int req = unit.req;
      const AtaRequest<T>& r = state->requests[static_cast<std::size_t>(req)];
      const AtaPlan& plan =
          *state->batch.plans[static_cast<std::size_t>(
              state->batch.plan_of_request[static_cast<std::size_t>(req)])];
      try {
        run_plan_task(plan, unit.local, r.alpha, r.a, r.c, ctx);
      } catch (...) {
        bool claimed = false;
        if (state->failed[req].compare_exchange_strong(claimed, true,
                                                       std::memory_order_relaxed)) {
          state->errors[static_cast<std::size_t>(req)] = std::current_exception();
        }
      }
      if (state->remaining[req].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        if (state->failed[req].load(std::memory_order_relaxed)) {
          state->promises[static_cast<std::size_t>(req)].set_exception(
              state->errors[static_cast<std::size_t>(req)]);
        } else {
          state->promises[static_cast<std::size_t>(req)].set_value();
        }
      }
    }
  };

  const int nchunks = static_cast<int>(state->chunks.size());
  const int nnodes = pool_.numa_nodes();
  if (nnodes > 1) {
    // Round-robin *chunks* over nodes (small single-task requests are
    // the common case), while a request split into stripes keeps its
    // plan's stripe->node mapping, rotated by the request index.
    auto hint = [state, nnodes](int t) {
      const BatchChunk chunk = state->chunks[static_cast<std::size_t>(t)];
      const BatchUnit unit = state->units[static_cast<std::size_t>(chunk.first_unit)];
      const AtaPlan& plan =
          *state->batch.plans[static_cast<std::size_t>(
              state->batch.plan_of_request[static_cast<std::size_t>(unit.req)])];
      const int pref = plan.preferred_node(unit.local, nnodes);
      return pref < 0 ? unit.req % nnodes : (unit.req + pref) % nnodes;
    };
    pool_.submit(nchunks, std::move(body), hint);
  } else {
    pool_.submit(nchunks, std::move(body));
  }
  return futures;
}

template <typename T>
std::vector<std::future<void>> Server::submit_batch(std::span<const AtaRequest<T>> requests) {
  SharedOptions opts;
  opts.threads = 1;
  opts.oversub = 1;
  return submit_batch(requests, opts);
}

#define ATALIB_API_SERVER_INST(T)                                                      \
  template std::future<void> Server::submit<T>(T, ConstMatrixView<T>, MatrixView<T>,   \
                                               SharedOptions);                         \
  template std::future<void> Server::submit<T>(T, ConstMatrixView<T>, MatrixView<T>);  \
  template std::vector<std::future<void>> Server::submit_batch<T>(                     \
      std::span<const AtaRequest<T>>, SharedOptions);                                  \
  template std::vector<std::future<void>> Server::submit_batch<T>(                     \
      std::span<const AtaRequest<T>>)
ATALIB_API_SERVER_INST(float);
ATALIB_API_SERVER_INST(double);
#undef ATALIB_API_SERVER_INST

}  // namespace atalib::api
