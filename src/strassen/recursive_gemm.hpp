#pragma once
// RecursiveGEMM (Algorithm 2): cache-oblivious cubic C += alpha * A^T B.
//
// Eight-way 2x2x2 split with a BLAS base case. This is the multiplication
// the task-tree scheduler simulates (§4.1.3: the parallel algorithms build
// their recursion tree over AtANaive, which uses RecursiveGEMM instead of
// Strassen, because it allocates nothing and balances evenly). It also
// serves as the allocation-free cubic comparator in tests and ablations.

#include "strassen/options.hpp"

namespace atalib {

/// C += alpha * A^T B by recursive 2x2 blocking (no extra memory).
template <typename T>
void recursive_gemm_tn(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c,
                       const RecurseOptions& opts = {});

extern template void recursive_gemm_tn<float>(float, ConstMatrixView<float>,
                                              ConstMatrixView<float>, MatrixView<float>,
                                              const RecurseOptions&);
extern template void recursive_gemm_tn<double>(double, ConstMatrixView<double>,
                                               ConstMatrixView<double>, MatrixView<double>,
                                               const RecurseOptions&);

}  // namespace atalib
