#include "strassen/tuner.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>

#include "ata/ata.hpp"
#include "blas/gemm.hpp"
#include "blas/kernels/registry.hpp"
#include "blas/panel_syrk.hpp"
#include "common/cacheinfo.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "matrix/matrix.hpp"
#include "strassen/strassen.hpp"
#include "strassen/workspace.hpp"

namespace atalib::strassen {
namespace {

bool env_forces_scalar() {
  const char* v = std::getenv("ATALIB_FORCE_SCALAR_KERNELS");
  return v != nullptr && *v != '\0' && std::string_view(v) != "0";
}

const char* dtype_tag(std::size_t elem_bytes) {
  return elem_bytes == sizeof(float) ? "f32" : "f64";
}

/// Memo / cache-file key: the tuned value is a property of (ISA, dtype) on
/// this machine, so forced-ISA toggles in tests re-tune rather than reuse a
/// crossover measured on a different tier.
template <typename T>
std::string tuning_key() {
  std::ostringstream os;
  os << blas::kernels::isa_name(blas::kernels::active_config<T>().isa) << ' '
     << dtype_tag(sizeof(T));
  return os.str();
}

/// Time the registry gemm against exactly one Strassen level at square size
/// n and return the crossover threshold, or 0 if Strassen never wins on the
/// ladder. base = n*n makes the top (n, n, n) call recurse (footprint 2n^2)
/// while all seven half-size children fire the base case (footprint ~n^2/2),
/// so the comparison isolates "one level of Strassen + fused adds" against
/// "one registry gemm" — the quantity the cut-off actually trades.
template <typename T>
index_t measure_crossover() {
  constexpr index_t kLadder[] = {96, 128, 160, 192, 256, 320};
  constexpr int kReps = 3;
  const index_t nmax = kLadder[sizeof(kLadder) / sizeof(kLadder[0]) - 1];

  Matrix<T> a(nmax, nmax), b(nmax, nmax), c(nmax, nmax);
  Xoshiro256 rng(0x5eed5eedULL);
  for (index_t i = 0; i < nmax * nmax; ++i) {
    a.data()[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
    b.data()[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
    c.data()[i] = T(0);
  }

  for (const index_t n : kLadder) {
    const ConstMatrixView<T> av(a.data(), n, n, nmax);
    const ConstMatrixView<T> bv(b.data(), n, n, nmax);
    MatrixView<T> cv(c.data(), n, n, nmax);

    const double t_gemm =
        min_time_of([&] { blas::gemm_tn(T(1), av, bv, cv); }, kReps);

    RecurseOptions one_level;
    one_level.base_case_elements = n * n;  // explicit: never re-enters the tuner
    Arena<T> arena(static_cast<std::size_t>(
        strassen_workspace_bound(n, n, n, one_level, sizeof(T))));
    const double t_strassen =
        min_time_of([&] { strassen_tn(T(1), av, bv, cv, arena, one_level); }, kReps);

    if (t_strassen < t_gemm) {
      // Smallest ladder size where one Strassen level wins: pick the largest
      // base budget that still makes (n, n, n) recurse.
      return 2 * n * n - 1;
    }
  }
  return 0;
}

/// Time the Strassen AtA recursion against the blocked panel-SYRK on
/// m = ratio * n inputs (n fixed small, the serving shape) and return the
/// smallest ladder ratio where the panel engine wins, or 0 if it never
/// does. `base` is the already-resolved Strassen base-case cut-off, passed
/// in so this measurement can never re-enter the tuner.
template <typename T>
index_t measure_ts_crossover(index_t base) {
  constexpr index_t kN = 64;
  constexpr index_t kRatios[] = {2, 4, 8, 16, 32};
  constexpr int kReps = 3;
  const index_t mmax = kRatios[sizeof(kRatios) / sizeof(kRatios[0]) - 1] * kN;

  Matrix<T> a(mmax, kN);
  Matrix<T> c(kN, kN);
  Xoshiro256 rng(0x7a11f1a7ULL);
  for (index_t i = 0; i < mmax * kN; ++i) {
    a.data()[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
  }
  for (index_t i = 0; i < kN * kN; ++i) c.data()[i] = T(0);

  RecurseOptions rec;
  rec.base_case_elements = base;  // explicit: never re-enters the tuner
  for (const index_t ratio : kRatios) {
    const index_t m = ratio * kN;
    const ConstMatrixView<T> av(a.data(), m, kN, kN);
    MatrixView<T> cv = c.view();

    Arena<T> arena(static_cast<std::size_t>(
        std::max(ata_workspace_bound(m, kN, rec, sizeof(T)),
                 blas::panel_syrk_workspace_bound<T>(m, kN))));
    const double t_strassen =
        min_time_of([&] { ata(T(1), av, cv, arena, rec); }, kReps);
    const double t_panel = min_time_of(
        [&] {
          arena.reset();
          blas::panel_syrk_ln(T(1), av, cv, &arena);
        },
        kReps);
    if (t_panel < t_strassen) return ratio;
  }
  return 0;
}

}  // namespace

index_t Tuner::load_cached(const std::string& key) const {
  if (cache_path_.empty()) return 0;
  std::ifstream in(cache_path_);
  if (!in) return 0;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string isa, dtype;
    long long value = 0;
    if ((ls >> isa >> dtype >> value) && isa + ' ' + dtype == key && value > 0) {
      return static_cast<index_t>(value);
    }
  }
  return 0;
}

void Tuner::store(const std::string& key, index_t value) const {
  if (cache_path_.empty()) return;
  // Rewrite the file keeping other (isa, dtype) entries; best-effort — a
  // missing or unwritable cache only costs a re-measurement next process.
  std::ostringstream out;
  {
    std::ifstream in(cache_path_);
    std::string line;
    while (in && std::getline(in, line)) {
      std::istringstream ls(line);
      std::string isa, dtype;
      if ((ls >> isa >> dtype) && isa + ' ' + dtype == key) continue;
      if (!line.empty()) out << line << '\n';
    }
  }
  out << key << ' ' << value << '\n';
  std::ofstream f(cache_path_, std::ios::trunc);
  if (f) f << out.str();
}

index_t Tuner::base_case_elements(std::size_t elem_bytes) {
  const index_t probed =
      static_cast<index_t>(default_base_case_elements(elem_bytes));
  // The forced-scalar CI leg must behave identically across machines, so it
  // ignores both the cache file and the measurement.
  if (env_forces_scalar()) return probed;

  const std::string key = elem_bytes == sizeof(float) ? tuning_key<float>()
                                                      : tuning_key<double>();
  MutexLock lock(mu_);
  auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;

  index_t value = load_cached(key);
  if (value == 0) {
    const index_t measured = elem_bytes == sizeof(float)
                                 ? measure_crossover<float>()
                                 : measure_crossover<double>();
    // No crossover on the ladder -> the static cache probe is the best
    // information we have. Clamp a measured value so a noisy run cannot
    // produce a degenerate cut-off.
    value = measured == 0 ? probed
                          : std::min(std::max<index_t>(measured, 1024), 4 * probed);
    store(key, value);
  }
  memo_.emplace(key, value);
  return value;
}

index_t Tuner::tall_skinny_ratio(std::size_t elem_bytes) {
  // Static default when measurement is unavailable: m/n >= 8 is deep into
  // the territory where the recursion's n-extent halving has hit min_dim.
  constexpr index_t kDefault = 8;
  if (env_forces_scalar()) return kDefault;

  // Resolve the Strassen side's cut-off first (own lock acquisition, so the
  // measurement below can never re-enter the tuner lock).
  const index_t base = base_case_elements(elem_bytes);

  const std::string key = (elem_bytes == sizeof(float) ? tuning_key<float>()
                                                       : tuning_key<double>()) +
                          "-ts";
  MutexLock lock(mu_);
  auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;

  index_t value = load_cached(key);
  if (value == 0) {
    const index_t measured = elem_bytes == sizeof(float)
                                 ? measure_ts_crossover<float>(base)
                                 : measure_ts_crossover<double>(base);
    // No crossover on the ladder -> the panel engine never won; a huge
    // ratio keeps the planner on the recursion for every realistic shape.
    value = measured == 0 ? (index_t{1} << 20)
                          : std::min(std::max<index_t>(measured, 2), index_t{64});
    store(key, value);
  }
  memo_.emplace(key, value);
  return value;
}

Tuner& Tuner::global() {
  static Tuner tuner = [] {
    const char* path = std::getenv("ATALIB_TUNING_CACHE");
    return Tuner(path != nullptr ? std::string(path) : std::string());
  }();
  return tuner;
}

}  // namespace atalib::strassen

namespace atalib {

index_t tuned_base_case_elements(std::size_t elem_bytes) {
  return strassen::Tuner::global().base_case_elements(elem_bytes);
}

index_t tuned_tall_skinny_ratio(std::size_t elem_bytes) {
  return strassen::Tuner::global().tall_skinny_ratio(elem_bytes);
}

}  // namespace atalib
