#include "strassen/strassen.hpp"

#include "strassen/detail/strassen_impl.hpp"

namespace atalib {
namespace {

/// Workspace policy backed by the checkpointed bump arena (§3.3 scheme).
template <typename T>
struct ArenaPolicy {
  Arena<T>& arena;

  class LevelScope {
   public:
    LevelScope(Arena<T>& arena, index_t ta_n, index_t tb_n, index_t mt_n)
        : arena_(arena), cp_(arena.checkpoint()) {
      ta_ = arena_.allocate(static_cast<std::size_t>(ta_n));
      tb_ = arena_.allocate(static_cast<std::size_t>(tb_n));
      mt_ = arena_.allocate(static_cast<std::size_t>(mt_n));
    }
    LevelScope(const LevelScope&) = delete;
    LevelScope& operator=(const LevelScope&) = delete;
    ~LevelScope() { arena_.restore(cp_); }

    T* ta() const { return ta_; }
    T* tb() const { return tb_; }
    T* mt() const { return mt_; }

   private:
    Arena<T>& arena_;
    typename Arena<T>::Checkpoint cp_;
    T* ta_;
    T* tb_;
    T* mt_;
  };

  LevelScope level(index_t ta_n, index_t tb_n, index_t mt_n) {
    return LevelScope(arena, ta_n, tb_n, mt_n);
  }

  /// Base-case gemms pack into the same arena (checkpoint-scoped inside the
  /// leaf call), so a warm Strassen run performs zero heap allocations.
  Arena<T>* gemm_arena() { return &arena; }
};

}  // namespace

template <typename T>
void strassen_tn(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c,
                 Arena<T>& arena, const RecurseOptions& opts) {
  const index_t base = opts.resolved_base_elements(sizeof(T));
  ArenaPolicy<T> policy{arena};
  detail::strassen_rec(alpha, a, b, c, policy, base, opts);
}

template <typename T>
void fast_strassen(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c,
                   const RecurseOptions& opts) {
  const index_t bound = strassen_workspace_bound(a.rows, a.cols, b.cols, opts, sizeof(T));
  Arena<T> arena(static_cast<std::size_t>(bound));
  strassen_tn(alpha, a, b, c, arena, opts);
}

#define ATALIB_STRASSEN_INST(T)                                                          \
  template void strassen_tn<T>(T, ConstMatrixView<T>, ConstMatrixView<T>, MatrixView<T>, \
                               Arena<T>&, const RecurseOptions&);                        \
  template void fast_strassen<T>(T, ConstMatrixView<T>, ConstMatrixView<T>,              \
                                 MatrixView<T>, const RecurseOptions&)
ATALIB_STRASSEN_INST(float);
ATALIB_STRASSEN_INST(double);
#undef ATALIB_STRASSEN_INST

}  // namespace atalib
