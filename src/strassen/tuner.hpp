#pragma once
// Measured auto-tuning of the Strassen base-case cut-off (DESIGN.md §6).
//
// RecurseOptions::base_case_elements == 0 means "auto". Historically that
// resolved to a static cache-probe heuristic (half of L2); the Tuner replaces
// it with a measurement: on first use it times the registry gemm against one
// Strassen level across a small square-size ladder and converts the observed
// crossover n* into the footprint threshold 2*n*^2 - 1 (the largest base
// budget that still makes an n* x n* x n* product recurse). The result is
// memoized per (active ISA, dtype) for the process lifetime and persisted to
// an optional cache file so later processes skip the measurement entirely.
//
// The measurement runs with explicit non-zero cut-offs, so it can never
// re-enter the tuner, and it happens at plan-build / first-call time in the
// caller's thread — never inside a pool worker's warm path.

#include <cstddef>
#include <map>
#include <string>
#include <utility>

#include "common/thread_annotations.hpp"
#include "matrix/view.hpp"

namespace atalib::strassen {

class Tuner {
 public:
  /// Tuner persisting to `cache_path` ("" = in-memory only). Tests use this
  /// to seed a temp file and check determinism.
  explicit Tuner(std::string cache_path) : cache_path_(std::move(cache_path)) {}

  /// Base-case threshold (elements) for scalars of `elem_bytes` bytes on the
  /// currently dispatched ISA. Order of resolution: process memo -> cache
  /// file -> ladder measurement (which then populates both). Falls back to
  /// the static cache-probe default when the measurement finds no crossover
  /// or when ATALIB_FORCE_SCALAR_KERNELS pins the process to the scalar
  /// tier (that CI leg must not depend on machine-speed measurements).
  index_t base_case_elements(std::size_t elem_bytes);

  /// Tall-skinny crossover ratio for the shape-aware planner (DESIGN.md
  /// §8): the smallest m/n at which the blocked panel-SYRK engine beats
  /// the Strassen recursion on this (ISA, dtype). Same resolution order
  /// and cache file as base_case_elements (lines "<isa> <f32|f64>-ts
  /// <ratio>"); falls back to a static default of 8 when the ladder finds
  /// no crossover or under ATALIB_FORCE_SCALAR_KERNELS. Plans built with
  /// SharedOptions::tall_skinny_ratio == 0 route through this and store
  /// the resolved ratio in their cache key.
  index_t tall_skinny_ratio(std::size_t elem_bytes);

  /// Process-wide tuner; cache path read once from ATALIB_TUNING_CACHE.
  static Tuner& global();

 private:
  index_t load_cached(const std::string& key) const ATALIB_REQUIRES(mu_);
  void store(const std::string& key, index_t value) const ATALIB_REQUIRES(mu_);
  index_t measure(std::size_t elem_bytes) const;

  /// Guards the memo map and the cache file (load_cached/store read and
  /// rewrite it, and concurrent measurements for the same key must not
  /// interleave their writes).
  mutable Mutex mu_;
  std::string cache_path_;  ///< immutable after construction
  std::map<std::string, index_t> memo_ ATALIB_GUARDED_BY(mu_);
};

}  // namespace atalib::strassen
