#pragma once
// Shared Strassen recursion, parameterized over the workspace policy.
//
// The algebra (seven products, virtual padding, tight extents) is identical
// for FastStrassen (arena workspace, §3.3) and the per-level-allocating
// ablation baseline; only where the three per-level temporaries come from
// differs. WorkspacePolicy provides:
//   LevelScope level(index_t ta_elems, index_t tb_elems, index_t mt_elems)
// where LevelScope exposes T* ta(), tb(), mt() and releases on destruction,
// plus gemm_arena(): the Arena the base-case multiplies draw their packed
// panels from (nullptr = the leaf kernel's thread-local fallback). Routing
// the leaves through the same arena as the recursion temporaries is what
// keeps a pool worker's Strassen leaf malloc-free once its slot arena is
// warm — see strassen/workspace.cpp for the combined bound.
//
// See strassen.hpp for the derivation of block shapes and tight extents.

#include <cassert>

#include "blas/gemm.hpp"
#include "blas/level1.hpp"
#include "matrix/matrix.hpp"
#include "strassen/options.hpp"
#include "strassen/workspace.hpp"

namespace atalib::detail {

template <typename T, typename Policy>
void strassen_level(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c,
                    Policy& ws, index_t base_elements, const RecurseOptions& opts);

template <typename T, typename Policy>
void strassen_rec(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c,
                  Policy& ws, index_t base_elements, const RecurseOptions& opts) {
  const index_t m = a.rows, n = a.cols, k = b.cols;
  assert(b.rows == m && c.rows == n && c.cols == k);
  if (n == 0 || k == 0 || m == 0) return;
  if (gemm_base_case(m, n, k, base_elements, opts.min_dim)) {
    blas::gemm_tn(alpha, a, b, c, ws.gemm_arena());
    return;
  }
  strassen_level(alpha, a, b, c, ws, base_elements, opts);
}

// One Strassen level for C += alpha * A^T B.
//
// Block shapes (eq. (1) halving: ceil first, floor second):
//   A11 m1 x n1   A12 m1 x n2   B11 m1 x k1   B12 m1 x k2
//   A21 m2 x n1   A22 m2 x n2   B21 m2 x k1   B22 m2 x k2
//   C11 n1 x k1   C12 n1 x k2   C21 n2 x k1   C22 n2 x k2
//
// With X = A^T (X11 = A11^T, X12 = A21^T, X21 = A12^T, X22 = A22^T) and
// padded blocks written with a bar:
//   M1 = (X11+X22)(B-11+B-22)   M2 = (X21+X22) B-11   M3 = X11 (B-12-B-22)
//   M4 = X22 (B-21-B-11)        M5 = (X11+X12) B-22   M6 = (X21-X11)(B-11+B-12)
//   M7 = (X12-X22)(B-21+B-22)
//   C-11 = M1+M4-M5+M7   C-12 = M3+M5   C-21 = M2+M4   C-22 = M1-M2+M3+M6
template <typename T, typename Policy>
void strassen_level(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c,
                    Policy& ws, index_t base_elements, const RecurseOptions& opts) {
  const index_t m = a.rows, n = a.cols, k = b.cols;
  const index_t m1 = half_up(m), m2 = half_down(m);
  const index_t n1 = half_up(n), n2 = half_down(n);
  const index_t k1 = half_up(k), k2 = half_down(k);

  const auto A11 = a.block(0, 0, m1, n1);
  const auto A12 = a.block(0, n1, m1, n2);
  const auto A21 = a.block(m1, 0, m2, n1);
  const auto A22 = a.block(m1, n1, m2, n2);
  const auto B11 = b.block(0, 0, m1, k1);
  const auto B12 = b.block(0, k1, m1, k2);
  const auto B21 = b.block(m1, 0, m2, k1);
  const auto B22 = b.block(m1, k1, m2, k2);
  auto C11 = c.block(0, 0, n1, k1);
  auto C12 = c.block(0, k1, n1, k2);
  auto C21 = c.block(n1, 0, n2, k1);
  auto C22 = c.block(n1, k1, n2, k2);

  auto level = ws.level(m1 * n1, m1 * k1, n1 * k1);

  // Compute one product into the zeroed temp (tight extent nr x kc); the
  // caller then accumulates slices of it into C quadrants.
  auto product = [&](ConstMatrixView<T> ax, ConstMatrixView<T> bx, index_t nr, index_t kc) {
    MatrixView<T> out(level.mt(), nr, kc, k1);
    fill_view(out, T(0));
    strassen_rec(T(1), ax, bx, out, ws, base_elements, opts);
    return ConstMatrixView<T>(out);
  };
  // C-quadrant accumulation: src may exceed dst (virtual padded rows/cols
  // are dropped) or be smaller (missing cells contribute zero).
  auto add_into = [&](ConstMatrixView<T> src, MatrixView<T> dst, T coeff) {
    const index_t r = std::min(src.rows, dst.rows);
    const index_t cc = std::min(src.cols, dst.cols);
    blas::view_axpy(coeff, src.block(0, 0, r, cc), dst.block(0, 0, r, cc));
  };

  // M1 = (A11 + A-22)^T (B-11 + B-22): full padded extents.
  {
    MatrixView<T> ta(level.ta(), m1, n1, n1);
    blas::block_add(A11, A22, ta);
    MatrixView<T> tb(level.tb(), m1, k1, k1);
    blas::block_add(B11, B22, tb);
    auto m1v = product(ta, tb, n1, k1);
    add_into(m1v, C11, alpha);
    add_into(m1v, C22, alpha);
  }
  // M2 = (A-12 + A-22)^T B11: both A-side blocks have n2 true columns ->
  // tight m1 x n2; M2 tight n2 x k1.
  {
    MatrixView<T> ta(level.ta(), m1, n2, n1);
    blas::block_add(A12, A22, ta);
    auto m2v = product(ta, B11, n2, k1);
    add_into(m2v, C21, alpha);
    add_into(m2v, C22, -alpha);
  }
  // M3 = A11^T (B-12 - B-22): B-side has k2 true columns -> tight m1 x k2;
  // M3 tight n1 x k2.
  {
    MatrixView<T> tb(level.tb(), m1, k2, k1);
    blas::block_sub(B12, B22, tb);
    auto m3v = product(A11, tb, n1, k2);
    add_into(m3v, C12, alpha);
    add_into(m3v, C22, alpha);
  }
  // M4 = A-22^T (B-21 - B-11): A-22's padded row is zero -> inner dim
  // truncates to m2 (B11 loses its last row against it); A-22's padded
  // column is zero -> M4 tight n2 x k1.
  {
    MatrixView<T> tb(level.tb(), m2, k1, k1);
    blas::block_sub(B21, ConstMatrixView<T>(b.block(0, 0, m2, k1)), tb);
    auto m4v = product(A22, tb, n2, k1);
    add_into(m4v, C11, alpha);
    add_into(m4v, C21, alpha);
  }
  // M5 = (A11 + A-21)^T B-22: A-side sum is m1 x n1 but B-22's padded row
  // is zero -> inner dim truncates to m2; M5 tight n1 x k2.
  {
    MatrixView<T> ta(level.ta(), m1, n1, n1);
    blas::block_add(A11, A21, ta);
    auto m5v = product(ConstMatrixView<T>(ta.block(0, 0, m2, n1)), B22, n1, k2);
    add_into(m5v, C11, -alpha);
    add_into(m5v, C12, alpha);
  }
  // M6 = (A-12 - A11)^T (B11 + B-12): A11's last column survives negation
  // -> full m1 x n1 A-side; B-side tight m1 x k1. M6 full n1 x k1, consumed
  // only by C22 (truncated both ways).
  {
    MatrixView<T> ta(level.ta(), m1, n1, n1);
    blas::block_sub(A12, A11, ta);
    MatrixView<T> tb(level.tb(), m1, k1, k1);
    blas::block_add(B11, B12, tb);
    auto m6v = product(ta, tb, n1, k1);
    add_into(m6v, C22, alpha);
  }
  // M7 = (A-21 - A-22)^T (B-21 + B-22): padded rows cancel -> everything
  // tight at inner dim m2; M7 full n1 x k1, consumed only by C11.
  {
    MatrixView<T> ta(level.ta(), m2, n1, n1);
    blas::block_sub(A21, A22, ta);
    MatrixView<T> tb(level.tb(), m2, k1, k1);
    blas::block_add(B21, B22, tb);
    auto m7v = product(ta, tb, n1, k1);
    add_into(m7v, C11, alpha);
  }
}

}  // namespace atalib::detail
