#include "strassen/workspace.hpp"

#include <algorithm>

#include "blas/gemm.hpp"
#include "blas/syrk.hpp"
#include "matrix/view.hpp"

namespace atalib {

bool gemm_base_case(index_t m, index_t n, index_t k, index_t base_elements, index_t min_dim) {
  if (m <= min_dim || n <= min_dim || k <= min_dim) return true;
  return m * n + m * k <= base_elements;
}

bool ata_base_case(index_t m, index_t n, index_t base_elements, index_t min_dim) {
  if (m <= min_dim || n <= min_dim) return true;
  return m * n <= base_elements;
}

namespace {

index_t gemm_pack(index_t out_rows, index_t out_cols, index_t depth, std::size_t elem_bytes) {
  return elem_bytes == sizeof(float)
             ? blas::gemm_workspace_bound<float>(out_rows, out_cols, depth)
             : blas::gemm_workspace_bound<double>(out_rows, out_cols, depth);
}

index_t syrk_pack(index_t m, index_t n, std::size_t elem_bytes) {
  return elem_bytes == sizeof(float) ? blas::syrk_workspace_bound<float>(m, n)
                                     : blas::syrk_workspace_bound<double>(m, n);
}

// Closed interval of values one recursion dimension can take at some level.
// Halving a [lo, hi] range yields [half_down(lo), half_up(hi)], which covers
// both the ceil (first) and floor (second) child of every member, so a walk
// over ranges covers every node of the recursion tree level by level.
struct Range {
  index_t lo, hi;

  Range halved() const { return {half_down(lo), half_up(hi)}; }
};

// Workspace bound for strassen_tn valid for EVERY shape (m, n, k) inside the
// box rm x rn x rk (a single shape is the degenerate box lo == hi).
//
// Two components share the arena:
//  * Recursion temporaries: only one child is live at a time and the ceil
//    child has the largest dims, so the all-ceil path taken from the box's
//    hi corner dominates the live TA + TB + M prefix of any node.
//  * Leaf packed panels: the base-case gemm bump-allocates its packed A/B
//    panels from the same arena (checkpoint-scoped). gemm_base_case is
//    monotone (shrinking a dim never un-fires it), so if the box's lo corner
//    does not fire, no shape in the box fires at this level; when it can
//    fire, the hi corner's pack bound covers every firing shape in the box
//    because pack extents are monotone in each dim.
// The temporaries prefix at the level a leaf fires is <= the full-path sum,
// so total = full temp sum + max leaf pack is a safe (and in practice tight)
// peak for the arena.
index_t strassen_bound_box(Range rm, Range rn, Range rk, index_t base, index_t min_dim,
                           std::size_t elem_bytes) {
  if (rm.hi == 0 || rn.hi == 0 || rk.hi == 0) return 0;
  index_t temps = 0;
  index_t leaf = 0;
  while (true) {
    if (gemm_base_case(rm.lo, rn.lo, rk.lo, base, min_dim)) {
      // gemm_tn leaf: C (n x k) += A(m x n)^T B(m x k) -> output n x k,
      // contraction depth m.
      leaf = std::max(leaf, gemm_pack(rn.hi, rk.hi, rm.hi, elem_bytes));
    }
    if (gemm_base_case(rm.hi, rn.hi, rk.hi, base, min_dim)) break;
    const index_t m1 = half_up(rm.hi), n1 = half_up(rn.hi), k1 = half_up(rk.hi);
    temps += m1 * n1 + m1 * k1 + n1 * k1;  // TA + TB + M for this level
    rm = rm.halved();
    rn = rn.halved();
    rk = rk.halved();
  }
  return temps + leaf;
}

}  // namespace

index_t strassen_workspace_bound(index_t m, index_t n, index_t k, const RecurseOptions& opts,
                                 std::size_t elem_bytes) {
  const index_t base = opts.resolved_base_elements(elem_bytes);
  return strassen_bound_box({m, m}, {n, n}, {k, k}, base, opts.min_dim, elem_bytes);
}

index_t ata_workspace_bound(index_t m, index_t n, const RecurseOptions& opts,
                            std::size_t elem_bytes) {
  const index_t base = opts.resolved_base_elements(elem_bytes);
  if (m == 0 || n == 0) return 0;
  // The AtA recursion itself adds no temporaries; the arena is consumed by
  //  * base-case syrk_ln leaves (packed panels, checkpoint-scoped), and
  //  * the FastStrassen call sites C21 += A12^T A11 / C21 += A22^T A21 of
  //    every sub-problem, whose (m, n, k) dims are exactly the halved dims
  //    of that sub-problem: m in {m1, m2}, n = n2, k = n1.
  // The two never overlap in time, so the bound is the max over both, taken
  // level by level with the same range walk as the Strassen bound: at each
  // level every sub-problem's (m, n) lies inside rm x rn.
  Range rm{m, m}, rn{n, n};
  index_t bound = 0;
  while (true) {
    if (ata_base_case(rm.lo, rn.lo, base, opts.min_dim)) {
      bound = std::max(bound, syrk_pack(rm.hi, rn.hi, elem_bytes));
    }
    if (ata_base_case(rm.hi, rn.hi, base, opts.min_dim)) break;
    const Range sm = rm.halved();                       // m1 or m2 of some sub-problem
    const Range sn2{half_down(rn.lo), half_down(rn.hi)};  // strassen n = n2
    const Range sn1{half_up(rn.lo), half_up(rn.hi)};      // strassen k = n1
    bound = std::max(bound, strassen_bound_box(sm, sn2, sn1, base, opts.min_dim, elem_bytes));
    rm = rm.halved();
    rn = rn.halved();
  }
  return bound;
}

}  // namespace atalib
