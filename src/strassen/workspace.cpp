#include "strassen/workspace.hpp"

#include "matrix/view.hpp"

namespace atalib {

bool gemm_base_case(index_t m, index_t n, index_t k, index_t base_elements, index_t min_dim) {
  if (m <= min_dim || n <= min_dim || k <= min_dim) return true;
  return m * n + m * k <= base_elements;
}

bool ata_base_case(index_t m, index_t n, index_t base_elements, index_t min_dim) {
  if (m <= min_dim || n <= min_dim) return true;
  return m * n <= base_elements;
}

index_t strassen_workspace_bound(index_t m, index_t n, index_t k, const RecurseOptions& opts,
                                 std::size_t elem_bytes) {
  const index_t base = opts.resolved_base_elements(elem_bytes);
  index_t total = 0;
  // Only one child is live at a time and every child has ceil-half dims, so
  // the deepest path dominates: walk it iteratively. The base-case gemms at
  // the bottom of the recursion take no arena pointer (their packed panels
  // come from thread-local pack buffers, see blas/kernels/pack.hpp), so this
  // bound stays pure recursion temporaries.
  while (!gemm_base_case(m, n, k, base, opts.min_dim)) {
    const index_t m1 = half_up(m), n1 = half_up(n), k1 = half_up(k);
    total += m1 * n1 + m1 * k1 + n1 * k1;  // TA + TB + M for this level
    m = m1;
    n = n1;
    k = k1;
  }
  return total;
}

index_t ata_workspace_bound(index_t m, index_t n, const RecurseOptions& opts,
                            std::size_t elem_bytes) {
  const index_t base = opts.resolved_base_elements(elem_bytes);
  // AtA recurses on quadrants without temporaries; workspace is consumed
  // only by the FastStrassen call sites C21 += A12^T A11 and
  // C21 += A22^T A21 (sizes (m1, n2, n1) and (m2, n2, n1)) and by the same
  // sites of every AtA sub-problem. Because AtA sub-problems have dims
  // (m1, n1) etc. and Strassen needs are monotone in each dim, the top
  // level's larger Strassen call dominates; we still take the max over the
  // recursion to stay exact for degenerate aspect ratios.
  if (ata_base_case(m, n, base, opts.min_dim)) return 0;
  const index_t m1 = half_up(m);
  const index_t n1 = half_up(n), n2 = half_down(n);
  // strassen_workspace_bound is monotone in every dimension, and all AtA
  // sub-problems have dims <= (m1, n1) <= (m, n), so the top level's larger
  // Strassen call site (m1, n2, n1) dominates every deeper call site.
  return strassen_workspace_bound(m1, n2, n1, opts, elem_bytes);
}

}  // namespace atalib
