#pragma once
// Generalized Strassen for C += alpha * A^T B (FastStrassen in the paper).
//
// Works on any rectangular shapes and odd sizes. Odd dimensions are handled
// in the "virtually padded" even world: conceptually A and B are padded with
// one zero row/column per level, but no padding is ever materialized —
// block sums write the padded extent with zeros via blas::block_add /
// block_sub, and products whose operands have a known zero last row/column
// are computed on the tight extent (the dropped terms multiply zeros).
// This is the paper's dynamic-peeling-free, padding-free scheme (§3.1).
//
// The transpose is never materialized either: with X = A^T, each Strassen
// X-side operand (X11+X22 etc.) equals (A11 + A22)^T, so the sums are formed
// in A-layout and the recursion bottoms out in blas::gemm_tn which reads A
// transposed in place.

#include "common/arena.hpp"
#include "strassen/options.hpp"
#include "strassen/workspace.hpp"

namespace atalib {

/// C += alpha * A^T B using Strassen recursion and an externally supplied
/// workspace arena (must have at least strassen_workspace_bound(...) free
/// elements). A is m x n, B is m x k, C is n x k.
template <typename T>
void strassen_tn(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c,
                 Arena<T>& arena, const RecurseOptions& opts = {});

/// Convenience entry matching the paper's FastStrassen: pre-allocates the
/// workspace once, then runs the allocation-free recursion.
template <typename T>
void fast_strassen(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c,
                   const RecurseOptions& opts = {});

#define ATALIB_STRASSEN_EXTERN(T)                                                        \
  extern template void strassen_tn<T>(T, ConstMatrixView<T>, ConstMatrixView<T>,        \
                                      MatrixView<T>, Arena<T>&, const RecurseOptions&); \
  extern template void fast_strassen<T>(T, ConstMatrixView<T>, ConstMatrixView<T>,      \
                                        MatrixView<T>, const RecurseOptions&)
ATALIB_STRASSEN_EXTERN(float);
ATALIB_STRASSEN_EXTERN(double);
#undef ATALIB_STRASSEN_EXTERN

}  // namespace atalib
