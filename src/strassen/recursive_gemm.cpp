#include "strassen/recursive_gemm.hpp"

#include <cassert>

#include "blas/gemm.hpp"
#include "strassen/workspace.hpp"

namespace atalib {
namespace {

template <typename T>
void rec(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c,
         index_t base_elements, const RecurseOptions& opts) {
  const index_t m = a.rows, n = a.cols, k = b.cols;
  assert(b.rows == m && c.rows == n && c.cols == k);
  if (m == 0 || n == 0 || k == 0) return;
  // Algorithm 2 line 2: operand footprint m*n + m*k fits in cache.
  if (gemm_base_case(m, n, k, base_elements, opts.min_dim)) {
    blas::gemm_tn(alpha, a, b, c);
    return;
  }
  const index_t m1 = half_up(m), m2 = half_down(m);
  const index_t n1 = half_up(n), n2 = half_down(n);
  const index_t k1 = half_up(k), k2 = half_down(k);
  const index_t ms[2] = {m1, m2}, ns[2] = {n1, n2}, ks[2] = {k1, k2};
  const index_t mo[2] = {0, m1}, no[2] = {0, n1}, ko[2] = {0, k1};

  // C_ij += sum_l A_li^T B_lj (Algorithm 2's triple loop over 2x2 blocks).
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      if (ns[i] == 0 || ks[j] == 0) continue;
      auto cij = c.block(no[i], ko[j], ns[i], ks[j]);
      for (int l = 0; l < 2; ++l) {
        if (ms[l] == 0) continue;
        rec(alpha, a.block(mo[l], no[i], ms[l], ns[i]), b.block(mo[l], ko[j], ms[l], ks[j]),
            cij, base_elements, opts);
      }
    }
  }
}

}  // namespace

template <typename T>
void recursive_gemm_tn(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c,
                       const RecurseOptions& opts) {
  rec(alpha, a, b, c, opts.resolved_base_elements(sizeof(T)), opts);
}

template void recursive_gemm_tn<float>(float, ConstMatrixView<float>, ConstMatrixView<float>,
                                       MatrixView<float>, const RecurseOptions&);
template void recursive_gemm_tn<double>(double, ConstMatrixView<double>,
                                        ConstMatrixView<double>, MatrixView<double>,
                                        const RecurseOptions&);

}  // namespace atalib
