#pragma once
// Workspace sizing for FastStrassen and AtA.
//
// The paper pre-allocates three matrices M (n x k/2), P (m x n/2) and
// Q (m x k/2) in FastStrassen and hands prefixes down the recursion so no
// allocation happens at recursion time (Section 3.3). We keep the same
// footprint and reuse discipline via a checkpointed bump arena: each
// recursion level bump-allocates its TA (A-side sum, <= m1 x n1), TB
// (B-side sum, <= m1 x k1) and M (product temp, <= n1 x k1) and releases
// them on unwind, so the live set is exactly the M/P/Q prefix scheme and
// the temp peak equals sum over levels of (m_l*n_l + m_l*k_l + n_l*k_l)
// <= (mn + mk + nk)/3 + lower-order terms — the paper's 3/2 n^2 for square.
//
// On top of the paper's scheme, the base-case leaves (gemm_tn under
// Strassen, syrk_ln under AtA) draw their packed panels from the *same*
// arena, checkpoint-scoped, so a warm run performs zero heap allocations
// end to end. The bounds below therefore include the worst leaf pack
// footprint, found by walking the recursion level by level: ceil/floor
// halving keeps each dimension inside a one-wide [lo, hi] range per level,
// so checking the range corners covers every node of the tree.

#include "common/arena.hpp"
#include "strassen/options.hpp"

namespace atalib {

/// Elements of workspace needed by strassen_tn on an (m x n)^T (m x k)
/// product with the given recursion options: recursion temporaries plus the
/// worst base-case gemm pack footprint.
index_t strassen_workspace_bound(index_t m, index_t n, index_t k, const RecurseOptions& opts,
                                 std::size_t elem_bytes);

/// Elements of workspace needed by AtA on an m x n input: the maximum over
/// its Strassen call sites and base-case syrk pack footprints (the AtA
/// recursion itself adds none).
index_t ata_workspace_bound(index_t m, index_t n, const RecurseOptions& opts,
                            std::size_t elem_bytes);

/// True if the gemm-type base case fires for (m, n, k) under `opts`
/// (Algorithm 2 line 2: m*n + m*k <= cache budget, or a dimension is tiny).
bool gemm_base_case(index_t m, index_t n, index_t k, index_t base_elements, index_t min_dim);

/// True if the AtA base case fires for an m x n input (Algorithm 1 line 2).
bool ata_base_case(index_t m, index_t n, index_t base_elements, index_t min_dim);

}  // namespace atalib
