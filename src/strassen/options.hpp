#pragma once
// Tuning knobs shared by Strassen / RecursiveGEMM / AtA.

#include <cstddef>
#include <stdexcept>
#include <string>

#include "common/cacheinfo.hpp"
#include "matrix/view.hpp"

namespace atalib {

/// Measured auto-tuned base-case threshold for scalars of `elem_bytes`
/// bytes (strassen/tuner.cpp): registry gemm vs one Strassen level across a
/// size ladder, cached in ATALIB_TUNING_CACHE, falling back to the static
/// cache probe when no crossover is found or under the forced-scalar env.
index_t tuned_base_case_elements(std::size_t elem_bytes);

/// Measured tall-skinny crossover ratio m/n at which the blocked
/// panel-SYRK engine beats the Strassen recursion for scalars of
/// `elem_bytes` bytes (strassen/tuner.cpp; cached per ISA/dtype alongside
/// the base-case entries). The shape-aware planner (api::shared_plan_key)
/// consults this when SharedOptions::tall_skinny_ratio is 0.
index_t tuned_tall_skinny_ratio(std::size_t elem_bytes);

/// Recursion cut-off options. The algorithms are cache-oblivious: these
/// thresholds only pick the hand-off point to the leaf BLAS kernel
/// (Algorithm 1 line 2: "if m x n <= cache size").
struct RecurseOptions {
  /// Base-case threshold in *elements*: recursion stops when the operand
  /// footprint (m*n for AtA, m*n + m*k for gemm-type per Algorithm 2) is at
  /// most this many scalars.
  index_t base_case_elements = 0;  // 0 = probe cache at first use

  /// Hard floor on any dimension; below this, recursion never pays for the
  /// extra block sums regardless of cache footprint.
  index_t min_dim = 8;

  /// Resolve base_case_elements. 0 = auto: consult the measured tuner
  /// (memoized per ISA/dtype, file-cached), which itself falls back to the
  /// static cache probe. Plan keys store the *resolved* value so a cached
  /// plan's schedule and workspace bounds can never drift from the cut-off
  /// the leaves actually run with.
  index_t resolved_base_elements(std::size_t elem_bytes) const {
    if (base_case_elements > 0) return base_case_elements;
    return tuned_base_case_elements(elem_bytes);
  }
};

/// Throw std::invalid_argument on nonsensical cut-offs. `scope` names the
/// enclosing options struct in the message (e.g. "SharedOptions").
inline void validate(const RecurseOptions& opts, const char* scope) {
  if (opts.base_case_elements < 0) {
    throw std::invalid_argument(std::string(scope) +
                                ".recurse.base_case_elements must be >= 0 (0 = probe), got " +
                                std::to_string(opts.base_case_elements));
  }
  if (opts.min_dim < 1) {
    throw std::invalid_argument(std::string(scope) + ".recurse.min_dim must be >= 1, got " +
                                std::to_string(opts.min_dim));
  }
}

}  // namespace atalib
