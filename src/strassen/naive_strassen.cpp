#include "strassen/naive_strassen.hpp"

#include "common/aligned_buffer.hpp"
#include "strassen/detail/strassen_impl.hpp"

namespace atalib {
namespace {

/// Workspace policy that heap-allocates (and frees) the three temporaries
/// at every recursion level — the cost §3.3's pre-allocation removes.
template <typename T>
struct MallocPolicy {
  class LevelScope {
   public:
    LevelScope(index_t ta_n, index_t tb_n, index_t mt_n)
        : ta_(static_cast<std::size_t>(ta_n)),
          tb_(static_cast<std::size_t>(tb_n)),
          mt_(static_cast<std::size_t>(mt_n)) {}

    T* ta() { return ta_.data(); }
    T* tb() { return tb_.data(); }
    T* mt() { return mt_.data(); }

   private:
    AlignedBuffer<T> ta_;
    AlignedBuffer<T> tb_;
    AlignedBuffer<T> mt_;
  };

  LevelScope level(index_t ta_n, index_t tb_n, index_t mt_n) {
    return LevelScope(ta_n, tb_n, mt_n);
  }

  /// The allocating baseline keeps the leaf kernel's thread-local pack
  /// buffers — it models the no-preallocation world §3.3 improves on.
  Arena<T>* gemm_arena() { return nullptr; }
};

}  // namespace

template <typename T>
void naive_strassen_tn(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c,
                       const RecurseOptions& opts) {
  const index_t base = opts.resolved_base_elements(sizeof(T));
  MallocPolicy<T> policy;
  detail::strassen_rec(alpha, a, b, c, policy, base, opts);
}

template void naive_strassen_tn<float>(float, ConstMatrixView<float>, ConstMatrixView<float>,
                                       MatrixView<float>, const RecurseOptions&);
template void naive_strassen_tn<double>(double, ConstMatrixView<double>,
                                        ConstMatrixView<double>, MatrixView<double>,
                                        const RecurseOptions&);

}  // namespace atalib
