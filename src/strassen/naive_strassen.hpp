#pragma once
// Per-level-allocating Strassen (ablation baseline).
//
// Identical recursion to strassen_tn, but every level heap-allocates its
// three temporaries and frees them on unwind — the "naive Strassen
// implementation" whose allocation cost Section 3.3 is designed to remove.
// Exists so bench/ablation_workspace can quantify that claim.

#include "strassen/options.hpp"

namespace atalib {

/// C += alpha * A^T B, allocating workspace at every recursion level.
template <typename T>
void naive_strassen_tn(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c,
                       const RecurseOptions& opts = {});

extern template void naive_strassen_tn<float>(float, ConstMatrixView<float>,
                                              ConstMatrixView<float>, MatrixView<float>,
                                              const RecurseOptions&);
extern template void naive_strassen_tn<double>(double, ConstMatrixView<double>,
                                               ConstMatrixView<double>, MatrixView<double>,
                                               const RecurseOptions&);

}  // namespace atalib
