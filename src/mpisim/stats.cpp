#include "mpisim/stats.hpp"

#include <numeric>

namespace atalib::mpisim {

std::uint64_t TrafficSnapshot::total_messages() const {
  return std::accumulate(messages_sent.begin(), messages_sent.end(), std::uint64_t{0});
}

std::uint64_t TrafficSnapshot::total_words() const {
  return std::accumulate(words_sent.begin(), words_sent.end(), std::uint64_t{0});
}

std::uint64_t TrafficSnapshot::root_messages() const {
  if (messages_sent.empty()) return 0;
  return messages_sent.front() + messages_received.front();
}

std::uint64_t TrafficSnapshot::root_words() const {
  if (words_sent.empty()) return 0;
  return words_sent.front() + words_received.front();
}

TrafficStats::TrafficStats(int ranks)
    : sent_(static_cast<std::size_t>(ranks)), received_(static_cast<std::size_t>(ranks)) {}

void TrafficStats::on_send(int rank, std::uint64_t words) {
  auto& c = sent_[static_cast<std::size_t>(rank)];
  c.messages.fetch_add(1, std::memory_order_relaxed);
  c.words.fetch_add(words, std::memory_order_relaxed);
}

void TrafficStats::on_recv(int rank, std::uint64_t words) {
  auto& c = received_[static_cast<std::size_t>(rank)];
  c.messages.fetch_add(1, std::memory_order_relaxed);
  c.words.fetch_add(words, std::memory_order_relaxed);
}

TrafficSnapshot TrafficStats::snapshot() const {
  TrafficSnapshot s;
  const std::size_t n = sent_.size();
  s.messages_sent.resize(n);
  s.words_sent.resize(n);
  s.messages_received.resize(n);
  s.words_received.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.messages_sent[i] = sent_[i].messages.load(std::memory_order_relaxed);
    s.words_sent[i] = sent_[i].words.load(std::memory_order_relaxed);
    s.messages_received[i] = received_[i].messages.load(std::memory_order_relaxed);
    s.words_received[i] = received_[i].words.load(std::memory_order_relaxed);
  }
  return s;
}

}  // namespace atalib::mpisim
