#pragma once
// Communication accounting for the mpisim runtime.
//
// The paper analyses AtA-D's latency (message count) and bandwidth (word
// count) along the critical path (Prop. 4.2). Real MPI can only expose
// those through wall time; because our ranks are in-process, we count every
// message and word exactly and the Prop. 4.2 bench compares measured
// against the closed forms.

#include <atomic>
#include <cstdint>
#include <vector>

namespace atalib::mpisim {

/// Immutable snapshot of per-rank traffic.
struct TrafficSnapshot {
  std::vector<std::uint64_t> messages_sent;
  std::vector<std::uint64_t> words_sent;  ///< scalar elements, not bytes
  std::vector<std::uint64_t> messages_received;
  std::vector<std::uint64_t> words_received;

  std::uint64_t total_messages() const;
  std::uint64_t total_words() const;
  /// Messages touching rank 0 (sent or received): the paper's critical path
  /// runs through the root process.
  std::uint64_t root_messages() const;
  std::uint64_t root_words() const;
};

/// Lock-free per-rank counters (one cache line of atomics per rank).
class TrafficStats {
 public:
  explicit TrafficStats(int ranks);

  void on_send(int rank, std::uint64_t words);
  void on_recv(int rank, std::uint64_t words);

  TrafficSnapshot snapshot() const;

 private:
  struct alignas(64) Counter {
    std::atomic<std::uint64_t> messages{0};
    std::atomic<std::uint64_t> words{0};
  };
  std::vector<Counter> sent_;
  std::vector<Counter> received_;
};

}  // namespace atalib::mpisim
