#pragma once
// In-process message-passing runtime (the MPI substitute; see DESIGN.md).
//
// Each rank is a std::thread; ranks share no algorithm state — every matrix
// block crosses rank boundaries as an explicit, counted message through a
// tagged mailbox. Sends are buffered (payload copied into the destination
// mailbox, sender never blocks), like MPI_Bsend, which keeps tree-structured
// protocols trivially deadlock-free. Receives block until a message with a
// matching (source, tag) arrives.
//
// Tags are caller-chosen; (source, tag) pairs must be unique among in-flight
// messages for a deterministic protocol, which all algorithms in dist/
// guarantee by tagging with task-tree node ids or stage numbers.

#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <stdexcept>
#include <vector>

#include "common/thread_annotations.hpp"
#include "mpisim/stats.hpp"
#include "runtime/executor.hpp"

namespace atalib::mpisim {

/// Raw message payload.
struct Message {
  int source = 0;
  int tag = 0;
  std::vector<unsigned char> bytes;
};

/// Thrown out of a blocked recv when a peer rank failed and the
/// communicator aborted the run (see Communicator::run). Catch-and-ignore
/// is wrong — the original failure is rethrown to the run's caller.
struct AbortedError : std::runtime_error {
  AbortedError() : std::runtime_error("mpisim: communicator aborted after a rank failure") {}
};

/// One rank's incoming queue.
class Mailbox {
 public:
  void push(Message msg);
  /// Blocking receive of the first message matching (source, tag).
  /// Throws AbortedError once the mailbox is poisoned.
  Message pop_match(int source, int tag);
  /// Poison the mailbox: wake every blocked pop_match and make it (and
  /// all future ones) throw AbortedError.
  void poison();

 private:
  Mutex mu_;
  std::condition_variable_any cv_;
  std::deque<Message> queue_ ATALIB_GUARDED_BY(mu_);
  bool poisoned_ ATALIB_GUARDED_BY(mu_) = false;
};

class Communicator;

/// Per-rank handle passed to the rank function: the MPI_Comm + rank pair.
class RankCtx {
 public:
  RankCtx(Communicator& comm, int rank) : comm_(comm), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const;

  /// Typed buffered send of `count` elements of T.
  template <typename T>
  void send(int dest, int tag, const T* data, std::size_t count);

  /// Typed blocking receive; returns the payload.
  template <typename T>
  std::vector<T> recv(int source, int tag);

  /// Convenience for single scalars / small structs.
  template <typename T>
  void send_value(int dest, int tag, const T& v) {
    send(dest, tag, &v, 1);
  }
  template <typename T>
  T recv_value(int source, int tag) {
    return recv<T>(source, tag).at(0);
  }

 private:
  Communicator& comm_;
  int rank_;
};

/// The world: owns mailboxes, traffic counters, and the rank threads.
class Communicator {
 public:
  explicit Communicator(int size);

  int size() const { return size_; }
  TrafficSnapshot traffic() const { return stats_.snapshot(); }

  /// Run `fn(ctx)` on every rank (one thread per rank) and join. If any
  /// rank throws, every mailbox is poisoned so peers blocked in recv wake
  /// with AbortedError instead of hanging, and the *first* failure (never
  /// the secondary AbortedErrors) is rethrown here.
  void run(const std::function<void(RankCtx&)>& fn);

  /// Run every rank as one batch on a runtime::Executor instead of
  /// spawning fresh threads: rank r executes as task r and additionally
  /// receives its slot's TaskContext (reusable Workspace arena). Rank
  /// bodies BLOCK on recv, so the executor must guarantee one concurrent
  /// slot per rank; `exec.concurrency() >= size()` is required (throws
  /// std::logic_error otherwise) and only executors that run a
  /// <= concurrency() batch fully concurrently are safe — the persistent
  /// ThreadPool qualifies (see DESIGN.md §3), the fork-join engine's
  /// OpenMP static schedule does not.
  void run_on(runtime::Executor& exec,
              const std::function<void(RankCtx&, runtime::TaskContext&)>& fn);

  // Internal transport (used by RankCtx).
  void send_bytes(int source, int dest, int tag, std::vector<unsigned char> bytes,
                  std::size_t words);
  Message recv_bytes(int self, int source, int tag, std::size_t elem_size);

 private:
  /// Wrap a rank body so any failure poisons all mailboxes (unblocking
  /// peers) before propagating.
  template <typename Fn>
  void guarded_rank(Fn&& fn) {
    try {
      fn();
    } catch (...) {
      for (Mailbox& mb : mailboxes_) mb.poison();
      throw;
    }
  }

  int size_;
  std::vector<Mailbox> mailboxes_;
  TrafficStats stats_;
};

template <typename T>
void RankCtx::send(int dest, int tag, const T* data, std::size_t count) {
  std::vector<unsigned char> bytes(count * sizeof(T));
  if (count > 0) std::memcpy(bytes.data(), data, bytes.size());
  comm_.send_bytes(rank_, dest, tag, std::move(bytes), count);
}

template <typename T>
std::vector<T> RankCtx::recv(int source, int tag) {
  Message msg = comm_.recv_bytes(rank_, source, tag, sizeof(T));
  std::vector<T> out(msg.bytes.size() / sizeof(T));
  if (!out.empty()) std::memcpy(out.data(), msg.bytes.data(), msg.bytes.size());
  return out;
}

}  // namespace atalib::mpisim
