#include "mpisim/communicator.hpp"

#include <stdexcept>
#include <thread>

namespace atalib::mpisim {

void Mailbox::push(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::pop_match(int source, int tag) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->source == source && it->tag == tag) {
        Message msg = std::move(*it);
        queue_.erase(it);
        return msg;
      }
    }
    cv_.wait(lock);
  }
}

Communicator::Communicator(int size)
    : size_(size), mailboxes_(static_cast<std::size_t>(size)), stats_(size) {
  if (size <= 0) throw std::invalid_argument("Communicator size must be positive");
}

int RankCtx::size() const { return comm_.size(); }

void Communicator::send_bytes(int source, int dest, int tag, std::vector<unsigned char> bytes,
                              std::size_t words) {
  if (dest < 0 || dest >= size_) throw std::out_of_range("send to invalid rank");
  if (dest == source) throw std::logic_error("rank sent a message to itself");
  stats_.on_send(source, words);
  mailboxes_[static_cast<std::size_t>(dest)].push(Message{source, tag, std::move(bytes)});
}

Message Communicator::recv_bytes(int self, int source, int tag, std::size_t elem_size) {
  Message msg = mailboxes_[static_cast<std::size_t>(self)].pop_match(source, tag);
  stats_.on_recv(self, msg.bytes.size() / elem_size);
  return msg;
}

void Communicator::run(const std::function<void(RankCtx&)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  std::exception_ptr first_error;
  std::mutex error_mu;
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      RankCtx ctx(*this, r);
      try {
        fn(ctx);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace atalib::mpisim
