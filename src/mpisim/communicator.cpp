#include "mpisim/communicator.hpp"

#include <stdexcept>
#include <thread>

#include "runtime/thread_pool.hpp"

namespace atalib::mpisim {

void Mailbox::push(Message msg) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::pop_match(int source, int tag) {
  UniqueLock lock(mu_);
  for (;;) {
    if (poisoned_) throw AbortedError{};
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->source == source && it->tag == tag) {
        Message msg = std::move(*it);
        queue_.erase(it);
        return msg;
      }
    }
    cv_.wait(lock);
  }
}

void Mailbox::poison() {
  {
    MutexLock lock(mu_);
    poisoned_ = true;
  }
  cv_.notify_all();
}

Communicator::Communicator(int size)
    : size_(size), mailboxes_(static_cast<std::size_t>(size)), stats_(size) {
  if (size <= 0) throw std::invalid_argument("Communicator size must be positive");
}

int RankCtx::size() const { return comm_.size(); }

void Communicator::send_bytes(int source, int dest, int tag, std::vector<unsigned char> bytes,
                              std::size_t words) {
  if (dest < 0 || dest >= size_) throw std::out_of_range("send to invalid rank");
  if (dest == source) throw std::logic_error("rank sent a message to itself");
  stats_.on_send(source, words);
  mailboxes_[static_cast<std::size_t>(dest)].push(Message{source, tag, std::move(bytes)});
}

Message Communicator::recv_bytes(int self, int source, int tag, std::size_t elem_size) {
  Message msg = mailboxes_[static_cast<std::size_t>(self)].pop_match(source, tag);
  stats_.on_recv(self, msg.bytes.size() / elem_size);
  return msg;
}

namespace {

/// First-failure collector that prefers a rank's real exception over the
/// secondary AbortedErrors its failure triggers in peers (the abort races
/// the original store, so preference — not order — decides).
struct FirstError {
  Mutex mu;
  std::exception_ptr error ATALIB_GUARDED_BY(mu);
  bool aborted ATALIB_GUARDED_BY(mu) = false;

  void capture() {
    try {
      throw;
    } catch (const AbortedError&) {
      MutexLock lock(mu);
      if (!error) {
        error = std::current_exception();
        aborted = true;
      }
    } catch (...) {
      MutexLock lock(mu);
      if (!error || aborted) {
        error = std::current_exception();
        aborted = false;
      }
    }
  }

  /// Called after every rank joined; the lock is uncontended and keeps the
  /// guarded read visible to the thread-safety analysis.
  void rethrow_if_set() {
    std::exception_ptr err;
    {
      MutexLock lock(mu);
      err = error;
    }
    if (err) std::rethrow_exception(err);
  }
};

}  // namespace

void Communicator::run(const std::function<void(RankCtx&)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  FirstError first;
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      RankCtx ctx(*this, r);
      try {
        guarded_rank([&] { fn(ctx); });
      } catch (...) {
        first.capture();
      }
    });
  }
  for (auto& t : threads) t.join();
  first.rethrow_if_set();
}

void Communicator::run_on(runtime::Executor& exec,
                          const std::function<void(RankCtx&, runtime::TaskContext&)>& fn) {
  if (exec.concurrency() < size_) {
    throw std::logic_error(
        "Communicator::run_on: executor has fewer slots than ranks; blocking "
        "rank bodies would deadlock");
  }
  if (size_ > 1 && runtime::ThreadPool::current_thread_in_task()) {
    throw std::logic_error(
        "Communicator::run_on: called from inside an executor task; a nested "
        "submission executes inline-serial and blocking rank bodies would "
        "deadlock");
  }
  // Failures are collected here, not left to the executor: the executor
  // would keep whichever exception landed first, which can be a secondary
  // AbortedError rather than the rank failure that caused it.
  FirstError first;
  exec.run(
      size_,
      [&](int task, runtime::TaskContext& tctx) {
        RankCtx ctx(*this, task);
        try {
          guarded_rank([&] { fn(ctx, tctx); });
        } catch (...) {
          first.capture();
        }
      },
      size_);
  first.rethrow_if_set();
}

}  // namespace atalib::mpisim
