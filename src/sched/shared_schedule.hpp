#pragma once
// AtA-S task schedule (§4.1.1 + §4.2): exactly P leaf tasks with pairwise
// disjoint C writes, built by simulating the AtANaive recursion.
//
// The shared-memory scheme never splits A's *rows* when forming tasks:
// diagonal sub-problems keep the full row extent (eq. (7): C_ii =
// A_{*,i}^T A_{*,i}), and off-diagonal gemm tasks keep the full inner
// dimension — so every C cell is written by exactly one thread and no
// synchronization or reduction is ever needed ("embarrassing parallelism",
// §4.2.1). This is why the AtA-S tree has 3 AtA-type branches per diagonal
// node (C11, C22, C21) instead of AtA-D's 6, and 4 tile branches per gemm
// node instead of RecursiveGEMM's 8.

#include <cstdint>
#include <vector>

#include "sched/task.hpp"

namespace atalib::sched {

/// Lifetime count of build_shared_schedule() calls in this process. The
/// api-layer plan-cache tests use deltas of this to prove the warm serving
/// path never replans.
std::uint64_t shared_schedule_builds();

/// One task's assignment: the ops it executes (usually one; a merged
/// C11+C22 pair when an odd process count leaves a single task for both
/// diagonal sub-problems).
struct SharedTask {
  /// Task id in [0, P'). With oversub == 1 this is the paper's thread id
  /// (one task per thread); with over-decomposition it is a home-worker
  /// hint — a work-stealing executor maps contiguous id ranges to workers
  /// and rebalances from there.
  int thread = 0;
  std::vector<LeafOp> ops;
};

struct SharedSchedule {
  std::vector<SharedTask> tasks;  ///< exactly P' = oversub * P entries
  int depth = 0;                  ///< tree depth (parallel levels actually built)
};

/// Build the AtA-S schedule for an m x n input and P threads. `oversub`
/// over-decomposes the tree: P' = oversub * P tasks are built by simulating
/// the recursion one or two levels deeper, preserving the disjoint-C-write
/// invariant (it holds for every task count), so execution stays lock-free
/// on the output while stealing rebalances uneven tasks.
SharedSchedule build_shared_schedule(index_t m, index_t n, int p, int oversub = 1);

}  // namespace atalib::sched
