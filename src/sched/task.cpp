#include "sched/task.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace atalib::sched {

Block syrk_target(const Block& a) { return Block{a.c0, a.c0, a.cols, a.cols}; }

Block gemm_target(const Block& a, const Block& b) {
  return Block{a.c0, b.c0, a.cols, b.cols};
}

double LeafOp::flops() const {
  if (kind == Kind::kSyrk) {
    // Lower triangle only: ~ m * n(n+1)/2 multiply-adds.
    return static_cast<double>(a.rows) * a.cols * (a.cols + 1) / 2.0;
  }
  return static_cast<double>(a.rows) * a.cols * b.cols;
}

std::string LeafOp::to_string() const {
  std::ostringstream os;
  auto blk = [](const Block& x) {
    std::ostringstream b;
    b << "[" << x.r0 << ":" << x.r0 + x.rows << "," << x.c0 << ":" << x.c0 + x.cols << ")";
    return b.str();
  };
  if (kind == Kind::kSyrk) {
    os << "syrk A" << blk(a) << " -> C" << blk(c);
  } else {
    os << "gemm A" << blk(a) << "^T A" << blk(b) << " -> C" << blk(c);
  }
  return os.str();
}

namespace {

bool rects_intersect(const Block& x, const Block& y) {
  return x.r0 < y.r0 + y.rows && y.r0 < x.r0 + x.rows && x.c0 < y.c0 + y.cols &&
         y.c0 < x.c0 + x.cols;
}

/// The cells a LeafOp writes: a full rectangle for gemm, the lower triangle
/// of a diagonal square for syrk. Two regions overlap iff their bounding
/// rectangles intersect AND, when one of them is triangular, the
/// intersection contains at least one lower-triangle cell of it.
bool triangle_intersects_rect(const Block& tri, const Block& rect) {
  if (!rects_intersect(tri, rect)) return false;
  // Intersection rectangle in global coords (only the bottom-left corner
  // matters for the triangle test).
  const index_t r1 = std::min(tri.r0 + tri.rows, rect.r0 + rect.rows);
  const index_t c0 = std::max(tri.c0, rect.c0);
  // Lower-triangle cell (i, j) of tri satisfies j - tri.c0 <= i - tri.r0.
  // The intersection contains one iff its bottom-left corner does.
  const index_t i = r1 - 1 - tri.r0;
  const index_t j = c0 - tri.c0;
  return j <= i;
}

}  // namespace

bool writes_overlap(const LeafOp& x, const LeafOp& y) {
  const bool xt = x.kind == LeafOp::Kind::kSyrk;
  const bool yt = y.kind == LeafOp::Kind::kSyrk;
  if (!xt && !yt) return rects_intersect(x.c, y.c);
  if (xt && !yt) return triangle_intersects_rect(x.c, y.c);
  if (!xt && yt) return triangle_intersects_rect(y.c, x.c);
  // Two triangles: both diagonal squares; their bounding boxes intersect
  // iff the column ranges do, in which case lower triangles do too.
  return rects_intersect(x.c, y.c);
}

}  // namespace atalib::sched
