#include "sched/shared_schedule.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace atalib::sched {
namespace {

struct Builder {
  index_t m;
  std::vector<SharedTask> tasks;
  int depth = 0;

  void note_depth(int d) { depth = std::max(depth, d); }

  SharedTask& task_for(int thread) {
    for (auto& t : tasks) {
      if (t.thread == thread) return t;
    }
    tasks.push_back(SharedTask{thread, {}});
    return tasks.back();
  }

  /// Diagonal (A^T A) sub-problem on column range [c0, c0+w), full rows,
  /// split among threads [t0, t0+p).
  void syrk_node(index_t c0, index_t w, int t0, int p, int level) {
    assert(p >= 1);
    if (p == 1 || w <= 1) {
      LeafOp op;
      op.kind = LeafOp::Kind::kSyrk;
      op.a = Block{0, c0, m, w};
      op.c = syrk_target(op.a);
      task_for(t0).ops.push_back(op);
      note_depth(level);
      return;
    }
    const index_t w1 = half_up(w), w2 = half_down(w);
    // alpha = 1/2 (§4.1.2): half the threads compute the off-diagonal
    // block C21 = A_right^T A_left; the rest split between C11 and C22.
    const int pg = std::max(1, p / 2);
    const int ps = p - pg;
    gemm_node(Block{0, c0 + w1, m, w2}, Block{0, c0, m, w1}, t0, pg, level + 1);
    if (ps == 1) {
      // One thread owns both diagonal sub-problems (two merged ops).
      syrk_node(c0, w1, t0 + pg, 1, level + 1);
      syrk_node(c0 + w1, w2, t0 + pg, 1, level + 1);
    } else {
      const int p11 = (ps + 1) / 2;
      const int p22 = ps - p11;
      syrk_node(c0, w1, t0 + pg, p11, level + 1);
      syrk_node(c0 + w1, w2, t0 + pg + p11, p22, level + 1);
    }
  }

  /// Off-diagonal (A^T B) sub-problem: C[a.cols x b.cols] += A[a]^T A[b],
  /// full inner (row) extent, split among threads [t0, t0+q).
  void gemm_node(Block a, Block b, int t0, int q, int level) {
    assert(q >= 1);
    if (q == 1) {
      LeafOp op;
      op.kind = LeafOp::Kind::kGemm;
      op.a = a;
      op.b = b;
      op.c = gemm_target(a, b);
      task_for(t0).ops.push_back(op);
      note_depth(level);
      return;
    }
    if (q < 4 || a.cols < 2 || b.cols < 2) {
      // Remainder level: strip-tile C into q pieces along its larger
      // dimension (Fig. 2 vertical/horizontal tiling, eq. (7)).
      const bool split_b = b.cols >= a.cols;
      const index_t w = split_b ? b.cols : a.cols;
      const index_t tiles = std::min<index_t>(q, std::max<index_t>(w, 1));
      for (index_t t = 0; t < tiles; ++t) {
        const index_t lo = w * t / tiles;
        const index_t hi = w * (t + 1) / tiles;
        if (hi == lo) continue;
        Block at = a, bt = b;
        if (split_b) {
          bt = Block{b.r0, b.c0 + lo, b.rows, hi - lo};
        } else {
          at = Block{a.r0, a.c0 + lo, a.rows, hi - lo};
        }
        gemm_node(at, bt, t0 + static_cast<int>(t), 1, level + 1);
      }
      // If w < q some threads stay idle for this node; the caller's split
      // never produces that for nondegenerate shapes.
      return;
    }
    // Quadrant split (2x2 over a-cols x b-cols), threads divided as evenly
    // as possible with remainders to the leading quadrants.
    const index_t a1 = half_up(a.cols), a2 = half_down(a.cols);
    const index_t b1 = half_up(b.cols), b2 = half_down(b.cols);
    const Block aL{a.r0, a.c0, a.rows, a1}, aR{a.r0, a.c0 + a1, a.rows, a2};
    const Block bL{b.r0, b.c0, b.rows, b1}, bR{b.r0, b.c0 + b1, b.rows, b2};
    const Block as[4] = {aL, aL, aR, aR};
    const Block bs[4] = {bL, bR, bL, bR};
    int assigned = 0;
    for (int i = 0; i < 4; ++i) {
      const int qi = q / 4 + (i < q % 4 ? 1 : 0);
      gemm_node(as[i], bs[i], t0 + assigned, qi, level + 1);
      assigned += qi;
    }
  }
};

std::atomic<std::uint64_t> g_builds{0};

}  // namespace

std::uint64_t shared_schedule_builds() { return g_builds.load(std::memory_order_relaxed); }

SharedSchedule build_shared_schedule(index_t m, index_t n, int p, int oversub) {
  assert(p >= 1);
  g_builds.fetch_add(1, std::memory_order_relaxed);
  const int ntasks = std::max(1, p) * std::max(1, oversub);
  Builder b;
  b.m = m;
  b.syrk_node(0, n, 0, ntasks, 0);
  std::sort(b.tasks.begin(), b.tasks.end(),
            [](const SharedTask& x, const SharedTask& y) { return x.thread < y.thread; });
  return SharedSchedule{std::move(b.tasks), b.depth};
}

}  // namespace atalib::sched
