#include "sched/levels.hpp"

#include <algorithm>
#include <cmath>

namespace atalib::sched {
namespace {

/// max{k in N : base_count / fan^k >= 1} (k = 0 allowed).
int full_levels(long long base_count, long long fan) {
  int k = 0;
  long long cap = fan;
  while (base_count >= cap) {
    ++k;
    cap *= fan;
  }
  return k;
}

long long ipow(long long b, int e) {
  long long r = 1;
  while (e-- > 0) r *= b;
  return r;
}

}  // namespace

int paper_levels_shared(int p) {
  if (p <= 1) return 0;
  if (p <= 3) return 1;
  const long long half = p / 2;
  const int k = full_levels(half, 4);
  const long long mod = half % ipow(4, std::max(k, 1));
  return 1 + k + (mod > 0 ? 1 : 0);
}

int paper_levels_dist(int p) {
  if (p <= 1) return 0;
  if (p <= 6) return 1;
  const long long quarter = p / 4;
  const int k = full_levels(quarter, 8);
  const long long mod = quarter % ipow(8, std::max(k, 1));
  return 1 + k + (mod > 0 ? 1 : 0);
}

double shared_work_fraction(int p) {
  return 1.0 / std::pow(4.0, paper_levels_shared(p));
}

}  // namespace atalib::sched
