#pragma once
// Closed-form parallel-level counts, eq. (5) and eq. (6) of the paper.
//
// These are the paper's analytical predictions for the number of complete
// parallel levels in the task tree as a function of the process count P.
// They drive the step-function shape of the scaling curves (Figs. 5-6) and
// the per-process work model (eq. (8), Prop. 4.1). The schedulers do not
// *use* them — they build the tree recursively — but tests compare built
// tree depths against them and benches plot both.

namespace atalib::sched {

/// eq. (6): parallel levels of AtA-S with P threads.
/// l(1) = 0, l(2) = l(3) = 1,
/// l(P>3) = 1 + k + sign(P/2 mod 4^max{k,1}), k = max{k : (P/2)/4^k >= 1}.
int paper_levels_shared(int p);

/// eq. (5): parallel levels of AtA-D with P processes.
/// l(1) = 0, l(2..6) = 1,
/// l(P>6) = 1 + k + sign(P/4 mod 8^max{k,1}), k = max{k : (P/4)/8^k >= 1}.
int paper_levels_dist(int p);

/// eq. (8) work model: per-thread work of AtA-S relative to the sequential
/// n^(log2 7) cost, i.e. 1 / 4^l(P).
double shared_work_fraction(int p);

}  // namespace atalib::sched
