#pragma once
// Task descriptors shared by the AtA-S and AtA-D schedulers (§4.1).
//
// Both parallel algorithms start by *simulating* the recursion of AtANaive
// to build a task tree with exactly P leaves; each leaf describes, in global
// coordinates of the input A and output C, which multiplication(s) one
// process performs (paper §4.1.1, items (1)-(3)). The descriptors are pure
// geometry — no scalar type, no data — so every rank/thread can build the
// identical tree independently, which is what makes the preliminary phase
// communication-free.

#include <string>
#include <vector>

#include "matrix/view.hpp"

namespace atalib::sched {

/// Rectangular block in global coordinates (rows [r0, r0+rows) x
/// cols [c0, c0+cols)) of the input matrix A or the output C.
struct Block {
  index_t r0 = 0;
  index_t c0 = 0;
  index_t rows = 0;
  index_t cols = 0;

  bool operator==(const Block&) const = default;
  index_t size() const { return rows * cols; }
  bool empty() const { return rows == 0 || cols == 0; }
};

/// One leaf multiplication (paper item (1): computationType, item (2):
/// offsets and sizes).
struct LeafOp {
  enum class Kind {
    kSyrk,  ///< lower(C[c]) += A[a]^T A[a]  (an A^T A task)
    kGemm,  ///< C[c] += A[a]^T A[b]         (an A^T B task; b is a block of A)
  };

  Kind kind = Kind::kSyrk;
  Block a;  ///< left operand block of A
  Block b;  ///< right operand block of A (gemm only)
  Block c;  ///< target block of C (for kSyrk: diagonal square, lower part)

  /// Flop weight used for load-balance assertions: syrk counts n(n+1)m/...
  /// relative units; gemm counts the full rectangle.
  double flops() const;

  std::string to_string() const;
};

/// Derive the C target block implied by operand blocks: for syrk, the
/// diagonal square at (a.c0, a.c0); for gemm, rows indexed by a's columns
/// and columns indexed by b's columns.
Block syrk_target(const Block& a);
Block gemm_target(const Block& a, const Block& b);

/// True if the (lower-triangle-aware) written regions of two ops intersect.
/// Used by the disjoint-write property tests for AtA-S.
bool writes_overlap(const LeafOp& x, const LeafOp& y);

}  // namespace atalib::sched
