#pragma once
// AtA-D task tree (§4.1.1, Figure 1): the distribute-compute-retrieve plan.
//
// Every process builds this identical tree from (m, n, P, alpha) alone, so
// the preliminary phase costs no communication. Leaves are the P computation
// tasks; inner nodes describe the scatter of A blocks on the way down and
// the gather-and-sum of partial C blocks on the way up (paper item (3):
// t.parent). A node is executed by the process of its leftmost leaf, which
// is why the root process p0 first serves a gemm task and then assembles
// the final matrix, exactly as in the paper's Figure 1 walk-through.
//
// Differences from AtA-S: diagonal sub-problems ARE row-split here (the
// paper's 6-way AtA expansion: C11 = AtA(A11) + AtA(A21) as two children
// whose results the parent sums), and gemm nodes use the full 8-way
// RecursiveGEMM expansion; remainders that cannot fill a level fall back to
// the Fig. 2 strip tiling. Symmetric (A^T A-type) partial results travel as
// packed lower triangles (§4.3.1).

#include <cstdint>
#include <vector>

#include "sched/task.hpp"

namespace atalib::sched {

/// Lifetime count of build_dist_tree() calls in this process. The
/// api-layer plan-cache tests use deltas of this to prove the warm serving
/// path never replans.
std::uint64_t dist_tree_builds();

struct DistNode {
  enum class Kind { kSyrkInner, kGemmInner, kLeaf };

  Kind kind = Kind::kLeaf;
  int parent = -1;            ///< node index of parent (-1 for root)
  std::vector<int> children;  ///< node indices
  int proc = -1;              ///< executing process (leftmost leaf's process)
  int level = 0;              ///< depth in the tree (root = 0)

  /// C region this node is responsible for. For symmetric nodes only the
  /// lower triangle is meaningful and it is communicated packed.
  Block c;
  bool symmetric = false;

  /// A blocks this subtree needs (deduplicated); what the parent sends down.
  std::vector<Block> needs;

  /// Leaf only: the multiplications this process performs.
  std::vector<LeafOp> ops;
};

struct DistTree {
  std::vector<DistNode> nodes;
  int root = 0;
  int procs = 0;     ///< requested process count P
  int used_procs = 0;  ///< leaves actually created (== P except degenerate shapes)
  int depth = 0;     ///< max leaf level

  const DistNode& node(int i) const { return nodes[static_cast<std::size_t>(i)]; }

  /// Node indices in pre-order (distribution phase order).
  std::vector<int> preorder() const;
  /// Node indices in post-order (compute + retrieval phase order).
  std::vector<int> postorder() const;

  /// The nodes process p executes, top-down. Because an inner node runs on
  /// its leftmost leaf's process, each process's nodes form one contiguous
  /// first-child chain entry -> ... -> leaf: chain.front() is the highest
  /// node owned by p (the "entry", where p receives its A blocks and sends
  /// its finished C block; the root for p = 0) and chain.back() is p's
  /// leaf. Indexed by process id, size used_procs.
  std::vector<std::vector<int>> rank_chains() const;
};

/// Build the AtA-D tree for an m x n input, P processes and load-balance
/// parameter alpha (§4.1.2; 0.5 balances gemm vs syrk leaf work).
DistTree build_dist_tree(index_t m, index_t n, int p, double alpha = 0.5);

}  // namespace atalib::sched
