#include "sched/dist_tree.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>

namespace atalib::sched {
namespace {

std::atomic<std::uint64_t> g_builds{0};

struct Builder {
  std::vector<DistNode> nodes;
  double alpha;

  int new_node(DistNode::Kind kind, int level, Block c, bool symmetric) {
    DistNode node;
    node.kind = kind;
    node.level = level;
    node.c = c;
    node.symmetric = symmetric;
    nodes.push_back(std::move(node));
    return static_cast<int>(nodes.size()) - 1;
  }

  void attach(int parent, int child) {
    nodes[static_cast<std::size_t>(parent)].children.push_back(child);
    nodes[static_cast<std::size_t>(child)].parent = parent;
  }

  int leaf(std::vector<LeafOp> ops, int level, Block c, bool symmetric) {
    const int id = new_node(DistNode::Kind::kLeaf, level, c, symmetric);
    nodes[static_cast<std::size_t>(id)].ops = std::move(ops);
    return id;
  }

  /// Diagonal A^T A sub-problem on block `a` of A with p processes.
  int syrk_node(Block a, int p, int level) {
    const Block c = syrk_target(a);
    if (p == 1 || a.cols <= 1 || a.rows <= 1) {
      LeafOp op{LeafOp::Kind::kSyrk, a, Block{}, c};
      return leaf({op}, level, c, /*symmetric=*/true);
    }
    const int id = new_node(DistNode::Kind::kSyrkInner, level, c, /*symmetric=*/true);

    const index_t w1 = half_up(a.cols), w2 = half_down(a.cols);
    const index_t r1 = half_up(a.rows), r2 = half_down(a.rows);
    const Block A11{a.r0, a.c0, r1, w1};
    const Block A12{a.r0, a.c0 + w1, r1, w2};
    const Block A21{a.r0 + r1, a.c0, r2, w1};
    const Block A22{a.r0 + r1, a.c0 + w1, r2, w2};
    const Block left_full{a.r0, a.c0, a.rows, w1};
    const Block right_full{a.r0, a.c0 + w1, a.rows, w2};

    // alpha * p processes serve the off-diagonal C21 (A^T B-type) work
    // (§4.1.2); the clamp keeps at least one process on each side.
    const int pg = std::clamp(static_cast<int>(std::lround(alpha * p)), 1, p - 1);
    const int ps = p - pg;

    // Off-diagonal side first: the leftmost leaf (hence this node's proc)
    // is a gemm task, matching the paper's critical-path description.
    if (pg == 1) {
      // Merged over rows (eq. (7)): C21 = A_right^T A_left in one op.
      attach(id, gemm_node(right_full, left_full, 1, level + 1));
    } else {
      attach(id, gemm_node(A12, A11, (pg + 1) / 2, level + 1));
      attach(id, gemm_node(A22, A21, pg / 2, level + 1));
    }

    // Diagonal side.
    if (ps == 1) {
      // One process owns both diagonal sub-problems; its region is the full
      // diagonal square (the C21 part of its buffer stays zero and the
      // parent's sum is unaffected).
      std::vector<LeafOp> ops;
      ops.push_back(LeafOp{LeafOp::Kind::kSyrk, left_full, Block{}, syrk_target(left_full)});
      ops.push_back(LeafOp{LeafOp::Kind::kSyrk, right_full, Block{}, syrk_target(right_full)});
      attach(id, leaf(std::move(ops), level + 1, c, /*symmetric=*/true));
    } else {
      const int q11 = (ps + 1) / 2;
      const int q22 = ps - q11;
      attach_diag_side(id, left_full, A11, A21, q11, level);
      attach_diag_side(id, right_full, A12, A22, q22, level);
    }
    return id;
  }

  /// C_ii side with q processes: one merged leaf if q == 1, otherwise the
  /// paper's row-split pair AtA(top) + AtA(bottom), results summed upward.
  void attach_diag_side(int parent, Block full, Block top, Block bot, int q, int level) {
    if (q <= 0) return;
    if (q == 1) {
      LeafOp op{LeafOp::Kind::kSyrk, full, Block{}, syrk_target(full)};
      attach(parent, leaf({op}, level + 1, op.c, /*symmetric=*/true));
      return;
    }
    attach(parent, syrk_node(top, (q + 1) / 2, level + 1));
    attach(parent, syrk_node(bot, q / 2, level + 1));
  }

  /// Off-diagonal A^T B sub-problem (a and b blocks of the input A sharing
  /// a row range) with q processes.
  int gemm_node(Block a, Block b, int q, int level) {
    const Block c = gemm_target(a, b);
    if (q == 1) {
      LeafOp op{LeafOp::Kind::kGemm, a, b, c};
      return leaf({op}, level, c, /*symmetric=*/false);
    }
    const int id = new_node(DistNode::Kind::kGemmInner, level, c, /*symmetric=*/false);
    if (q >= 8 && a.cols >= 2 && b.cols >= 2 && a.rows >= 2) {
      // Full RecursiveGEMM expansion: 2 x 2 x 2 over a-cols, b-cols, rows.
      // The two row halves of each C quadrant are separate children whose
      // results this node sums.
      const index_t a1 = half_up(a.cols), b1 = half_up(b.cols), r1 = half_up(a.rows);
      const Block asub[2][2] = {
          {Block{a.r0, a.c0, r1, a1}, Block{a.r0, a.c0 + a1, r1, a.cols - a1}},
          {Block{a.r0 + r1, a.c0, a.rows - r1, a1},
           Block{a.r0 + r1, a.c0 + a1, a.rows - r1, a.cols - a1}}};
      const Block bsub[2][2] = {
          {Block{b.r0, b.c0, r1, b1}, Block{b.r0, b.c0 + b1, r1, b.cols - b1}},
          {Block{b.r0 + r1, b.c0, b.rows - r1, b1},
           Block{b.r0 + r1, b.c0 + b1, b.rows - r1, b.cols - b1}}};
      [[maybe_unused]] int assigned = 0;
      int idx = 0;
      for (int i = 0; i < 2; ++i) {        // a-cols half -> C row block
        for (int j = 0; j < 2; ++j) {      // b-cols half -> C col block
          for (int l = 0; l < 2; ++l) {    // row half -> summed addend
            const int qi = q / 8 + (idx < q % 8 ? 1 : 0);
            ++idx;
            if (qi == 0) continue;
            attach(id, gemm_node(asub[l][i], bsub[l][j], qi, level + 1));
            assigned += qi;
          }
        }
      }
      assert(assigned == q);
      return id;
    }
    // Remainder level: strip-tile C over an g1 x g2 grid of a-cols x b-cols
    // (Fig. 2), full row extent, one leaf per tile.
    index_t g1 = 1, g2 = q;
    for (index_t d = static_cast<index_t>(std::sqrt(static_cast<double>(q))); d >= 1; --d) {
      if (q % d == 0) {
        g1 = d;
        g2 = q / d;
        break;
      }
    }
    g1 = std::min(g1, a.cols);
    g2 = std::min(g2, b.cols);
    for (index_t i = 0; i < g1; ++i) {
      const index_t ac0 = a.cols * i / g1, ac1 = a.cols * (i + 1) / g1;
      for (index_t j = 0; j < g2; ++j) {
        const index_t bc0 = b.cols * j / g2, bc1 = b.cols * (j + 1) / g2;
        const Block at{a.r0, a.c0 + ac0, a.rows, ac1 - ac0};
        const Block bt{b.r0, b.c0 + bc0, b.rows, bc1 - bc0};
        LeafOp op{LeafOp::Kind::kGemm, at, bt, gemm_target(at, bt)};
        attach(id, leaf({op}, level + 1, op.c, /*symmetric=*/false));
      }
    }
    return id;
  }
};

void dedup_blocks(std::vector<Block>& blocks) {
  std::vector<Block> out;
  for (const Block& b : blocks) {
    if (std::find(out.begin(), out.end(), b) == out.end()) out.push_back(b);
  }
  blocks = std::move(out);
}

void visit_pre(const std::vector<DistNode>& nodes, int id, std::vector<int>& order) {
  order.push_back(id);
  for (int c : nodes[static_cast<std::size_t>(id)].children) visit_pre(nodes, c, order);
}

void visit_post(const std::vector<DistNode>& nodes, int id, std::vector<int>& order) {
  for (int c : nodes[static_cast<std::size_t>(id)].children) visit_post(nodes, c, order);
  order.push_back(id);
}

}  // namespace

std::uint64_t dist_tree_builds() { return g_builds.load(std::memory_order_relaxed); }

std::vector<int> DistTree::preorder() const {
  std::vector<int> order;
  order.reserve(nodes.size());
  visit_pre(nodes, root, order);
  return order;
}

std::vector<int> DistTree::postorder() const {
  std::vector<int> order;
  order.reserve(nodes.size());
  visit_post(nodes, root, order);
  return order;
}

std::vector<std::vector<int>> DistTree::rank_chains() const {
  std::vector<std::vector<int>> chains(static_cast<std::size_t>(used_procs));
  // Pre-order visits a parent before its children, so each chain is built
  // top-down (entry first, leaf last).
  for (int id : preorder()) {
    const DistNode& n = nodes[static_cast<std::size_t>(id)];
    if (n.proc >= 0) chains[static_cast<std::size_t>(n.proc)].push_back(id);
  }
  return chains;
}

DistTree build_dist_tree(index_t m, index_t n, int p, double alpha) {
  assert(p >= 1);
  g_builds.fetch_add(1, std::memory_order_relaxed);
  Builder b;
  b.alpha = alpha;
  const int root = b.syrk_node(Block{0, 0, m, n}, p, 0);

  DistTree tree;
  tree.nodes = std::move(b.nodes);
  tree.root = root;
  tree.procs = p;

  // Assign processes: leaves get 0..L-1 in DFS order; inner nodes execute
  // on their leftmost leaf's process.
  int next_proc = 0;
  int depth = 0;
  for (int id : tree.preorder()) {
    DistNode& node = tree.nodes[static_cast<std::size_t>(id)];
    if (node.kind == DistNode::Kind::kLeaf) {
      node.proc = next_proc++;
      depth = std::max(depth, node.level);
    }
  }
  // Post-order pass: inner proc = first child's proc; needs = own ops'
  // blocks (leaves) or union of children's needs (inner).
  for (int id : tree.postorder()) {
    DistNode& node = tree.nodes[static_cast<std::size_t>(id)];
    if (node.kind == DistNode::Kind::kLeaf) {
      for (const LeafOp& op : node.ops) {
        node.needs.push_back(op.a);
        if (op.kind == LeafOp::Kind::kGemm) node.needs.push_back(op.b);
      }
    } else {
      node.proc = tree.nodes[static_cast<std::size_t>(node.children.front())].proc;
      for (int c : node.children) {
        const auto& cn = tree.nodes[static_cast<std::size_t>(c)];
        node.needs.insert(node.needs.end(), cn.needs.begin(), cn.needs.end());
      }
    }
    dedup_blocks(node.needs);
  }
  tree.used_procs = next_proc;
  tree.depth = depth;
  return tree;
}

}  // namespace atalib::sched
