#include "blas/parallel.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "blas/gemm.hpp"
#include "blas/syrk.hpp"
#include "runtime/executor.hpp"

namespace atalib::blas::par {

template <typename T>
void gemm_tn(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c, int threads,
             runtime::Executor& exec) {
  const int stripes = std::max(1, std::min<int>(threads, static_cast<int>(c.cols)));
  if (stripes == 1) {
    blas::gemm_tn(alpha, a, b, c);
    return;
  }
  exec.run(
      stripes,
      [&](int t, runtime::TaskContext&) {
        const index_t j0 = c.cols * t / stripes;
        const index_t j1 = c.cols * (t + 1) / stripes;
        if (j1 > j0) {
          blas::gemm_tn(alpha, a, b.block(0, j0, b.rows, j1 - j0),
                        c.block(0, j0, c.rows, j1 - j0));
        }
      },
      threads);
}

template <typename T>
void gemm_tn(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c, int threads) {
  gemm_tn(alpha, a, b, c, threads, runtime::default_executor());
}

template <typename T>
void syrk_ln(T alpha, ConstMatrixView<T> a, MatrixView<T> c, int threads,
             runtime::Executor& exec) {
  const index_t n = c.rows;
  const int stripes = std::max(1, std::min<int>(threads, static_cast<int>(n)));
  if (stripes == 1) {
    blas::syrk_ln(alpha, a, c);
    return;
  }
  // Equal-area row stripes: the lower-triangle area below row r is r^2/2, so
  // boundaries at n*sqrt(k/P) give each stripe the same flop count.
  std::vector<index_t> bound(static_cast<std::size_t>(stripes) + 1);
  bound[0] = 0;
  for (int k = 1; k <= stripes; ++k) {
    bound[static_cast<std::size_t>(k)] = static_cast<index_t>(
        std::llround(static_cast<double>(n) * std::sqrt(static_cast<double>(k) / stripes)));
  }
  bound[static_cast<std::size_t>(stripes)] = n;
  for (int k = 1; k <= stripes; ++k) {
    bound[static_cast<std::size_t>(k)] =
        std::max(bound[static_cast<std::size_t>(k)], bound[static_cast<std::size_t>(k - 1)]);
  }

  exec.run(
      stripes,
      [&](int t, runtime::TaskContext&) {
        const index_t r0 = bound[static_cast<std::size_t>(t)];
        const index_t r1 = bound[static_cast<std::size_t>(t) + 1];
        if (r1 <= r0) return;
        // Rectangle [r0:r1) x [0:r0) plus the diagonal triangle [r0:r1)^2.
        if (r0 > 0) {
          blas::gemm_tn(alpha, a.block(0, r0, a.rows, r1 - r0), a.block(0, 0, a.rows, r0),
                        c.block(r0, 0, r1 - r0, r0));
        }
        blas::syrk_ln(alpha, a.block(0, r0, a.rows, r1 - r0),
                      c.block(r0, r0, r1 - r0, r1 - r0));
      },
      threads);
}

template <typename T>
void syrk_ln(T alpha, ConstMatrixView<T> a, MatrixView<T> c, int threads) {
  syrk_ln(alpha, a, c, threads, runtime::default_executor());
}

#define ATALIB_BLAS_PAR_INSTANTIATE(T)                                                   \
  template void gemm_tn<T>(T, ConstMatrixView<T>, ConstMatrixView<T>, MatrixView<T>,     \
                           int);                                                         \
  template void gemm_tn<T>(T, ConstMatrixView<T>, ConstMatrixView<T>, MatrixView<T>,     \
                           int, runtime::Executor&);                                     \
  template void syrk_ln<T>(T, ConstMatrixView<T>, MatrixView<T>, int);                   \
  template void syrk_ln<T>(T, ConstMatrixView<T>, MatrixView<T>, int, runtime::Executor&)
ATALIB_BLAS_PAR_INSTANTIATE(float);
ATALIB_BLAS_PAR_INSTANTIATE(double);
#undef ATALIB_BLAS_PAR_INSTANTIATE

}  // namespace atalib::blas::par
