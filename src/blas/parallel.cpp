#include "blas/parallel.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "blas/gemm.hpp"
#include "blas/syrk.hpp"

#ifdef ATALIB_HAVE_OPENMP
#include <omp.h>
#endif

namespace atalib::blas::par {
namespace {

/// Run fn(t) for t in [0, threads) in parallel.
template <typename Fn>
void parallel_for_threads(int threads, Fn&& fn) {
#ifdef ATALIB_HAVE_OPENMP
#pragma omp parallel for num_threads(threads) schedule(static)
  for (int t = 0; t < threads; ++t) fn(t);
#else
  for (int t = 0; t < threads; ++t) fn(t);
#endif
}

}  // namespace

template <typename T>
void gemm_tn(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c, int threads) {
  threads = std::max(1, std::min<int>(threads, static_cast<int>(c.cols)));
  if (threads == 1) {
    blas::gemm_tn(alpha, a, b, c);
    return;
  }
  parallel_for_threads(threads, [&](int t) {
    const index_t j0 = c.cols * t / threads;
    const index_t j1 = c.cols * (t + 1) / threads;
    if (j1 > j0) {
      blas::gemm_tn(alpha, a, b.block(0, j0, b.rows, j1 - j0), c.block(0, j0, c.rows, j1 - j0));
    }
  });
}

template <typename T>
void syrk_ln(T alpha, ConstMatrixView<T> a, MatrixView<T> c, int threads) {
  const index_t n = c.rows;
  threads = std::max(1, std::min<int>(threads, static_cast<int>(n)));
  if (threads == 1) {
    blas::syrk_ln(alpha, a, c);
    return;
  }
  // Equal-area row stripes: the lower-triangle area below row r is r^2/2, so
  // boundaries at n*sqrt(k/P) give each stripe the same flop count.
  std::vector<index_t> bound(static_cast<std::size_t>(threads) + 1);
  bound[0] = 0;
  for (int k = 1; k <= threads; ++k) {
    bound[static_cast<std::size_t>(k)] = static_cast<index_t>(
        std::llround(static_cast<double>(n) * std::sqrt(static_cast<double>(k) / threads)));
  }
  bound[static_cast<std::size_t>(threads)] = n;
  for (int k = 1; k <= threads; ++k) {
    bound[static_cast<std::size_t>(k)] =
        std::max(bound[static_cast<std::size_t>(k)], bound[static_cast<std::size_t>(k - 1)]);
  }

  parallel_for_threads(threads, [&](int t) {
    const index_t r0 = bound[static_cast<std::size_t>(t)];
    const index_t r1 = bound[static_cast<std::size_t>(t) + 1];
    if (r1 <= r0) return;
    // Rectangle [r0:r1) x [0:r0) plus the diagonal triangle [r0:r1)^2.
    if (r0 > 0) {
      blas::gemm_tn(alpha, a.block(0, r0, a.rows, r1 - r0), a.block(0, 0, a.rows, r0),
                    c.block(r0, 0, r1 - r0, r0));
    }
    blas::syrk_ln(alpha, a.block(0, r0, a.rows, r1 - r0), c.block(r0, r0, r1 - r0, r1 - r0));
  });
}

template void gemm_tn<float>(float, ConstMatrixView<float>, ConstMatrixView<float>,
                             MatrixView<float>, int);
template void gemm_tn<double>(double, ConstMatrixView<double>, ConstMatrixView<double>,
                              MatrixView<double>, int);
template void syrk_ln<float>(float, ConstMatrixView<float>, MatrixView<float>, int);
template void syrk_ln<double>(double, ConstMatrixView<double>, MatrixView<double>, int);

}  // namespace atalib::blas::par
