#include "blas/reference.hpp"

#include <cassert>

namespace atalib::blas::ref {

template <typename T>
void gemm_tn(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c) {
  assert(a.cols == c.rows && b.cols == c.cols && a.rows == b.rows);
  for (index_t i = 0; i < c.rows; ++i) {
    for (index_t j = 0; j < c.cols; ++j) {
      T acc = T(0);
      for (index_t l = 0; l < a.rows; ++l) acc += a(l, i) * b(l, j);
      c(i, j) += alpha * acc;
    }
  }
}

template <typename T>
void gemm_nn(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c) {
  assert(a.rows == c.rows && b.cols == c.cols && a.cols == b.rows);
  for (index_t i = 0; i < c.rows; ++i) {
    for (index_t j = 0; j < c.cols; ++j) {
      T acc = T(0);
      for (index_t l = 0; l < a.cols; ++l) acc += a(i, l) * b(l, j);
      c(i, j) += alpha * acc;
    }
  }
}

template <typename T>
void syrk_ln(T alpha, ConstMatrixView<T> a, MatrixView<T> c) {
  assert(c.rows == a.cols && c.cols == a.cols);
  for (index_t i = 0; i < c.rows; ++i) {
    for (index_t j = 0; j <= i; ++j) {
      T acc = T(0);
      for (index_t l = 0; l < a.rows; ++l) acc += a(l, i) * a(l, j);
      c(i, j) += alpha * acc;
    }
  }
}

template <typename T>
void ata_full(T alpha, ConstMatrixView<T> a, MatrixView<T> c) {
  assert(c.rows == a.cols && c.cols == a.cols);
  for (index_t i = 0; i < c.rows; ++i) {
    for (index_t j = 0; j < c.cols; ++j) {
      T acc = T(0);
      for (index_t l = 0; l < a.rows; ++l) acc += a(l, i) * a(l, j);
      c(i, j) += alpha * acc;
    }
  }
}

#define ATALIB_REF_INST(T)                                                              \
  template void gemm_tn<T>(T, ConstMatrixView<T>, ConstMatrixView<T>, MatrixView<T>);  \
  template void gemm_nn<T>(T, ConstMatrixView<T>, ConstMatrixView<T>, MatrixView<T>);  \
  template void syrk_ln<T>(T, ConstMatrixView<T>, MatrixView<T>);                      \
  template void ata_full<T>(T, ConstMatrixView<T>, MatrixView<T>)
ATALIB_REF_INST(float);
ATALIB_REF_INST(double);
#undef ATALIB_REF_INST

}  // namespace atalib::blas::ref
