#include "blas/level1.hpp"

#include <algorithm>
#include <cassert>

#include "blas/kernels/registry.hpp"

namespace atalib::blas {

// The row bodies dispatch to the registry's fused per-ISA tile kernels
// (kernels::active_tileops): one dispatch per call, then every full-extent
// row runs at native vector width. Ragged cells from the virtual-padding
// convention (operands up to one row/column short) stay scalar — they are
// O(rows + cols) against the O(rows * cols) interior.

template <typename T>
void axpy(index_t n, T alpha, const T* x, T* y) {
  kernels::active_tileops<T>().axpy(n, alpha, x, y);
}

template <typename T>
void view_axpy(T alpha, ConstMatrixView<T> x, MatrixView<T> y) {
  assert(x.rows <= y.rows && x.cols <= y.cols);
  assert(y.rows - x.rows <= 1 && y.cols - x.cols <= 1);
  const kernels::TileOps<T>& ops = kernels::active_tileops<T>();
  for (index_t i = 0; i < x.rows; ++i) {
    ops.axpy(x.cols, alpha, x.data + i * x.stride, y.data + i * y.stride);
  }
}

namespace {

// Shared skeleton for dst = a OP b with virtual zero padding. The hot path
// (both operands full extent) runs the fused row kernel; the ragged last
// row/column is handled separately so the inner loop stays branch-free.
// `row` is the vectorized row kernel, `op` the matching scalar for edges.
template <typename T, typename Row, typename Op>
void block_combine(ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> dst, Row row,
                   Op op) {
  assert(a.rows <= dst.rows && a.cols <= dst.cols);
  assert(b.rows <= dst.rows && b.cols <= dst.cols);
  assert(dst.rows - a.rows <= 1 && dst.cols - a.cols <= 1);
  assert(dst.rows - b.rows <= 1 && dst.cols - b.cols <= 1);

  const index_t common_rows = std::min(a.rows, b.rows);
  const index_t common_cols = std::min(a.cols, b.cols);

  for (index_t i = 0; i < common_rows; ++i) {
    const T* pa = a.data + i * a.stride;
    const T* pb = b.data + i * b.stride;
    T* pd = dst.data + i * dst.stride;
    row(common_cols, pa, pb, pd);
    // Columns where exactly one operand exists.
    for (index_t j = common_cols; j < a.cols; ++j) pd[j] = op(pa[j], T(0));
    for (index_t j = common_cols; j < b.cols; ++j) pd[j] = op(T(0), pb[j]);
    for (index_t j = std::max(a.cols, b.cols); j < dst.cols; ++j) pd[j] = T(0);
  }
  // Rows where exactly one operand exists.
  for (index_t i = common_rows; i < a.rows; ++i) {
    const T* pa = a.data + i * a.stride;
    T* pd = dst.data + i * dst.stride;
    for (index_t j = 0; j < a.cols; ++j) pd[j] = op(pa[j], T(0));
    for (index_t j = a.cols; j < dst.cols; ++j) pd[j] = T(0);
  }
  for (index_t i = common_rows; i < b.rows; ++i) {
    const T* pb = b.data + i * b.stride;
    T* pd = dst.data + i * dst.stride;
    for (index_t j = 0; j < b.cols; ++j) pd[j] = op(T(0), pb[j]);
    for (index_t j = b.cols; j < dst.cols; ++j) pd[j] = T(0);
  }
  // Rows beyond both operands are pure padding.
  for (index_t i = std::max(a.rows, b.rows); i < dst.rows; ++i) {
    T* pd = dst.data + i * dst.stride;
    for (index_t j = 0; j < dst.cols; ++j) pd[j] = T(0);
  }
}

}  // namespace

template <typename T>
void block_add(ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> dst) {
  block_combine(a, b, dst, kernels::active_tileops<T>().add,
                [](T x, T y) { return x + y; });
}

template <typename T>
void block_sub(ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> dst) {
  block_combine(a, b, dst, kernels::active_tileops<T>().sub,
                [](T x, T y) { return x - y; });
}

template <typename T>
void block_copy(ConstMatrixView<T> a, MatrixView<T> dst) {
  assert(a.rows <= dst.rows && a.cols <= dst.cols);
  for (index_t i = 0; i < a.rows; ++i) {
    const T* pa = a.data + i * a.stride;
    T* pd = dst.data + i * dst.stride;
    for (index_t j = 0; j < a.cols; ++j) pd[j] = pa[j];
    for (index_t j = a.cols; j < dst.cols; ++j) pd[j] = T(0);
  }
  for (index_t i = a.rows; i < dst.rows; ++i) {
    T* pd = dst.data + i * dst.stride;
    for (index_t j = 0; j < dst.cols; ++j) pd[j] = T(0);
  }
}

template <typename T>
void scal(T alpha, MatrixView<T> x) {
  for (index_t i = 0; i < x.rows; ++i) {
    T* p = x.data + i * x.stride;
    for (index_t j = 0; j < x.cols; ++j) p[j] *= alpha;
  }
}

template <typename T>
T dot(index_t n, const T* x, const T* y) {
  T acc = T(0);
  for (index_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

#define ATALIB_L1_INST(T)                                                             \
  template void axpy<T>(index_t, T, const T*, T*);                                   \
  template void view_axpy<T>(T, ConstMatrixView<T>, MatrixView<T>);                  \
  template void block_add<T>(ConstMatrixView<T>, ConstMatrixView<T>, MatrixView<T>); \
  template void block_sub<T>(ConstMatrixView<T>, ConstMatrixView<T>, MatrixView<T>); \
  template void block_copy<T>(ConstMatrixView<T>, MatrixView<T>);                    \
  template void scal<T>(T, MatrixView<T>);                                           \
  template T dot<T>(index_t, const T*, const T*)
ATALIB_L1_INST(float);
ATALIB_L1_INST(double);
#undef ATALIB_L1_INST

}  // namespace atalib::blas
