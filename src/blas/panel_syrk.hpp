#pragma once
// Blocked panel-SYRK: the tall-skinny (m >> n) Gram engine.
//
// For a tall-skinny A the Strassen recursion is the wrong tool: splitting
// the n-extent hits min_dim almost immediately, so the recursion degrades
// into block-sum bookkeeping on top of what is really one long dot-product
// sweep. This engine computes lower(C) += alpha * A^T A as a sum of
// row-panel contributions,
//
//   C += sum_p A_p^T A_p,   A_p a panel of consecutive rows,
//
// with each panel handed to the packed syrk_ln kernel (blas/syrk.hpp), so
// the whole product is one pass over A in cache-sized chunks with no
// recursion temporaries at all. The panel height is a pure function of
// (dtype, n) — never of the executor or the dispatched ISA — so results
// are bitwise-reproducible across pools, batch sizes, and forced-ISA
// toggles, which the batched-serving tests rely on.
//
// The shape-aware planner (api::shared_plan_key) selects this engine
// automatically when m/n crosses the tuner-measured tall-skinny threshold
// (strassen::Tuner::tall_skinny_ratio, DESIGN.md §8); it is also a
// first-class LeafEngine callers can force.

#include "common/arena.hpp"
#include "matrix/view.hpp"

namespace atalib::blas {

/// Rows per panel for an m x n input of element size `elem_bytes`: targets
/// a ~2 MiB panel footprint (L2-resident streaming) rounded to a multiple
/// of 8 rows, floored at 256 rows and capped at m. Deterministic per
/// (elem_bytes, m, n).
index_t panel_syrk_rows(index_t m, index_t n, std::size_t elem_bytes);

/// lower(C) += alpha * A^T A by row panels. A is m x n, C is n x n; the
/// strict upper triangle of C is never touched. Packed panels come from
/// `arena` when given (checkpoint-scoped; malloc-free once warm), from
/// thread-local buffers otherwise.
template <typename T>
void panel_syrk_ln(T alpha, ConstMatrixView<T> a, MatrixView<T> c, Arena<T>* arena = nullptr);

/// C += alpha * A^T B by the same row-panel split (A is m x n, B is m x k,
/// C is n x k): the off-diagonal companion the schedulers' kGemm leaves
/// need so a whole plan can run on the panel engine.
template <typename T>
void panel_gemm_tn(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c,
                   Arena<T>* arena = nullptr);

/// Arena elements one panel_syrk_ln / panel_gemm_tn call may draw — the
/// per-panel pack bound maximized over every dispatchable ISA (the plan
/// layer caches it, so it must stay valid across forced-ISA toggles).
template <typename T>
index_t panel_syrk_workspace_bound(index_t m, index_t n);
template <typename T>
index_t panel_gemm_workspace_bound(index_t m, index_t n, index_t k);

#define ATALIB_PANEL_SYRK_EXTERN(T)                                                        \
  extern template void panel_syrk_ln<T>(T, ConstMatrixView<T>, MatrixView<T>, Arena<T>*);  \
  extern template void panel_gemm_tn<T>(T, ConstMatrixView<T>, ConstMatrixView<T>,         \
                                        MatrixView<T>, Arena<T>*);                         \
  extern template index_t panel_syrk_workspace_bound<T>(index_t, index_t);                 \
  extern template index_t panel_gemm_workspace_bound<T>(index_t, index_t, index_t)
ATALIB_PANEL_SYRK_EXTERN(float);
ATALIB_PANEL_SYRK_EXTERN(double);
#undef ATALIB_PANEL_SYRK_EXTERN

}  // namespace atalib::blas
