#include "blas/gemm.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/aligned_buffer.hpp"

namespace atalib::blas {
namespace {

// Register tile. 4x8 doubles = two cache lines of C per row of the tile;
// small enough that the accumulator fits in registers for both precisions.
constexpr index_t kMR = 4;
constexpr index_t kNR = 8;

// Cache blocking. KC*NR of B plus MR*KC of A stay in L1 during one
// microkernel sweep; MC*KC of packed A targets L2.
constexpr index_t kMC = 128;
constexpr index_t kKC = 256;
constexpr index_t kNC = 2048;

/// Element accessor honoring Op without materializing the transpose.
template <typename T>
struct OpView {
  ConstMatrixView<T> v;
  bool trans;
  index_t rows() const { return trans ? v.cols : v.rows; }
  index_t cols() const { return trans ? v.rows : v.cols; }
  T at(index_t i, index_t j) const { return trans ? v(j, i) : v(i, j); }
};

/// Pack an mc x kc block of op(A) into MR-row micro-panels:
/// panel p holds rows [p*MR, p*MR+MR) column-major-by-k:
/// dst[p*MR*kc + k*MR + r]. Rows past the edge are zero-filled so the
/// microkernel never branches on MR.
template <typename T>
void pack_a(const OpView<T>& a, index_t i0, index_t p0, index_t mc, index_t kc, T* dst) {
  for (index_t p = 0; p < mc; p += kMR) {
    const index_t mr = std::min(kMR, mc - p);
    for (index_t k = 0; k < kc; ++k) {
      index_t r = 0;
      for (; r < mr; ++r) dst[k * kMR + r] = a.at(i0 + p + r, p0 + k);
      for (; r < kMR; ++r) dst[k * kMR + r] = T(0);
    }
    dst += kMR * kc;
  }
}

/// Pack a kc x nc block of op(B) into NR-column micro-panels:
/// dst[q*NR*kc + k*NR + c]; columns past the edge zero-filled.
template <typename T>
void pack_b(const OpView<T>& b, index_t p0, index_t j0, index_t kc, index_t nc, T* dst) {
  for (index_t q = 0; q < nc; q += kNR) {
    const index_t nr = std::min(kNR, nc - q);
    for (index_t k = 0; k < kc; ++k) {
      index_t c = 0;
      for (; c < nr; ++c) dst[k * kNR + c] = b.at(p0 + k, j0 + q + c);
      for (; c < kNR; ++c) dst[k * kNR + c] = T(0);
    }
    dst += kNR * kc;
  }
}

/// MR x NR microkernel: C[0:mr, 0:nr] += alpha * Apanel * Bpanel over kc.
/// The accumulator covers the full MR x NR tile (packers zero-padded), only
/// the valid mr x nr corner is stored back.
template <typename T>
void micro_kernel(index_t kc, T alpha, const T* ap, const T* bp, T* c, index_t ldc, index_t mr,
                  index_t nr) {
  T acc[kMR][kNR] = {};
  for (index_t k = 0; k < kc; ++k) {
    const T* a = ap + k * kMR;
    const T* b = bp + k * kNR;
    for (index_t r = 0; r < kMR; ++r) {
      const T ar = a[r];
      for (index_t cidx = 0; cidx < kNR; ++cidx) acc[r][cidx] += ar * b[cidx];
    }
  }
  for (index_t r = 0; r < mr; ++r) {
    for (index_t cidx = 0; cidx < nr; ++cidx) c[r * ldc + cidx] += alpha * acc[r][cidx];
  }
}

/// Per-thread packing buffers, grown on demand. Thread-local so the OpenMP
/// parallel wrappers can call the serial gemm concurrently without sharing.
template <typename T>
struct PackBuffers {
  AlignedBuffer<T> a;
  AlignedBuffer<T> b;
  void ensure(std::size_t a_need, std::size_t b_need) {
    if (a.size() < a_need) a = AlignedBuffer<T>(a_need);
    if (b.size() < b_need) b = AlignedBuffer<T>(b_need);
  }
};

template <typename T>
PackBuffers<T>& pack_buffers() {
  thread_local PackBuffers<T> bufs;
  return bufs;
}

}  // namespace

template <typename T>
void gemm(Op opa, Op opb, T alpha, ConstMatrixView<T> av, ConstMatrixView<T> bv,
          MatrixView<T> c) {
  const OpView<T> a{av, opa == Op::kTrans};
  const OpView<T> b{bv, opb == Op::kTrans};
  const index_t m = c.rows, n = c.cols, k = a.cols();
  assert(a.rows() == m && b.rows() == k && b.cols() == n);
  if (m == 0 || n == 0 || k == 0 || alpha == T(0)) return;

  auto& bufs = pack_buffers<T>();
  // Panel capacity rounded up to whole micro-panels.
  const std::size_t a_cap = static_cast<std::size_t>((kMC + kMR) * kKC);
  const std::size_t b_cap = static_cast<std::size_t>(kKC * (kNC + kNR));
  bufs.ensure(a_cap, b_cap);

  for (index_t jc = 0; jc < n; jc += kNC) {
    const index_t nc = std::min(kNC, n - jc);
    for (index_t pc = 0; pc < k; pc += kKC) {
      const index_t kc = std::min(kKC, k - pc);
      pack_b(b, pc, jc, kc, nc, bufs.b.data());
      for (index_t ic = 0; ic < m; ic += kMC) {
        const index_t mc = std::min(kMC, m - ic);
        pack_a(a, ic, pc, mc, kc, bufs.a.data());
        for (index_t q = 0; q < nc; q += kNR) {
          const index_t nr = std::min(kNR, nc - q);
          const T* bp = bufs.b.data() + (q / kNR) * kNR * kc;
          for (index_t p = 0; p < mc; p += kMR) {
            const index_t mr = std::min(kMR, mc - p);
            const T* ap = bufs.a.data() + (p / kMR) * kMR * kc;
            micro_kernel(kc, alpha, ap, bp, c.data + (ic + p) * c.stride + jc + q, c.stride, mr,
                         nr);
          }
        }
      }
    }
  }
}

template void gemm<float>(Op, Op, float, ConstMatrixView<float>, ConstMatrixView<float>,
                          MatrixView<float>);
template void gemm<double>(Op, Op, double, ConstMatrixView<double>, ConstMatrixView<double>,
                           MatrixView<double>);

}  // namespace atalib::blas
