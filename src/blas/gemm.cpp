#include "blas/gemm.hpp"

#include <algorithm>
#include <cassert>

#include "blas/kernels/pack.hpp"
#include "blas/kernels/registry.hpp"

namespace atalib::blas {

template <typename T>
void gemm(Op opa, Op opb, T alpha, ConstMatrixView<T> av, ConstMatrixView<T> bv, MatrixView<T> c,
          Arena<T>* arena) {
  const kernels::OpView<T> a{av, opa == Op::kTrans};
  const kernels::OpView<T> b{bv, opb == Op::kTrans};
  const index_t m = c.rows, n = c.cols, k = a.cols();
  assert(a.rows() == m && b.rows() == k && b.cols() == n);
  if (m == 0 || n == 0 || k == 0 || alpha == T(0)) return;

  const kernels::KernelConfig<T>& cfg = kernels::active_config<T>();
  const index_t MR = cfg.uk.mr, NR = cfg.uk.nr;
  const index_t MC = cfg.blocks.mc, KC = cfg.blocks.kc, NC = cfg.blocks.nc;
  const kernels::PackExtents ext = kernels::pack_extents(cfg, m, n, k);
  const kernels::PackStorage<T> bufs(arena, ext.a, ext.b);

  for (index_t jc = 0; jc < n; jc += NC) {
    const index_t nc = std::min(NC, n - jc);
    for (index_t pc = 0; pc < k; pc += KC) {
      const index_t kc = std::min(KC, k - pc);
      kernels::pack_b(b, pc, jc, kc, nc, NR, bufs.b());
      for (index_t ic = 0; ic < m; ic += MC) {
        const index_t mc = std::min(MC, m - ic);
        kernels::pack_a(a, ic, pc, mc, kc, MR, bufs.a());
        for (index_t q = 0; q < nc; q += NR) {
          const index_t nr = std::min(NR, nc - q);
          const T* bp = bufs.b() + (q / NR) * NR * kc;
          for (index_t p = 0; p < mc; p += MR) {
            const index_t mr = std::min(MR, mc - p);
            const T* ap = bufs.a() + (p / MR) * MR * kc;
            cfg.uk.fn(kc, alpha, ap, bp, c.data + (ic + p) * c.stride + jc + q, c.stride, mr,
                      nr);
          }
        }
      }
    }
  }
}

template <typename T>
index_t gemm_workspace_bound(index_t m, index_t n, index_t k) {
  return kernels::pack_bound<T>(m, n, k);
}

template void gemm<float>(Op, Op, float, ConstMatrixView<float>, ConstMatrixView<float>,
                          MatrixView<float>, Arena<float>*);
template void gemm<double>(Op, Op, double, ConstMatrixView<double>, ConstMatrixView<double>,
                           MatrixView<double>, Arena<double>*);
template index_t gemm_workspace_bound<float>(index_t, index_t, index_t);
template index_t gemm_workspace_bound<double>(index_t, index_t, index_t);

}  // namespace atalib::blas
