#pragma once
// Symmetric rank-K update: lower(C) += alpha * A^T A.
//
// Self-built substitute for MKL ?syrk (the paper's baseline in Figs. 3 and 5
// and AtA's base-case kernel). Only the lower triangle of C is touched,
// matching the BLAS 'L' uplo convention and AtA's output contract.

#include "matrix/view.hpp"

namespace atalib::blas {

/// lower(C) += alpha * A^T A. A is m x n, C is n x n; the strict upper
/// triangle of C is never read or written.
template <typename T>
void syrk_ln(T alpha, ConstMatrixView<T> a, MatrixView<T> c);

extern template void syrk_ln<float>(float, ConstMatrixView<float>, MatrixView<float>);
extern template void syrk_ln<double>(double, ConstMatrixView<double>, MatrixView<double>);

}  // namespace atalib::blas
