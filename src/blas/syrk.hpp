#pragma once
// Symmetric rank-K update: lower(C) += alpha * A^T A.
//
// Self-built substitute for MKL ?syrk (the paper's baseline in Figs. 3 and 5
// and AtA's base-case kernel). Only the lower triangle of C is touched,
// matching the BLAS 'L' uplo convention and AtA's output contract. The
// implementation is a true packed-SYRK (see DESIGN.md §2): one panel-packing
// sweep shared with gemm's blocking, above-diagonal microtiles skipped
// outright, diagonal-crossing microtiles folded through a register-tile
// stack temporary — no separate diagonal-block scratch buffer.

#include "common/arena.hpp"
#include "matrix/view.hpp"

namespace atalib::blas {

/// lower(C) += alpha * A^T A. A is m x n, C is n x n; the strict upper
/// triangle of C is never read or written. Packed panels come from `arena`
/// when given (checkpoint-scoped; malloc-free once the arena is warm) and
/// from reusable thread-local buffers otherwise.
template <typename T>
void syrk_ln(T alpha, ConstMatrixView<T> a, MatrixView<T> c, Arena<T>* arena = nullptr);

/// Arena elements one syrk_ln call on an m x n input may draw for its
/// packed panels (same maximization rule as gemm_workspace_bound).
template <typename T>
index_t syrk_workspace_bound(index_t m, index_t n);

extern template void syrk_ln<float>(float, ConstMatrixView<float>, MatrixView<float>,
                                    Arena<float>*);
extern template void syrk_ln<double>(double, ConstMatrixView<double>, MatrixView<double>,
                                     Arena<double>*);
extern template index_t syrk_workspace_bound<float>(index_t, index_t);
extern template index_t syrk_workspace_bound<double>(index_t, index_t);

}  // namespace atalib::blas
