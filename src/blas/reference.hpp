#pragma once
// Naive triple-loop reference kernels.
//
// These exist solely as oracles for the test suite: every fast kernel
// (blocked gemm, syrk, Strassen, AtA, AtA-S, AtA-D) is checked against
// them on randomized shapes. Deliberately unblocked and obvious.

#include "matrix/view.hpp"

namespace atalib::blas::ref {

/// C += alpha * A^T B (A m x n, B m x k, C n x k).
template <typename T>
void gemm_tn(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c);

/// C += alpha * A B (A m x k, B k x n, C m x n).
template <typename T>
void gemm_nn(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c);

/// lower(C) += alpha * A^T A.
template <typename T>
void syrk_ln(T alpha, ConstMatrixView<T> a, MatrixView<T> c);

/// Full (both triangles) C += alpha * A^T A; convenience for tests that
/// compare against symmetrized outputs.
template <typename T>
void ata_full(T alpha, ConstMatrixView<T> a, MatrixView<T> c);

#define ATALIB_REF_EXTERN(T)                                                            \
  extern template void gemm_tn<T>(T, ConstMatrixView<T>, ConstMatrixView<T>,           \
                                  MatrixView<T>);                                      \
  extern template void gemm_nn<T>(T, ConstMatrixView<T>, ConstMatrixView<T>,           \
                                  MatrixView<T>);                                      \
  extern template void syrk_ln<T>(T, ConstMatrixView<T>, MatrixView<T>);               \
  extern template void ata_full<T>(T, ConstMatrixView<T>, MatrixView<T>)
ATALIB_REF_EXTERN(float);
ATALIB_REF_EXTERN(double);
#undef ATALIB_REF_EXTERN

}  // namespace atalib::blas::ref
