#pragma once
// OpenMP-parallel gemm / syrk.
//
// Substitute for multi-threaded MKL (the Fig. 5 baseline). Parallelization
// is over disjoint output stripes — each thread runs the serial blocked
// kernel on its own C region, so no synchronization is needed beyond the
// implicit barrier, mirroring how AtA-S parallelizes its own work.

#include "matrix/view.hpp"

namespace atalib::blas::par {

/// C += alpha * A^T B using `threads` threads (column stripes of C).
template <typename T>
void gemm_tn(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c, int threads);

/// lower(C) += alpha * A^T A using `threads` threads. Row stripes of C are
/// sized so each thread owns an equal *area* of the lower triangle
/// (boundaries at n * sqrt(k / P)).
template <typename T>
void syrk_ln(T alpha, ConstMatrixView<T> a, MatrixView<T> c, int threads);

extern template void gemm_tn<float>(float, ConstMatrixView<float>, ConstMatrixView<float>,
                                    MatrixView<float>, int);
extern template void gemm_tn<double>(double, ConstMatrixView<double>, ConstMatrixView<double>,
                                     MatrixView<double>, int);
extern template void syrk_ln<float>(float, ConstMatrixView<float>, MatrixView<float>, int);
extern template void syrk_ln<double>(double, ConstMatrixView<double>, MatrixView<double>, int);

}  // namespace atalib::blas::par
