#pragma once
// Executor-parallel gemm / syrk.
//
// Substitute for multi-threaded MKL (the Fig. 5 baseline). Parallelization
// is over disjoint output stripes — each stripe is one runtime task running
// the serial blocked kernel on its own C region, so no synchronization is
// needed beyond batch completion, mirroring how AtA-S parallelizes its own
// work. Stripes run on the persistent work-stealing pool by default; pass
// an explicit Executor (e.g. runtime::ForkJoinExecutor) to A/B engines.

#include "matrix/view.hpp"

namespace atalib {

namespace runtime {
class Executor;
}

namespace blas::par {

/// C += alpha * A^T B using `threads` column stripes of C.
template <typename T>
void gemm_tn(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c, int threads);
template <typename T>
void gemm_tn(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c, int threads,
             runtime::Executor& exec);

/// lower(C) += alpha * A^T A using `threads` stripes. Row stripes of C are
/// sized so each stripe owns an equal *area* of the lower triangle
/// (boundaries at n * sqrt(k / P)).
template <typename T>
void syrk_ln(T alpha, ConstMatrixView<T> a, MatrixView<T> c, int threads);
template <typename T>
void syrk_ln(T alpha, ConstMatrixView<T> a, MatrixView<T> c, int threads,
             runtime::Executor& exec);

#define ATALIB_BLAS_PAR_EXTERN(T)                                                         \
  extern template void gemm_tn<T>(T, ConstMatrixView<T>, ConstMatrixView<T>,              \
                                  MatrixView<T>, int);                                    \
  extern template void gemm_tn<T>(T, ConstMatrixView<T>, ConstMatrixView<T>,              \
                                  MatrixView<T>, int, runtime::Executor&);                \
  extern template void syrk_ln<T>(T, ConstMatrixView<T>, MatrixView<T>, int);             \
  extern template void syrk_ln<T>(T, ConstMatrixView<T>, MatrixView<T>, int,              \
                                  runtime::Executor&)
ATALIB_BLAS_PAR_EXTERN(float);
ATALIB_BLAS_PAR_EXTERN(double);
#undef ATALIB_BLAS_PAR_EXTERN

}  // namespace blas::par
}  // namespace atalib
