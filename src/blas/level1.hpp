#pragma once
// Level-1 style kernels on views, including the paper's "virtual padding"
// block sums.
//
// Strassen on odd-sized blocks needs sums between rectangles whose shapes
// differ by at most one row and/or one column (the floor-half block is the
// ceil-half block minus its last row/column). The paper handles this by
// "conveniently applying ?axpy ... so that it simulates padding of an extra
// 0 column or row". block_add / block_sub below are exactly that: the
// destination has the union extent and operand cells outside their own
// extent read as zero. No physical padding, no peeling.

#include "matrix/view.hpp"

namespace atalib::blas {

/// y += alpha * x over contiguous arrays (classic ?axpy).
template <typename T>
void axpy(index_t n, T alpha, const T* x, T* y);

/// Y += alpha * X where X may be up to one row and one column smaller than
/// Y; missing X cells are treated as zero (i.e. they leave Y unchanged).
template <typename T>
void view_axpy(T alpha, ConstMatrixView<T> x, MatrixView<T> y);

/// dst = a + b, where a and b may each be up to one row/column smaller than
/// dst; missing cells read as zero.
template <typename T>
void block_add(ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> dst);

/// dst = a - b with the same virtual-padding convention.
template <typename T>
void block_sub(ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> dst);

/// dst = a (copy with virtual padding: cells of dst outside a's extent are
/// zeroed).
template <typename T>
void block_copy(ConstMatrixView<T> a, MatrixView<T> dst);

/// x *= alpha elementwise over a view.
template <typename T>
void scal(T alpha, MatrixView<T> x);

/// Dot product of two contiguous arrays.
template <typename T>
T dot(index_t n, const T* x, const T* y);

#define ATALIB_L1_EXTERN(T)                                                              \
  extern template void axpy<T>(index_t, T, const T*, T*);                               \
  extern template void view_axpy<T>(T, ConstMatrixView<T>, MatrixView<T>);              \
  extern template void block_add<T>(ConstMatrixView<T>, ConstMatrixView<T>,             \
                                    MatrixView<T>);                                     \
  extern template void block_sub<T>(ConstMatrixView<T>, ConstMatrixView<T>,             \
                                    MatrixView<T>);                                     \
  extern template void block_copy<T>(ConstMatrixView<T>, MatrixView<T>);                \
  extern template void scal<T>(T, MatrixView<T>);                                       \
  extern template T dot<T>(index_t, const T*, const T*)
ATALIB_L1_EXTERN(float);
ATALIB_L1_EXTERN(double);
#undef ATALIB_L1_EXTERN

}  // namespace atalib::blas
