#pragma once
// Cache-blocked general matrix multiply on strided views.
//
// This is the self-built substitute for MKL ?gemm (see DESIGN.md): a
// BLIS-style three-level blocking (NC / KC / MC) with packed panels and an
// MR x NR register microkernel that GCC auto-vectorizes. It is the *leaf*
// kernel under AtA / Strassen and the cubic *baseline* they are compared
// against, so both sides of every experiment run on the same kernel.

#include "matrix/view.hpp"

namespace atalib::blas {

/// Operand transposition selector (C += alpha * op(A) * op(B)).
enum class Op { kNone, kTrans };

/// C += alpha * op(A) * op(B). Shapes: op(A) is MxK, op(B) is KxN,
/// C is MxN. Accumulating semantics (beta == 1); scale C beforehand for
/// other betas, as the paper does.
template <typename T>
void gemm(Op opa, Op opb, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c);

/// C += alpha * A^T * B (the paper's ?gemm use: A is m x n, B is m x k,
/// C is n x k).
template <typename T>
void gemm_tn(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c) {
  gemm(Op::kTrans, Op::kNone, alpha, a, b, c);
}

/// C += alpha * A * B.
template <typename T>
void gemm_nn(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c) {
  gemm(Op::kNone, Op::kNone, alpha, a, b, c);
}

/// C += alpha * A * B^T.
template <typename T>
void gemm_nt(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c) {
  gemm(Op::kNone, Op::kTrans, alpha, a, b, c);
}

extern template void gemm<float>(Op, Op, float, ConstMatrixView<float>, ConstMatrixView<float>,
                                 MatrixView<float>);
extern template void gemm<double>(Op, Op, double, ConstMatrixView<double>,
                                  ConstMatrixView<double>, MatrixView<double>);

}  // namespace atalib::blas
