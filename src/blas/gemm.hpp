#pragma once
// Cache-blocked general matrix multiply on strided views.
//
// This is the self-built substitute for MKL ?gemm (see DESIGN.md §2): a
// BLIS-style three-level blocking (NC / KC / MC) with packed panels and an
// MR x NR register microkernel selected at runtime from the ISA-dispatched
// registry (src/blas/kernels/) — AVX-512 / AVX2+FMA / NEON tiles with the
// portable scalar tile as fallback. It is the *leaf* kernel under AtA /
// Strassen and the cubic *baseline* they are compared against, so both
// sides of every experiment run on the same kernel.

#include "common/arena.hpp"
#include "matrix/view.hpp"

namespace atalib::blas {

/// Operand transposition selector (C += alpha * op(A) * op(B)).
enum class Op { kNone, kTrans };

/// C += alpha * op(A) * op(B). Shapes: op(A) is MxK, op(B) is KxN,
/// C is MxN. Accumulating semantics (beta == 1); scale C beforehand for
/// other betas, as the paper does. Packed panels come from `arena` when
/// given (checkpoint-scoped: the arena is net-untouched on return, and the
/// call is malloc-free once the arena is warm) and from reusable
/// thread-local buffers otherwise.
template <typename T>
void gemm(Op opa, Op opb, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c,
          Arena<T>* arena = nullptr);

/// Arena elements one gemm call may draw for its packed panels, for an
/// m x n output with contraction depth k. Maximized over every kernel the
/// registry could dispatch to, so a bound cached in a plan stays valid
/// across forced-ISA toggles (tests) and is what `leaf_op_workspace`
/// reports for kBlas leaves.
template <typename T>
index_t gemm_workspace_bound(index_t m, index_t n, index_t k);

/// C += alpha * A^T * B (the paper's ?gemm use: A is m x n, B is m x k,
/// C is n x k).
template <typename T>
void gemm_tn(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c,
             Arena<T>* arena = nullptr) {
  gemm(Op::kTrans, Op::kNone, alpha, a, b, c, arena);
}

/// C += alpha * A * B.
template <typename T>
void gemm_nn(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c,
             Arena<T>* arena = nullptr) {
  gemm(Op::kNone, Op::kNone, alpha, a, b, c, arena);
}

/// C += alpha * A * B^T.
template <typename T>
void gemm_nt(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c,
             Arena<T>* arena = nullptr) {
  gemm(Op::kNone, Op::kTrans, alpha, a, b, c, arena);
}

extern template void gemm<float>(Op, Op, float, ConstMatrixView<float>, ConstMatrixView<float>,
                                 MatrixView<float>, Arena<float>*);
extern template void gemm<double>(Op, Op, double, ConstMatrixView<double>,
                                  ConstMatrixView<double>, MatrixView<double>, Arena<double>*);
extern template index_t gemm_workspace_bound<float>(index_t, index_t, index_t);
extern template index_t gemm_workspace_bound<double>(index_t, index_t, index_t);

}  // namespace atalib::blas
