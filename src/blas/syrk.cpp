#include "blas/syrk.hpp"

#include <algorithm>
#include <cassert>

#include "blas/gemm.hpp"
#include "common/aligned_buffer.hpp"
#include "matrix/matrix.hpp"

namespace atalib::blas {
namespace {

// Column-block width. Off-diagonal C blocks are full rectangles handled by
// gemm; diagonal blocks go through a temporary so gemm's rectangular
// microkernel can be reused without writing the upper triangle.
constexpr index_t kNB = 128;

template <typename T>
AlignedBuffer<T>& diag_scratch() {
  thread_local AlignedBuffer<T> buf;
  if (buf.size() < static_cast<std::size_t>(kNB * kNB)) {
    buf = AlignedBuffer<T>(static_cast<std::size_t>(kNB * kNB));
  }
  return buf;
}

}  // namespace

template <typename T>
void syrk_ln(T alpha, ConstMatrixView<T> a, MatrixView<T> c) {
  const index_t m = a.rows, n = a.cols;
  assert(c.rows == n && c.cols == n);
  if (n == 0 || m == 0 || alpha == T(0)) return;

  for (index_t j = 0; j < n; j += kNB) {
    const index_t nb = std::min(kNB, n - j);
    // Rectangular part below the diagonal block: rows (j+nb)..n of this
    // column panel, C[i, j:j+nb] = A[:, i]^T A[:, j:j+nb].
    if (j + nb < n) {
      gemm_tn(alpha, a.block(0, j + nb, m, n - j - nb), a.block(0, j, m, nb),
              c.block(j + nb, j, n - j - nb, nb));
    }
    // Diagonal block through scratch (gemm writes the full square).
    auto& scratch = diag_scratch<T>();
    MatrixView<T> t(scratch.data(), nb, nb, nb);
    fill_view(t, T(0));
    gemm_tn(T(1), a.block(0, j, m, nb), a.block(0, j, m, nb), t);
    for (index_t i = 0; i < nb; ++i) {
      T* dst = c.data + (j + i) * c.stride + j;
      const T* src = t.data + i * nb;
      for (index_t jj = 0; jj <= i; ++jj) dst[jj] += alpha * src[jj];
    }
  }
}

template void syrk_ln<float>(float, ConstMatrixView<float>, MatrixView<float>);
template void syrk_ln<double>(double, ConstMatrixView<double>, MatrixView<double>);

}  // namespace atalib::blas
