#include "blas/syrk.hpp"

#include <algorithm>
#include <cassert>

#include "blas/gemm.hpp"
#include "blas/kernels/pack.hpp"
#include "blas/kernels/registry.hpp"

namespace atalib::blas {

template <typename T>
void syrk_ln(T alpha, ConstMatrixView<T> a, MatrixView<T> c, Arena<T>* arena) {
  const index_t m = a.rows, n = a.cols;
  assert(c.rows == n && c.cols == n);
  if (n == 0 || m == 0 || alpha == T(0)) return;

  const kernels::KernelConfig<T>& cfg = kernels::active_config<T>();
  const index_t MR = cfg.uk.mr, NR = cfg.uk.nr;
  const index_t MC = cfg.blocks.mc, KC = cfg.blocks.kc, NC = cfg.blocks.nc;
  const kernels::PackExtents ext = kernels::pack_extents(cfg, n, n, m);
  const kernels::PackStorage<T> bufs(arena, ext.a, ext.b);

  // C = A^T A: the row operand is op(A) = A^T (n x m), the column operand is
  // A itself — both packers hit their contiguous fast path.
  const kernels::OpView<T> arow{a, true};
  const kernels::OpView<T> acol{a, false};

  for (index_t jc = 0; jc < n; jc += NC) {
    const index_t nc = std::min(NC, n - jc);
    for (index_t pc = 0; pc < m; pc += KC) {
      const index_t kc = std::min(KC, m - pc);
      kernels::pack_b(acol, pc, jc, kc, nc, NR, bufs.b());
      // Output rows above jc are strictly upper-triangle for this column
      // panel, so row panels start at the diagonal.
      for (index_t ic = jc; ic < n; ic += MC) {
        const index_t mc = std::min(MC, n - ic);
        kernels::pack_a(arow, ic, pc, mc, kc, MR, bufs.a());
        for (index_t q = 0; q < nc; q += NR) {
          const index_t nr = std::min(NR, nc - q);
          const index_t col0 = jc + q;
          const T* bp = bufs.b() + (q / NR) * NR * kc;
          for (index_t p = 0; p < mc; p += MR) {
            const index_t mr = std::min(MR, mc - p);
            const index_t row0 = ic + p;
            if (row0 + mr - 1 < col0) continue;  // microtile strictly above the diagonal
            const T* ap = bufs.a() + (p / MR) * MR * kc;
            if (row0 >= col0 + nr - 1) {
              // Every (i, j) of the tile has j <= i: store straight into C.
              cfg.uk.fn(kc, alpha, ap, bp, c.data + row0 * c.stride + col0, c.stride, mr, nr);
            } else {
              // Diagonal-crossing tile: compute the full tile into a stack
              // temporary, fold back only the at-or-below-diagonal part.
              T tmp[kernels::kMaxMR * kernels::kMaxNR];
              for (index_t i = 0; i < mr * nr; ++i) tmp[i] = T(0);
              cfg.uk.fn(kc, alpha, ap, bp, tmp, nr, mr, nr);
              for (index_t r = 0; r < mr; ++r) {
                const index_t jmax = std::min(nr, row0 + r - col0 + 1);
                T* dst = c.data + (row0 + r) * c.stride + col0;
                const T* src = tmp + r * nr;
                for (index_t j = 0; j < jmax; ++j) dst[j] += src[j];
              }
            }
          }
        }
      }
    }
  }
}

template <typename T>
index_t syrk_workspace_bound(index_t m, index_t n) {
  return gemm_workspace_bound<T>(n, n, m);
}

template void syrk_ln<float>(float, ConstMatrixView<float>, MatrixView<float>, Arena<float>*);
template void syrk_ln<double>(double, ConstMatrixView<double>, MatrixView<double>,
                              Arena<double>*);
template index_t syrk_workspace_bound<float>(index_t, index_t);
template index_t syrk_workspace_bound<double>(index_t, index_t);

}  // namespace atalib::blas
