#pragma once
// Runtime microkernel dispatch and blocking-parameter selection
// (see DESIGN.md §2).
//
// One binary carries every ISA variant CMake compiled for this
// architecture; the registry picks the best CPU-supported one at first use
// (AVX-512 > AVX2 > NEON > scalar) and derives the gemm/syrk cache blocking
// (MC/KC/NC) from the selected register tile plus common/cacheinfo. The
// ATALIB_FORCE_SCALAR_KERNELS environment variable (read once, at first
// dispatch) pins the whole process to the scalar tile — the ctest
// forced-scalar leg; set_forced_isa() is the programmatic version tests and
// benches use to measure a specific tier.

#include <cstddef>
#include <optional>
#include <vector>

#include "blas/kernels/microkernel.hpp"

namespace atalib::blas::kernels {

const char* isa_name(Isa isa);

/// Cache blocking derived from a register tile and probe_cache_info():
/// kc — one MR x kc A micro-panel plus one kc x NR B micro-panel stay in L1
/// during a microkernel sweep; mc x kc of packed A targets half of L2;
/// kc x nc of packed B targets half of L3 (capped so per-thread pack
/// buffers stay a few MB). mc and nc are multiples of the tile.
struct BlockSizes {
  index_t mc = 0;
  index_t kc = 0;
  index_t nc = 0;
};

/// Everything the gemm/syrk drivers need for one dtype on one ISA.
template <typename T>
struct KernelConfig {
  Isa isa = Isa::kScalar;
  const char* name = "";
  Microkernel<T> uk;
  BlockSizes blocks;
};

/// Packed-panel element counts one gemm/syrk call needs for an m x n output
/// with contraction depth k (a = A panels, b = B panels).
struct PackExtents {
  index_t a = 0;
  index_t b = 0;
};

/// All kernels compiled into this binary, dispatch-preference first
/// (the scalar entry is always last and always present).
const std::vector<const KernelEntry*>& compiled_kernels();

/// The compiled kernels whose supported() probe passes on this CPU.
std::vector<const KernelEntry*> available_kernels();

/// Override dispatch for tests/benches: a concrete Isa pins every
/// subsequent gemm/syrk call to that kernel; nullopt returns to automatic
/// (cpuid best, or scalar when ATALIB_FORCE_SCALAR_KERNELS was set).
/// Throws std::invalid_argument if `isa` is not compiled in or not
/// supported on this CPU. Process-wide; not meant to race in-flight calls.
void set_forced_isa(std::optional<Isa> isa);
std::optional<Isa> forced_isa();

/// The config gemm/syrk dispatch to right now for dtype T.
template <typename T>
const KernelConfig<T>& active_config();

/// The fused level-1 row kernels (add/sub/axpy and their alpha-scaled
/// forms) the current dispatch selects for dtype T. Follows the same
/// forced-ISA / env pinning as active_config(), so the forced-scalar leg
/// runs the scalar row loops everywhere.
template <typename T>
const TileOps<T>& active_tileops();

/// Config for a specific ISA; throws std::invalid_argument if unavailable.
template <typename T>
const KernelConfig<T>& config_for(Isa isa);

/// Shape-tightened pack-buffer need for one config.
template <typename T>
PackExtents pack_extents(const KernelConfig<T>& cfg, index_t m, index_t n, index_t k);

/// Arena elements a gemm/syrk call may draw for its pack buffers: the max
/// over every *available* ISA, so a cached workspace bound stays valid
/// across set_forced_isa toggles.
template <typename T>
index_t pack_bound(index_t m, index_t n, index_t k);

#define ATALIB_KERNELS_EXTERN(T)                                                      \
  extern template const KernelConfig<T>& active_config<T>();                          \
  extern template const TileOps<T>& active_tileops<T>();                              \
  extern template const KernelConfig<T>& config_for<T>(Isa);                          \
  extern template PackExtents pack_extents<T>(const KernelConfig<T>&, index_t,        \
                                              index_t, index_t);                      \
  extern template index_t pack_bound<T>(index_t, index_t, index_t)
ATALIB_KERNELS_EXTERN(float);
ATALIB_KERNELS_EXTERN(double);
#undef ATALIB_KERNELS_EXTERN

}  // namespace atalib::blas::kernels
