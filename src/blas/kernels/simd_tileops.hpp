#pragma once
// Generic fused level-1 row kernels over GCC/Clang vector extensions.
//
// Included ONLY by the per-ISA kernel translation units (like
// simd_microkernel.hpp): the same templates compiled under -mavx2,
// -mavx512f, or aarch64 NEON emit native-width code, so one source serves
// every tier. VL is the vector length in elements. The main loop runs two
// vectors per iteration to keep the load/store pipes busy on these
// bandwidth-bound ops; the tail falls back to scalar lanes. Every element
// is computed by one independent add/sub (and at most one multiply), so no
// reassociation or width-dependent rounding is possible — vector and scalar
// tiers agree bitwise whenever the per-element arithmetic is exact.
// Loads/stores go through memcpy so rows need no alignment.

#include "matrix/view.hpp"

namespace atalib::blas::kernels {

template <typename T, int VL, typename Op>
inline void simd_row_combine(index_t n, const T* a, const T* b, T* dst, Op op) {
  typedef T V __attribute__((vector_size(VL * sizeof(T))));
  const auto load = [](const T* p) {
    V v;
    __builtin_memcpy(&v, p, sizeof(V));
    return v;
  };
  index_t i = 0;
  for (; i + 2 * VL <= n; i += 2 * VL) {
    const V r0 = op(load(a + i), load(b + i));
    const V r1 = op(load(a + i + VL), load(b + i + VL));
    __builtin_memcpy(dst + i, &r0, sizeof(V));
    __builtin_memcpy(dst + i + VL, &r1, sizeof(V));
  }
  for (; i + VL <= n; i += VL) {
    const V r = op(load(a + i), load(b + i));
    __builtin_memcpy(dst + i, &r, sizeof(V));
  }
  for (; i < n; ++i) dst[i] = op(a[i], b[i]);
}

template <typename T, int VL>
void simd_row_add(index_t n, const T* a, const T* b, T* dst) {
  simd_row_combine<T, VL>(n, a, b, dst, [](auto x, auto y) { return x + y; });
}

template <typename T, int VL>
void simd_row_sub(index_t n, const T* a, const T* b, T* dst) {
  simd_row_combine<T, VL>(n, a, b, dst, [](auto x, auto y) { return x - y; });
}

template <typename T, int VL>
void simd_row_axpy(index_t n, T alpha, const T* x, T* y) {
  typedef T V __attribute__((vector_size(VL * sizeof(T))));
  const auto load = [](const T* p) {
    V v;
    __builtin_memcpy(&v, p, sizeof(V));
    return v;
  };
  V va;
  for (int l = 0; l < VL; ++l) va[l] = alpha;
  index_t i = 0;
  for (; i + 2 * VL <= n; i += 2 * VL) {
    const V r0 = load(y + i) + va * load(x + i);
    const V r1 = load(y + i + VL) + va * load(x + i + VL);
    __builtin_memcpy(y + i, &r0, sizeof(V));
    __builtin_memcpy(y + i + VL, &r1, sizeof(V));
  }
  for (; i + VL <= n; i += VL) {
    const V r = load(y + i) + va * load(x + i);
    __builtin_memcpy(y + i, &r, sizeof(V));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

template <typename T, int VL, typename Op>
inline void simd_row_scale_combine(index_t n, T alpha, const T* a, const T* b, T* dst, Op op) {
  typedef T V __attribute__((vector_size(VL * sizeof(T))));
  const auto load = [](const T* p) {
    V v;
    __builtin_memcpy(&v, p, sizeof(V));
    return v;
  };
  V va;
  for (int l = 0; l < VL; ++l) va[l] = alpha;
  index_t i = 0;
  for (; i + VL <= n; i += VL) {
    const V r = va * op(load(a + i), load(b + i));
    __builtin_memcpy(dst + i, &r, sizeof(V));
  }
  for (; i < n; ++i) dst[i] = alpha * op(a[i], b[i]);
}

template <typename T, int VL>
void simd_row_scale_add(index_t n, T alpha, const T* a, const T* b, T* dst) {
  simd_row_scale_combine<T, VL>(n, alpha, a, b, dst, [](auto x, auto y) { return x + y; });
}

template <typename T, int VL>
void simd_row_scale_sub(index_t n, T alpha, const T* a, const T* b, T* dst) {
  simd_row_scale_combine<T, VL>(n, alpha, a, b, dst, [](auto x, auto y) { return x - y; });
}

/// TileOps table for one (T, VL) instantiation — what each per-ISA TU hands
/// to its KernelEntry.
template <typename T, int VL>
constexpr TileOps<T> simd_tileops() {
  return TileOps<T>{&simd_row_add<T, VL>, &simd_row_sub<T, VL>, &simd_row_axpy<T, VL>,
                    &simd_row_scale_add<T, VL>, &simd_row_scale_sub<T, VL>};
}

}  // namespace atalib::blas::kernels
