#pragma once
// Generic SIMD microkernel over GCC/Clang vector extensions.
//
// Included ONLY by the per-ISA kernel translation units: the same template
// compiled under -mavx2, -mavx512f, or aarch64 NEON yields the matching
// machine code, so one source serves every tier. VL is the vector length in
// elements, MR the tile rows, NV the vectors per row (NR = VL * NV). The
// k-loop keeps MR*NV vector accumulators live and does one broadcast of A
// plus NV loads of B per step; with -mfma / -ffp-contract=fast the
// multiply-add contracts to FMA. Loads/stores go through memcpy so packed
// panels and C rows need no alignment and no aliasing blessing.

#include "matrix/view.hpp"

namespace atalib::blas::kernels {

template <typename T, int VL, int MR, int NV>
void simd_microkernel(index_t kc, T alpha, const T* ap, const T* bp, T* c, index_t ldc,
                      index_t mr, index_t nr) {
  constexpr int NR = VL * NV;
  typedef T V __attribute__((vector_size(VL * sizeof(T))));
  const auto load = [](const T* p) {
    V v;
    __builtin_memcpy(&v, p, sizeof(V));
    return v;
  };
  const auto splat = [](T x) {
    V v;
    for (int l = 0; l < VL; ++l) v[l] = x;
    return v;
  };

  V acc[MR][NV] = {};
  const T* a = ap;
  const T* b = bp;
  for (index_t k = 0; k < kc; ++k, a += MR, b += NR) {
    V bv[NV];
    for (int j = 0; j < NV; ++j) bv[j] = load(b + j * VL);
    for (int r = 0; r < MR; ++r) {
      const V av = splat(a[r]);
      for (int j = 0; j < NV; ++j) acc[r][j] += av * bv[j];
    }
  }

  if (mr == MR && nr == NR) {
    const V va = splat(alpha);
    for (int r = 0; r < MR; ++r) {
      T* crow = c + r * ldc;
      for (int j = 0; j < NV; ++j) {
        V cv = load(crow + j * VL);
        cv += va * acc[r][j];
        __builtin_memcpy(crow + j * VL, &cv, sizeof(V));
      }
    }
  } else {
    for (index_t r = 0; r < mr; ++r) {
      for (index_t j = 0; j < nr; ++j) c[r * ldc + j] += alpha * acc[r][j / VL][j % VL];
    }
  }
}

}  // namespace atalib::blas::kernels
