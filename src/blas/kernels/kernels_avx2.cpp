// AVX2+FMA register tiles. Compiled with -mavx2 -mfma -ffp-contract=fast
// (per-file CMake options); only dispatched when cpuid reports both.
//
// double 6x8: 6 rows x 2 ymm = 12 accumulators, plus 2 B vectors and one
// broadcast — 15 of 16 ymm live. float 6x16 is the same shape at VL=8.

#include "blas/kernels/microkernel.hpp"

#if defined(ATALIB_KERNELS_AVX2)

#include "blas/kernels/simd_microkernel.hpp"
#include "blas/kernels/simd_tileops.hpp"

namespace atalib::blas::kernels {
namespace {

bool avx2_supported() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

}  // namespace

const KernelEntry& avx2_kernel_entry() {
  static const KernelEntry entry{Isa::kAvx2,
                                 &avx2_supported,
                                 Microkernel<float>{6, 16, &simd_microkernel<float, 8, 6, 2>},
                                 Microkernel<double>{6, 8, &simd_microkernel<double, 4, 6, 2>},
                                 simd_tileops<float, 8>(),
                                 simd_tileops<double, 4>()};
  return entry;
}

}  // namespace atalib::blas::kernels

#endif  // ATALIB_KERNELS_AVX2
