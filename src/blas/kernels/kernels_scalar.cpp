// Portable scalar microkernel: the universal fallback and the reference
// every SIMD tier is tested bitwise against (tests/test_kernels.cpp). The
// 4x8 tile is the seed kernel unchanged — small enough that the accumulator
// stays in registers for both precisions under plain auto-vectorization.

#include "blas/kernels/microkernel.hpp"

namespace atalib::blas::kernels {
namespace {

constexpr index_t kMR = 4;
constexpr index_t kNR = 8;

template <typename T>
void scalar_microkernel(index_t kc, T alpha, const T* ap, const T* bp, T* c, index_t ldc,
                        index_t mr, index_t nr) {
  T acc[kMR][kNR] = {};
  for (index_t k = 0; k < kc; ++k) {
    const T* a = ap + k * kMR;
    const T* b = bp + k * kNR;
    for (index_t r = 0; r < kMR; ++r) {
      const T ar = a[r];
      for (index_t cidx = 0; cidx < kNR; ++cidx) acc[r][cidx] += ar * b[cidx];
    }
  }
  for (index_t r = 0; r < mr; ++r) {
    for (index_t cidx = 0; cidx < nr; ++cidx) c[r * ldc + cidx] += alpha * acc[r][cidx];
  }
}

bool always_supported() { return true; }

// Fused level-1 row kernels, plain loops at the baseline ISA: the reference
// the SIMD tiers are tested bitwise against, and the fallback when no SIMD
// TU was compiled for this architecture.
template <typename T>
void scalar_row_add(index_t n, const T* a, const T* b, T* dst) {
  for (index_t i = 0; i < n; ++i) dst[i] = a[i] + b[i];
}
template <typename T>
void scalar_row_sub(index_t n, const T* a, const T* b, T* dst) {
  for (index_t i = 0; i < n; ++i) dst[i] = a[i] - b[i];
}
template <typename T>
void scalar_row_axpy(index_t n, T alpha, const T* x, T* y) {
  for (index_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}
template <typename T>
void scalar_row_scale_add(index_t n, T alpha, const T* a, const T* b, T* dst) {
  for (index_t i = 0; i < n; ++i) dst[i] = alpha * (a[i] + b[i]);
}
template <typename T>
void scalar_row_scale_sub(index_t n, T alpha, const T* a, const T* b, T* dst) {
  for (index_t i = 0; i < n; ++i) dst[i] = alpha * (a[i] - b[i]);
}

template <typename T>
constexpr TileOps<T> scalar_tileops() {
  return TileOps<T>{&scalar_row_add<T>, &scalar_row_sub<T>, &scalar_row_axpy<T>,
                    &scalar_row_scale_add<T>, &scalar_row_scale_sub<T>};
}

}  // namespace

const KernelEntry& scalar_kernel_entry() {
  static const KernelEntry entry{Isa::kScalar,
                                 &always_supported,
                                 Microkernel<float>{kMR, kNR, &scalar_microkernel<float>},
                                 Microkernel<double>{kMR, kNR, &scalar_microkernel<double>},
                                 scalar_tileops<float>(),
                                 scalar_tileops<double>()};
  return entry;
}

}  // namespace atalib::blas::kernels
