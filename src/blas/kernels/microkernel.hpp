#pragma once
// ISA-specific register-tile microkernels (see DESIGN.md §2).
//
// A microkernel computes C[0:mr, 0:nr] += alpha * A * B over one packed
// micro-panel pair: A is an MR x kc panel (column-major-by-k, rows past the
// tile zero-padded), B a kc x NR panel (row-major-by-k, columns zero-padded),
// so the accumulator always spans the full MR x NR register tile and only the
// valid mr x nr corner is stored back. Each ISA variant lives in its own
// translation unit compiled with its own -m flags (CMake per-file options),
// and surfaces itself as one KernelEntry; registry.hpp picks the best
// supported entry at runtime via cpuid.

#include "matrix/view.hpp"

namespace atalib::blas::kernels {

/// Dispatchable instruction-set tiers. Numeric order is not preference
/// order — the registry dispatches best-first per architecture.
enum class Isa { kScalar = 0, kNeon = 1, kAvx2 = 2, kAvx512 = 3 };
inline constexpr int kIsaCount = 4;

/// Largest register tile any compiled kernel declares; sized for the
/// packed-SYRK diagonal scratch tile, which lives on the stack.
inline constexpr index_t kMaxMR = 16;
inline constexpr index_t kMaxNR = 32;

/// One register-tile microkernel for one scalar type.
template <typename T>
struct Microkernel {
  index_t mr = 0;
  index_t nr = 0;
  void (*fn)(index_t kc, T alpha, const T* ap, const T* bp, T* c, index_t ldc, index_t mr,
             index_t nr) = nullptr;
};

/// Fused level-1 row kernels for one scalar type — the Strassen block-sum /
/// accumulate primitives, compiled per-ISA alongside the GEMM tile so the
/// seven-term add/sub combinations run at native vector width instead of the
/// baseline-ISA scalar loop. Contract (all over contiguous rows of length n):
///   add:   dst[i] = a[i] + b[i]
///   sub:   dst[i] = a[i] - b[i]
///   axpy:  y[i]  += alpha * x[i]          (the C-quadrant accumulate)
///   scale_add: dst[i] = alpha * (a[i] + b[i])
///   scale_sub: dst[i] = alpha * (a[i] - b[i])
/// Each element is produced by independent per-lane arithmetic (no
/// reassociation), so vector and scalar variants agree bitwise on inputs
/// whose sums/products are exact (the integer-input test convention).
template <typename T>
struct TileOps {
  void (*add)(index_t n, const T* a, const T* b, T* dst) = nullptr;
  void (*sub)(index_t n, const T* a, const T* b, T* dst) = nullptr;
  void (*axpy)(index_t n, T alpha, const T* x, T* y) = nullptr;
  void (*scale_add)(index_t n, T alpha, const T* a, const T* b, T* dst) = nullptr;
  void (*scale_sub)(index_t n, T alpha, const T* a, const T* b, T* dst) = nullptr;
};

/// A compiled-in ISA variant: float + double GEMM tiles and fused level-1
/// row kernels, plus a runtime support probe. Exactly one static instance
/// per kernel translation unit.
struct KernelEntry {
  Isa isa;
  bool (*supported)();
  Microkernel<float> f32;
  Microkernel<double> f64;
  TileOps<float> f32_ops;
  TileOps<double> f64_ops;
};

/// Per-TU entry accessors. Only the scalar one always exists; the others
/// are compiled (and referenced by the registry) when CMake defines the
/// matching ATALIB_KERNELS_* macro for this architecture.
const KernelEntry& scalar_kernel_entry();
const KernelEntry& avx2_kernel_entry();
const KernelEntry& avx512_kernel_entry();
const KernelEntry& neon_kernel_entry();

}  // namespace atalib::blas::kernels
