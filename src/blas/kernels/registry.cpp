#include "blas/kernels/registry.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/cacheinfo.hpp"

namespace atalib::blas::kernels {
namespace {

bool env_forces_scalar() {
  const char* v = std::getenv("ATALIB_FORCE_SCALAR_KERNELS");
  return v != nullptr && *v != '\0' && std::string_view(v) != "0";
}

/// The process default: -1 = automatic (best supported), or scalar when
/// ATALIB_FORCE_SCALAR_KERNELS was set at startup — the env pin survives
/// set_forced_isa(nullopt), which restores this default, not plain
/// automatic.
int default_state() {
  static const int def = env_forces_scalar() ? static_cast<int>(Isa::kScalar) : -1;
  return def;
}

/// Current dispatch override; initialized from the env-derived default at
/// first access so the pin applies regardless of when the first gemm runs.
std::atomic<int>& forced_state() {
  static std::atomic<int> state{default_state()};
  return state;
}

index_t round_down(index_t v, index_t mult) { return v / mult * mult; }
index_t round_up(index_t v, index_t mult) { return (v + mult - 1) / mult * mult; }

BlockSizes pick_blocks(index_t mr, index_t nr, std::size_t elem) {
  const CacheInfo ci = probe_cache_info();
  const auto div = [](std::size_t bytes, std::size_t per) {
    return static_cast<index_t>(bytes / per);
  };
  index_t kc = div(ci.l1_data_bytes, static_cast<std::size_t>(mr + nr) * elem);
  kc = std::clamp<index_t>(round_down(kc, 8), 64, 320);
  index_t mc = div(ci.l2_bytes / 2, static_cast<std::size_t>(kc) * elem);
  mc = std::max(mr, round_down(std::min<index_t>(mc, 768), mr));
  index_t nc = div(ci.l3_bytes / 2, static_cast<std::size_t>(kc) * elem);
  nc = std::max(nr, round_down(std::min<index_t>(nc, 2048), nr));
  return BlockSizes{mc, kc, nc};
}

const KernelEntry* find_compiled(Isa isa) {
  for (const KernelEntry* e : compiled_kernels()) {
    if (e->isa == isa) return e;
  }
  return nullptr;
}

template <typename T>
Microkernel<T> entry_kernel(const KernelEntry& e);
template <>
Microkernel<float> entry_kernel<float>(const KernelEntry& e) {
  return e.f32;
}
template <>
Microkernel<double> entry_kernel<double>(const KernelEntry& e) {
  return e.f64;
}

/// Config for `isa` if compiled + supported, else nullptr. Built once per
/// (Isa, dtype); the cacheinfo probe runs at most kIsaCount times.
template <typename T>
const KernelConfig<T>* try_config(Isa isa) {
  static std::array<KernelConfig<T>, kIsaCount> configs;
  static std::array<std::once_flag, kIsaCount> built;
  const KernelEntry* e = find_compiled(isa);
  if (e == nullptr || !e->supported()) return nullptr;
  const auto i = static_cast<std::size_t>(isa);
  std::call_once(built[i], [&] {
    const Microkernel<T> uk = entry_kernel<T>(*e);
    // The packed-SYRK diagonal temporary is a fixed kMaxMR x kMaxNR stack
    // tile; a wider registered kernel would silently overrun it.
    if (uk.mr <= 0 || uk.nr <= 0 || uk.mr > kMaxMR || uk.nr > kMaxNR) {
      throw std::logic_error(std::string("kernel tile out of range for ") + isa_name(isa) +
                             ": raise kMaxMR/kMaxNR in microkernel.hpp");
    }
    configs[i] = KernelConfig<T>{isa, isa_name(isa), uk, pick_blocks(uk.mr, uk.nr, sizeof(T))};
  });
  return &configs[i];
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kNeon:
      return "neon";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

const std::vector<const KernelEntry*>& compiled_kernels() {
  static const std::vector<const KernelEntry*> kernels = [] {
    std::vector<const KernelEntry*> v;
#if defined(ATALIB_KERNELS_AVX512)
    v.push_back(&avx512_kernel_entry());
#endif
#if defined(ATALIB_KERNELS_AVX2)
    v.push_back(&avx2_kernel_entry());
#endif
#if defined(ATALIB_KERNELS_NEON)
    v.push_back(&neon_kernel_entry());
#endif
    v.push_back(&scalar_kernel_entry());
    return v;
  }();
  return kernels;
}

std::vector<const KernelEntry*> available_kernels() {
  std::vector<const KernelEntry*> v;
  for (const KernelEntry* e : compiled_kernels()) {
    if (e->supported()) v.push_back(e);
  }
  return v;
}

void set_forced_isa(std::optional<Isa> isa) {
  if (isa.has_value()) {
    const KernelEntry* e = find_compiled(*isa);
    if (e == nullptr || !e->supported()) {
      throw std::invalid_argument(std::string("kernel ISA not available here: ") +
                                  isa_name(*isa));
    }
  }
  forced_state().store(isa ? static_cast<int>(*isa) : default_state(),
                       std::memory_order_relaxed);
}

std::optional<Isa> forced_isa() {
  const int v = forced_state().load(std::memory_order_relaxed);
  if (v < 0) return std::nullopt;
  return static_cast<Isa>(v);
}

template <typename T>
const KernelConfig<T>& active_config() {
  const int forced = forced_state().load(std::memory_order_relaxed);
  if (forced >= 0) {
    if (const KernelConfig<T>* cfg = try_config<T>(static_cast<Isa>(forced))) return *cfg;
  }
  for (const KernelEntry* e : compiled_kernels()) {
    if (const KernelConfig<T>* cfg = try_config<T>(e->isa)) return *cfg;
  }
  // Unreachable: the scalar entry is always compiled and always supported.
  return *try_config<T>(Isa::kScalar);
}

namespace {

template <typename T>
const TileOps<T>& entry_tileops(const KernelEntry& e);
template <>
const TileOps<float>& entry_tileops<float>(const KernelEntry& e) {
  return e.f32_ops;
}
template <>
const TileOps<double>& entry_tileops<double>(const KernelEntry& e) {
  return e.f64_ops;
}

}  // namespace

template <typename T>
const TileOps<T>& active_tileops() {
  // Same pinning rules as active_config(); tile ops need no blocking or
  // cacheinfo, so the entry table is consulted directly.
  const int forced = forced_state().load(std::memory_order_relaxed);
  if (forced >= 0) {
    const KernelEntry* e = find_compiled(static_cast<Isa>(forced));
    if (e != nullptr && e->supported()) return entry_tileops<T>(*e);
  }
  for (const KernelEntry* e : compiled_kernels()) {
    if (e->supported()) return entry_tileops<T>(*e);
  }
  return entry_tileops<T>(scalar_kernel_entry());
}

template <typename T>
const KernelConfig<T>& config_for(Isa isa) {
  if (const KernelConfig<T>* cfg = try_config<T>(isa)) return *cfg;
  throw std::invalid_argument(std::string("kernel ISA not available here: ") + isa_name(isa));
}

template <typename T>
PackExtents pack_extents(const KernelConfig<T>& cfg, index_t m, index_t n, index_t k) {
  const index_t kc = std::min(cfg.blocks.kc, k);
  const index_t mc = std::min(cfg.blocks.mc, round_up(m, cfg.uk.mr));
  const index_t nc = std::min(cfg.blocks.nc, round_up(n, cfg.uk.nr));
  return PackExtents{mc * kc, kc * nc};
}

template <typename T>
index_t pack_bound(index_t m, index_t n, index_t k) {
  index_t bound = 0;
  for (const KernelEntry* e : compiled_kernels()) {
    const KernelConfig<T>* cfg = try_config<T>(e->isa);
    if (cfg == nullptr) continue;
    const PackExtents ext = pack_extents(*cfg, m, n, k);
    bound = std::max(bound, ext.a + ext.b);
  }
  return bound;
}

#define ATALIB_KERNELS_INST(T)                                                        \
  template const KernelConfig<T>& active_config<T>();                                 \
  template const TileOps<T>& active_tileops<T>();                                     \
  template const KernelConfig<T>& config_for<T>(Isa);                                 \
  template PackExtents pack_extents<T>(const KernelConfig<T>&, index_t, index_t,      \
                                       index_t);                                      \
  template index_t pack_bound<T>(index_t, index_t, index_t)
ATALIB_KERNELS_INST(float);
ATALIB_KERNELS_INST(double);
#undef ATALIB_KERNELS_INST

}  // namespace atalib::blas::kernels
