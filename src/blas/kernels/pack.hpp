#pragma once
// Panel packing and pack-buffer storage for the blocked gemm/syrk drivers
// (see DESIGN.md §2).
//
// Packing formats (what every microkernel consumes):
//   pack_a: MR-row micro-panels of op(A) — panel p starts at dst[p * kc *
//   MR], element (row r, depth k) at dst[k * MR + r], rows past the edge
//   zero-filled so kernels never branch on MR.
//   pack_b: NR-column micro-panels of op(B) — element (depth k, col c) at
//   dst[k * NR + c], columns past the edge zero-filled.
//
// Each packer has a contiguous-copy fast path for the operand orientation
// whose packed index walks unit-stride source memory (op(A) transposed /
// op(B) untransposed — gemm_tn, *the* AtA leaf shape, hits both) and a
// pointer-stepped gather for the other orientation; neither goes through a
// per-element accessor with a transpose branch.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>

#include "common/aligned_buffer.hpp"
#include "common/arena.hpp"
#include "matrix/view.hpp"

namespace atalib::blas::kernels {

/// Process-wide count of thread-local pack-buffer (re)allocations — the
/// fallback path PackStorage takes only for arena-less callers. Pool-worker
/// leaves (including every Strassen base case) route packs through the slot
/// arena, so tests assert this counter stays frozen across warm runs.
inline std::atomic<std::uint64_t>& thread_pack_allocs() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

/// Operand view honoring a transpose without materializing it.
template <typename T>
struct OpView {
  ConstMatrixView<T> v;
  bool trans;
  index_t rows() const { return trans ? v.cols : v.rows; }
  index_t cols() const { return trans ? v.rows : v.cols; }
};

/// Pack an mc x kc block of op(A) starting at (i0, p0) into MR-row
/// micro-panels.
template <typename T>
void pack_a(const OpView<T>& a, index_t i0, index_t p0, index_t mc, index_t kc, index_t mr_tile,
            T* dst) {
  const index_t ld = a.v.stride;
  for (index_t p = 0; p < mc; p += mr_tile) {
    const index_t mr = std::min(mr_tile, mc - p);
    if (a.trans) {
      // op(A)(i0+p+r, p0+k) = A(p0+k, i0+p+r): unit stride in r.
      const T* src0 = a.v.data + p0 * ld + (i0 + p);
      for (index_t k = 0; k < kc; ++k) {
        const T* src = src0 + k * ld;
        index_t r = 0;
        for (; r < mr; ++r) dst[k * mr_tile + r] = src[r];
        for (; r < mr_tile; ++r) dst[k * mr_tile + r] = T(0);
      }
    } else {
      // op(A)(i0+p+r, p0+k) = A(i0+p+r, p0+k): unit stride in k per row.
      for (index_t r = 0; r < mr; ++r) {
        const T* src = a.v.data + (i0 + p + r) * ld + p0;
        for (index_t k = 0; k < kc; ++k) dst[k * mr_tile + r] = src[k];
      }
      for (index_t r = mr; r < mr_tile; ++r) {
        for (index_t k = 0; k < kc; ++k) dst[k * mr_tile + r] = T(0);
      }
    }
    dst += mr_tile * kc;
  }
}

/// Pack a kc x nc block of op(B) starting at (p0, j0) into NR-column
/// micro-panels.
template <typename T>
void pack_b(const OpView<T>& b, index_t p0, index_t j0, index_t kc, index_t nc, index_t nr_tile,
            T* dst) {
  const index_t ld = b.v.stride;
  for (index_t q = 0; q < nc; q += nr_tile) {
    const index_t nr = std::min(nr_tile, nc - q);
    if (!b.trans) {
      // op(B)(p0+k, j0+q+c) = B(p0+k, j0+q+c): unit stride in c.
      const T* src0 = b.v.data + p0 * ld + (j0 + q);
      for (index_t k = 0; k < kc; ++k) {
        const T* src = src0 + k * ld;
        index_t c = 0;
        for (; c < nr; ++c) dst[k * nr_tile + c] = src[c];
        for (; c < nr_tile; ++c) dst[k * nr_tile + c] = T(0);
      }
    } else {
      // op(B)(p0+k, j0+q+c) = B(j0+q+c, p0+k): unit stride in k per column.
      for (index_t c = 0; c < nr; ++c) {
        const T* src = b.v.data + (j0 + q + c) * ld + p0;
        for (index_t k = 0; k < kc; ++k) dst[k * nr_tile + c] = src[k];
      }
      for (index_t c = nr; c < nr_tile; ++c) {
        for (index_t k = 0; k < kc; ++k) dst[k * nr_tile + c] = T(0);
      }
    }
    dst += nr_tile * kc;
  }
}

/// Pack-buffer storage for one gemm/syrk call: a caller arena when provided
/// (checkpoint-scoped, so the allocation vanishes on return — the leaf-path
/// malloc-free guarantee), otherwise per-thread buffers grown on demand and
/// reused across calls.
template <typename T>
class PackStorage {
 public:
  PackStorage(Arena<T>* arena, index_t a_elems, index_t b_elems) {
    if (arena != nullptr) {
      scope_.emplace(*arena);
      a_ = arena->allocate(static_cast<std::size_t>(a_elems));
      b_ = arena->allocate(static_cast<std::size_t>(b_elems));
    } else {
      auto& bufs = thread_buffers();
      if (bufs.a.size() < static_cast<std::size_t>(a_elems)) {
        bufs.a = AlignedBuffer<T>(static_cast<std::size_t>(a_elems));
        thread_pack_allocs().fetch_add(1, std::memory_order_relaxed);
      }
      if (bufs.b.size() < static_cast<std::size_t>(b_elems)) {
        bufs.b = AlignedBuffer<T>(static_cast<std::size_t>(b_elems));
        thread_pack_allocs().fetch_add(1, std::memory_order_relaxed);
      }
      a_ = bufs.a.data();
      b_ = bufs.b.data();
    }
  }

  T* a() const { return a_; }
  T* b() const { return b_; }

 private:
  struct Buffers {
    AlignedBuffer<T> a;
    AlignedBuffer<T> b;
  };
  static Buffers& thread_buffers() {
    thread_local Buffers bufs;
    return bufs;
  }

  std::optional<typename Arena<T>::Scope> scope_;
  T* a_ = nullptr;
  T* b_ = nullptr;
};

}  // namespace atalib::blas::kernels
