// NEON (aarch64 ASIMD) register tiles. NEON is architecturally baseline on
// aarch64, so the probe is unconditional; the file is only compiled there.
//
// double 6x8: 6 rows x 4 q-regs of 2 = 24 accumulators, plus 4 B vectors
// and one broadcast — 29 of the 32 vector registers. float 6x16 matches at
// VL=4.

#include "blas/kernels/microkernel.hpp"

#if defined(ATALIB_KERNELS_NEON)

#include "blas/kernels/simd_microkernel.hpp"
#include "blas/kernels/simd_tileops.hpp"

namespace atalib::blas::kernels {
namespace {

bool neon_supported() { return true; }

}  // namespace

const KernelEntry& neon_kernel_entry() {
  static const KernelEntry entry{Isa::kNeon,
                                 &neon_supported,
                                 Microkernel<float>{6, 16, &simd_microkernel<float, 4, 6, 4>},
                                 Microkernel<double>{6, 8, &simd_microkernel<double, 2, 6, 4>},
                                 simd_tileops<float, 4>(),
                                 simd_tileops<double, 2>()};
  return entry;
}

}  // namespace atalib::blas::kernels

#endif  // ATALIB_KERNELS_NEON
