// AVX-512 register tiles. Compiled with -mavx512f -mavx512vl -mavx512dq
// -mavx2 -mfma -ffp-contract=fast (per-file CMake options); the runtime
// probe requires the same three AVX-512 subsets the compiler may emit.
//
// double 8x16: 8 rows x 2 zmm = 16 accumulators — half the zmm file, so the
// compiler never spills and the k-loop stays a pure broadcast+2xFMA stream.
// float 8x32 is the same shape at VL=16.

#include "blas/kernels/microkernel.hpp"

#if defined(ATALIB_KERNELS_AVX512)

#include "blas/kernels/simd_microkernel.hpp"
#include "blas/kernels/simd_tileops.hpp"

namespace atalib::blas::kernels {
namespace {

bool avx512_supported() {
  return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512vl") &&
         __builtin_cpu_supports("avx512dq");
}

}  // namespace

const KernelEntry& avx512_kernel_entry() {
  static const KernelEntry entry{Isa::kAvx512,
                                 &avx512_supported,
                                 Microkernel<float>{8, 32, &simd_microkernel<float, 16, 8, 2>},
                                 Microkernel<double>{8, 16, &simd_microkernel<double, 8, 8, 2>},
                                 simd_tileops<float, 16>(),
                                 simd_tileops<double, 8>()};
  return entry;
}

}  // namespace atalib::blas::kernels

#endif  // ATALIB_KERNELS_AVX512
