#include "blas/panel_syrk.hpp"

#include <algorithm>

#include "blas/gemm.hpp"
#include "blas/syrk.hpp"

namespace atalib::blas {

index_t panel_syrk_rows(index_t m, index_t n, std::size_t elem_bytes) {
  if (m <= 0 || n <= 0) return std::max<index_t>(m, 1);
  // ~2 MiB of A per panel keeps the streamed rows L2-resident alongside C
  // without probing the cache hierarchy (a probe would make the split — and
  // therefore the floating-point accumulation order — machine-dependent).
  constexpr index_t kPanelBytes = 2 << 20;
  index_t rows = kPanelBytes / (static_cast<index_t>(elem_bytes) * n);
  rows = (rows / 8) * 8;
  rows = std::max<index_t>(rows, 256);
  return std::min(rows, m);
}

template <typename T>
void panel_syrk_ln(T alpha, ConstMatrixView<T> a, MatrixView<T> c, Arena<T>* arena) {
  const index_t rows = panel_syrk_rows(a.rows, a.cols, sizeof(T));
  for (index_t r0 = 0; r0 < a.rows; r0 += rows) {
    const index_t nr = std::min(rows, a.rows - r0);
    syrk_ln(alpha, a.block(r0, 0, nr, a.cols), c, arena);
  }
}

template <typename T>
void panel_gemm_tn(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c,
                   Arena<T>* arena) {
  const index_t rows = panel_syrk_rows(a.rows, a.cols, sizeof(T));
  for (index_t r0 = 0; r0 < a.rows; r0 += rows) {
    const index_t nr = std::min(rows, a.rows - r0);
    gemm_tn(alpha, a.block(r0, 0, nr, a.cols), b.block(r0, 0, nr, b.cols), c, arena);
  }
}

template <typename T>
index_t panel_syrk_workspace_bound(index_t m, index_t n) {
  // Pack extents grow monotonically with the contraction depth, so the
  // full-m bound covers every panel regardless of the split.
  return syrk_workspace_bound<T>(m, n);
}

template <typename T>
index_t panel_gemm_workspace_bound(index_t m, index_t n, index_t k) {
  return gemm_workspace_bound<T>(n, k, m);
}

#define ATALIB_PANEL_SYRK_INST(T)                                                   \
  template void panel_syrk_ln<T>(T, ConstMatrixView<T>, MatrixView<T>, Arena<T>*);  \
  template void panel_gemm_tn<T>(T, ConstMatrixView<T>, ConstMatrixView<T>,         \
                                 MatrixView<T>, Arena<T>*);                         \
  template index_t panel_syrk_workspace_bound<T>(index_t, index_t);                 \
  template index_t panel_gemm_workspace_bound<T>(index_t, index_t, index_t)
ATALIB_PANEL_SYRK_INST(float);
ATALIB_PANEL_SYRK_INST(double);
#undef ATALIB_PANEL_SYRK_INST

}  // namespace atalib::blas
