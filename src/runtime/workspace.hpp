#pragma once
// Reusable per-worker workspace for the task runtime.
//
// Every executor slot owns one Workspace: a monotonically grown Arena per
// scalar type, kept warm across task batches. A task asks for
// `arena<T>(min_capacity)` at the start of its body and bump-allocates out
// of it; the slab is grown to the high-water mark of everything the slot
// has ever run and never freed between calls, so a warm pool performs zero
// workspace mallocs on the steady-state hot path.
//
// Under ATALIB_CHECKED the workspace enforces the §5 warm-path ordering it
// otherwise only promises: once warm()/warm_first_touch() has grown this
// slot to a high-water mark, an arena request at or below that mark must be
// satisfied without a slab allocation — a grow there means the pool's warm
// protocol skipped this slot, and checked builds abort instead of silently
// allocating inside a task. Each arena() call also stamps the arena with
// the calling thread (the lease), so a stale Arena& used from another
// task's thread aborts at its first allocate (common/arena.hpp).

#include <cstddef>
#include <type_traits>

#include "common/arena.hpp"
#include "common/checked.hpp"

namespace atalib::runtime {

class Workspace {
 public:
  /// The slot's arena for T, reset to empty with >= min_capacity free
  /// elements. Growth is monotonic: once the slot has seen the largest
  /// request it will ever get, subsequent calls never allocate.
  template <typename T>
  Arena<T>& arena(std::size_t min_capacity) {
    Arena<T>& a = slot<T>();
    a.reset();
    if (a.capacity() < min_capacity) {
#if ATALIB_CHECKED
      if (min_capacity <= warmed<T>()) {
        checked_abort("§5 warm-path ordering violated",
                      "an arena request covered by the warmed high-water mark "
                      "grew the slab (the warm protocol missed this slot)");
      }
#endif
      a.reserve(min_capacity);
      ++grows_;
    }
#if ATALIB_CHECKED
    a.begin_lease(checked_thread_token());
#endif
    return a;
  }

  /// Grow both typed slabs to the given element counts (and reset them).
  void warm(std::size_t float_elems, std::size_t double_elems) {
    arena<float>(float_elems);
    arena<double>(double_elems);
#if ATALIB_CHECKED
    if (float_elems > warmed_float_) warmed_float_ = float_elems;
    if (double_elems > warmed_double_) warmed_double_ = double_elems;
#endif
  }

  /// warm() plus a page-stride write over both slabs from the calling
  /// thread. aligned_alloc'd slabs are backed by untouched pages; on NUMA
  /// hosts the first *write* decides which node the page lands on, so the
  /// pool has each worker first-touch its own workspace (DESIGN.md §7) —
  /// warming from the admitting thread would silently place every slot's
  /// arena on that thread's node.
  void warm_first_touch(std::size_t float_elems, std::size_t double_elems) {
    warm(float_elems, double_elems);
    touch_slab(float_);
    touch_slab(double_);
  }

  /// Slab (re)allocations performed so far. Benches assert this stops
  /// moving once the pool is warm.
  std::size_t grow_count() const noexcept { return grows_; }

  /// Current footprint in bytes across both typed slabs.
  std::size_t bytes() const noexcept {
    return float_.capacity() * sizeof(float) + double_.capacity() * sizeof(double);
  }

 private:
  template <typename T>
  static void touch_slab(Arena<T>& a) {
    const std::size_t cap = a.capacity();
    if (cap == 0) return;
    constexpr std::size_t kStride = 4096 / sizeof(T);  // one write per page
    T* p = a.allocate(cap);
    for (std::size_t i = 0; i < cap; i += kStride) p[i] = T(0);
    p[cap - 1] = T(0);
    a.reset();
  }

  template <typename T>
  Arena<T>& slot() {
    static_assert(std::is_same_v<T, float> || std::is_same_v<T, double>,
                  "runtime workspace supports float and double");
    if constexpr (std::is_same_v<T, float>) {
      return float_;
    } else {
      return double_;
    }
  }

#if ATALIB_CHECKED
  template <typename T>
  std::size_t warmed() const noexcept {
    return std::is_same_v<T, float> ? warmed_float_ : warmed_double_;
  }
#endif

  Arena<float> float_;
  Arena<double> double_;
  std::size_t grows_ = 0;
#if ATALIB_CHECKED
  std::size_t warmed_float_ = 0;
  std::size_t warmed_double_ = 0;
#endif
};

}  // namespace atalib::runtime
