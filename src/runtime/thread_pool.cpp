#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace atalib::runtime {
namespace {

/// Nesting depth of pool task execution on the current thread. A run()
/// issued from inside a task must not block on its batch (the slot it
/// occupies may be the only one left), so it executes inline instead.
thread_local int tl_task_depth = 0;

/// Depth of inline batch execution on the current thread (see run()).
thread_local int tl_inline_depth = 0;

/// Workspace for inline execution paths (re-entrant or width-1 batches).
/// Thread-local so concurrent inline clients never share arenas, and
/// persistent so even the inline path reuses its slab across calls.
Workspace& inline_workspace() {
  static thread_local Workspace ws;
  return ws;
}

}  // namespace

ThreadPool::ThreadPool(int threads) {
  int n = threads > 0 ? threads : static_cast<int>(std::thread::hardware_concurrency());
  n = std::max(1, n);
  queues_.reserve(static_cast<std::size_t>(n));
  workspaces_.reserve(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    queues_.push_back(std::make_unique<Queue>());
    workspaces_.push_back(std::make_unique<Workspace>());
  }
  threads_.reserve(static_cast<std::size_t>(n - 1));
  for (int s = 0; s < n - 1; ++s) {
    threads_.emplace_back([this, s] { worker_main(s); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

bool ThreadPool::current_thread_in_task() { return tl_task_depth > 0 || tl_inline_depth > 0; }

void ThreadPool::worker_main(int slot) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    work_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    lk.unlock();
    drain(slot);
    lk.lock();
  }
}

void ThreadPool::drain(int slot) {
  Item item;
  while (try_pop(slot, item) || try_steal(slot, item)) {
    execute(slot, std::move(item));
    item = Item{};
  }
}

void ThreadPool::drain_for(int slot, const Batch& batch) {
  // Like drain(), but stops once `batch` has retired: a run() caller is
  // glad to help with whatever is queued while its own batch is pending
  // (including other clients' tasks — that's throughput), but it must not
  // be conscripted into an unbounded stream of foreign work after its
  // batch completed.
  Item item;
  while (batch.remaining.load(std::memory_order_acquire) != 0 &&
         (try_pop(slot, item) || try_steal(slot, item))) {
    execute(slot, std::move(item));
    item = Item{};
  }
}

bool ThreadPool::try_pop(int slot, Item& item) {
  Queue& q = *queues_[static_cast<std::size_t>(slot)];
  std::lock_guard<std::mutex> lk(q.mu);
  if (q.tasks.empty()) return false;
  item = std::move(q.tasks.front());
  q.tasks.pop_front();
  return true;
}

bool ThreadPool::try_steal(int thief, Item& item) {
  const int n = concurrency();
  for (int d = 1; d < n; ++d) {
    Queue& q = *queues_[static_cast<std::size_t>((thief + d) % n)];
    std::lock_guard<std::mutex> lk(q.mu);
    if (q.tasks.empty()) continue;
    // Steal from the cold end: the victim pops its own front, so the two
    // ends never contend on the same task under load.
    item = std::move(q.tasks.back());
    q.tasks.pop_back();
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::execute(int slot, Item item) {
  Batch& batch = *item.batch;
  TaskContext ctx;
  ctx.worker = slot;
  ctx.workspace = workspaces_[static_cast<std::size_t>(slot)].get();
  ++tl_task_depth;
  try {
    batch.fn(item.task, ctx);
  } catch (...) {
    std::lock_guard<std::mutex> lk(batch.err_mu);
    if (!batch.first_error) batch.first_error = std::current_exception();
  }
  --tl_task_depth;
  if (batch.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task: retire the batch. Deregister before fulfilling the
    // promise so a warm waiting for quiescence and a client waking on the
    // future observe a consistent order.
    {
      std::lock_guard<std::mutex> lk(mu_);
      --active_batches_;
      if (active_batches_ == 0 && warm_waiters_ > 0) quiesce_cv_.notify_all();
    }
    // No task of this batch is running anymore (the acq_rel countdown
    // orders their error writes before this read).
    if (batch.first_error) {
      batch.done.set_exception(batch.first_error);
    } else {
      batch.done.set_value();
    }
  }
}

std::shared_ptr<ThreadPool::Batch> ThreadPool::enqueue(int ntasks, TaskFn fn, int dist_slots) {
  auto batch = std::make_shared<Batch>(ntasks, std::move(fn));
  {
    // Register before any queue push: a pending warm must either see this
    // batch as active or admit it only after the warm finished — never
    // mutate slot workspaces while our tasks are poppable.
    std::unique_lock<std::mutex> lk(mu_);
    quiesce_cv_.wait(lk, [&] { return warm_waiters_ == 0; });
    ++active_batches_;
  }
  // Block distribution: slot s owns a contiguous chunk of task ids, so the
  // schedule's home-worker hints translate into locality; stealing
  // rebalances from there.
  for (int s = 0; s < dist_slots; ++s) {
    const int lo = static_cast<int>(static_cast<long long>(ntasks) * s / dist_slots);
    const int hi = static_cast<int>(static_cast<long long>(ntasks) * (s + 1) / dist_slots);
    if (hi == lo) continue;
    Queue& q = *queues_[static_cast<std::size_t>(s)];
    std::lock_guard<std::mutex> qlk(q.mu);
    for (int t = lo; t < hi; ++t) q.tasks.push_back(Item{batch, t});
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++generation_;
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  work_cv_.notify_all();
  return batch;
}

void ThreadPool::run_inline(int ntasks, const TaskFn& fn) {
  // The thread-local workspace keeps this path warm across calls; a
  // *nested* inline batch (inside a pool task or another inline batch)
  // gets a private workspace instead, because the enclosing task may hold
  // a live arena in the shared one.
  const bool nested = tl_task_depth > 0 || tl_inline_depth > 0;
  Workspace local;
  TaskContext ctx;
  ctx.worker = 0;
  ctx.workspace = nested ? &local : &inline_workspace();
  ++tl_inline_depth;
  try {
    for (int t = 0; t < ntasks; ++t) fn(t, ctx);
  } catch (...) {
    --tl_inline_depth;
    throw;
  }
  --tl_inline_depth;
}

void ThreadPool::run(int ntasks, const TaskFn& fn, int width) {
  if (ntasks <= 0) return;
  const int nslots = concurrency();
  if (tl_task_depth > 0 || nslots == 1 || ntasks == 1 || width == 1) {
    run_inline(ntasks, fn);
    return;
  }
  auto batch = enqueue(ntasks, fn, nslots);
  std::future<void> done = batch->done.get_future();
  // Participate as the caller slot if no other concurrent caller claimed
  // it; otherwise just wait (two callers must not share slot workspaces).
  bool expected = false;
  if (caller_slot_busy_.compare_exchange_strong(expected, true)) {
    drain_for(nslots - 1, *batch);
    caller_slot_busy_.store(false, std::memory_order_release);
  }
  done.get();  // waits for stolen stragglers; rethrows the first task error
}

std::future<void> ThreadPool::submit(int ntasks, TaskFn fn) {
  std::promise<void> ready;
  if (ntasks <= 0) {
    ready.set_value();
    return ready.get_future();
  }
  const int nslots = concurrency();
  if (tl_task_depth > 0 || tl_inline_depth > 0 || nslots == 1) {
    // No hand-off possible (workerless pool) or nested in a task: execute
    // inline now so the returned future can never deadlock a waiter.
    try {
      run_inline(ntasks, fn);
      ready.set_value();
    } catch (...) {
      ready.set_exception(std::current_exception());
    }
    return ready.get_future();
  }
  // Distribute over the worker slots only — nobody drains the caller slot
  // on this path until a worker steals from it.
  auto batch = enqueue(ntasks, std::move(fn), nslots - 1);
  return batch->done.get_future();
}

void ThreadPool::warm_workspaces(std::size_t float_elems, std::size_t double_elems) {
  // From inside a task the slot workspaces belong to in-flight batches and
  // the inline workspace may hold a live arena — nothing safe to warm.
  if (tl_task_depth > 0 || tl_inline_depth > 0) return;
  if (float_elems > warmed_float_.load(std::memory_order_acquire) ||
      double_elems > warmed_double_.load(std::memory_order_acquire)) {
    // Growth path: wait for the pool to quiesce (new admissions queue
    // behind warm_waiters_, so this cannot be starved), then grow every
    // slot. Workers only touch their workspace while executing a task, so
    // zero active batches means nobody races the growth.
    std::unique_lock<std::mutex> lk(mu_);
    ++warm_waiters_;
    quiesce_cv_.wait(lk, [&] { return active_batches_ == 0; });
    for (auto& ws : workspaces_) ws->warm(float_elems, double_elems);
    if (float_elems > warmed_float_.load(std::memory_order_relaxed)) {
      warmed_float_.store(float_elems, std::memory_order_release);
    }
    if (double_elems > warmed_double_.load(std::memory_order_relaxed)) {
      warmed_double_.store(double_elems, std::memory_order_release);
    }
    --warm_waiters_;
    if (warm_waiters_ == 0) quiesce_cv_.notify_all();  // release queued admissions
  }
  // Only a workerless pool routes batches through the calling thread's
  // inline workspace; warming it on a multi-slot pool would hand every
  // serving client thread a full-size slab it never touches (tasks run on
  // the worker slots). Width-1 and nested inline paths on multi-slot
  // pools warm their thread-local slab monotonically on first use.
  if (concurrency() == 1) inline_workspace().warm(float_elems, double_elems);
}

}  // namespace atalib::runtime
