#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace atalib::runtime {
namespace {

/// Nesting depth of pool task execution on the current thread. A run()
/// issued from inside a task must not block on run_mu_ (the outer run()
/// holds it), so it executes inline instead.
thread_local int tl_task_depth = 0;

/// Depth of inline batch execution on the current thread (see run()).
thread_local int tl_inline_depth = 0;

/// Workspace for inline execution paths (re-entrant or width-1 batches).
/// Thread-local so concurrent inline clients never share arenas, and
/// persistent so even the inline path reuses its slab across calls.
Workspace& inline_workspace() {
  static thread_local Workspace ws;
  return ws;
}

}  // namespace

ThreadPool::ThreadPool(int threads) {
  int n = threads > 0 ? threads : static_cast<int>(std::thread::hardware_concurrency());
  n = std::max(1, n);
  queues_.reserve(static_cast<std::size_t>(n));
  workspaces_.reserve(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    queues_.push_back(std::make_unique<Queue>());
    workspaces_.push_back(std::make_unique<Workspace>());
  }
  threads_.reserve(static_cast<std::size_t>(n - 1));
  for (int s = 0; s < n - 1; ++s) {
    threads_.emplace_back([this, s] { worker_main(s); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

bool ThreadPool::current_thread_in_task() { return tl_task_depth > 0 || tl_inline_depth > 0; }

void ThreadPool::worker_main(int slot) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    work_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    lk.unlock();
    drain(slot);
    lk.lock();
  }
}

void ThreadPool::drain(int slot) {
  int task = -1;
  while (try_pop(slot, task) || try_steal(slot, task)) {
    execute(slot, task);
  }
}

bool ThreadPool::try_pop(int slot, int& task) {
  Queue& q = *queues_[static_cast<std::size_t>(slot)];
  std::lock_guard<std::mutex> lk(q.mu);
  if (q.tasks.empty()) return false;
  task = q.tasks.front();
  q.tasks.pop_front();
  return true;
}

bool ThreadPool::try_steal(int thief, int& task) {
  const int n = concurrency();
  for (int d = 1; d < n; ++d) {
    Queue& q = *queues_[static_cast<std::size_t>((thief + d) % n)];
    std::lock_guard<std::mutex> lk(q.mu);
    if (q.tasks.empty()) continue;
    // Steal from the cold end: the victim pops its own front, so the two
    // ends never contend on the same task under load.
    task = q.tasks.back();
    q.tasks.pop_back();
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::execute(int slot, int task) {
  TaskContext ctx;
  ctx.worker = slot;
  ctx.workspace = workspaces_[static_cast<std::size_t>(slot)].get();
  ++tl_task_depth;
  try {
    (*fn_)(task, ctx);
  } catch (...) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  --tl_task_depth;
  finish_one();
}

void ThreadPool::finish_one() {
  if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Lock pairs with the predicate evaluation in run(); without it the
    // notify could fire between the caller's check and its sleep.
    std::lock_guard<std::mutex> lk(mu_);
    done_cv_.notify_all();
  }
}

void ThreadPool::warm_workspaces(std::size_t float_elems, std::size_t double_elems) {
  // From inside a task the slot workspaces belong to the enclosing batch
  // and the inline workspace may hold a live arena — nothing safe to warm.
  if (tl_task_depth > 0 || tl_inline_depth > 0) return;
  {
    // Workers touch their workspace only while executing a task, and run()
    // does not return with tasks in flight, so growing from here is safe
    // between batches; run_mu_ fences off other client threads.
    std::lock_guard<std::mutex> run_lk(run_mu_);
    for (auto& ws : workspaces_) ws->warm(float_elems, double_elems);
  }
  inline_workspace().warm(float_elems, double_elems);  // width-1 path
}

void ThreadPool::run(int ntasks, const TaskFn& fn, int width) {
  if (ntasks <= 0) return;
  const int nslots = concurrency();
  if (tl_task_depth > 0 || nslots == 1 || ntasks == 1 || width == 1) {
    // Inline serial path. The thread-local workspace keeps it warm across
    // calls; a *nested* inline batch (inside a pool task or another inline
    // batch) gets a private workspace instead, because the enclosing task
    // may hold a live arena in the shared one.
    const bool nested = tl_task_depth > 0 || tl_inline_depth > 0;
    Workspace local;
    TaskContext ctx;
    ctx.worker = 0;
    ctx.workspace = nested ? &local : &inline_workspace();
    ++tl_inline_depth;
    try {
      for (int t = 0; t < ntasks; ++t) fn(t, ctx);
    } catch (...) {
      --tl_inline_depth;
      throw;
    }
    --tl_inline_depth;
    return;
  }

  std::lock_guard<std::mutex> run_lk(run_mu_);
  fn_ = &fn;
  first_error_ = nullptr;
  // remaining_ must be published before any queue push: a racing worker
  // finishing a task it stole mid-setup decrements it immediately.
  remaining_.store(ntasks, std::memory_order_release);
  // Block distribution: slot s owns a contiguous chunk of task ids, so the
  // schedule's home-worker hints translate into locality; stealing
  // rebalances from there.
  for (int s = 0; s < nslots; ++s) {
    const int lo = static_cast<int>(static_cast<long long>(ntasks) * s / nslots);
    const int hi = static_cast<int>(static_cast<long long>(ntasks) * (s + 1) / nslots);
    if (hi == lo) continue;
    Queue& q = *queues_[static_cast<std::size_t>(s)];
    std::lock_guard<std::mutex> qlk(q.mu);
    for (int t = lo; t < hi; ++t) q.tasks.push_back(t);
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++generation_;
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  work_cv_.notify_all();

  drain(nslots - 1);  // the caller participates as the last slot

  if (remaining_.load(std::memory_order_acquire) != 0) {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return remaining_.load(std::memory_order_acquire) == 0; });
  }
  fn_ = nullptr;
  if (first_error_) {
    std::rethrow_exception(std::exchange(first_error_, nullptr));
  }
}

}  // namespace atalib::runtime
