#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "common/checked.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace atalib::runtime {
namespace {

/// Nesting depth of pool task execution on the current thread. A run()
/// issued from inside a task must not block on its batch (the slot it
/// occupies may be the only one left), so it executes inline instead.
thread_local int tl_task_depth = 0;

/// Depth of inline batch execution on the current thread (see run()).
thread_local int tl_inline_depth = 0;

/// Workspace for inline execution paths (re-entrant or width-1 batches).
/// Thread-local so concurrent inline clients never share arenas, and
/// persistent so even the inline path reuses its slab across calls.
Workspace& inline_workspace() {
  static thread_local Workspace ws;
  return ws;
}

}  // namespace

ThreadPool::ThreadPool(int threads) : topo_(probe_numa_topology()) {
  int n = threads > 0 ? threads : static_cast<int>(std::thread::hardware_concurrency());
  n = std::max(1, n);
  // Block slots over nodes proportionally to each node's CPU share, so a
  // pool smaller or larger than the machine still spreads across every
  // node: node i owns slots [n * cpus_before_i / total, n * cpus_thru_i /
  // total). Degenerate nodes (zero slots) simply never home a task.
  const int nnodes = topo_.num_nodes();
  const int total_cpus = std::max(1, topo_.total_cpus());
  node_of_slot_.resize(static_cast<std::size_t>(n));
  node_slots_.assign(static_cast<std::size_t>(nnodes), {});
  int cpus_seen = 0;
  int slot = 0;
  for (int node = 0; node < nnodes; ++node) {
    cpus_seen += static_cast<int>(topo_.nodes[static_cast<std::size_t>(node)].cpus.size());
    const int hi = (node == nnodes - 1)
                       ? n
                       : static_cast<int>(static_cast<long long>(n) * cpus_seen / total_cpus);
    for (; slot < hi; ++slot) {
      node_of_slot_[static_cast<std::size_t>(slot)] = node;
      node_slots_[static_cast<std::size_t>(node)].push_back(slot);
    }
  }
  scheduled_per_node_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(static_cast<std::size_t>(nnodes));
  executed_per_node_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(static_cast<std::size_t>(nnodes));
  for (int i = 0; i < nnodes; ++i) {
    scheduled_per_node_[static_cast<std::size_t>(i)].store(0, std::memory_order_relaxed);
    executed_per_node_[static_cast<std::size_t>(i)].store(0, std::memory_order_relaxed);
  }
  queues_.reserve(static_cast<std::size_t>(n));
  workspaces_.reserve(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    queues_.push_back(std::make_unique<Queue>());
    workspaces_.push_back(std::make_unique<Workspace>());
  }
  slot_warm_seen_.assign(static_cast<std::size_t>(n), 0);
  threads_.reserve(static_cast<std::size_t>(n - 1));
  for (int s = 0; s < n - 1; ++s) {
    threads_.emplace_back([this, s] { worker_main(s); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

bool ThreadPool::current_thread_in_task() { return tl_task_depth > 0 || tl_inline_depth > 0; }

void ThreadPool::pin_to_node(int slot) {
#if defined(__linux__)
  // Fake topologies name CPUs that need not exist; placement logic still
  // runs, affinity syscalls do not. Single-node pinning would be a no-op.
  if (topo_.fake || topo_.num_nodes() <= 1) return;
  const auto& cpus =
      topo_.nodes[static_cast<std::size_t>(node_of_slot(slot))].cpus;
  cpu_set_t set;
  CPU_ZERO(&set);
  bool any = false;
  for (int c : cpus) {
    if (c >= 0 && c < CPU_SETSIZE) {
      CPU_SET(c, &set);
      any = true;
    }
  }
  // Best effort: a failed pin costs locality, not correctness.
  if (any) (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)slot;
#endif
}

void ThreadPool::worker_main(int slot) {
  pin_to_node(slot);
  std::uint64_t seen = 0;
  UniqueLock lk(mu_);
  while (true) {
    while (!stop_ && generation_ == seen) work_cv_.wait(lk);
    if (stop_) return;
    seen = generation_;
    if (slot_warm_seen_[static_cast<std::size_t>(slot)] != warm_epoch_) {
      // A growing warm is in flight: grow *this* slot on *this* thread so
      // the slab pages are first-touched on the worker's node, then report
      // in. Admissions are queued behind the warm, so no task can race the
      // growth.
#if ATALIB_CHECKED
      // §5 ordering, machine-checked: workers only grow inside a quiesced
      // warm window — a batch in flight here means slot slabs could be
      // reallocated under a running task.
      if (active_batches_ != 0) {
        checked_abort("§5 warm-path ordering violated",
                      "worker-side warm growth with a batch in flight");
      }
#endif
      slot_warm_seen_[static_cast<std::size_t>(slot)] = warm_epoch_;
      const std::size_t f = warm_float_target_;
      const std::size_t d = warm_double_target_;
      lk.unlock();
      workspaces_[static_cast<std::size_t>(slot)]->warm_first_touch(f, d);
      lk.lock();
      if (--warm_pending_ == 0) quiesce_cv_.notify_all();
      continue;
    }
    lk.unlock();
    drain(slot);
    lk.lock();
  }
}

void ThreadPool::drain(int slot) {
  Item item;
  while (try_pop(slot, item) || try_steal(slot, item)) {
    execute(slot, std::move(item));
    item = Item{};
  }
}

void ThreadPool::drain_for(int slot, const Batch& batch) {
  // Like drain(), but stops once `batch` has retired: a run() caller is
  // glad to help with whatever is queued while its own batch is pending
  // (including other clients' tasks — that's throughput), but it must not
  // be conscripted into an unbounded stream of foreign work after its
  // batch completed.
  Item item;
  while (batch.remaining.load(std::memory_order_acquire) != 0 &&
         (try_pop(slot, item) || try_steal(slot, item))) {
    execute(slot, std::move(item));
    item = Item{};
  }
}

std::deque<ThreadPool::Item>& ThreadPool::class_for(Queue& q, int priority) {
  // Classes stay sorted descending; the common case (priority 0, one
  // class) hits the scan's first element.
  auto it = q.classes.begin();
  while (it != q.classes.end() && it->priority > priority) ++it;
  if (it == q.classes.end() || it->priority != priority) {
    it = q.classes.insert(it, Queue::Class{priority, {}});
  }
  return it->tasks;
}

bool ThreadPool::try_pop(int slot, Item& item) {
  Queue& q = *queues_[static_cast<std::size_t>(slot)];
  MutexLock lk(q.mu);
  if (q.classes.empty()) return false;
  // Highest priority class first (classes are sorted descending), hot end.
  auto& tasks = q.classes.front().tasks;
  item = std::move(tasks.front());
  tasks.pop_front();
  if (tasks.empty()) q.classes.erase(q.classes.begin());
  queued_tasks_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool ThreadPool::try_steal_from(int thief, int victim, Item& item) {
  Queue& q = *queues_[static_cast<std::size_t>(victim)];
  MutexLock lk(q.mu);
  if (q.classes.empty()) return false;
  // Steal from the cold end of the *highest* class: priority governs which
  // class drains, while within the class the victim pops its own front and
  // thieves take the back, so the two ends never contend on one task.
  auto& tasks = q.classes.front().tasks;
  item = std::move(tasks.back());
  tasks.pop_back();
  if (tasks.empty()) q.classes.erase(q.classes.begin());
  queued_tasks_.fetch_sub(1, std::memory_order_relaxed);
  if (node_of_slot(victim) == node_of_slot(thief)) {
    local_steals_.fetch_add(1, std::memory_order_relaxed);
  } else {
    remote_steals_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

bool ThreadPool::try_steal(int thief, Item& item) {
  // Locality-first steal order (DESIGN.md §7): drain same-node victims
  // before touching any remote node's queue — a stolen task's packed
  // panels and C stripe were placed for its home node, so a same-node
  // thief executes against local memory while a remote thief pays
  // cross-socket traffic for every leaf access.
  const auto& local = node_slots_[static_cast<std::size_t>(node_of_slot(thief))];
  const int nlocal = static_cast<int>(local.size());
  // Rotate by the thief's position within its node so same-node thieves
  // fan out over different victims instead of convoying on one queue.
  int my_pos = 0;
  for (int i = 0; i < nlocal; ++i) {
    if (local[static_cast<std::size_t>(i)] == thief) {
      my_pos = i;
      break;
    }
  }
  for (int d = 1; d < nlocal; ++d) {
    const int victim = local[static_cast<std::size_t>((my_pos + d) % nlocal)];
    if (try_steal_from(thief, victim, item)) return true;
  }
  // Only then cross nodes, nearest-slot rotation over the remainder.
  const int n = concurrency();
  for (int d = 1; d < n; ++d) {
    const int victim = (thief + d) % n;
    if (node_of_slot(victim) == node_of_slot(thief)) continue;
    if (try_steal_from(thief, victim, item)) return true;
  }
  return false;
}

void ThreadPool::execute(int slot, Item item) {
  Batch& batch = *item.batch;
  executed_per_node_[static_cast<std::size_t>(node_of_slot(slot))].fetch_add(
      1, std::memory_order_relaxed);
  TaskContext ctx;
  ctx.worker = slot;
  ctx.workspace = workspaces_[static_cast<std::size_t>(slot)].get();
  ++tl_task_depth;
  try {
    batch.fn(item.task, ctx);
  } catch (...) {
    MutexLock lk(batch.err_mu);
    if (!batch.first_error) batch.first_error = std::current_exception();
  }
  --tl_task_depth;
  if (batch.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task: retire the batch. Deregister before fulfilling the
    // promise so a warm waiting for quiescence and a client waking on the
    // future observe a consistent order.
    {
      MutexLock lk(mu_);
      --active_batches_;
      if (active_batches_ == 0 && warm_waiters_ > 0) quiesce_cv_.notify_all();
    }
    // No task of this batch is running anymore (the acq_rel countdown
    // orders their error writes before this read; err_mu is uncontended
    // here and keeps the guarded access visible to the analysis).
    std::exception_ptr err;
    {
      MutexLock lk(batch.err_mu);
      err = batch.first_error;
    }
    if (err) {
      batch.done.set_exception(err);
    } else {
      batch.done.set_value();
    }
  }
}

std::shared_ptr<ThreadPool::Batch> ThreadPool::enqueue(int ntasks, TaskFn fn, int dist_slots,
                                                       const NodeHintFn* hint, int priority) {
  auto batch = std::make_shared<Batch>(ntasks, std::move(fn), priority);
  {
    // Register before any queue push: a pending warm must either see this
    // batch as active or admit it only after the warm finished — never
    // mutate slot workspaces while our tasks are poppable.
    UniqueLock lk(mu_);
    while (warm_waiters_ != 0) quiesce_cv_.wait(lk);
    ++active_batches_;
  }
  const int nnodes = topo_.num_nodes();
  if (hint == nullptr || nnodes == 0) {
    // Block distribution: slot s owns a contiguous chunk of task ids, so
    // the schedule's home-worker hints translate into locality; stealing
    // rebalances from there.
    for (int s = 0; s < dist_slots; ++s) {
      const int lo = static_cast<int>(static_cast<long long>(ntasks) * s / dist_slots);
      const int hi = static_cast<int>(static_cast<long long>(ntasks) * (s + 1) / dist_slots);
      if (hi == lo) continue;
      Queue& q = *queues_[static_cast<std::size_t>(s)];
      MutexLock qlk(q.mu);
      auto& tasks = class_for(q, priority);
      for (int t = lo; t < hi; ++t) tasks.push_back(Item{batch, t});
      queued_tasks_.fetch_add(static_cast<std::uint64_t>(hi - lo),
                              std::memory_order_relaxed);
      scheduled_per_node_[static_cast<std::size_t>(node_of_slot(s))].fetch_add(
          static_cast<std::uint64_t>(hi - lo), std::memory_order_relaxed);
    }
  } else {
    // Hinted distribution: bucket task t onto the slots of its preferred
    // node, round-robin within the node so same-node slots share the
    // node's work evenly. Nodes whose slots are all beyond dist_slots
    // (e.g. a single-slot last node excluded by a submit()) and negative
    // hints fall back to a flat rotation.
    std::vector<std::vector<int>> bucket(static_cast<std::size_t>(dist_slots));
    std::vector<int> cursor(static_cast<std::size_t>(nnodes), 0);
    int flat_cursor = 0;
    for (int t = 0; t < ntasks; ++t) {
      const int h = (*hint)(t);
      int slot = -1;
      if (h >= 0) {
        const int node = h % nnodes;
        const auto& slots = node_slots_[static_cast<std::size_t>(node)];
        int eligible = 0;
        for (int s : slots) {
          if (s < dist_slots) ++eligible;
        }
        if (eligible > 0) {
          int& cur = cursor[static_cast<std::size_t>(node)];
          slot = slots[static_cast<std::size_t>(cur % eligible)];
          ++cur;
        }
      }
      if (slot < 0) slot = (flat_cursor++) % dist_slots;
      bucket[static_cast<std::size_t>(slot)].push_back(t);
    }
    for (int s = 0; s < dist_slots; ++s) {
      const auto& ids = bucket[static_cast<std::size_t>(s)];
      if (ids.empty()) continue;
      Queue& q = *queues_[static_cast<std::size_t>(s)];
      MutexLock qlk(q.mu);
      auto& tasks = class_for(q, priority);
      for (int t : ids) tasks.push_back(Item{batch, t});
      queued_tasks_.fetch_add(ids.size(), std::memory_order_relaxed);
      scheduled_per_node_[static_cast<std::size_t>(node_of_slot(s))].fetch_add(
          ids.size(), std::memory_order_relaxed);
    }
  }
  {
    MutexLock lk(mu_);
    ++generation_;
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  work_cv_.notify_all();
  return batch;
}

void ThreadPool::run_inline(int ntasks, const TaskFn& fn) {
  // The thread-local workspace keeps this path warm across calls; a
  // *nested* inline batch (inside a pool task or another inline batch)
  // gets a private workspace instead, because the enclosing task may hold
  // a live arena in the shared one.
  const bool nested = tl_task_depth > 0 || tl_inline_depth > 0;
  Workspace local;
  TaskContext ctx;
  ctx.worker = 0;
  ctx.workspace = nested ? &local : &inline_workspace();
  ++tl_inline_depth;
  try {
    for (int t = 0; t < ntasks; ++t) fn(t, ctx);
  } catch (...) {
    --tl_inline_depth;
    throw;
  }
  --tl_inline_depth;
}

void ThreadPool::run_with_hint(int ntasks, const TaskFn& fn, int width,
                               const NodeHintFn* hint) {
  if (ntasks <= 0) return;
  const int nslots = concurrency();
  if (tl_task_depth > 0 || nslots == 1 || ntasks == 1 || width == 1) {
    run_inline(ntasks, fn);
    return;
  }
  auto batch = enqueue(ntasks, fn, nslots, hint, /*priority=*/0);
  std::future<void> done = batch->done.get_future();
  // Participate as the caller slot if no other concurrent caller claimed
  // it; otherwise just wait (two callers must not share slot workspaces).
  bool expected = false;
  if (caller_slot_busy_.compare_exchange_strong(expected, true)) {
    drain_for(nslots - 1, *batch);
    caller_slot_busy_.store(false, std::memory_order_release);
  }
  done.get();  // waits for stolen stragglers; rethrows the first task error
}

void ThreadPool::run(int ntasks, const TaskFn& fn, int width) {
  run_with_hint(ntasks, fn, width, nullptr);
}

void ThreadPool::run_placed(int ntasks, const TaskFn& fn, int width,
                            const NodeHintFn& preferred_node) {
  run_with_hint(ntasks, fn, width, preferred_node ? &preferred_node : nullptr);
}

std::future<void> ThreadPool::submit_with_hint(int ntasks, TaskFn fn,
                                               const NodeHintFn* hint, int priority) {
  std::promise<void> ready;
  if (ntasks <= 0) {
    ready.set_value();
    return ready.get_future();
  }
  const int nslots = concurrency();
  if (tl_task_depth > 0 || tl_inline_depth > 0 || nslots == 1) {
    // No hand-off possible (workerless pool) or nested in a task: execute
    // inline now so the returned future can never deadlock a waiter.
    try {
      run_inline(ntasks, fn);
      ready.set_value();
    } catch (...) {
      ready.set_exception(std::current_exception());
    }
    return ready.get_future();
  }
  // Distribute over the worker slots only — nobody drains the caller slot
  // on this path until a worker steals from it.
  auto batch = enqueue(ntasks, std::move(fn), nslots - 1, hint, priority);
  return batch->done.get_future();
}

std::future<void> ThreadPool::submit(int ntasks, TaskFn fn) {
  return submit_with_hint(ntasks, std::move(fn), nullptr, 0);
}

std::future<void> ThreadPool::submit(int ntasks, TaskFn fn,
                                     const NodeHintFn& preferred_node) {
  return submit_with_hint(ntasks, std::move(fn),
                          preferred_node ? &preferred_node : nullptr, 0);
}

std::future<void> ThreadPool::submit(int ntasks, TaskFn fn,
                                     const SubmitOptions& opts) {
  return submit_with_hint(ntasks, std::move(fn),
                          opts.preferred_node ? &opts.preferred_node : nullptr,
                          opts.priority);
}

void ThreadPool::warm_workspaces(std::size_t float_elems, std::size_t double_elems) {
  // From inside a task the slot workspaces belong to in-flight batches and
  // the inline workspace may hold a live arena — nothing safe to warm.
  if (tl_task_depth > 0 || tl_inline_depth > 0) return;
  if (float_elems > warmed_float_.load(std::memory_order_acquire) ||
      double_elems > warmed_double_.load(std::memory_order_acquire)) {
    // Growth path: wait for the pool to quiesce (new admissions queue
    // behind warm_waiters_, so this cannot be starved), then have every
    // worker grow its *own* slot — the first write decides NUMA placement,
    // so growth must happen on the owning worker's thread, not here. The
    // caller slot has no worker; this thread grows it (run() callers drain
    // that slot themselves, so its pages belong on the client's node).
    UniqueLock lk(mu_);
    ++warm_waiters_;
    while (active_batches_ != 0 || warm_growing_) quiesce_cv_.wait(lk);
    const std::size_t tf = std::max(float_elems, warmed_float_.load(std::memory_order_relaxed));
    const std::size_t td =
        std::max(double_elems, warmed_double_.load(std::memory_order_relaxed));
    warm_growing_ = true;
    warm_float_target_ = tf;
    warm_double_target_ = td;
    warm_pending_ = static_cast<int>(threads_.size());
    ++warm_epoch_;
    const int caller_slot = concurrency() - 1;
    slot_warm_seen_[static_cast<std::size_t>(caller_slot)] = warm_epoch_;
    ++generation_;  // wake parked workers for the new epoch
    lk.unlock();
    work_cv_.notify_all();
    workspaces_[static_cast<std::size_t>(caller_slot)]->warm_first_touch(tf, td);
    lk.lock();
    while (warm_pending_ != 0) quiesce_cv_.wait(lk);
    if (tf > warmed_float_.load(std::memory_order_relaxed)) {
      warmed_float_.store(tf, std::memory_order_release);
    }
    if (td > warmed_double_.load(std::memory_order_relaxed)) {
      warmed_double_.store(td, std::memory_order_release);
    }
    warm_growing_ = false;
    --warm_waiters_;
    quiesce_cv_.notify_all();  // release queued admissions and queued warms
  }
  // Only a workerless pool routes batches through the calling thread's
  // inline workspace; warming it on a multi-slot pool would hand every
  // serving client thread a full-size slab it never touches (tasks run on
  // the worker slots). Width-1 and nested inline paths on multi-slot
  // pools warm their thread-local slab monotonically on first use.
  if (concurrency() == 1) inline_workspace().warm(float_elems, double_elems);
}

metrics::NumaPoolStats ThreadPool::numa_stats() const {
  metrics::NumaPoolStats stats;
  stats.nodes = topo_.num_nodes();
  stats.fake_topology = topo_.fake;
  stats.scheduled_per_node.reserve(static_cast<std::size_t>(stats.nodes));
  stats.executed_per_node.reserve(static_cast<std::size_t>(stats.nodes));
  for (int node = 0; node < stats.nodes; ++node) {
    stats.scheduled_per_node.push_back(scheduled_on_node(node));
    stats.executed_per_node.push_back(executed_on_node(node));
  }
  stats.local_steals = local_steals();
  stats.remote_steals = remote_steals();
  return stats;
}

}  // namespace atalib::runtime
