#pragma once
// Execution layer shared by AtA-S, the parallel BLAS wrappers, and the
// benches.
//
// A batch is `ntasks` independent, pairwise write-disjoint tasks (the
// schedulers in sched/ guarantee disjointness), executed by an Executor:
//
//   - ThreadPool (thread_pool.hpp): persistent workers, per-worker queues,
//     work stealing, reusable per-worker workspace arenas, and queued
//     multi-batch admission (overlapping batches from independent client
//     threads, plus an async submit() used by the api::Server serving
//     front-end). The default.
//   - ForkJoinExecutor (below): the paper's original one-shot
//     `omp parallel for` execution, kept behind the same interface so the
//     benches can A/B warm-pool against fork-join. Compile with
//     ATALIB_RUNTIME_FORKJOIN to make it the process default.
//
// Tasks receive a TaskContext naming the executing slot and its reusable
// Workspace; all scratch memory must come from there so repeated calls
// stay malloc-free once warm.

#include <functional>
#include <memory>
#include <vector>

#include "common/thread_annotations.hpp"
#include "runtime/workspace.hpp"

namespace atalib::runtime {

/// Handed to each task invocation. `worker` is the executing slot id,
/// stable for the duration of the batch; `workspace` is that slot's
/// private reusable workspace (no other task runs on it concurrently).
struct TaskContext {
  int worker = 0;
  Workspace* workspace = nullptr;

  /// Shorthand for workspace->arena<T>(min_capacity).
  template <typename T>
  Arena<T>& arena(std::size_t min_capacity) {
    return workspace->arena<T>(min_capacity);
  }
};

/// fn(task, ctx) for task in [0, ntasks).
using TaskFn = std::function<void(int task, TaskContext& ctx)>;

class Executor {
 public:
  virtual ~Executor() = default;

  /// Number of execution slots (upper bound on concurrency).
  virtual int concurrency() const = 0;

  /// NUMA nodes the executor's slots span. Flat executors report 1; the
  /// ThreadPool reports its probed (or ATALIB_FAKE_NUMA-synthesized)
  /// topology so planners can spread write-disjoint output stripes across
  /// nodes (see run_placed).
  virtual int numa_nodes() const { return 1; }

  /// Human-readable engine name for bench tables.
  virtual const char* name() const = 0;

  /// Execute fn(t, ctx) for every t in [0, ntasks); returns when all tasks
  /// have finished. `width` caps the concurrency actually used (0 = the
  /// executor's own limit); the fork-join engine clamps its thread count to
  /// min(width, ntasks, concurrency()), the pool treats it as advisory
  /// (idle persistent workers may still steal — tasks are write-disjoint,
  /// so extra concurrency is always safe).
  virtual void run(int ntasks, const TaskFn& fn, int width = 0) = 0;

  /// Maps a task id to its preferred NUMA node (a hint, not a guarantee:
  /// stealing may still execute the task anywhere). Values are folded
  /// modulo numa_nodes(), so `t % nodes` and raw ids are both valid;
  /// negative means no preference.
  using NodeHintFn = std::function<int(int task)>;

  /// run() with per-task placement hints: a NUMA-aware executor enqueues
  /// each task on a worker of its preferred node (execution order and
  /// results are unaffected — tasks are write-disjoint). The default
  /// ignores the hints, so flat executors need no changes.
  virtual void run_placed(int ntasks, const TaskFn& fn, int width,
                          const NodeHintFn& preferred_node) {
    (void)preferred_node;
    run(ntasks, fn, width);
  }

  /// Pre-grow every slot's workspace to the given element counts, so a
  /// following run() whose tasks request at most that much performs no
  /// slab allocation on any slot — even one executing its first task ever
  /// (stealing routes any task to any slot). No-op once warm. The pool
  /// orders growth against in-flight batches internally (warm requests at
  /// or below the warmed high-water mark return immediately, larger ones
  /// wait for quiescence); the fork-join engine serializes against its own
  /// run() instead.
  virtual void warm_workspaces(std::size_t float_elems, std::size_t double_elems) = 0;
};

/// The paper's original execution scheme: fork threads, run the parallel
/// for, join — no state survives between calls except the per-slot
/// workspaces (kept so the A/B against the pool isolates thread management
/// rather than allocator behavior). Uses OpenMP when compiled in, a serial
/// loop otherwise. Independent client threads are serialized (the slot
/// workspaces cannot serve two batches at once); do not submit from
/// inside a task.
class ForkJoinExecutor final : public Executor {
 public:
  /// threads <= 0 selects std::thread::hardware_concurrency().
  explicit ForkJoinExecutor(int threads = 0);

  int concurrency() const override { return static_cast<int>(slots_.size()); }
  const char* name() const override;
  void run(int ntasks, const TaskFn& fn, int width = 0) override;
  void warm_workspaces(std::size_t float_elems, std::size_t double_elems) override;

  /// Slot workspaces, for bench/test introspection.
  Workspace& workspace(int slot) { return *slots_[static_cast<std::size_t>(slot)]; }

 private:
  /// Serializes independent client threads: two concurrent run() calls
  /// would share slot workspaces. Nothing is guarded by it — the slots are
  /// read without it by workspace() introspection — it is purely an
  /// execution-exclusion capability.
  Mutex run_mu_;
  std::vector<std::unique_ptr<Workspace>> slots_;
};

/// Process-wide default: the global persistent ThreadPool, or a global
/// ForkJoinExecutor when built with ATALIB_RUNTIME_FORKJOIN.
Executor& default_executor();

}  // namespace atalib::runtime
