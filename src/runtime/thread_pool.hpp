#pragma once
// Persistent work-stealing thread pool with queued multi-batch admission.
//
// W worker threads are created once and parked on a condition variable.
// A *batch* is one client's set of write-disjoint tasks; the pool admits
// batches from independent client threads concurrently — each batch's task
// indices are block-distributed over the per-slot deques and every slot
// drains its own queue front-first, then steals from the cold end of other
// slots' queues, regardless of which batch a task belongs to. Threads are
// never created and no workspace is allocated on the steady-state hot path
// — that is the whole point versus the fork-join engine.
//
// Two admission styles share the machinery:
//   - run(ntasks, fn): blocking. The caller additionally participates as
//     the dedicated caller slot (first-come among concurrent callers) and
//     returns when its own batch has finished, rethrowing the batch's
//     first task exception.
//   - submit(ntasks, fn): queued. Returns a std::future immediately; the
//     last finishing task fulfils it. This is what the serving front-end
//     (api::Server) uses so N clients' requests overlap on one pool.
//
// Each slot owns a Workspace whose arenas grow monotonically to the
// high-water mark of the tasks that slot has executed; stealing moves a
// task, never its memory, so a stolen task simply warms the thief's arena.
// A task re-requests its arena at body start (Workspace::arena resets the
// slab), so interleaving tasks of different batches on one slot is safe —
// no task may hold arena memory across task boundaries.
//
// The pool is NUMA-topology-aware (DESIGN.md §7). Slots are grouped by the
// node a slot's worker is pinned to (probe_numa_topology(); the
// ATALIB_FAKE_NUMA override synthesizes multi-node layouts on flat CI
// hosts, skipping only the affinity syscalls). Three mechanisms follow
// from the grouping:
//   - placement: enqueue can honor a per-task preferred-node hint
//     (run_placed / submit with a NodeHintFn), distributing each task
//     round-robin over its node's slots; per-node *scheduled* counters
//     record assignment deterministically.
//   - memory: a growing warm_workspaces() is executed by each worker on
//     its own slot (first touch), so a slot's arena pages live on the
//     worker's node — never on the admitting client's.
//   - stealing: locality-first order — own queue, then same-node victims,
//     then remote nodes, with separate local_steals()/remote_steals()
//     counters so benches can report the cross-node traffic they avoided.
//
// warm_workspaces() keeps its "no batch in flight" requirement internal:
// requests at or below the pool's warmed high-water mark return after two
// atomic loads (the serving hot path), larger requests wait for the pool
// to quiesce, have every worker grow its own slot (first touch, see
// above), and raise the mark. New batch admissions queue behind a waiting
// warm so it cannot be starved.
//
// Queues are tiny-critical-section mutex deques, not lock-free Chase-Lev:
// tasks here are matrix multiplications (micro- to milliseconds), so queue
// overhead is noise, and the mutex makes the exactly-once pop guarantee
// trivially auditable (see tests/test_runtime.cpp integrity test).
//
// Blocking batches: when a batch of ntasks <= concurrency() is the ONLY
// batch in flight, every task is guaranteed a slot of its own before any
// slot takes a second task (block distribution hands slot s task s; a slot
// only pops/steals after its current task completes; run()'s caller drains
// the caller slot). Tasks that block on external events — the mpisim rank
// bodies submitted via Communicator::run_on — are therefore deadlock-free
// at that width *given exclusive use of the pool*, which the distributed
// layer's rank pool guarantees by holding the RankPoolLease mutex for the
// whole communicator batch (src/dist/rank_pool.hpp). Do not change the
// distribution scheme without this invariant. (Hinted admission via
// run_placed/submit-with-hints distributes differently, but the rank pool
// never passes hints, so the invariant binds only the unhinted path.)

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/cacheinfo.hpp"
#include "common/thread_annotations.hpp"
#include "metrics/numa_stats.hpp"
#include "runtime/executor.hpp"

namespace atalib::runtime {

class ThreadPool final : public Executor {
 public:
  /// threads <= 0 selects std::thread::hardware_concurrency(). `threads`
  /// counts total execution slots: threads-1 persistent workers plus the
  /// caller slot, drained by whichever run() caller claims it first.
  explicit ThreadPool(int threads = 0);
  /// Joins the workers. All batches must have completed (run() returned,
  /// submit() futures ready) before destruction.
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int concurrency() const override { return static_cast<int>(queues_.size()); }
  int numa_nodes() const override { return topo_.num_nodes(); }
  const char* name() const override { return "pool"; }

  /// The topology the pool grouped its slots by (probed, or synthesized
  /// from ATALIB_FAKE_NUMA, at construction).
  const NumaTopology& topology() const { return topo_; }
  /// Node owning `slot` (slots are blocked over nodes proportionally to
  /// each node's CPU share; the caller slot is the last slot of the last
  /// node).
  int node_of_slot(int slot) const {
    return node_of_slot_[static_cast<std::size_t>(slot)];
  }

  /// Runs the batch; rethrows the first task exception after the batch
  /// drains (the pool stays usable). Re-entrant submissions from inside a
  /// task execute inline on the submitting thread. Batches from
  /// independent client threads overlap.
  void run(int ntasks, const TaskFn& fn, int width = 0) override;

  /// run() with per-task preferred-node hints: task t is enqueued
  /// round-robin over the slots of node `preferred_node(t) % numa_nodes()`
  /// (negative hint: no preference). Stealing may still execute a task
  /// anywhere — locality-first order makes that the exception, and the
  /// write-disjoint task contract makes it always correct.
  void run_placed(int ntasks, const TaskFn& fn, int width,
                  const NodeHintFn& preferred_node) override;

  /// Queued multi-batch admission: enqueue the batch and return a future
  /// that becomes ready when its last task finishes (exceptional with the
  /// batch's first task error). The calling thread does not participate;
  /// tasks are distributed over the worker slots. `fn` is owned by the
  /// batch and must tolerate concurrent invocation like run()'s. From
  /// inside a task (or on a workerless pool) the batch executes inline
  /// before returning, so the future is already ready — blocking on the
  /// future from task context can never deadlock.
  std::future<void> submit(int ntasks, TaskFn fn);

  /// submit() with per-task preferred-node hints (see run_placed). Used by
  /// the serving front-end to pin a plan's write-disjoint C stripes to
  /// nodes round-robin.
  std::future<void> submit(int ntasks, TaskFn fn, const NodeHintFn& preferred_node);

  /// Knobs for the queued path that don't fit positional overloads (an
  /// int priority would be ambiguous against NodeHintFn's converting
  /// constructor).
  struct SubmitOptions {
    /// Batch priority class: at every pop and steal point a slot drains
    /// the highest-priority class present, FIFO within the class. Equal
    /// priorities behave exactly like the historical single-deque pool.
    /// Priority reorders *queued* work only — it never preempts a running
    /// task — and the blocking-batch invariant above is unaffected
    /// because it binds only the unhinted run() path, which always
    /// enqueues at priority 0.
    int priority = 0;
    /// Per-task preferred-node hint (see run_placed); empty = none.
    NodeHintFn preferred_node;
  };

  /// submit() with priority and/or placement hints.
  std::future<void> submit(int ntasks, TaskFn fn, const SubmitOptions& opts);

  /// Tasks currently sitting in the slot queues (admitted, not yet popped
  /// or stolen). Instantaneous gauge for the serving metrics surface.
  std::uint64_t queue_depth() const {
    return queued_tasks_.load(std::memory_order_relaxed);
  }

  void warm_workspaces(std::size_t float_elems, std::size_t double_elems) override;

  /// The process-wide pool used by default_executor(): hardware-sized,
  /// created on first use, workers persist until exit.
  static ThreadPool& global();

  /// True while the calling thread is executing a pool task or an inline
  /// batch (of ANY ThreadPool — the depth counters are thread-local, not
  /// per-pool). A run() issued from such a thread executes inline-serial,
  /// which breaks the blocking-batch guarantee above; callers that need
  /// true concurrency (mpisim::Communicator::run_on) use this to refuse
  /// nested submission instead of deadlocking.
  static bool current_thread_in_task();

  /// Tasks executed by a slot other than their home slot (lifetime total,
  /// local + remote).
  std::uint64_t steals() const { return local_steals() + remote_steals(); }
  /// Steals whose victim slot is on the thief's own node.
  std::uint64_t local_steals() const {
    return local_steals_.load(std::memory_order_relaxed);
  }
  /// Steals that crossed a node boundary (the traffic locality-first
  /// ordering exists to minimize).
  std::uint64_t remote_steals() const {
    return remote_steals_.load(std::memory_order_relaxed);
  }
  /// Tasks enqueued on slots of `node` (assignment-time, lifetime total).
  std::uint64_t scheduled_on_node(int node) const {
    return scheduled_per_node_[static_cast<std::size_t>(node)].load(
        std::memory_order_relaxed);
  }
  /// Tasks executed by slots of `node` (execution-time, lifetime total).
  std::uint64_t executed_on_node(int node) const {
    return executed_per_node_[static_cast<std::size_t>(node)].load(
        std::memory_order_relaxed);
  }
  /// Snapshot of the topology + locality counters for the metrics surface
  /// (api::Server::runtime_stats, bench/runtime_pool).
  metrics::NumaPoolStats numa_stats() const;
  /// Batches admitted to the queues (lifetime total; inline executions of
  /// nested/width-1 work are not batches).
  std::uint64_t batches() const { return batches_.load(std::memory_order_relaxed); }
  /// Slot workspaces (workers are slots 0..concurrency()-2, the caller
  /// slot is the last one).
  Workspace& workspace(int slot) { return *workspaces_[static_cast<std::size_t>(slot)]; }

 private:
  /// One admitted batch: body, countdown, first task error, completion.
  struct Batch {
    Batch(int ntasks, TaskFn body, int prio)
        : fn(std::move(body)), remaining(ntasks), priority(prio) {}
    TaskFn fn;
    std::atomic<int> remaining;
    int priority;  // queue class its tasks were enqueued under
    Mutex err_mu;  // serializes concurrent failing tasks
    std::exception_ptr first_error ATALIB_GUARDED_BY(err_mu);
    std::promise<void> done;
  };

  /// Queue entry; the shared_ptr keeps the batch alive until its last
  /// task (and the completion it triggers) has run.
  struct Item {
    std::shared_ptr<Batch> batch;
    int task = -1;
  };

  /// Per-slot queue: one FIFO deque per priority class, kept sorted
  /// highest-priority-first. pop takes the hot end (front) and steal the
  /// cold end (back) of the *highest* class present, so a high-priority
  /// batch admitted behind queued low-priority work drains first at every
  /// pop/steal point without preempting anything already running. With a
  /// single class (the common case — priority 0) this degenerates to the
  /// historical one-deque behavior.
  struct Queue {
    struct Class {
      int priority = 0;
      std::deque<Item> tasks;
    };
    Mutex mu;
    std::vector<Class> classes ATALIB_GUARDED_BY(mu);  // descending priority
  };

  /// The class for `priority` in q (creating it in sorted position).
  static std::deque<Item>& class_for(Queue& q, int priority)
      ATALIB_REQUIRES(q.mu);

  /// Admit a batch: register it (queuing behind any waiting warm),
  /// distribute its tasks over the first `dist_slots` queues — blockwise
  /// without a hint, round-robin within each task's preferred node with one
  /// — and wake the workers. Returns the batch for completion waiting.
  std::shared_ptr<Batch> enqueue(int ntasks, TaskFn fn, int dist_slots,
                                 const NodeHintFn* hint, int priority);
  void run_with_hint(int ntasks, const TaskFn& fn, int width, const NodeHintFn* hint);
  std::future<void> submit_with_hint(int ntasks, TaskFn fn, const NodeHintFn* hint,
                                     int priority);
  void run_inline(int ntasks, const TaskFn& fn);
  void worker_main(int slot);
  void pin_to_node(int slot);
  void drain(int slot);
  void drain_for(int slot, const Batch& batch);
  bool try_pop(int slot, Item& item);
  bool try_steal(int thief, Item& item);
  bool try_steal_from(int thief, int victim, Item& item);
  void execute(int slot, Item item);

  NumaTopology topo_;                  // probed (or faked) at construction
  std::vector<int> node_of_slot_;      // slot -> node index
  std::vector<std::vector<int>> node_slots_;  // node index -> its slots, ascending

  std::vector<std::unique_ptr<Queue>> queues_;          // one per slot
  std::vector<std::unique_ptr<Workspace>> workspaces_;  // parallel to queues_
  std::vector<std::thread> threads_;                    // the W workers

  /// Guards generation_/stop_/active_batches_/warm_* state. The
  /// condition variables are condition_variable_any so they wait on the
  /// capability-annotated UniqueLock (common/thread_annotations.hpp).
  Mutex mu_;
  std::condition_variable_any work_cv_;     // workers park here between batches
  std::condition_variable_any quiesce_cv_;  // warms wait for 0 batches; admissions wait for 0 warms
  std::uint64_t generation_ ATALIB_GUARDED_BY(mu_) = 0;
  bool stop_ ATALIB_GUARDED_BY(mu_) = false;
  int active_batches_ ATALIB_GUARDED_BY(mu_) = 0;  // admitted, not yet completed
  int warm_waiters_ ATALIB_GUARDED_BY(mu_) = 0;  // warms waiting for (or holding) quiescence

  /// Worker-side warm growth (first touch): a growing warm publishes the
  /// targets and a fresh epoch under mu_, wakes every worker, and waits for
  /// warm_pending_ to hit zero; each worker grows its *own* slot exactly
  /// once per epoch (slot_warm_seen_). warm_growing_ serializes concurrent
  /// growing warms.
  bool warm_growing_ ATALIB_GUARDED_BY(mu_) = false;
  std::uint64_t warm_epoch_ ATALIB_GUARDED_BY(mu_) = 0;
  int warm_pending_ ATALIB_GUARDED_BY(mu_) = 0;
  std::size_t warm_float_target_ ATALIB_GUARDED_BY(mu_) = 0;
  std::size_t warm_double_target_ ATALIB_GUARDED_BY(mu_) = 0;
  /// Last epoch each slot grew for.
  std::vector<std::uint64_t> slot_warm_seen_ ATALIB_GUARDED_BY(mu_);

  /// High-water marks warm_workspaces() has grown every slot to; requests
  /// at or below them skip the quiescence path entirely.
  std::atomic<std::size_t> warmed_float_{0};
  std::atomic<std::size_t> warmed_double_{0};

  /// Claimed by the first concurrent run() caller; later concurrent
  /// callers wait on their batch future without draining (two clients
  /// must never share the caller slot's workspace).
  std::atomic<bool> caller_slot_busy_{false};

  std::atomic<std::uint64_t> local_steals_{0};
  std::atomic<std::uint64_t> remote_steals_{0};
  std::atomic<std::uint64_t> batches_{0};
  /// Tasks in the slot queues right now (see queue_depth()); incremented
  /// at push, decremented at pop/steal.
  std::atomic<std::uint64_t> queued_tasks_{0};
  /// Per-node task counters (see scheduled_on_node/executed_on_node);
  /// heap-array because std::atomic is immovable and the node count is a
  /// construction-time constant.
  std::unique_ptr<std::atomic<std::uint64_t>[]> scheduled_per_node_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> executed_per_node_;
};

}  // namespace atalib::runtime
