#pragma once
// Persistent work-stealing thread pool with queued multi-batch admission.
//
// W worker threads are created once and parked on a condition variable.
// A *batch* is one client's set of write-disjoint tasks; the pool admits
// batches from independent client threads concurrently — each batch's task
// indices are block-distributed over the per-slot deques and every slot
// drains its own queue front-first, then steals from the cold end of other
// slots' queues, regardless of which batch a task belongs to. Threads are
// never created and no workspace is allocated on the steady-state hot path
// — that is the whole point versus the fork-join engine.
//
// Two admission styles share the machinery:
//   - run(ntasks, fn): blocking. The caller additionally participates as
//     the dedicated caller slot (first-come among concurrent callers) and
//     returns when its own batch has finished, rethrowing the batch's
//     first task exception.
//   - submit(ntasks, fn): queued. Returns a std::future immediately; the
//     last finishing task fulfils it. This is what the serving front-end
//     (api::Server) uses so N clients' requests overlap on one pool.
//
// Each slot owns a Workspace whose arenas grow monotonically to the
// high-water mark of the tasks that slot has executed; stealing moves a
// task, never its memory, so a stolen task simply warms the thief's arena.
// A task re-requests its arena at body start (Workspace::arena resets the
// slab), so interleaving tasks of different batches on one slot is safe —
// no task may hold arena memory across task boundaries.
//
// warm_workspaces() keeps its "no batch in flight" requirement internal:
// requests at or below the pool's warmed high-water mark return after two
// atomic loads (the serving hot path), larger requests wait for the pool
// to quiesce, grow every slot, and raise the mark. New batch admissions
// queue behind a waiting warm so it cannot be starved.
//
// Queues are tiny-critical-section mutex deques, not lock-free Chase-Lev:
// tasks here are matrix multiplications (micro- to milliseconds), so queue
// overhead is noise, and the mutex makes the exactly-once pop guarantee
// trivially auditable (see tests/test_runtime.cpp integrity test).
//
// Blocking batches: when a batch of ntasks <= concurrency() is the ONLY
// batch in flight, every task is guaranteed a slot of its own before any
// slot takes a second task (block distribution hands slot s task s; a slot
// only pops/steals after its current task completes; run()'s caller drains
// the caller slot). Tasks that block on external events — the mpisim rank
// bodies submitted via Communicator::run_on — are therefore deadlock-free
// at that width *given exclusive use of the pool*, which the distributed
// layer's rank pool guarantees by holding the RankPoolLease mutex for the
// whole communicator batch (src/dist/rank_pool.hpp). Do not change the
// distribution scheme without this invariant.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/executor.hpp"

namespace atalib::runtime {

class ThreadPool final : public Executor {
 public:
  /// threads <= 0 selects std::thread::hardware_concurrency(). `threads`
  /// counts total execution slots: threads-1 persistent workers plus the
  /// caller slot, drained by whichever run() caller claims it first.
  explicit ThreadPool(int threads = 0);
  /// Joins the workers. All batches must have completed (run() returned,
  /// submit() futures ready) before destruction.
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int concurrency() const override { return static_cast<int>(queues_.size()); }
  const char* name() const override { return "pool"; }

  /// Runs the batch; rethrows the first task exception after the batch
  /// drains (the pool stays usable). Re-entrant submissions from inside a
  /// task execute inline on the submitting thread. Batches from
  /// independent client threads overlap.
  void run(int ntasks, const TaskFn& fn, int width = 0) override;

  /// Queued multi-batch admission: enqueue the batch and return a future
  /// that becomes ready when its last task finishes (exceptional with the
  /// batch's first task error). The calling thread does not participate;
  /// tasks are distributed over the worker slots. `fn` is owned by the
  /// batch and must tolerate concurrent invocation like run()'s. From
  /// inside a task (or on a workerless pool) the batch executes inline
  /// before returning, so the future is already ready — blocking on the
  /// future from task context can never deadlock.
  std::future<void> submit(int ntasks, TaskFn fn);

  void warm_workspaces(std::size_t float_elems, std::size_t double_elems) override;

  /// The process-wide pool used by default_executor(): hardware-sized,
  /// created on first use, workers persist until exit.
  static ThreadPool& global();

  /// True while the calling thread is executing a pool task or an inline
  /// batch (of ANY ThreadPool — the depth counters are thread-local, not
  /// per-pool). A run() issued from such a thread executes inline-serial,
  /// which breaks the blocking-batch guarantee above; callers that need
  /// true concurrency (mpisim::Communicator::run_on) use this to refuse
  /// nested submission instead of deadlocking.
  static bool current_thread_in_task();

  /// Tasks executed by a slot other than their home slot (lifetime total).
  std::uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }
  /// Batches admitted to the queues (lifetime total; inline executions of
  /// nested/width-1 work are not batches).
  std::uint64_t batches() const { return batches_.load(std::memory_order_relaxed); }
  /// Slot workspaces (workers are slots 0..concurrency()-2, the caller
  /// slot is the last one).
  Workspace& workspace(int slot) { return *workspaces_[static_cast<std::size_t>(slot)]; }

 private:
  /// One admitted batch: body, countdown, first task error, completion.
  struct Batch {
    Batch(int ntasks, TaskFn body) : fn(std::move(body)), remaining(ntasks) {}
    TaskFn fn;
    std::atomic<int> remaining;
    std::mutex err_mu;  // serializes concurrent failing tasks
    std::exception_ptr first_error;
    std::promise<void> done;
  };

  /// Queue entry; the shared_ptr keeps the batch alive until its last
  /// task (and the completion it triggers) has run.
  struct Item {
    std::shared_ptr<Batch> batch;
    int task = -1;
  };

  struct Queue {
    std::mutex mu;
    std::deque<Item> tasks;
  };

  /// Admit a batch: register it (queuing behind any waiting warm),
  /// block-distribute its tasks over the first `dist_slots` queues, wake
  /// the workers. Returns the batch for completion waiting.
  std::shared_ptr<Batch> enqueue(int ntasks, TaskFn fn, int dist_slots);
  void run_inline(int ntasks, const TaskFn& fn);
  void worker_main(int slot);
  void drain(int slot);
  void drain_for(int slot, const Batch& batch);
  bool try_pop(int slot, Item& item);
  bool try_steal(int thief, Item& item);
  void execute(int slot, Item item);

  std::vector<std::unique_ptr<Queue>> queues_;          // one per slot
  std::vector<std::unique_ptr<Workspace>> workspaces_;  // parallel to queues_
  std::vector<std::thread> threads_;                    // the W workers

  std::mutex mu_;  // guards generation_/stop_/active_batches_/warm_waiters_
  std::condition_variable work_cv_;     // workers park here between batches
  std::condition_variable quiesce_cv_;  // warms wait for 0 batches; admissions wait for 0 warms
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  int active_batches_ = 0;  // admitted, not yet completed
  int warm_waiters_ = 0;    // warms waiting for (or holding) quiescence

  /// High-water marks warm_workspaces() has grown every slot to; requests
  /// at or below them skip the quiescence path entirely.
  std::atomic<std::size_t> warmed_float_{0};
  std::atomic<std::size_t> warmed_double_{0};

  /// Claimed by the first concurrent run() caller; later concurrent
  /// callers wait on their batch future without draining (two clients
  /// must never share the caller slot's workspace).
  std::atomic<bool> caller_slot_busy_{false};

  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> batches_{0};
};

}  // namespace atalib::runtime
