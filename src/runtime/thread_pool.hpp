#pragma once
// Persistent work-stealing thread pool.
//
// W worker threads are created once and parked on a condition variable;
// run(ntasks, fn) block-distributes task indices over W+1 per-slot deques
// (the submitting caller participates as the last slot), wakes the
// workers, and every slot drains its own queue front-first, then steals
// from the cold end of other slots' queues. Threads are never created and
// no workspace is allocated on the steady-state hot path — that is the
// whole point versus the fork-join engine.
//
// Each slot owns a Workspace whose arenas grow monotonically to the
// high-water mark of the tasks that slot has executed; stealing moves a
// task, never its memory, so a stolen task simply warms the thief's arena.
//
// Queues are tiny-critical-section mutex deques, not lock-free Chase-Lev:
// tasks here are matrix multiplications (micro- to milliseconds), so queue
// overhead is noise, and the mutex makes the exactly-once pop guarantee
// trivially auditable (see tests/test_runtime.cpp integrity test).
//
// Blocking batches: when ntasks <= concurrency(), every task is guaranteed
// a slot of its own before any slot takes a second task (block distribution
// hands slot s task s; a slot only pops/steals after its current task
// completes). Tasks that block on external events — the mpisim rank bodies
// submitted via Communicator::run_on — are therefore deadlock-free at that
// width. The distributed layer's rank pool (src/dist/rank_pool.hpp) relies
// on this invariant; do not change the distribution scheme without it.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/executor.hpp"

namespace atalib::runtime {

class ThreadPool final : public Executor {
 public:
  /// threads <= 0 selects std::thread::hardware_concurrency(). `threads`
  /// counts total execution slots: threads-1 persistent workers plus the
  /// calling thread, which always participates in run().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int concurrency() const override { return static_cast<int>(queues_.size()); }
  const char* name() const override { return "pool"; }

  /// Runs the batch; rethrows the first task exception after the batch
  /// drains (the pool stays usable). Re-entrant submissions from inside a
  /// task execute inline on the submitting thread. Independent client
  /// threads are serialized.
  void run(int ntasks, const TaskFn& fn, int width = 0) override;

  void warm_workspaces(std::size_t float_elems, std::size_t double_elems) override;

  /// The process-wide pool used by default_executor(): hardware-sized,
  /// created on first use, workers persist until exit.
  static ThreadPool& global();

  /// True while the calling thread is executing a pool task or an inline
  /// batch (of ANY ThreadPool — the depth counters are thread-local, not
  /// per-pool). A run() issued from such a thread executes inline-serial,
  /// which breaks the blocking-batch guarantee above; callers that need
  /// true concurrency (mpisim::Communicator::run_on) use this to refuse
  /// nested submission instead of deadlocking.
  static bool current_thread_in_task();

  /// Tasks executed by a slot other than their home slot (lifetime total).
  std::uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }
  /// Batches executed (lifetime total).
  std::uint64_t batches() const { return batches_.load(std::memory_order_relaxed); }
  /// Slot workspaces (workers are slots 0..concurrency()-2, the caller
  /// runs as the last slot).
  Workspace& workspace(int slot) { return *workspaces_[static_cast<std::size_t>(slot)]; }

 private:
  struct Queue {
    std::mutex mu;
    std::deque<int> tasks;
  };

  void worker_main(int slot);
  void drain(int slot);
  bool try_pop(int slot, int& task);
  bool try_steal(int thief, int& task);
  void execute(int slot, int task);
  void finish_one();

  std::vector<std::unique_ptr<Queue>> queues_;          // one per slot
  std::vector<std::unique_ptr<Workspace>> workspaces_;  // parallel to queues_
  std::vector<std::thread> threads_;                    // the W workers

  std::mutex mu_;  // guards generation_ / stop_ / first_error_, pairs the cvs
  std::condition_variable work_cv_;  // workers park here between batches
  std::condition_variable done_cv_;  // run() waits here for the batch
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;

  const TaskFn* fn_ = nullptr;       // current batch body
  std::atomic<int> remaining_{0};    // unfinished tasks in the current batch
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> batches_{0};

  std::mutex run_mu_;  // serializes independent client threads
};

}  // namespace atalib::runtime
