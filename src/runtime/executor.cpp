#include "runtime/executor.hpp"

#include <algorithm>
#include <thread>

#include "runtime/thread_pool.hpp"

#ifdef ATALIB_HAVE_OPENMP
#include <omp.h>
#endif

namespace atalib::runtime {

ForkJoinExecutor::ForkJoinExecutor(int threads) {
  int n = threads > 0 ? threads : static_cast<int>(std::thread::hardware_concurrency());
  n = std::max(1, n);
  slots_.reserve(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) slots_.push_back(std::make_unique<Workspace>());
}

const char* ForkJoinExecutor::name() const {
#ifdef ATALIB_HAVE_OPENMP
  return "forkjoin-omp";
#else
  return "forkjoin-serial";
#endif
}

void ForkJoinExecutor::run(int ntasks, const TaskFn& fn, int width) {
  if (ntasks <= 0) return;
  MutexLock run_lk(run_mu_);
  // The oversubscription clamp: never more threads than tasks, slots, or
  // the caller's width (the seed's `num_threads(ntasks)` spawned one
  // thread per task regardless of either).
  int nthreads = std::min(concurrency(), ntasks);
  if (width > 0) nthreads = std::min(nthreads, width);
#ifdef ATALIB_HAVE_OPENMP
  if (nthreads > 1) {
#pragma omp parallel num_threads(nthreads)
    {
      TaskContext ctx;
      ctx.worker = omp_get_thread_num();
      ctx.workspace = slots_[static_cast<std::size_t>(ctx.worker)].get();
#pragma omp for schedule(static)
      for (int t = 0; t < ntasks; ++t) fn(t, ctx);
    }
    return;
  }
#endif
  TaskContext ctx;
  ctx.worker = 0;
  ctx.workspace = slots_[0].get();
  for (int t = 0; t < ntasks; ++t) fn(t, ctx);
}

void ForkJoinExecutor::warm_workspaces(std::size_t float_elems, std::size_t double_elems) {
  MutexLock run_lk(run_mu_);
  for (auto& slot : slots_) slot->warm(float_elems, double_elems);
}

Executor& default_executor() {
#ifdef ATALIB_RUNTIME_FORKJOIN
  static ForkJoinExecutor exec;
  return exec;
#else
  return ThreadPool::global();
#endif
}

}  // namespace atalib::runtime
