#pragma once
// AtA-S (Algorithm 3): shared-memory parallel A^T A.
//
// Phase 1 builds the task tree (sched::build_shared_schedule) — exactly P
// tasks with pairwise disjoint C writes. Phase 2 runs the tasks on an
// OpenMP parallel-for: each thread executes its task's ops with the serial
// AtA / FastStrassen engines (or the plain BLAS kernels, selectable), using
// a private workspace arena. No locks, no atomics, one implicit barrier at
// the end — the paper's "perfect parallelism".

#include <vector>

#include "strassen/options.hpp"

namespace atalib {

struct SharedOptions {
  int threads = 1;
  RecurseOptions recurse{};
  /// Leaf engine: Strassen-accelerated AtA/FastStrassen (the paper's
  /// AtA-S) or the plain blocked BLAS kernels (the "MKL-style" execution
  /// used for the Fig. 5 baseline and for AtA-D leaf fallbacks).
  enum class Engine { kStrassen, kBlas } engine = Engine::kStrassen;
};

/// lower(C) += alpha * A^T A in parallel. A is m x n, C is n x n.
template <typename T>
void ata_shared(T alpha, ConstMatrixView<T> a, MatrixView<T> c, const SharedOptions& opts);

/// Per-task timing of an AtA-S schedule, for benchmarking on hosts with
/// fewer cores than threads: tasks run *serially* (result identical), each
/// is timed, and max(task_seconds) is the critical-path time a machine
/// with >= P cores would see (tasks never synchronize, Algorithm 3).
struct SharedProfile {
  std::vector<double> task_seconds;
  double critical_path_seconds = 0;  ///< max over tasks
  double total_seconds = 0;          ///< sum over tasks (1-core wall time)
};

template <typename T>
SharedProfile ata_shared_profile(T alpha, ConstMatrixView<T> a, MatrixView<T> c,
                                 const SharedOptions& opts);

extern template void ata_shared<float>(float, ConstMatrixView<float>, MatrixView<float>,
                                       const SharedOptions&);
extern template void ata_shared<double>(double, ConstMatrixView<double>, MatrixView<double>,
                                        const SharedOptions&);
extern template SharedProfile ata_shared_profile<float>(float, ConstMatrixView<float>,
                                                        MatrixView<float>,
                                                        const SharedOptions&);
extern template SharedProfile ata_shared_profile<double>(double, ConstMatrixView<double>,
                                                         MatrixView<double>,
                                                         const SharedOptions&);

}  // namespace atalib
