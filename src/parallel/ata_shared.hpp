#pragma once
// AtA-S (Algorithm 3): shared-memory parallel A^T A.
//
// Phase 1 fetches the task tree — P' = oversub * P tasks with pairwise
// disjoint C writes — from the process-wide plan cache (api/plan_cache.hpp;
// built once per (dtype, m, n, P, oversub, engine, cut-offs) shape via
// sched::build_shared_schedule). Phase 2 submits the
// tasks to a runtime::Executor: by default the persistent work-stealing
// thread pool (runtime/thread_pool.hpp), whose warm workers and reusable
// per-worker workspace arenas make repeated calls thread-creation- and
// malloc-free; alternatively the paper's original fork-join OpenMP scheme
// (runtime::ForkJoinExecutor), kept behind the same interface for A/B
// benchmarking. Disjoint writes mean no locks and no atomics on C either
// way — the paper's "perfect parallelism".

#include <chrono>
#include <cstdint>
#include <vector>

#include "parallel/leaf_exec.hpp"
#include "strassen/options.hpp"

namespace atalib {

namespace runtime {
class Executor;
}

/// "No deadline": requests default to this and are never expired.
inline constexpr std::chrono::steady_clock::time_point kNoDeadline =
    std::chrono::steady_clock::time_point::max();

struct SharedOptions {
  /// The paper's P: the task tree is built as if for this many threads.
  /// Actual concurrency is min(P', executor slots).
  int threads = 1;
  /// Over-decomposition factor: build P' = oversub * threads tasks so a
  /// work-stealing executor can rebalance uneven tasks or oversubscribed
  /// cores. 1 reproduces the paper's one-task-per-thread schedule.
  int oversub = 1;
  RecurseOptions recurse{};
  /// Leaf engine: Strassen-accelerated AtA/FastStrassen (the paper's
  /// AtA-S) or the plain blocked BLAS kernels (the "MKL-style" execution
  /// used for the Fig. 5 baseline and for AtA-D leaf fallbacks). Shared
  /// with the distributed layer (parallel/leaf_exec.hpp).
  using Engine = LeafEngine;
  Engine engine = Engine::kStrassen;
  /// Tall-skinny planner knob (only meaningful with engine == kStrassen):
  /// when m/n reaches this ratio the plan is served by the blocked
  /// panel-SYRK engine instead of the recursion (api::shared_plan_key).
  /// 0 = auto — resolve the crossover through the measured tuner
  /// (strassen::Tuner::tall_skinny_ratio); > 0 = forced threshold (the
  /// planner floors it at 2 — below m = 2n the recursion always wins);
  /// -1 = disable the panel fast path entirely (forced-recursive plans,
  /// the bench/test control).
  index_t tall_skinny_ratio = 0;
  /// Execution engine; null uses runtime::default_executor().
  runtime::Executor* executor = nullptr;
  /// Serving-layer QoS (api::Server; DESIGN.md §10) — ignored by the
  /// direct ata_shared() call paths and deliberately NOT part of the plan
  /// key (api::shared_plan_key), so traffic at every priority shares one
  /// cached plan per shape. Higher priority drains first at the pool's
  /// pop/steal points; FIFO within a class.
  int priority = 0;
  /// Batch-wide default deadline (steady clock, absolute). A request whose
  /// effective deadline — min of this and the per-request deadline — has
  /// passed before its tasks execute settles with api::DeadlineExceeded
  /// without running any leaf GEMM.
  std::chrono::steady_clock::time_point deadline = kNoDeadline;
};

/// Validate up front with a clear message (parity with
/// dist::validate(DistOptions)): throws std::invalid_argument on
/// threads <= 0, oversub <= 0, or bad recurse cut-offs.
void validate(const SharedOptions& opts);

/// lower(C) += alpha * A^T A in parallel. A is m x n, C is n x n.
template <typename T>
void ata_shared(T alpha, ConstMatrixView<T> a, MatrixView<T> c, const SharedOptions& opts);

/// Per-task timing of an AtA-S schedule, for benchmarking on hosts with
/// fewer cores than threads: tasks run *serially* (result identical), each
/// is timed, and max(task_seconds) is the critical-path time a machine
/// with >= P cores would see (tasks never synchronize, Algorithm 3).
struct SharedProfile {
  std::vector<double> task_seconds;
  double critical_path_seconds = 0;  ///< max over tasks
  double total_seconds = 0;          ///< sum over tasks (1-core wall time)
  /// Tasks the plan's round-robin placement homes on each NUMA node of the
  /// default executor's topology (AtaPlan::preferred_node). One entry on
  /// flat hosts; profiling itself stays serial either way.
  std::vector<std::uint64_t> tasks_per_node;
};

template <typename T>
SharedProfile ata_shared_profile(T alpha, ConstMatrixView<T> a, MatrixView<T> c,
                                 const SharedOptions& opts);

extern template void ata_shared<float>(float, ConstMatrixView<float>, MatrixView<float>,
                                       const SharedOptions&);
extern template void ata_shared<double>(double, ConstMatrixView<double>, MatrixView<double>,
                                        const SharedOptions&);
extern template SharedProfile ata_shared_profile<float>(float, ConstMatrixView<float>,
                                                        MatrixView<float>,
                                                        const SharedOptions&);
extern template SharedProfile ata_shared_profile<double>(double, ConstMatrixView<double>,
                                                         MatrixView<double>,
                                                         const SharedOptions&);

}  // namespace atalib
