#include "parallel/ata_shared.hpp"

#include <algorithm>
#include <type_traits>

#include "common/timer.hpp"
#include "runtime/executor.hpp"
#include "sched/shared_schedule.hpp"

namespace atalib {
namespace {

/// Cut the op's global-coordinate blocks out of A/C and hand them to the
/// shared leaf kernel (parallel/leaf_exec.hpp) — the same code path AtA-D
/// ranks execute on their received blocks.
template <typename T>
void run_op(T alpha, ConstMatrixView<T> a, MatrixView<T> c, const sched::LeafOp& op,
            Arena<T>& arena, const SharedOptions& opts) {
  auto ab = a.block(op.a.r0, op.a.c0, op.a.rows, op.a.cols);
  auto cb = c.block(op.c.r0, op.c.c0, op.c.rows, op.c.cols);
  ConstMatrixView<T> bb;
  if (op.kind == sched::LeafOp::Kind::kGemm) {
    bb = a.block(op.b.r0, op.b.c0, op.b.rows, op.b.cols);
  }
  run_leaf_kernel(alpha, ab, bb, cb, op.kind, arena, opts.engine, opts.recurse);
}

/// Workspace elements the largest op of `task` needs (0 for the BLAS
/// engine, which is allocation-free).
template <typename T>
index_t task_workspace(const sched::SharedTask& task, const SharedOptions& opts) {
  index_t bound = 0;
  for (const auto& op : task.ops) {
    bound = std::max(bound, leaf_op_workspace<T>(op, opts.engine, opts.recurse));
  }
  return bound;
}

}  // namespace

template <typename T>
void ata_shared(T alpha, ConstMatrixView<T> a, MatrixView<T> c, const SharedOptions& opts) {
  const int p = std::max(1, opts.threads);
  const auto schedule =
      sched::build_shared_schedule(a.rows, a.cols, p, std::max(1, opts.oversub));
  const int ntasks = static_cast<int>(schedule.tasks.size());

  // Every slot's arena is sized to the high-water mark over the whole
  // schedule, not the task at hand: stealing may route any task to any
  // slot, and a per-task bound would let a late first-time steal of the
  // biggest task trigger a malloc on an otherwise warm pool.
  index_t bound = 0;
  for (const auto& task : schedule.tasks) {
    bound = std::max(bound, task_workspace<T>(task, opts));
  }

  runtime::Executor& exec = opts.executor ? *opts.executor : runtime::default_executor();
  if (bound > 0) {  // the BLAS engine is allocation-free; nothing to warm
    if constexpr (std::is_same_v<T, float>) {
      exec.warm_workspaces(static_cast<std::size_t>(bound), 0);
    } else {
      exec.warm_workspaces(0, static_cast<std::size_t>(bound));
    }
  }
  // Width p caps the fork-join engine at the requested thread count; the
  // pool treats it as advisory (see Executor::run) — its idle workers may
  // still steal, which is always safe on write-disjoint tasks.
  exec.run(
      ntasks,
      [&](int t, runtime::TaskContext& ctx) {
        const auto& task = schedule.tasks[static_cast<std::size_t>(t)];
        Arena<T>& arena = ctx.arena<T>(static_cast<std::size_t>(bound));
        for (const auto& op : task.ops) run_op(alpha, a, c, op, arena, opts);
      },
      p);
}

template <typename T>
SharedProfile ata_shared_profile(T alpha, ConstMatrixView<T> a, MatrixView<T> c,
                                 const SharedOptions& opts) {
  const auto schedule = sched::build_shared_schedule(a.rows, a.cols, std::max(1, opts.threads),
                                                     std::max(1, opts.oversub));
  runtime::Workspace workspace;  // one reusable arena across all timed tasks
  SharedProfile profile;
  for (const auto& task : schedule.tasks) {
    Arena<T>& arena =
        workspace.arena<T>(static_cast<std::size_t>(task_workspace<T>(task, opts)));
    ThreadCpuTimer timer;
    for (const auto& op : task.ops) run_op(alpha, a, c, op, arena, opts);
    const double s = timer.seconds();
    profile.task_seconds.push_back(s);
    profile.critical_path_seconds = std::max(profile.critical_path_seconds, s);
    profile.total_seconds += s;
  }
  return profile;
}

template void ata_shared<float>(float, ConstMatrixView<float>, MatrixView<float>,
                                const SharedOptions&);
template void ata_shared<double>(double, ConstMatrixView<double>, MatrixView<double>,
                                 const SharedOptions&);
template SharedProfile ata_shared_profile<float>(float, ConstMatrixView<float>,
                                                 MatrixView<float>, const SharedOptions&);
template SharedProfile ata_shared_profile<double>(double, ConstMatrixView<double>,
                                                  MatrixView<double>, const SharedOptions&);

}  // namespace atalib
