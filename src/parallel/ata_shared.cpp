#include "parallel/ata_shared.hpp"

#include <stdexcept>
#include <string>

#include "api/execute.hpp"
#include "api/plan_cache.hpp"

namespace atalib {

void validate(const SharedOptions& opts) {
  if (opts.threads < 1) {
    throw std::invalid_argument("SharedOptions.threads must be >= 1, got " +
                                std::to_string(opts.threads));
  }
  if (opts.oversub < 1) {
    throw std::invalid_argument("SharedOptions.oversub must be >= 1, got " +
                                std::to_string(opts.oversub));
  }
  if (opts.tall_skinny_ratio < -1) {
    throw std::invalid_argument(
        "SharedOptions.tall_skinny_ratio must be >= -1 (-1 = disabled, 0 = auto), got " +
        std::to_string(opts.tall_skinny_ratio));
  }
  validate(opts.recurse, "SharedOptions");
}

// Both entry points are thin wrappers over build-or-fetch-plan + execute
// (api/), so the shared and distributed layers keep one planning path and
// repeated calls on one shape replan nothing.

template <typename T>
void ata_shared(T alpha, ConstMatrixView<T> a, MatrixView<T> c, const SharedOptions& opts) {
  validate(opts);
  const auto plan = api::PlanCache::global().get_or_build(
      api::shared_plan_key(api::dtype_of<T>(), a.rows, a.cols, opts));
  api::execute(*plan, alpha, a, c, opts.executor);
}

template <typename T>
SharedProfile ata_shared_profile(T alpha, ConstMatrixView<T> a, MatrixView<T> c,
                                 const SharedOptions& opts) {
  validate(opts);
  const auto plan = api::PlanCache::global().get_or_build(
      api::shared_plan_key(api::dtype_of<T>(), a.rows, a.cols, opts));
  return api::execute_profile(*plan, alpha, a, c);
}

template void ata_shared<float>(float, ConstMatrixView<float>, MatrixView<float>,
                                const SharedOptions&);
template void ata_shared<double>(double, ConstMatrixView<double>, MatrixView<double>,
                                 const SharedOptions&);
template SharedProfile ata_shared_profile<float>(float, ConstMatrixView<float>,
                                                 MatrixView<float>, const SharedOptions&);
template SharedProfile ata_shared_profile<double>(double, ConstMatrixView<double>,
                                                  MatrixView<double>, const SharedOptions&);

}  // namespace atalib
