#include "parallel/ata_shared.hpp"

#include <algorithm>

#include "ata/ata.hpp"
#include "blas/gemm.hpp"
#include "common/timer.hpp"
#include "blas/syrk.hpp"
#include "sched/shared_schedule.hpp"
#include "strassen/strassen.hpp"
#include "strassen/workspace.hpp"

#ifdef ATALIB_HAVE_OPENMP
#include <omp.h>
#endif

namespace atalib {
namespace {

template <typename T>
void run_op(T alpha, ConstMatrixView<T> a, MatrixView<T> c, const sched::LeafOp& op,
            Arena<T>& arena, const SharedOptions& opts) {
  if (op.kind == sched::LeafOp::Kind::kSyrk) {
    auto ab = a.block(op.a.r0, op.a.c0, op.a.rows, op.a.cols);
    auto cb = c.block(op.c.r0, op.c.c0, op.c.rows, op.c.cols);
    if (opts.engine == SharedOptions::Engine::kStrassen) {
      ata(alpha, ab, cb, arena, opts.recurse);
    } else {
      blas::syrk_ln(alpha, ab, cb);
    }
  } else {
    auto ab = a.block(op.a.r0, op.a.c0, op.a.rows, op.a.cols);
    auto bb = a.block(op.b.r0, op.b.c0, op.b.rows, op.b.cols);
    auto cb = c.block(op.c.r0, op.c.c0, op.c.rows, op.c.cols);
    if (opts.engine == SharedOptions::Engine::kStrassen) {
      strassen_tn(alpha, ab, bb, cb, arena, opts.recurse);
    } else {
      blas::gemm_tn(alpha, ab, bb, cb);
    }
  }
}

template <typename T>
index_t op_workspace(const sched::LeafOp& op, const RecurseOptions& opts) {
  if (op.kind == sched::LeafOp::Kind::kSyrk) {
    return ata_workspace_bound(op.a.rows, op.a.cols, opts, sizeof(T));
  }
  return strassen_workspace_bound(op.a.rows, op.a.cols, op.b.cols, opts, sizeof(T));
}

}  // namespace

template <typename T>
void ata_shared(T alpha, ConstMatrixView<T> a, MatrixView<T> c, const SharedOptions& opts) {
  const auto schedule = sched::build_shared_schedule(a.rows, a.cols, std::max(1, opts.threads));
  const int ntasks = static_cast<int>(schedule.tasks.size());

#ifdef ATALIB_HAVE_OPENMP
#pragma omp parallel for num_threads(ntasks) schedule(static)
#endif
  for (int t = 0; t < ntasks; ++t) {
    const auto& task = schedule.tasks[static_cast<std::size_t>(t)];
    // Private workspace sized for the largest op of this task; no workspace
    // is needed for the BLAS engine.
    index_t bound = 0;
    if (opts.engine == SharedOptions::Engine::kStrassen) {
      for (const auto& op : task.ops) {
        bound = std::max(bound, op_workspace<T>(op, opts.recurse));
      }
    }
    Arena<T> arena(static_cast<std::size_t>(bound));
    for (const auto& op : task.ops) run_op(alpha, a, c, op, arena, opts);
  }
}

template <typename T>
SharedProfile ata_shared_profile(T alpha, ConstMatrixView<T> a, MatrixView<T> c,
                                 const SharedOptions& opts) {
  const auto schedule = sched::build_shared_schedule(a.rows, a.cols, std::max(1, opts.threads));
  SharedProfile profile;
  for (const auto& task : schedule.tasks) {
    index_t bound = 0;
    if (opts.engine == SharedOptions::Engine::kStrassen) {
      for (const auto& op : task.ops) {
        bound = std::max(bound, op_workspace<T>(op, opts.recurse));
      }
    }
    Arena<T> arena(static_cast<std::size_t>(bound));
    ThreadCpuTimer timer;
    for (const auto& op : task.ops) run_op(alpha, a, c, op, arena, opts);
    const double s = timer.seconds();
    profile.task_seconds.push_back(s);
    profile.critical_path_seconds = std::max(profile.critical_path_seconds, s);
    profile.total_seconds += s;
  }
  return profile;
}

template void ata_shared<float>(float, ConstMatrixView<float>, MatrixView<float>,
                                const SharedOptions&);
template void ata_shared<double>(double, ConstMatrixView<double>, MatrixView<double>,
                                 const SharedOptions&);
template SharedProfile ata_shared_profile<float>(float, ConstMatrixView<float>,
                                                 MatrixView<float>, const SharedOptions&);
template SharedProfile ata_shared_profile<double>(double, ConstMatrixView<double>,
                                                  MatrixView<double>, const SharedOptions&);

}  // namespace atalib
