#include "parallel/leaf_exec.hpp"

#include "ata/ata.hpp"
#include "blas/gemm.hpp"
#include "blas/panel_syrk.hpp"
#include "blas/syrk.hpp"
#include "strassen/strassen.hpp"
#include "strassen/workspace.hpp"

namespace atalib {

template <typename T>
void run_leaf_kernel(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c,
                     sched::LeafOp::Kind kind, Arena<T>& arena, LeafEngine engine,
                     const RecurseOptions& opts) {
  if (kind == sched::LeafOp::Kind::kSyrk) {
    if (engine == LeafEngine::kStrassen) {
      ata(alpha, a, c, arena, opts);
    } else if (engine == LeafEngine::kPanelSyrk) {
      blas::panel_syrk_ln(alpha, a, c, &arena);
    } else {
      blas::syrk_ln(alpha, a, c, &arena);
    }
  } else {
    if (engine == LeafEngine::kStrassen) {
      strassen_tn(alpha, a, b, c, arena, opts);
    } else if (engine == LeafEngine::kPanelSyrk) {
      blas::panel_gemm_tn(alpha, a, b, c, &arena);
    } else {
      blas::gemm_tn(alpha, a, b, c, &arena);
    }
  }
}

template <typename T>
index_t leaf_op_workspace(const sched::LeafOp& op, LeafEngine engine,
                          const RecurseOptions& opts) {
  if (engine != LeafEngine::kStrassen) {
    // kBlas and kPanelSyrk leaves draw their packed panels from the caller
    // arena, keeping the PR 3 warm path malloc-free on pool workers. The
    // panel engine's full-m bound covers every row panel (pack extents are
    // monotone in the contraction depth), so one bound serves both.
    if (op.kind == sched::LeafOp::Kind::kSyrk) {
      return blas::syrk_workspace_bound<T>(op.a.rows, op.a.cols);
    }
    return blas::gemm_workspace_bound<T>(op.a.cols, op.b.cols, op.a.rows);
  }
  // kStrassen leaves: the bound covers the recursion temporaries AND the
  // engine's internal base-case pack buffers (strassen/workspace.cpp), so a
  // warm Strassen leaf on a pool worker is malloc-free end to end.
  if (op.kind == sched::LeafOp::Kind::kSyrk) {
    return ata_workspace_bound(op.a.rows, op.a.cols, opts, sizeof(T));
  }
  return strassen_workspace_bound(op.a.rows, op.a.cols, op.b.cols, opts, sizeof(T));
}

#define ATALIB_LEAF_EXEC_INST(T)                                                  \
  template void run_leaf_kernel<T>(T, ConstMatrixView<T>, ConstMatrixView<T>,     \
                                   MatrixView<T>, sched::LeafOp::Kind, Arena<T>&, \
                                   LeafEngine, const RecurseOptions&);            \
  template index_t leaf_op_workspace<T>(const sched::LeafOp&, LeafEngine,         \
                                        const RecurseOptions&)
ATALIB_LEAF_EXEC_INST(float);
ATALIB_LEAF_EXEC_INST(double);
#undef ATALIB_LEAF_EXEC_INST

}  // namespace atalib
