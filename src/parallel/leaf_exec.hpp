#pragma once
// Shared leaf-compute substrate for the parallel execution layers (§4.1).
//
// AtA-S tasks and AtA-D rank leaves describe the same two multiplication
// shapes (sched::LeafOp): a diagonal A^T A block and an off-diagonal A^T B
// block. Both layers execute them through this one kernel entry so a leaf
// computed by a pool worker and the same leaf computed by a simulated rank
// are the *same code path* — same engine selection, same workspace
// discipline (all scratch comes from a runtime::Workspace arena, no
// per-call mallocs once warm), and bitwise-identical results.

#include "common/arena.hpp"
#include "sched/task.hpp"
#include "strassen/options.hpp"

namespace atalib {

/// Leaf multiplication engine. kStrassen is the paper's AtA / FastStrassen
/// recursion; kBlas is the blocked cubic kernel (the "MKL-style" execution
/// used as the Fig. 5/6 baseline and an allocation-free fallback);
/// kPanelSyrk is the tall-skinny fast path (blas/panel_syrk.hpp): row-panel
/// accumulation straight through the packed syrk/gemm kernels, selected
/// automatically by the shape-aware planner when m/n crosses the measured
/// crossover (api::shared_plan_key, DESIGN.md §8).
enum class LeafEngine { kStrassen, kBlas, kPanelSyrk };

/// Execute one leaf multiplication on pre-cut views: for kSyrk,
/// lower(c) += alpha * a^T a (b is ignored); for kGemm, c += alpha * a^T b.
/// Scratch comes from `arena` (untouched net of checkpoints) for both
/// engines — kStrassen draws its recursion temporaries, kBlas its packed
/// gemm/syrk panels. Views are already localized — callers cut them from
/// the global matrices (AtA-S) or from per-rank received blocks (AtA-D).
template <typename T>
void run_leaf_kernel(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c,
                     sched::LeafOp::Kind kind, Arena<T>& arena, LeafEngine engine,
                     const RecurseOptions& opts);

/// Arena elements run_leaf_kernel may allocate for `op` (for kBlas: the
/// packed-panel bound, maximized over every dispatchable microkernel).
template <typename T>
index_t leaf_op_workspace(const sched::LeafOp& op, LeafEngine engine,
                          const RecurseOptions& opts);

#define ATALIB_LEAF_EXEC_EXTERN(T)                                                       \
  extern template void run_leaf_kernel<T>(T, ConstMatrixView<T>, ConstMatrixView<T>,     \
                                          MatrixView<T>, sched::LeafOp::Kind, Arena<T>&, \
                                          LeafEngine, const RecurseOptions&);            \
  extern template index_t leaf_op_workspace<T>(const sched::LeafOp&, LeafEngine,         \
                                               const RecurseOptions&)
ATALIB_LEAF_EXEC_EXTERN(float);
ATALIB_LEAF_EXEC_EXTERN(double);
#undef ATALIB_LEAF_EXEC_EXTERN

}  // namespace atalib
