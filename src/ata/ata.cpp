#include "ata/ata.hpp"

#include <algorithm>
#include <cassert>

#include "blas/syrk.hpp"
#include "matrix/matrix.hpp"
#include "strassen/recursive_gemm.hpp"
#include "strassen/strassen.hpp"
#include "strassen/workspace.hpp"

namespace atalib {
namespace {

// Algorithm 1, lines 5-12, parameterized over the off-diagonal multiplier
// so AtA (FastStrassen) and AtANaive (RecursiveGEMM) share the recursion.
// `syrk_arena` feeds the base-case syrk's packed panels (nullptr = the leaf
// kernel's thread-local fallback, used only by the naive baseline).
template <typename T, typename Gemm>
void ata_rec(T alpha, ConstMatrixView<T> a, MatrixView<T> c, index_t base_elements,
             const RecurseOptions& opts, Arena<T>* syrk_arena, Gemm&& gemm_tn_off) {
  const index_t m = a.rows, n = a.cols;
  assert(c.rows == n && c.cols == n);
  if (m == 0 || n == 0) return;
  // Algorithm 1 line 2: block fits in cache -> BLAS ?syrk.
  if (ata_base_case(m, n, base_elements, opts.min_dim)) {
    blas::syrk_ln(alpha, a, c, syrk_arena);
    return;
  }
  const index_t m1 = half_up(m), m2 = half_down(m);
  const index_t n1 = half_up(n), n2 = half_down(n);

  const auto A11 = a.block(0, 0, m1, n1);
  const auto A12 = a.block(0, n1, m1, n2);
  const auto A21 = a.block(m1, 0, m2, n1);
  const auto A22 = a.block(m1, n1, m2, n2);
  auto C11 = c.block(0, 0, n1, n1);
  auto C21 = c.block(n1, 0, n2, n1);
  auto C22 = c.block(n1, n1, n2, n2);

  // C11 = A11^T A11 + A21^T A21 (lines 7-8).
  ata_rec(alpha, A11, C11, base_elements, opts, syrk_arena, gemm_tn_off);
  ata_rec(alpha, A21, C11, base_elements, opts, syrk_arena, gemm_tn_off);
  // C22 = A12^T A12 + A22^T A22 (lines 9-10).
  ata_rec(alpha, A12, C22, base_elements, opts, syrk_arena, gemm_tn_off);
  ata_rec(alpha, A22, C22, base_elements, opts, syrk_arena, gemm_tn_off);
  // C21 = A12^T A11 + A22^T A21 (lines 11-12). C12 = C21^T is never formed.
  gemm_tn_off(alpha, A12, A11, C21);
  gemm_tn_off(alpha, A22, A21, C21);
}

}  // namespace

template <typename T>
void ata(T alpha, ConstMatrixView<T> a, MatrixView<T> c, Arena<T>& arena,
         const RecurseOptions& opts) {
  const index_t base = opts.resolved_base_elements(sizeof(T));
  ata_rec(alpha, a, c, base, opts, &arena,
          [&](T al, ConstMatrixView<T> x, ConstMatrixView<T> y, MatrixView<T> z) {
            strassen_tn(al, x, y, z, arena, opts);
          });
}

template <typename T>
void ata(T alpha, ConstMatrixView<T> a, MatrixView<T> c, const RecurseOptions& opts) {
  const index_t bound = ata_workspace_bound(a.rows, a.cols, opts, sizeof(T));
  Arena<T> arena(static_cast<std::size_t>(bound));
  ata(alpha, a, c, arena, opts);
}

index_t aat_workspace_bound(index_t m, index_t n, const RecurseOptions& opts,
                            std::size_t elem_bytes) {
  return m * n + ata_workspace_bound(n, m, opts, elem_bytes);
}

template <typename T>
void aat(T alpha, ConstMatrixView<T> a, MatrixView<T> c, Arena<T>& arena,
         const RecurseOptions& opts) {
  assert(c.rows == a.rows && c.cols == a.rows);
  // Materialize A^T (n x m) with a cache-blocked transpose into the arena
  // (released on unwind), then AA^T = (A^T)^T (A^T) runs on the fast path
  // with its Strassen scratch bump-allocated past the transpose.
  typename Arena<T>::Scope scope(arena);
  T* buf = arena.allocate(static_cast<std::size_t>(a.rows * a.cols));
  MatrixView<T> at(buf, a.cols, a.rows, a.rows);
  constexpr index_t kTile = 64;
  for (index_t i0 = 0; i0 < a.rows; i0 += kTile) {
    const index_t i1 = std::min(a.rows, i0 + kTile);
    for (index_t j0 = 0; j0 < a.cols; j0 += kTile) {
      const index_t j1 = std::min(a.cols, j0 + kTile);
      for (index_t i = i0; i < i1; ++i) {
        for (index_t j = j0; j < j1; ++j) at(j, i) = a(i, j);
      }
    }
  }
  ata(alpha, ConstMatrixView<T>(at), c, arena, opts);
}

template <typename T>
void aat(T alpha, ConstMatrixView<T> a, MatrixView<T> c, const RecurseOptions& opts) {
  Arena<T> arena(
      static_cast<std::size_t>(aat_workspace_bound(a.rows, a.cols, opts, sizeof(T))));
  aat(alpha, a, c, arena, opts);
}

template <typename T>
void ata_naive(T alpha, ConstMatrixView<T> a, MatrixView<T> c, const RecurseOptions& opts) {
  const index_t base = opts.resolved_base_elements(sizeof(T));
  ata_rec(alpha, a, c, base, opts, static_cast<Arena<T>*>(nullptr),
          [&](T al, ConstMatrixView<T> x, ConstMatrixView<T> y, MatrixView<T> z) {
            recursive_gemm_tn(al, x, y, z, opts);
          });
}

#define ATALIB_ATA_INST(T)                                                             \
  template void ata<T>(T, ConstMatrixView<T>, MatrixView<T>, Arena<T>&,               \
                       const RecurseOptions&);                                         \
  template void ata<T>(T, ConstMatrixView<T>, MatrixView<T>, const RecurseOptions&);  \
  template void aat<T>(T, ConstMatrixView<T>, MatrixView<T>, Arena<T>&,               \
                       const RecurseOptions&);                                        \
  template void aat<T>(T, ConstMatrixView<T>, MatrixView<T>, const RecurseOptions&);  \
  template void ata_naive<T>(T, ConstMatrixView<T>, MatrixView<T>, const RecurseOptions&)
ATALIB_ATA_INST(float);
ATALIB_ATA_INST(double);
#undef ATALIB_ATA_INST

}  // namespace atalib
