#pragma once
// AtA (Algorithm 1): lower(C) += alpha * A^T A, cache-oblivious,
// Strassen-accelerated — the paper's primary contribution.
//
// Recursion (eq. (2)): split A into a 2x2 block grid;
//   C11 needs AtA(A11) + AtA(A21)            (two recursive AtA calls)
//   C22 needs AtA(A12) + AtA(A22)            (two recursive AtA calls)
//   C21 = A12^T A11 + A22^T A21              (two FastStrassen calls)
//   C12 = C21^T                              (never computed)
// Base case: blas::syrk_ln once the block fits in cache.
// Cost: (2/3) T_Strassen(n) ~ (14/3) n^log2(7) (eq. (3));
// workspace: the Strassen arena, 3/2 n^2 for square inputs (§3.3).

#include "common/arena.hpp"
#include "strassen/options.hpp"

namespace atalib {

/// lower(C) += alpha * A^T A with an externally supplied Strassen workspace
/// arena (>= ata_workspace_bound(m, n, ...) free elements). A is m x n,
/// C is n x n; the strict upper triangle of C is never touched.
template <typename T>
void ata(T alpha, ConstMatrixView<T> a, MatrixView<T> c, Arena<T>& arena,
         const RecurseOptions& opts = {});

/// Convenience entry: sizes and allocates the workspace, then runs ata().
template <typename T>
void ata(T alpha, ConstMatrixView<T> a, MatrixView<T> c, const RecurseOptions& opts = {});

/// lower(C) += alpha * A A^T (the paper's remark in §3: "our solution also
/// works for the product AA^T"). A is m x n, C is m x m. Implemented by
/// materializing A^T once (O(mn) time and space, asymptotically free next
/// to the O(n^log2 7) multiply) and running the cache-friendly A^T A path
/// on it — the paper's own §3 observation that row-major AA^T is the
/// *easier* orientation is what makes this transposition affordable. The
/// transpose buffer and the Strassen scratch both come from `arena`
/// (>= aat_workspace_bound(m, n, ...) free elements), so repeated calls
/// through a reused arena — e.g. a runtime::Workspace slot — are
/// malloc-free once warm.
template <typename T>
void aat(T alpha, ConstMatrixView<T> a, MatrixView<T> c, Arena<T>& arena,
         const RecurseOptions& opts = {});

/// Convenience entry: sizes and allocates the workspace, then runs aat().
template <typename T>
void aat(T alpha, ConstMatrixView<T> a, MatrixView<T> c, const RecurseOptions& opts = {});

/// Arena elements aat() needs on an m x n input: the materialized A^T
/// (m*n) plus the A^T A recursion bound on the n x m transpose.
index_t aat_workspace_bound(index_t m, index_t n, const RecurseOptions& opts,
                            std::size_t elem_bytes);

/// AtANaive: same AtA recursion but with RecursiveGEMM for the C21 block
/// instead of Strassen. This is the algorithm whose recursion tree the
/// parallel schedulers simulate (§4.1.3) and an allocation-free cubic
/// AtA baseline in its own right.
template <typename T>
void ata_naive(T alpha, ConstMatrixView<T> a, MatrixView<T> c, const RecurseOptions& opts = {});

#define ATALIB_ATA_EXTERN(T)                                                               \
  extern template void ata<T>(T, ConstMatrixView<T>, MatrixView<T>, Arena<T>&,            \
                              const RecurseOptions&);                                      \
  extern template void ata<T>(T, ConstMatrixView<T>, MatrixView<T>, const RecurseOptions&); \
  extern template void aat<T>(T, ConstMatrixView<T>, MatrixView<T>, Arena<T>&,            \
                              const RecurseOptions&);                                      \
  extern template void aat<T>(T, ConstMatrixView<T>, MatrixView<T>, const RecurseOptions&); \
  extern template void ata_naive<T>(T, ConstMatrixView<T>, MatrixView<T>,                 \
                                    const RecurseOptions&)
ATALIB_ATA_EXTERN(float);
ATALIB_ATA_EXTERN(double);
#undef ATALIB_ATA_EXTERN

}  // namespace atalib
