#pragma once
// Strided, non-owning matrix views.
//
// AtA and Strassen never copy sub-matrices of the input: every recursive
// call receives a view (pointer + row stride) into the original storage,
// which is what makes the recursion cache-oblivious and allocation-free
// outside the explicit workspace. Views are row-major; `stride` is the
// distance in elements between the starts of consecutive rows.

#include <cassert>
#include <cstddef>

namespace atalib {

using index_t = std::ptrdiff_t;

/// Mutable view of an m x n row-major block with row stride `stride`.
template <typename T>
struct MatrixView {
  T* data = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t stride = 0;

  MatrixView() = default;
  MatrixView(T* data_, index_t rows_, index_t cols_, index_t stride_)
      : data(data_), rows(rows_), cols(cols_), stride(stride_) {
    assert(stride >= cols);
  }

  T& operator()(index_t i, index_t j) const {
    assert(i >= 0 && i < rows && j >= 0 && j < cols);
    return data[i * stride + j];
  }

  /// Sub-block [r0, r0+nr) x [c0, c0+nc); shares storage.
  MatrixView block(index_t r0, index_t c0, index_t nr, index_t nc) const {
    assert(r0 >= 0 && c0 >= 0 && r0 + nr <= rows && c0 + nc <= cols);
    return MatrixView(data + r0 * stride + c0, nr, nc, stride);
  }

  index_t size() const { return rows * cols; }
  bool empty() const { return rows == 0 || cols == 0; }
};

/// Read-only view. Constructible from MatrixView<T>.
template <typename T>
struct ConstMatrixView {
  const T* data = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t stride = 0;

  ConstMatrixView() = default;
  ConstMatrixView(const T* data_, index_t rows_, index_t cols_, index_t stride_)
      : data(data_), rows(rows_), cols(cols_), stride(stride_) {
    assert(stride >= cols);
  }
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors T* -> const T*.
  ConstMatrixView(const MatrixView<T>& v)
      : data(v.data), rows(v.rows), cols(v.cols), stride(v.stride) {}

  const T& operator()(index_t i, index_t j) const {
    assert(i >= 0 && i < rows && j >= 0 && j < cols);
    return data[i * stride + j];
  }

  ConstMatrixView block(index_t r0, index_t c0, index_t nr, index_t nc) const {
    assert(r0 >= 0 && c0 >= 0 && r0 + nr <= rows && c0 + nc <= cols);
    return ConstMatrixView(data + r0 * stride + c0, nr, nc, stride);
  }

  index_t size() const { return rows * cols; }
  bool empty() const { return rows == 0 || cols == 0; }
};

/// Ceil/floor halves used by the 2x2 block split (eq. (1) of the paper):
/// first part gets ceil(n/2), second gets floor(n/2).
inline index_t half_up(index_t n) { return (n + 1) / 2; }
inline index_t half_down(index_t n) { return n / 2; }

}  // namespace atalib
