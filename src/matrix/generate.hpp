#pragma once
// Synthetic workload generators.
//
// The paper evaluates on dense random matrices (square and tall). These
// generators are deterministic in the seed so every experiment is exactly
// re-runnable.

#include <cstdint>

#include "matrix/matrix.hpp"

namespace atalib {

/// m x n with i.i.d. uniform entries in [-1, 1).
template <typename T>
Matrix<T> random_uniform(index_t rows, index_t cols, std::uint64_t seed);

/// m x n with i.i.d. standard normal entries.
template <typename T>
Matrix<T> random_gaussian(index_t rows, index_t cols, std::uint64_t seed);

/// n x n symmetric positive semi-definite matrix, built as G^T G with
/// G k x n Gaussian (k >= n gives almost-surely positive definite).
template <typename T>
Matrix<T> random_spd(index_t n, std::uint64_t seed);

/// m x n integer-valued matrix with entries in {-range..range}; exact in
/// floating point, used by property tests that compare algorithms bitwise
/// against the cubic reference on small sizes.
template <typename T>
Matrix<T> random_integer(index_t rows, index_t cols, int range, std::uint64_t seed);

extern template Matrix<float> random_uniform<float>(index_t, index_t, std::uint64_t);
extern template Matrix<double> random_uniform<double>(index_t, index_t, std::uint64_t);
extern template Matrix<float> random_gaussian<float>(index_t, index_t, std::uint64_t);
extern template Matrix<double> random_gaussian<double>(index_t, index_t, std::uint64_t);
extern template Matrix<float> random_spd<float>(index_t, std::uint64_t);
extern template Matrix<double> random_spd<double>(index_t, std::uint64_t);
extern template Matrix<float> random_integer<float>(index_t, index_t, int, std::uint64_t);
extern template Matrix<double> random_integer<double>(index_t, index_t, int, std::uint64_t);

}  // namespace atalib
