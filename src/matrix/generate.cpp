#include "matrix/generate.hpp"

#include "common/rng.hpp"

namespace atalib {

template <typename T>
Matrix<T> random_uniform(index_t rows, index_t cols, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Matrix<T> m(rows, cols);
  T* p = m.data();
  for (index_t i = 0; i < rows * cols; ++i) p[i] = static_cast<T>(rng.uniform(-1.0, 1.0));
  return m;
}

template <typename T>
Matrix<T> random_gaussian(index_t rows, index_t cols, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Matrix<T> m(rows, cols);
  T* p = m.data();
  for (index_t i = 0; i < rows * cols; ++i) p[i] = static_cast<T>(rng.gaussian());
  return m;
}

template <typename T>
Matrix<T> random_spd(index_t n, std::uint64_t seed) {
  const index_t k = n + 8;  // oversample: G^T G is a.s. positive definite
  Matrix<T> g = random_gaussian<T>(k, n, seed);
  Matrix<T> c = Matrix<T>::zeros(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j <= i; ++j) {
      T acc = T(0);
      for (index_t l = 0; l < k; ++l) acc += g(l, i) * g(l, j);
      c(i, j) = acc;
      c(j, i) = acc;
    }
  }
  return c;
}

template <typename T>
Matrix<T> random_integer(index_t rows, index_t cols, int range, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Matrix<T> m(rows, cols);
  T* p = m.data();
  const std::uint64_t span = static_cast<std::uint64_t>(2 * range + 1);
  for (index_t i = 0; i < rows * cols; ++i) {
    p[i] = static_cast<T>(static_cast<int>(rng.bounded(span)) - range);
  }
  return m;
}

template Matrix<float> random_uniform<float>(index_t, index_t, std::uint64_t);
template Matrix<double> random_uniform<double>(index_t, index_t, std::uint64_t);
template Matrix<float> random_gaussian<float>(index_t, index_t, std::uint64_t);
template Matrix<double> random_gaussian<double>(index_t, index_t, std::uint64_t);
template Matrix<float> random_spd<float>(index_t, std::uint64_t);
template Matrix<double> random_spd<double>(index_t, std::uint64_t);
template Matrix<float> random_integer<float>(index_t, index_t, int, std::uint64_t);
template Matrix<double> random_integer<double>(index_t, index_t, int, std::uint64_t);

}  // namespace atalib
