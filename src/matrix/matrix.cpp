#include "matrix/matrix.hpp"

namespace atalib {

template class Matrix<float>;
template class Matrix<double>;

}  // namespace atalib
