#include "matrix/io.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace atalib {

template <typename T>
void print_matrix(std::ostream& os, ConstMatrixView<T> a, int precision, index_t max_rows,
                  index_t max_cols) {
  const index_t r = std::min(a.rows, max_rows);
  const index_t c = std::min(a.cols, max_cols);
  os << a.rows << " x " << a.cols << " matrix";
  if (r < a.rows || c < a.cols) os << " (showing " << r << " x " << c << ")";
  os << "\n";
  for (index_t i = 0; i < r; ++i) {
    os << "  [";
    for (index_t j = 0; j < c; ++j) {
      os << std::setw(precision + 7) << std::setprecision(precision) << std::fixed
         << static_cast<double>(a(i, j));
    }
    if (c < a.cols) os << "  ...";
    os << " ]\n";
  }
  if (r < a.rows) os << "  ...\n";
}

template <typename T>
std::string to_string(ConstMatrixView<T> a, int precision) {
  std::ostringstream os;
  print_matrix(os, a, precision, a.rows, a.cols);
  return os.str();
}

template void print_matrix<float>(std::ostream&, ConstMatrixView<float>, int, index_t, index_t);
template void print_matrix<double>(std::ostream&, ConstMatrixView<double>, int, index_t, index_t);
template std::string to_string<float>(ConstMatrixView<float>, int);
template std::string to_string<double>(ConstMatrixView<double>, int);

}  // namespace atalib
