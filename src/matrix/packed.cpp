#include "matrix/packed.hpp"

namespace atalib {

template <typename T>
void symmetrize_from_lower(MatrixView<T> c) {
  assert(c.rows == c.cols);
  for (index_t i = 0; i < c.rows; ++i)
    for (index_t j = i + 1; j < c.cols; ++j) c(i, j) = c(j, i);
}

template class PackedLower<float>;
template class PackedLower<double>;
template void symmetrize_from_lower<float>(MatrixView<float>);
template void symmetrize_from_lower<double>(MatrixView<double>);

}  // namespace atalib
