#pragma once
// Matrix text I/O (debugging, examples).

#include <iosfwd>
#include <string>

#include "matrix/matrix.hpp"

namespace atalib {

/// Pretty-print (small matrices; intended for examples and debugging).
template <typename T>
void print_matrix(std::ostream& os, ConstMatrixView<T> a, int precision = 4,
                  index_t max_rows = 12, index_t max_cols = 12);

/// Render to string.
template <typename T>
std::string to_string(ConstMatrixView<T> a, int precision = 4);

extern template void print_matrix<float>(std::ostream&, ConstMatrixView<float>, int, index_t,
                                         index_t);
extern template void print_matrix<double>(std::ostream&, ConstMatrixView<double>, int, index_t,
                                          index_t);
extern template std::string to_string<float>(ConstMatrixView<float>, int);
extern template std::string to_string<double>(ConstMatrixView<double>, int);

}  // namespace atalib
