#include "matrix/compare.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace atalib {

template <typename T>
double max_abs_diff(ConstMatrixView<T> a, ConstMatrixView<T> b) {
  assert(a.rows == b.rows && a.cols == b.cols);
  double worst = 0.0;
  for (index_t i = 0; i < a.rows; ++i)
    for (index_t j = 0; j < a.cols; ++j)
      worst = std::max(worst, std::abs(static_cast<double>(a(i, j)) - b(i, j)));
  return worst;
}

template <typename T>
double max_abs_diff_lower(ConstMatrixView<T> a, ConstMatrixView<T> b) {
  assert(a.rows == b.rows && a.cols == b.cols);
  double worst = 0.0;
  for (index_t i = 0; i < a.rows; ++i)
    for (index_t j = 0; j <= i && j < a.cols; ++j)
      worst = std::max(worst, std::abs(static_cast<double>(a(i, j)) - b(i, j)));
  return worst;
}

template <typename T>
double frobenius_norm(ConstMatrixView<T> a) {
  double acc = 0.0;
  for (index_t i = 0; i < a.rows; ++i)
    for (index_t j = 0; j < a.cols; ++j) {
      const double v = a(i, j);
      acc += v * v;
    }
  return std::sqrt(acc);
}

template <typename T>
double relative_error(ConstMatrixView<T> a, ConstMatrixView<T> b) {
  assert(a.rows == b.rows && a.cols == b.cols);
  double num = 0.0;
  for (index_t i = 0; i < a.rows; ++i)
    for (index_t j = 0; j < a.cols; ++j) {
      const double d = static_cast<double>(a(i, j)) - b(i, j);
      num += d * d;
    }
  const double den = frobenius_norm(b);
  return std::sqrt(num) / std::max(den, 1e-30);
}

template <typename T>
double mm_tolerance(index_t inner_dim, double slack) {
  return static_cast<double>(std::numeric_limits<T>::epsilon()) *
         static_cast<double>(std::max<index_t>(inner_dim, 1)) * slack;
}

template double max_abs_diff<float>(ConstMatrixView<float>, ConstMatrixView<float>);
template double max_abs_diff<double>(ConstMatrixView<double>, ConstMatrixView<double>);
template double max_abs_diff_lower<float>(ConstMatrixView<float>, ConstMatrixView<float>);
template double max_abs_diff_lower<double>(ConstMatrixView<double>, ConstMatrixView<double>);
template double frobenius_norm<float>(ConstMatrixView<float>);
template double frobenius_norm<double>(ConstMatrixView<double>);
template double relative_error<float>(ConstMatrixView<float>, ConstMatrixView<float>);
template double relative_error<double>(ConstMatrixView<double>, ConstMatrixView<double>);
template double mm_tolerance<float>(index_t, double);
template double mm_tolerance<double>(index_t, double);

}  // namespace atalib
