#pragma once
// Packed lower-triangular storage.
//
// AtA-D sends syrk-type partial results up the task tree as packed lower
// triangles (n(n+1)/2 words instead of n^2), which is where the n(n+2)/2
// term in the paper's bandwidth bound (Prop. 4.2) comes from.

#include <vector>

#include "matrix/matrix.hpp"
#include "matrix/view.hpp"

namespace atalib {

/// Owning packed lower triangle of an n x n symmetric matrix,
/// row-major packed: element (i, j), j <= i, lives at index i(i+1)/2 + j.
template <typename T>
class PackedLower {
 public:
  PackedLower() = default;
  explicit PackedLower(index_t n) : n_(n), data_(packed_words(n)) {}

  /// Number of stored words for dimension n. Computed in std::size_t: the
  /// n^2-order product overflows a 32-bit index_t build for n >= 2^16, and
  /// UBSan flags the signed form long before that matters in practice.
  static std::size_t packed_words(index_t n) {
    const std::size_t un = static_cast<std::size_t>(n);
    return un * (un + 1) / 2;
  }
  static index_t packed_size(index_t n) { return static_cast<index_t>(packed_words(n)); }

  /// Packed row-major offset of (i, j), j <= i, in std::size_t arithmetic.
  static std::size_t packed_offset(index_t i, index_t j) {
    const std::size_t ui = static_cast<std::size_t>(i);
    return ui * (ui + 1) / 2 + static_cast<std::size_t>(j);
  }

  index_t dim() const { return n_; }
  index_t size() const { return static_cast<index_t>(data_.size()); }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  T& at(index_t i, index_t j) {
    assert(j <= i && i < n_);
    return data_[packed_offset(i, j)];
  }
  const T& at(index_t i, index_t j) const {
    assert(j <= i && i < n_);
    return data_[packed_offset(i, j)];
  }

  /// Pack the lower triangle of `src` (n x n view).
  static PackedLower pack(ConstMatrixView<T> src) {
    assert(src.rows == src.cols);
    PackedLower p(src.rows);
    std::size_t k = 0;
    for (index_t i = 0; i < src.rows; ++i)
      for (index_t j = 0; j <= i; ++j) p.data_[k++] = src(i, j);
    return p;
  }

  /// Write the packed triangle into the lower triangle of `dst`; the strict
  /// upper triangle of `dst` is left untouched.
  void unpack_into(MatrixView<T> dst) const {
    assert(dst.rows == n_ && dst.cols == n_);
    std::size_t k = 0;
    for (index_t i = 0; i < n_; ++i)
      for (index_t j = 0; j <= i; ++j) dst(i, j) = data_[k++];
  }

  /// Accumulate the packed triangle into the lower triangle of `dst`.
  void add_into(MatrixView<T> dst) const {
    assert(dst.rows == n_ && dst.cols == n_);
    std::size_t k = 0;
    for (index_t i = 0; i < n_; ++i)
      for (index_t j = 0; j <= i; ++j) dst(i, j) += data_[k++];
  }

 private:
  index_t n_ = 0;
  std::vector<T> data_;
};

/// Copy the (strictly) lower triangle into the upper one, producing a fully
/// symmetric matrix. AtA computes only lower(C); callers that need the full
/// matrix (e.g. downstream solvers) call this once at the end.
template <typename T>
void symmetrize_from_lower(MatrixView<T> c);

extern template class PackedLower<float>;
extern template class PackedLower<double>;
extern template void symmetrize_from_lower<float>(MatrixView<float>);
extern template void symmetrize_from_lower<double>(MatrixView<double>);

}  // namespace atalib
