#pragma once
// Numeric comparison helpers used by tests and the verification harness.

#include "matrix/view.hpp"

namespace atalib {

/// max_{i,j} |a(i,j) - b(i,j)| over the full rectangle.
template <typename T>
double max_abs_diff(ConstMatrixView<T> a, ConstMatrixView<T> b);

/// max over the lower triangle only (AtA writes only lower(C)).
template <typename T>
double max_abs_diff_lower(ConstMatrixView<T> a, ConstMatrixView<T> b);

/// Frobenius norm.
template <typename T>
double frobenius_norm(ConstMatrixView<T> a);

/// Relative error ||a - b||_F / max(||b||_F, eps).
template <typename T>
double relative_error(ConstMatrixView<T> a, ConstMatrixView<T> b);

/// Tolerance scaled to the problem: Strassen loses ~O(log n) digits vs the
/// cubic reference; this returns eps(T) * inner_dim * slack.
template <typename T>
double mm_tolerance(index_t inner_dim, double slack = 64.0);

extern template double max_abs_diff<float>(ConstMatrixView<float>, ConstMatrixView<float>);
extern template double max_abs_diff<double>(ConstMatrixView<double>, ConstMatrixView<double>);
extern template double max_abs_diff_lower<float>(ConstMatrixView<float>, ConstMatrixView<float>);
extern template double max_abs_diff_lower<double>(ConstMatrixView<double>,
                                                  ConstMatrixView<double>);
extern template double frobenius_norm<float>(ConstMatrixView<float>);
extern template double frobenius_norm<double>(ConstMatrixView<double>);
extern template double relative_error<float>(ConstMatrixView<float>, ConstMatrixView<float>);
extern template double relative_error<double>(ConstMatrixView<double>, ConstMatrixView<double>);
extern template double mm_tolerance<float>(index_t, double);
extern template double mm_tolerance<double>(index_t, double);

}  // namespace atalib
