#pragma once
// Owning dense row-major matrix.

#include <cstddef>
#include <initializer_list>
#include <stdexcept>

#include "common/aligned_buffer.hpp"
#include "matrix/view.hpp"

namespace atalib {

/// Dense m x n row-major matrix with 64-byte aligned storage. Move-only by
/// default; deep copies are explicit via clone() so accidental O(n^2) copies
/// cannot hide in pass-by-value.
template <typename T>
class Matrix {
 public:
  Matrix() = default;

  /// Uninitialized m x n matrix.
  Matrix(index_t rows, index_t cols)
      : buf_(static_cast<std::size_t>(rows * cols)), rows_(rows), cols_(cols) {
    if (rows < 0 || cols < 0) throw std::invalid_argument("negative matrix dimension");
  }

  /// Zero-initialized factory.
  static Matrix zeros(index_t rows, index_t cols) {
    Matrix m(rows, cols);
    for (index_t i = 0; i < rows * cols; ++i) m.buf_[static_cast<std::size_t>(i)] = T(0);
    return m;
  }

  /// Identity factory (square).
  static Matrix identity(index_t n) {
    Matrix m = zeros(n, n);
    for (index_t i = 0; i < n; ++i) m(i, i) = T(1);
    return m;
  }

  /// Row-major brace construction for small literals in tests.
  Matrix(std::initializer_list<std::initializer_list<T>> init)
      : Matrix(static_cast<index_t>(init.size()),
               init.size() ? static_cast<index_t>(init.begin()->size()) : 0) {
    index_t i = 0;
    for (const auto& row : init) {
      if (static_cast<index_t>(row.size()) != cols_) {
        throw std::invalid_argument("ragged initializer list");
      }
      index_t j = 0;
      for (const T& v : row) (*this)(i, j++) = v;
      ++i;
    }
  }

  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;
  Matrix(const Matrix&) = delete;
  Matrix& operator=(const Matrix&) = delete;

  /// Explicit deep copy.
  Matrix clone() const {
    Matrix m(rows_, cols_);
    for (index_t i = 0; i < rows_ * cols_; ++i)
      m.buf_[static_cast<std::size_t>(i)] = buf_[static_cast<std::size_t>(i)];
    return m;
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t size() const { return rows_ * cols_; }

  T* data() { return buf_.data(); }
  const T* data() const { return buf_.data(); }

  T& operator()(index_t i, index_t j) {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return buf_[static_cast<std::size_t>(i * cols_ + j)];
  }
  const T& operator()(index_t i, index_t j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return buf_[static_cast<std::size_t>(i * cols_ + j)];
  }

  /// Whole-matrix views (stride == cols).
  MatrixView<T> view() { return MatrixView<T>(data(), rows_, cols_, cols_); }
  ConstMatrixView<T> view() const { return ConstMatrixView<T>(data(), rows_, cols_, cols_); }
  ConstMatrixView<T> const_view() const { return view(); }

  /// Sub-block views.
  MatrixView<T> block(index_t r0, index_t c0, index_t nr, index_t nc) {
    return view().block(r0, c0, nr, nc);
  }
  ConstMatrixView<T> block(index_t r0, index_t c0, index_t nr, index_t nc) const {
    return view().block(r0, c0, nr, nc);
  }

  void fill(T v) {
    for (index_t i = 0; i < rows_ * cols_; ++i) buf_[static_cast<std::size_t>(i)] = v;
  }

  /// Out-of-place transpose.
  Matrix transposed() const {
    Matrix t(cols_, rows_);
    for (index_t i = 0; i < rows_; ++i)
      for (index_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
    return t;
  }

 private:
  AlignedBuffer<T> buf_;
  index_t rows_ = 0;
  index_t cols_ = 0;
};

extern template class Matrix<float>;
extern template class Matrix<double>;

/// Copy the contents of `src` into `dst` (shapes must match).
template <typename T>
void copy_into(ConstMatrixView<T> src, MatrixView<T> dst) {
  assert(src.rows == dst.rows && src.cols == dst.cols);
  for (index_t i = 0; i < src.rows; ++i)
    for (index_t j = 0; j < src.cols; ++j) dst(i, j) = src(i, j);
}

/// Set every element of a view to `v`.
template <typename T>
void fill_view(MatrixView<T> dst, T v) {
  for (index_t i = 0; i < dst.rows; ++i)
    for (index_t j = 0; j < dst.cols; ++j) dst(i, j) = v;
}

}  // namespace atalib
