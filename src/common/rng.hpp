#pragma once
// Deterministic, fast random number generation for workload synthesis.
//
// Benchmarks and property tests need reproducible matrices that are cheap to
// generate even at tens of millions of elements; xoshiro256++ is
// substantially faster than std::mt19937_64 and has a well-studied state
// space. Seeding is explicit everywhere — no global RNG state.

#include <cstdint>

namespace atalib {

/// xoshiro256++ PRNG (Blackman & Vigna). Deterministic for a given seed.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Standard normal variate (Marsaglia polar method).
  double gaussian() noexcept;

  /// Uniform integer in [0, bound) without modulo bias (Lemire).
  std::uint64_t bounded(std::uint64_t bound) noexcept;

 private:
  std::uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace atalib
