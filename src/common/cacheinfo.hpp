#pragma once
// Runtime cache-size and NUMA-topology probes.
//
// AtA's base-case condition is "the sub-problem fits in cache" (Algorithm 1,
// line 2). The algorithm is cache-oblivious — the threshold only decides
// where recursion hands off to the leaf BLAS kernel — but picking it near
// the actual cache size is what makes the leaf kernel efficient, so we read
// the hierarchy from the OS when available and fall back to common values.
//
// The NUMA half feeds the topology-aware runtime (DESIGN.md §7): on the
// multi-socket boxes a serving deployment runs on, a leaf GEMM against a
// remote-node packed panel throws away the SIMD-kernel wins, so the
// ThreadPool groups workers by node and places memory node-locally. The
// probe reads /sys/devices/system/node on Linux and degrades to one node
// spanning every CPU elsewhere; ATALIB_FAKE_NUMA=<nodes>x<cpus> synthesizes
// a multi-node topology so those code paths run deterministically on
// single-node CI machines.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace atalib {

struct CacheInfo {
  std::size_t l1_data_bytes;
  std::size_t l2_bytes;
  std::size_t l3_bytes;
};

/// Probe L1d/L2/L3 sizes via sysconf; zero entries are replaced by
/// conservative defaults (32 KiB / 256 KiB / 8 MiB).
CacheInfo probe_cache_info();

/// Default AtA/Strassen base-case threshold in *elements* for element size
/// `elem_bytes`: the number of scalars that fit in half the L2 cache
/// (operands of the leaf multiply should fit concurrently).
std::size_t default_base_case_elements(std::size_t elem_bytes);

/// One memory node and the CPUs whose local memory it is.
struct NumaNode {
  int id = 0;
  std::vector<int> cpus;
};

struct NumaTopology {
  std::vector<NumaNode> nodes;  ///< never empty; sorted by id
  /// True when the topology was synthesized from ATALIB_FAKE_NUMA. Fake
  /// CPU ids need not exist on the host, so consumers must not pin threads
  /// to them — placement logic still runs, affinity syscalls do not.
  bool fake = false;

  int num_nodes() const { return static_cast<int>(nodes.size()); }
  int total_cpus() const;
  /// Node owning `cpu`, or 0 when the cpu is not listed (always a valid
  /// index, so callers need no fallback path).
  int node_of_cpu(int cpu) const;
};

/// Parse a "<nodes>x<cpus>" spec (e.g. "2x4": 2 nodes, 4 CPUs each, cpu
/// ids assigned blockwise 0..7). Returns nullopt on malformed input or
/// non-positive counts. Exposed for direct unit testing.
std::optional<NumaTopology> parse_fake_numa(const std::string& spec);

/// Discover the NUMA topology. Order of precedence:
///   1. ATALIB_FAKE_NUMA=<nodes>x<cpus> (throws std::invalid_argument on a
///      malformed value — a typo'd override must fail loudly, not silently
///      change placement),
///   2. /sys/devices/system/node/node*/cpulist on Linux,
///   3. a single node spanning hardware_concurrency CPUs.
/// Reads the environment on every call (no process-wide cache) so tests and
/// freshly constructed pools honor the current override.
NumaTopology probe_numa_topology();

}  // namespace atalib
