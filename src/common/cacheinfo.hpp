#pragma once
// Runtime cache-size probe.
//
// AtA's base-case condition is "the sub-problem fits in cache" (Algorithm 1,
// line 2). The algorithm is cache-oblivious — the threshold only decides
// where recursion hands off to the leaf BLAS kernel — but picking it near
// the actual cache size is what makes the leaf kernel efficient, so we read
// the hierarchy from the OS when available and fall back to common values.

#include <cstddef>

namespace atalib {

struct CacheInfo {
  std::size_t l1_data_bytes;
  std::size_t l2_bytes;
  std::size_t l3_bytes;
};

/// Probe L1d/L2/L3 sizes via sysconf; zero entries are replaced by
/// conservative defaults (32 KiB / 256 KiB / 8 MiB).
CacheInfo probe_cache_info();

/// Default AtA/Strassen base-case threshold in *elements* for element size
/// `elem_bytes`: the number of scalars that fit in half the L2 cache
/// (operands of the leaf multiply should fit concurrently).
std::size_t default_base_case_elements(std::size_t elem_bytes);

}  // namespace atalib
