#include "common/rng.hpp"

#include <cmath>

namespace atalib {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: expands a single seed into full xoshiro state.
std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform01() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

double Xoshiro256::gaussian() noexcept {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * mul;
  have_spare_ = true;
  return u * mul;
}

std::uint64_t Xoshiro256::bounded(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace atalib
