#pragma once
// ATALIB_CHECKED: the instrumented memory-lifetime build mode (DESIGN.md §9).
//
// Compiled with -DATALIB_CHECKED=1 (CMake option ATALIB_CHECKED), the
// common/arena + runtime/workspace layer verifies the invariants the release
// build merely documents:
//   - canary words after the live allocation, verified on checkpoint
//     restore/reset (buffer overruns past an arena allocation);
//   - poison-filling of memory released by checkpoint rollback (stale reads
//     of rolled-back temporaries produce loud garbage, not yesterday's
//     answer);
//   - owning-thread lease stamps (a task using another slot's arena — the
//     cross-task aliasing bug class — is caught at the allocate call);
//   - the §5 warm-path ordering (a request covered by the pool's warmed
//     high-water mark must never grow a slab; a grow there means the warm
//     protocol missed a slot).
//
// A violation calls checked_abort(), which prints the invariant and aborts —
// gtest death tests assert the negative cases (tests/test_checked.cpp).
// Release builds (ATALIB_CHECKED=0, the default) compile all of it away:
// the arena keeps its exact two-word hot path and zero extra state writes.

#include <cstddef>

#if !defined(ATALIB_CHECKED)
#define ATALIB_CHECKED 0
#endif

namespace atalib {

/// Report a checked-mode invariant violation and abort. `invariant` names
/// the broken rule; `detail` is free-form context (may be null).
[[noreturn]] void checked_abort(const char* invariant, const char* detail = nullptr);

/// Stable hash of the calling thread's id, used for arena lease stamps
/// (0 is reserved for "no owner").
std::size_t checked_thread_token();

}  // namespace atalib
