#include "common/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace atalib {

void CliFlags::add_int(const std::string& name, std::int64_t def, const std::string& help) {
  flags_[name] = Flag{Kind::kInt, std::to_string(def), help};
  order_.push_back(name);
}

void CliFlags::add_double(const std::string& name, double def, const std::string& help) {
  std::ostringstream os;
  os << def;
  flags_[name] = Flag{Kind::kDouble, os.str(), help};
  order_.push_back(name);
}

void CliFlags::add_bool(const std::string& name, bool def, const std::string& help) {
  flags_[name] = Flag{Kind::kBool, def ? "true" : "false", help};
  order_.push_back(name);
}

void CliFlags::add_string(const std::string& name, const std::string& def,
                          const std::string& help) {
  flags_[name] = Flag{Kind::kString, def, help};
  order_.push_back(name);
}

bool CliFlags::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument '%s'\n", arg.c_str());
      return false;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool have_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      have_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag --%s\n%s", name.c_str(), usage(argv[0]).c_str());
      return false;
    }
    Flag& flag = it->second;
    if (!have_value) {
      if (flag.kind == Kind::kBool) {
        value = "true";
      } else {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "flag --%s expects a value\n", name.c_str());
          return false;
        }
        value = argv[++i];
      }
    }
    flag.value = value;
  }
  return true;
}

const CliFlags::Flag& CliFlags::require(const std::string& name, Kind kind) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.kind != kind) {
    throw std::logic_error("flag not registered with this type: --" + name);
  }
  return it->second;
}

std::int64_t CliFlags::get_int(const std::string& name) const {
  return std::stoll(require(name, Kind::kInt).value);
}

double CliFlags::get_double(const std::string& name) const {
  return std::stod(require(name, Kind::kDouble).value);
}

bool CliFlags::get_bool(const std::string& name) const {
  const std::string& v = require(name, Kind::kBool).value;
  return v == "true" || v == "1" || v == "yes";
}

const std::string& CliFlags::get_string(const std::string& name) const {
  return require(name, Kind::kString).value;
}

std::string CliFlags::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name << " (default: " << f.value << ")  " << f.help << "\n";
  }
  return os.str();
}

}  // namespace atalib
