#pragma once
// Minimal command-line flag parser for benches and examples.
//
// Supports `--name value`, `--name=value`, and boolean `--name`. Unknown
// flags are an error so typos in experiment scripts fail loudly rather than
// silently running the default configuration.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace atalib {

/// Declarative flag set. Register flags, then parse(argc, argv).
class CliFlags {
 public:
  /// Register a flag with a default value and a help string.
  void add_int(const std::string& name, std::int64_t def, const std::string& help);
  void add_double(const std::string& name, double def, const std::string& help);
  void add_bool(const std::string& name, bool def, const std::string& help);
  void add_string(const std::string& name, const std::string& def, const std::string& help);

  /// Parse argv. Returns false (after printing usage) on --help or error.
  bool parse(int argc, char** argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;

  /// Render usage text.
  std::string usage(const std::string& program) const;

 private:
  enum class Kind { kInt, kDouble, kBool, kString };
  struct Flag {
    Kind kind;
    std::string value;  // textual representation
    std::string help;
  };

  const Flag& require(const std::string& name, Kind kind) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;  // registration order, for usage()
};

}  // namespace atalib
