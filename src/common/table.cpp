#include "common/table.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace atalib {

void Table::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void Table::add_row(std::vector<std::string> row) {
  if (!header_.empty() && row.size() != header_.size()) {
    throw std::invalid_argument("Table row arity does not match header");
  }
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c >= widths.size()) widths.resize(c + 1, 0);
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  if (total < title_.size()) total = title_.size();

  std::ostringstream os;
  os << title_ << "\n" << std::string(total, '-') << "\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    os << std::string(total, '-') << "\n";
  }
  for (const auto& row : rows_) emit(row);
  os << std::string(total, '-') << "\n";
  return os.str();
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace atalib
