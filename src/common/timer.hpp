#pragma once
// Wall-clock timing for the benchmark harness.

#include <ctime>

#include <algorithm>
#include <chrono>

namespace atalib {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction / last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Per-thread CPU-time stopwatch (CLOCK_THREAD_CPUTIME_ID). Unlike Timer,
/// this does not advance while the thread is descheduled, so it measures a
/// simulated rank's busy time correctly even when many rank threads
/// oversubscribe few cores.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(now()) {}

  void reset() { start_ = now(); }

  double seconds() const { return now() - start_; }

 private:
  static double now() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
  }
  double start_;
};

/// Run `fn` `reps` times and return the *minimum* wall time in seconds.
/// Minimum-of-reps is the standard noise-rejection estimator for
/// compute-bound kernels (noise is strictly additive).
template <typename Fn>
double min_time_of(Fn&& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

}  // namespace atalib
