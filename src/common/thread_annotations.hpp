#pragma once
// Clang Thread Safety Analysis vocabulary (DESIGN.md §9).
//
// The repo's lock discipline — which mutex guards which field, which
// functions require or must not hold a lock — used to live in comments.
// These macros state it in a form `clang -Wthread-safety` checks at compile
// time, so a new call path that touches guarded state without its lock is a
// build error on clang (CI's thread-safety leg builds with
// -Werror=thread-safety). Under gcc (and any compiler without the
// attributes) every macro expands to nothing, so release builds and the
// default CI legs are unaffected.
//
// Conventions (see DESIGN.md §9 for the full contract):
//   - Every mutex that guards data is an atalib::Mutex (below), never a raw
//     std::mutex: only annotated capability types participate in the
//     analysis.
//   - Fields name their guard: `bool stop_ ATALIB_GUARDED_BY(mu_);`
//   - Functions that must be called with a lock held say so:
//     `void retire() ATALIB_REQUIRES(mu_);` — callers then fail to compile
//     unless the analysis can see them holding mu_.
//   - Lock lifetimes that outlive a lexical scope (e.g. dist::RankPoolLease
//     holds the rank-pool mutex for the lease object's lifetime) are beyond
//     the scope-based analysis; such functions carry
//     ATALIB_NO_THREAD_SAFETY_ANALYSIS plus a comment saying why.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ATALIB_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#if !defined(ATALIB_THREAD_ANNOTATION)
#define ATALIB_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define ATALIB_CAPABILITY(x) ATALIB_THREAD_ANNOTATION(capability(x))
#define ATALIB_SCOPED_CAPABILITY ATALIB_THREAD_ANNOTATION(scoped_lockable)
#define ATALIB_GUARDED_BY(x) ATALIB_THREAD_ANNOTATION(guarded_by(x))
#define ATALIB_PT_GUARDED_BY(x) ATALIB_THREAD_ANNOTATION(pt_guarded_by(x))
#define ATALIB_REQUIRES(...) \
  ATALIB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ATALIB_EXCLUDES(...) ATALIB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ATALIB_ACQUIRE(...) ATALIB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ATALIB_TRY_ACQUIRE(...) \
  ATALIB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define ATALIB_RELEASE(...) ATALIB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define ATALIB_ASSERT_CAPABILITY(x) ATALIB_THREAD_ANNOTATION(assert_capability(x))
#define ATALIB_RETURN_CAPABILITY(x) ATALIB_THREAD_ANNOTATION(lock_returned(x))
#define ATALIB_NO_THREAD_SAFETY_ANALYSIS \
  ATALIB_THREAD_ANNOTATION(no_thread_safety_analysis)

#include <mutex>

namespace atalib {

/// std::mutex wrapped as a clang capability. Identical cost (the wrapper is
/// a single std::mutex; every method is a forwarding inline), but fields
/// can be ATALIB_GUARDED_BY it and lock discipline becomes compiler-checked.
/// Works with std::condition_variable_any (a BasicLockable), which is what
/// the pool and mailboxes wait on.
class ATALIB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ATALIB_ACQUIRE() { mu_.lock(); }
  void unlock() ATALIB_RELEASE() { mu_.unlock(); }
  bool try_lock() ATALIB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// std::lock_guard equivalent over Mutex, visible to the analysis.
class ATALIB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ATALIB_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() ATALIB_RELEASE() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

/// Relockable scoped lock over Mutex (std::unique_lock equivalent) for
/// condition-variable waits and hold/release/reacquire sections. Pass it to
/// std::condition_variable_any::wait — the analysis treats the capability
/// as held across the wait, matching the postcondition (the lock is
/// reacquired before wait returns).
class ATALIB_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) ATALIB_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;
  ~UniqueLock() ATALIB_RELEASE() {
    if (held_) mu_.unlock();
  }

  void lock() ATALIB_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }
  void unlock() ATALIB_RELEASE() {
    held_ = false;
    mu_.unlock();
  }

 private:
  Mutex& mu_;
  bool held_;
};

}  // namespace atalib
