#include "common/checked.hpp"

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>

namespace atalib {

void checked_abort(const char* invariant, const char* detail) {
  std::fprintf(stderr, "atalib ATALIB_CHECKED violation: %s%s%s\n", invariant,
               detail ? ": " : "", detail ? detail : "");
  std::fflush(stderr);
  std::abort();
}

std::size_t checked_thread_token() {
  const std::size_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return h == 0 ? 1 : h;  // 0 means "no owner"
}

}  // namespace atalib
