#pragma once
// ASCII table / series renderer for the benchmark harness.
//
// Every bench binary reproduces one table or figure from the paper; the
// harness prints figures as aligned column series (one row per x value, one
// column per curve) so the output diff-compares cleanly across runs and can
// be pasted into a plotting tool.

#include <string>
#include <vector>

namespace atalib {

/// Column-aligned ASCII table with a title and column headers.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Set the header row. Must be called before add_row.
  void set_header(std::vector<std::string> header);

  /// Append a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format a double with fixed precision.
  static std::string num(double v, int precision = 3);

  /// Render to a string (title, rule, header, rule, rows, rule).
  std::string render() const;

  /// Render and write to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace atalib
