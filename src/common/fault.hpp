#pragma once
// Deterministic fault injection for the serving layer (DESIGN.md §10,
// tools/faults/README.md).
//
// The overload-control paths worth testing — reject, shed-oldest, deadline
// expiry, error isolation — only trigger when the server is *unhealthy*:
// tasks slow enough to back the queue up, leaves that throw, admission
// pressure beyond what a small test workload generates. ATALIB_FAULTS
// injects exactly those conditions on demand:
//
//   ATALIB_FAULTS=<site>[:<n1>[:<n2>]][,<site>...]
//
// Sites (occurrence counters are per fault::Plan, i.e. per Server, and
// deterministic given a serial occurrence order):
//   slow_task:us[:every]   every `every`-th served task unit (default 1)
//                          sleeps `us` microseconds before computing
//   throw_leaf[:every]     every `every`-th served task unit throws
//                          fault::FaultInjected instead of computing
//   queue_pressure:n       the admission gate behaves as if `n` phantom
//                          requests were already in flight
//
// The hooks compile to nothing unless the build sets ATALIB_FAULT_INJECTION
// (the CMake knob of the same name): kEnabled is a constexpr false there,
// every injection point is behind `if constexpr`, and Plan::from_env()
// returns null — a release server cannot be slowed down by a stray
// environment variable. The parser itself is always compiled (it has
// always-on unit tests and costs nothing at runtime).

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace atalib::fault {

#if defined(ATALIB_FAULT_INJECTION)
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// The error a `throw_leaf` fault raises. Distinct from the library's
/// std::invalid_argument validation errors so tests can assert the failure
/// they injected is the failure that surfaced.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(const std::string& what) : std::runtime_error(what) {}
};

/// One parsed fault site: `name[:n1[:n2]]`. n1/n2 default to 0 when
/// absent; each site documents its own interpretation (see file comment).
struct Site {
  std::string name;
  std::uint64_t n1 = 0;
  std::uint64_t n2 = 0;
};

/// An immutable parsed ATALIB_FAULTS spec plus per-site occurrence
/// counters. Shared by const pointer (the counters are atomic) between a
/// Server and its in-flight batches, so injection keeps firing
/// deterministically even while the server is being torn down.
class Plan {
 public:
  /// Parse a spec string. Throws std::invalid_argument on an empty site
  /// name, a non-numeric field, or more than two numeric fields.
  static std::shared_ptr<const Plan> parse(const std::string& spec);

  /// The process's ATALIB_FAULTS plan, re-read on every call so each
  /// Server picks up the environment current at its construction. Null
  /// when the variable is unset/empty — or always, in builds without
  /// ATALIB_FAULT_INJECTION.
  static std::shared_ptr<const Plan> from_env();

  const Site* find(std::string_view name) const;
  bool has(std::string_view name) const { return find(name) != nullptr; }

  /// Count one occurrence of `site` and report whether it fires: the k-th
  /// occurrence (k starting at 1) fires iff the site is present and
  /// k % max(every, 1) == 0. Thread-safe; deterministic for a fixed
  /// interleaving of occurrences.
  bool fire(std::string_view site, std::uint64_t every) const;

  /// `slow_task` hook: when it fires, sleep n1 microseconds (n2 = every).
  void maybe_slow_task() const;
  /// `throw_leaf` hook: when it fires (n1 = every), throw FaultInjected.
  void maybe_throw_leaf() const;
  /// `queue_pressure` hook: phantom in-flight requests the admission gate
  /// must add (n1; 0 when the site is absent). Not occurrence-counted.
  std::uint64_t queue_pressure() const;

 private:
  struct Counter {
    Site site;
    mutable std::atomic<std::uint64_t> count{0};
  };
  std::vector<std::unique_ptr<Counter>> sites_;
};

}  // namespace atalib::fault
