#pragma once
// Cache-line / SIMD aligned heap buffer.
//
// Matrix payloads and Strassen workspaces live in AlignedBuffer so that the
// packed gemm microkernels can assume 64-byte alignment of the first element
// of each buffer (rows inside a strided view are *not* individually aligned;
// the kernels do not require that).

#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

namespace atalib {

inline constexpr std::size_t kBufferAlignment = 64;

/// Owning, 64-byte aligned, uninitialized T[] buffer. Move-only.
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count) : size_(count) {
    if (count == 0) return;
    const std::size_t bytes =
        (count * sizeof(T) + kBufferAlignment - 1) / kBufferAlignment * kBufferAlignment;
    data_ = static_cast<T*>(std::aligned_alloc(kBufferAlignment, bytes));
    if (data_ == nullptr) throw std::bad_alloc{};
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

 private:
  void release() noexcept {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace atalib
