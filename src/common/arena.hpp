#pragma once
// Checkpointed bump-arena used as the Strassen workspace.
//
// The paper's FastStrassen pre-allocates three buffers (M, P, Q) sized for
// the whole recursion and hands prefixes of them to each recursive level.
// A checkpointed bump arena is the same idea with one buffer: a level takes
// a checkpoint, bump-allocates its temporaries, and restores the checkpoint
// on unwind, so the deepest recursion path determines the footprint and no
// malloc/free happens inside the recursion.
//
// Under ATALIB_CHECKED (common/checked.hpp, DESIGN.md §9) the arena also
// verifies its lifetime contract: a canary word is kept just past the live
// region and checked on every checkpoint restore / reset (catching writes
// past the end of the most recent allocation), rolled-back and reset memory
// is poison-filled with 0xA5 bytes (catching reads of released
// temporaries), and a lease stamp records the thread the owning Workspace
// handed the arena to (catching a task bump-allocating out of another
// slot's arena). Release builds compile all of that away — allocate stays
// a bounds check and two word updates.

#include <cstddef>
#include <cstring>
#include <stdexcept>

#include "common/aligned_buffer.hpp"
#include "common/checked.hpp"

namespace atalib {

#if ATALIB_CHECKED
inline constexpr unsigned char kArenaPoisonByte = 0xA5;
inline constexpr unsigned char kArenaCanaryByte = 0xCA;
#endif

/// Bump allocator over a single aligned double-precision-sized slab.
/// Allocation is O(1); freeing happens only via checkpoints (LIFO).
template <typename T>
class Arena {
 public:
  Arena() = default;
  /// Construct with capacity for `count` elements of T.
  explicit Arena(std::size_t count) : slab_(count) {
#if ATALIB_CHECKED
    poison(0, slab_.size());
#endif
  }

  /// Total capacity in elements.
  std::size_t capacity() const noexcept { return slab_.size(); }
  /// Elements currently allocated.
  std::size_t used() const noexcept { return top_; }
  /// High-water mark over the arena's lifetime (for tests/ablations).
  std::size_t high_water() const noexcept { return high_water_; }

  /// Allocate `count` elements. The returned memory is uninitialized.
  /// Throws std::length_error if the arena is exhausted: the workspace
  /// bound computation is wrong in that case, and silently growing would
  /// hide the bug.
  T* allocate(std::size_t count) {
    if (top_ + count > slab_.size()) {
      throw std::length_error("Arena exhausted: workspace bound violated");
    }
#if ATALIB_CHECKED
    check_owner();
#endif
    T* p = slab_.data() + top_;
    top_ += count;
    if (top_ > high_water_) high_water_ = top_;
#if ATALIB_CHECKED
    place_canary();
#endif
    return p;
  }

  /// Discard every allocation (capacity and high-water mark retained).
  /// Used by the runtime's per-worker workspace reuse between tasks.
  void reset() noexcept {
#if ATALIB_CHECKED
    verify_canary();
    poison(0, top_);
#endif
    top_ = 0;
  }

  /// Grow capacity to at least `count` elements; never shrinks. Only valid
  /// while the arena is empty — contents are not preserved.
  void reserve(std::size_t count) {
    if (count <= slab_.size()) return;
    if (top_ != 0) {
      throw std::logic_error("Arena::reserve on a non-empty arena");
    }
    slab_ = AlignedBuffer<T>(count);
#if ATALIB_CHECKED
    canary_at_ = kNoCanary;
    poison(0, slab_.size());
#endif
  }

  /// LIFO checkpoint token.
  struct Checkpoint {
    std::size_t top;
  };

  Checkpoint checkpoint() const noexcept { return Checkpoint{top_}; }

  /// Roll back to `cp`, releasing everything allocated after it.
  void restore(Checkpoint cp) noexcept {
#if ATALIB_CHECKED
    verify_canary();
    poison(cp.top, top_);
#endif
    top_ = cp.top;
  }

#if ATALIB_CHECKED
  /// Stamp the arena with its current lessee (checked builds only): the
  /// Workspace hands an arena to one task on one thread at a time, and
  /// every allocate() after this call must come from that thread. 0 clears
  /// the stamp (arenas used outside the slot protocol stay unchecked).
  void begin_lease(std::size_t thread_token) noexcept { owner_ = thread_token; }
#endif

  /// RAII helper: restores the checkpoint taken at construction.
  class Scope {
   public:
    explicit Scope(Arena& arena) : arena_(arena), cp_(arena.checkpoint()) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { arena_.restore(cp_); }

   private:
    Arena& arena_;
    Checkpoint cp_;
  };

 private:
#if ATALIB_CHECKED
  static constexpr std::size_t kNoCanary = static_cast<std::size_t>(-1);

  /// Keep one canary element just past the live region (when a free slot
  /// exists). Earlier canaries are legitimately overwritten by later
  /// allocations; only the newest boundary is verifiable — which is exactly
  /// where an "wrote count+1 elements" overrun lands.
  void place_canary() noexcept {
    if (top_ < slab_.size()) {
      std::memset(slab_.data() + top_, kArenaCanaryByte, sizeof(T));
      canary_at_ = top_;
    } else {
      canary_at_ = kNoCanary;
    }
  }

  void verify_canary() const noexcept {
    if (canary_at_ == kNoCanary) return;
    unsigned char expect[sizeof(T)];
    std::memset(expect, kArenaCanaryByte, sizeof(T));
    if (std::memcmp(slab_.data() + canary_at_, expect, sizeof(T)) != 0) {
      checked_abort("arena canary overwritten",
                    "a task wrote past the end of its most recent arena allocation");
    }
  }

  void poison(std::size_t lo, std::size_t hi) noexcept {
    if (hi > lo) {
      std::memset(slab_.data() + lo, kArenaPoisonByte, (hi - lo) * sizeof(T));
    }
    canary_at_ = kNoCanary;
  }

  void check_owner() const noexcept {
    if (owner_ != 0 && owner_ != checked_thread_token()) {
      checked_abort("arena lease violated",
                    "allocate() from a thread that does not hold the workspace "
                    "lease (cross-task arena aliasing)");
    }
  }
#endif

  AlignedBuffer<T> slab_;
  std::size_t top_ = 0;
  std::size_t high_water_ = 0;
#if ATALIB_CHECKED
  std::size_t canary_at_ = kNoCanary;
  std::size_t owner_ = 0;
#endif
};

extern template class Arena<float>;
extern template class Arena<double>;

}  // namespace atalib
