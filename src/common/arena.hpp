#pragma once
// Checkpointed bump-arena used as the Strassen workspace.
//
// The paper's FastStrassen pre-allocates three buffers (M, P, Q) sized for
// the whole recursion and hands prefixes of them to each recursive level.
// A checkpointed bump arena is the same idea with one buffer: a level takes
// a checkpoint, bump-allocates its temporaries, and restores the checkpoint
// on unwind, so the deepest recursion path determines the footprint and no
// malloc/free happens inside the recursion.

#include <cstddef>
#include <stdexcept>

#include "common/aligned_buffer.hpp"

namespace atalib {

/// Bump allocator over a single aligned double-precision-sized slab.
/// Allocation is O(1); freeing happens only via checkpoints (LIFO).
template <typename T>
class Arena {
 public:
  Arena() = default;
  /// Construct with capacity for `count` elements of T.
  explicit Arena(std::size_t count) : slab_(count) {}

  /// Total capacity in elements.
  std::size_t capacity() const noexcept { return slab_.size(); }
  /// Elements currently allocated.
  std::size_t used() const noexcept { return top_; }
  /// High-water mark over the arena's lifetime (for tests/ablations).
  std::size_t high_water() const noexcept { return high_water_; }

  /// Allocate `count` elements. The returned memory is uninitialized.
  /// Throws std::length_error if the arena is exhausted: the workspace
  /// bound computation is wrong in that case, and silently growing would
  /// hide the bug.
  T* allocate(std::size_t count) {
    if (top_ + count > slab_.size()) {
      throw std::length_error("Arena exhausted: workspace bound violated");
    }
    T* p = slab_.data() + top_;
    top_ += count;
    if (top_ > high_water_) high_water_ = top_;
    return p;
  }

  /// Discard every allocation (capacity and high-water mark retained).
  /// Used by the runtime's per-worker workspace reuse between tasks.
  void reset() noexcept { top_ = 0; }

  /// Grow capacity to at least `count` elements; never shrinks. Only valid
  /// while the arena is empty — contents are not preserved.
  void reserve(std::size_t count) {
    if (count <= slab_.size()) return;
    if (top_ != 0) {
      throw std::logic_error("Arena::reserve on a non-empty arena");
    }
    slab_ = AlignedBuffer<T>(count);
  }

  /// LIFO checkpoint token.
  struct Checkpoint {
    std::size_t top;
  };

  Checkpoint checkpoint() const noexcept { return Checkpoint{top_}; }

  /// Roll back to `cp`, releasing everything allocated after it.
  void restore(Checkpoint cp) noexcept { top_ = cp.top; }

  /// RAII helper: restores the checkpoint taken at construction.
  class Scope {
   public:
    explicit Scope(Arena& arena) : arena_(arena), cp_(arena.checkpoint()) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { arena_.restore(cp_); }

   private:
    Arena& arena_;
    Checkpoint cp_;
  };

 private:
  AlignedBuffer<T> slab_;
  std::size_t top_ = 0;
  std::size_t high_water_ = 0;
};

extern template class Arena<float>;
extern template class Arena<double>;

}  // namespace atalib
