#include "common/cacheinfo.hpp"

#include <unistd.h>

namespace atalib {
namespace {

std::size_t sysconf_or(int name, std::size_t fallback) {
#ifdef _SC_LEVEL1_DCACHE_SIZE
  long v = ::sysconf(name);
  if (v > 0) return static_cast<std::size_t>(v);
#else
  (void)name;
#endif
  return fallback;
}

}  // namespace

CacheInfo probe_cache_info() {
  CacheInfo info{};
#ifdef _SC_LEVEL1_DCACHE_SIZE
  info.l1_data_bytes = sysconf_or(_SC_LEVEL1_DCACHE_SIZE, 32u * 1024);
  info.l2_bytes = sysconf_or(_SC_LEVEL2_CACHE_SIZE, 256u * 1024);
  info.l3_bytes = sysconf_or(_SC_LEVEL3_CACHE_SIZE, 8u * 1024 * 1024);
#else
  info.l1_data_bytes = 32u * 1024;
  info.l2_bytes = 256u * 1024;
  info.l3_bytes = 8u * 1024 * 1024;
#endif
  if (info.l1_data_bytes == 0) info.l1_data_bytes = 32u * 1024;
  if (info.l2_bytes == 0) info.l2_bytes = 256u * 1024;
  if (info.l3_bytes == 0) info.l3_bytes = 8u * 1024 * 1024;
  return info;
}

std::size_t default_base_case_elements(std::size_t elem_bytes) {
  const CacheInfo info = probe_cache_info();
  return info.l2_bytes / 2 / elem_bytes;
}

}  // namespace atalib
