#include "common/cacheinfo.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace atalib {
namespace {

std::size_t sysconf_or(int name, std::size_t fallback) {
#ifdef _SC_LEVEL1_DCACHE_SIZE
  long v = ::sysconf(name);
  if (v > 0) return static_cast<std::size_t>(v);
#else
  (void)name;
#endif
  return fallback;
}

}  // namespace

CacheInfo probe_cache_info() {
  CacheInfo info{};
#ifdef _SC_LEVEL1_DCACHE_SIZE
  info.l1_data_bytes = sysconf_or(_SC_LEVEL1_DCACHE_SIZE, 32u * 1024);
  info.l2_bytes = sysconf_or(_SC_LEVEL2_CACHE_SIZE, 256u * 1024);
  info.l3_bytes = sysconf_or(_SC_LEVEL3_CACHE_SIZE, 8u * 1024 * 1024);
#else
  info.l1_data_bytes = 32u * 1024;
  info.l2_bytes = 256u * 1024;
  info.l3_bytes = 8u * 1024 * 1024;
#endif
  if (info.l1_data_bytes == 0) info.l1_data_bytes = 32u * 1024;
  if (info.l2_bytes == 0) info.l2_bytes = 256u * 1024;
  if (info.l3_bytes == 0) info.l3_bytes = 8u * 1024 * 1024;
  return info;
}

std::size_t default_base_case_elements(std::size_t elem_bytes) {
  const CacheInfo info = probe_cache_info();
  return info.l2_bytes / 2 / elem_bytes;
}

namespace {

/// Parse a kernel cpulist ("0-3,8,10-11") into cpu ids; nullopt on junk.
std::optional<std::vector<int>> parse_cpulist(const std::string& list) {
  std::vector<int> cpus;
  std::istringstream in(list);
  std::string range;
  while (std::getline(in, range, ',')) {
    // Trim whitespace (the sysfs file ends with '\n').
    const auto b = range.find_first_not_of(" \t\n");
    const auto e = range.find_last_not_of(" \t\n");
    if (b == std::string::npos) continue;
    range = range.substr(b, e - b + 1);
    std::size_t pos = 0;
    long lo = 0, hi = 0;
    try {
      lo = std::stol(range, &pos);
    } catch (...) {
      return std::nullopt;
    }
    if (pos < range.size() && range[pos] == '-') {
      std::size_t pos2 = 0;
      try {
        hi = std::stol(range.substr(pos + 1), &pos2);
      } catch (...) {
        return std::nullopt;
      }
      if (pos + 1 + pos2 != range.size()) return std::nullopt;
    } else {
      if (pos != range.size()) return std::nullopt;
      hi = lo;
    }
    if (lo < 0 || hi < lo) return std::nullopt;
    for (long c = lo; c <= hi; ++c) cpus.push_back(static_cast<int>(c));
  }
  if (cpus.empty()) return std::nullopt;
  return cpus;
}

NumaTopology single_node_fallback() {
  NumaTopology topo;
  int n = static_cast<int>(std::thread::hardware_concurrency());
  if (n < 1) n = 1;
  NumaNode node;
  node.id = 0;
  node.cpus.reserve(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) node.cpus.push_back(c);
  topo.nodes.push_back(std::move(node));
  return topo;
}

std::optional<NumaTopology> probe_sysfs_topology() {
  NumaTopology topo;
  // Node ids are not necessarily dense; scan a generous range.
  for (int id = 0; id < 1024; ++id) {
    const std::string path = "/sys/devices/system/node/node" + std::to_string(id) + "/cpulist";
    std::ifstream f(path);
    if (!f) continue;
    std::string list;
    std::getline(f, list);
    auto cpus = parse_cpulist(list);
    if (!cpus) continue;  // memory-only node (no CPUs): skip for scheduling
    NumaNode node;
    node.id = id;
    node.cpus = std::move(*cpus);
    topo.nodes.push_back(std::move(node));
  }
  if (topo.nodes.empty()) return std::nullopt;
  return topo;
}

}  // namespace

int NumaTopology::total_cpus() const {
  int n = 0;
  for (const NumaNode& node : nodes) n += static_cast<int>(node.cpus.size());
  return n;
}

int NumaTopology::node_of_cpu(int cpu) const {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (std::find(nodes[i].cpus.begin(), nodes[i].cpus.end(), cpu) != nodes[i].cpus.end()) {
      return static_cast<int>(i);
    }
  }
  return 0;
}

std::optional<NumaTopology> parse_fake_numa(const std::string& spec) {
  std::size_t pos = 0;
  long nnodes = 0, ncpus = 0;
  try {
    nnodes = std::stol(spec, &pos);
  } catch (...) {
    return std::nullopt;
  }
  if (pos >= spec.size() || (spec[pos] != 'x' && spec[pos] != 'X')) return std::nullopt;
  std::size_t pos2 = 0;
  try {
    ncpus = std::stol(spec.substr(pos + 1), &pos2);
  } catch (...) {
    return std::nullopt;
  }
  if (pos + 1 + pos2 != spec.size()) return std::nullopt;
  if (nnodes < 1 || ncpus < 1 || nnodes > 1024 || ncpus > 4096) return std::nullopt;
  NumaTopology topo;
  topo.fake = true;
  int cpu = 0;
  for (long n = 0; n < nnodes; ++n) {
    NumaNode node;
    node.id = static_cast<int>(n);
    for (long c = 0; c < ncpus; ++c) node.cpus.push_back(cpu++);
    topo.nodes.push_back(std::move(node));
  }
  return topo;
}

NumaTopology probe_numa_topology() {
  if (const char* env = std::getenv("ATALIB_FAKE_NUMA"); env != nullptr && env[0] != '\0') {
    auto fake = parse_fake_numa(env);
    if (!fake) {
      throw std::invalid_argument(
          std::string("ATALIB_FAKE_NUMA must be \"<nodes>x<cpus>\" with positive counts, "
                      "got \"") +
          env + "\"");
    }
    return *fake;
  }
  if (auto sysfs = probe_sysfs_topology()) return *sysfs;
  return single_node_fallback();
}

}  // namespace atalib
