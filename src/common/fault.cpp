#include "common/fault.hpp"

#include <chrono>
#include <cstdlib>
#include <thread>

namespace atalib::fault {
namespace {

std::uint64_t parse_u64(std::string_view field, const std::string& spec) {
  if (field.empty()) {
    throw std::invalid_argument("ATALIB_FAULTS: empty numeric field in '" +
                                spec + "'");
  }
  std::uint64_t v = 0;
  for (char c : field) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("ATALIB_FAULTS: non-numeric field '" +
                                  std::string(field) + "' in '" + spec + "'");
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

std::shared_ptr<const Plan> Plan::parse(const std::string& spec) {
  auto plan = std::make_shared<Plan>();
  std::string_view rest = spec;
  while (!rest.empty()) {
    const size_t comma = rest.find(',');
    std::string_view entry = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (entry.empty()) {
      // A stray comma is a typo'd spec, and a typo'd spec silently doing
      // less than asked is the worst failure mode for a fault plan.
      throw std::invalid_argument("ATALIB_FAULTS: empty entry in '" + spec + "'");
    }

    Site site;
    int nfields = 0;
    size_t colon = entry.find(':');
    site.name = std::string(entry.substr(0, colon));
    while (colon != std::string_view::npos) {
      entry = entry.substr(colon + 1);
      colon = entry.find(':');
      const std::uint64_t v = parse_u64(entry.substr(0, colon), spec);
      if (nfields == 0) {
        site.n1 = v;
      } else if (nfields == 1) {
        site.n2 = v;
      } else {
        throw std::invalid_argument(
            "ATALIB_FAULTS: more than two numeric fields in '" + spec + "'");
      }
      ++nfields;
    }
    if (site.name.empty()) {
      throw std::invalid_argument("ATALIB_FAULTS: empty site name in '" +
                                  spec + "'");
    }
    auto counter = std::make_unique<Counter>();
    counter->site = std::move(site);
    plan->sites_.push_back(std::move(counter));
  }
  if (plan->sites_.empty()) return nullptr;
  return plan;
}

std::shared_ptr<const Plan> Plan::from_env() {
  if constexpr (!kEnabled) return nullptr;
  const char* spec = std::getenv("ATALIB_FAULTS");
  if (spec == nullptr || spec[0] == '\0') return nullptr;
  return parse(spec);
}

const Site* Plan::find(std::string_view name) const {
  for (const auto& c : sites_) {
    if (c->site.name == name) return &c->site;
  }
  return nullptr;
}

bool Plan::fire(std::string_view site, std::uint64_t every) const {
  for (const auto& c : sites_) {
    if (c->site.name != site) continue;
    const std::uint64_t k =
        c->count.fetch_add(1, std::memory_order_relaxed) + 1;
    const std::uint64_t period = every == 0 ? 1 : every;
    return k % period == 0;
  }
  return false;
}

void Plan::maybe_slow_task() const {
  const Site* s = find("slow_task");
  if (s == nullptr) return;
  if (!fire("slow_task", s->n2)) return;
  std::this_thread::sleep_for(std::chrono::microseconds(s->n1));
}

void Plan::maybe_throw_leaf() const {
  const Site* s = find("throw_leaf");
  if (s == nullptr) return;
  if (!fire("throw_leaf", s->n1)) return;
  throw FaultInjected("atalib: injected leaf failure (ATALIB_FAULTS=throw_leaf)");
}

std::uint64_t Plan::queue_pressure() const {
  const Site* s = find("queue_pressure");
  return s == nullptr ? 0 : s->n1;
}

}  // namespace atalib::fault
