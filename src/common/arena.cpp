#include "common/arena.hpp"

namespace atalib {

template class Arena<float>;
template class Arena<double>;

}  // namespace atalib
